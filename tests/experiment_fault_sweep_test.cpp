#include "experiment/fault_sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace rtsp {
namespace {

FaultSweepConfig small_config() {
  FaultSweepConfig cfg;
  cfg.rates = {0.0, 0.3};
  cfg.trials = 2;
  cfg.instance.servers = 6;
  cfg.instance.objects = 12;
  cfg.instance.max_replicas = 2;
  return cfg;
}

TEST(FaultSweep, ProducesOneCellPerRate) {
  const auto cells = run_fault_sweep(small_config());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].rate, 0.0);
  EXPECT_DOUBLE_EQ(cells[1].rate, 0.3);
  for (const FaultSweepCell& c : cells) {
    EXPECT_EQ(c.cost_inflation.count(), 2u);
  }
}

TEST(FaultSweep, ZeroRateExecutesPlansExactly) {
  const auto cells = run_fault_sweep(small_config());
  // rate 0, no losses: every execution reproduces its plan, inflation 1.0.
  EXPECT_DOUBLE_EQ(cells[0].cost_inflation.mean(), 1.0);
  EXPECT_DOUBLE_EQ(cells[0].retries.mean(), 0.0);
  EXPECT_DOUBLE_EQ(cells[0].replans.mean(), 0.0);
  EXPECT_DOUBLE_EQ(cells[0].dummy_inflation.mean(), 0.0);
}

TEST(FaultSweep, DeterministicInBaseSeed) {
  const auto a = run_fault_sweep(small_config());
  const auto b = run_fault_sweep(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cost_inflation.mean(), b[i].cost_inflation.mean());
    EXPECT_DOUBLE_EQ(a[i].attempts.mean(), b[i].attempts.mean());
  }
}

TEST(FaultSweep, LossesSurfaceInCsv) {
  FaultSweepConfig cfg = small_config();
  cfg.rates = {0.1};
  cfg.loss_count = 2;
  const auto cells = run_fault_sweep(cfg);
  std::ostringstream csv;
  write_fault_sweep_csv(csv, cells);
  const std::string text = csv.str();
  EXPECT_NE(text.find("rate,trials,cost_inflation_mean"), std::string::npos);
  EXPECT_NE(text.find("loss_deletions_mean"), std::string::npos);
  // header + one data row
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace rtsp
