#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace rtsp {
namespace {

TEST(StatAccumulator, EmptyIsAllZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.stderr_mean(), 0.0);
  EXPECT_EQ(acc.sum(), 0.0);
}

TEST(StatAccumulator, SingleValue) {
  StatAccumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  StatAccumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  // Sample variance with n-1: sum of squared deviations is 32, 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stderr_mean(), acc.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(StatAccumulator, HandlesNegativeValues) {
  StatAccumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(SampleSet, PercentilesInterpolate) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.125), 15.0);  // halfway between 10 and 20
}

TEST(SampleSet, PercentileAfterMoreAdds) {
  SampleSet s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 1.0);
  s.add(3.0);  // re-sorting must kick in
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 2.0);
}

TEST(SampleSet, EmptyPercentileThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(0.5), PreconditionError);
}

TEST(SampleSet, OutOfRangeQuantileThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-0.1), PreconditionError);
  EXPECT_THROW(s.percentile(1.1), PreconditionError);
}

TEST(HumanCount, FormatsMagnitudes) {
  EXPECT_EQ(human_count(950), "950");
  EXPECT_EQ(human_count(12300), "12.3k");
  EXPECT_EQ(human_count(4.56e6), "4.56M");
  EXPECT_EQ(human_count(7.8e9), "7.80G");
}

}  // namespace
}  // namespace rtsp
