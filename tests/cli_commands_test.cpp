#include "cli/commands.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "io/instance_io.hpp"
#include "io/journal_io.hpp"
#include "io/schedule_io.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/json.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  std::vector<const char*> argv = {"rtsp"};
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const std::string& name) {
  // Per-process prefix: ctest runs each TEST as its own process, often in
  // parallel, and shared names (notably cli_fig3.rtsp) raced on rewrite.
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

std::string write_fig3_instance() {
  const std::string path = temp_path("cli_fig3.rtsp");
  std::ofstream f(path);
  write_instance(f, testutil::fig3_instance());
  return path;
}

TEST(Cli, NoArgsPrintsUsageAndFails) {
  const CliResult r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliResult r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
  EXPECT_NE(r.out.find("GOLCF+H1+H2+OP1"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliResult r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateSolveValidateRoundTrip) {
  const std::string inst_path = temp_path("cli_gen.rtsp");
  const std::string sched_path = temp_path("cli_gen.sched");
  const CliResult gen = run({"generate", "--kind", "paper-equal", "--servers", "10",
                             "--objects", "30", "--replicas", "2", "--seed", "5",
                             "--out", inst_path});
  ASSERT_EQ(gen.code, 0) << gen.err;

  const CliResult solve = run({"solve", "--instance", inst_path, "--algo",
                               "GOLCF+H1+H2", "--out", sched_path});
  ASSERT_EQ(solve.code, 0) << solve.err;
  EXPECT_NE(solve.out.find("cost:"), std::string::npos);

  const CliResult validate =
      run({"validate", "--instance", inst_path, "--schedule", sched_path});
  EXPECT_EQ(validate.code, 0) << validate.err;
  EXPECT_NE(validate.out.find("valid"), std::string::npos);

  const CliResult stats =
      run({"stats", "--instance", inst_path, "--schedule", sched_path});
  EXPECT_EQ(stats.code, 0) << stats.err;
  EXPECT_NE(stats.out.find("actions"), std::string::npos);
  EXPECT_NE(stats.out.find("tightest headroom"), std::string::npos);

  const CliResult makespan =
      run({"makespan", "--instance", inst_path, "--schedule", sched_path});
  EXPECT_EQ(makespan.code, 0) << makespan.err;
  EXPECT_NE(makespan.out.find("speedup"), std::string::npos);

  const CliResult phases = run(
      {"phases", "--instance", inst_path, "--schedule", sched_path, "--ports", "2"});
  EXPECT_EQ(phases.code, 0) << phases.err;
  EXPECT_NE(phases.out.find("rounds"), std::string::npos);

  // deadline exits 0 when met, 3 when not — both carry the full report.
  const CliResult deadline = run({"deadline", "--instance", inst_path, "--schedule",
                                  sched_path, "--deadline", "1e18"});
  EXPECT_EQ(deadline.code, 0) << deadline.err;
  EXPECT_NE(deadline.out.find("met:             yes"), std::string::npos);
  const CliResult missed = run({"deadline", "--instance", inst_path, "--schedule",
                                sched_path, "--deadline", "1"});
  EXPECT_EQ(missed.code, 3);
  EXPECT_NE(missed.out.find("met:             no"), std::string::npos);

  // JSON variants parse-look sane.
  const CliResult sj =
      run({"solve", "--instance", inst_path, "--algo", "AR", "--json"});
  EXPECT_EQ(sj.code, 0) << sj.err;
  EXPECT_NE(sj.out.find("\"actions\":["), std::string::npos);
  const CliResult ij = run({"info", "--instance", inst_path, "--json"});
  EXPECT_EQ(ij.code, 0) << ij.err;
  EXPECT_NE(ij.out.find("\"servers\":10"), std::string::npos);
}

TEST(Cli, ValidateDetectsCorruptedSchedule) {
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_bad.sched");
  {
    std::ofstream f(sched_path);
    f << "D 0 0\n";  // deletes one replica, reaches nothing like X_new
  }
  const CliResult r =
      run({"validate", "--instance", inst_path, "--schedule", sched_path});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("invalid"), std::string::npos);
}

TEST(Cli, InfoShowsBoundsAndCycles) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r = run({"info", "--instance", inst_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("outstanding:       6"), std::string::npos);
  EXPECT_NE(r.out.find("superfluous:       6"), std::string::npos);
  EXPECT_NE(r.out.find("cost lower bound"), std::string::npos);
  EXPECT_NE(r.out.find("transfer graph"), std::string::npos);
}

TEST(Cli, ExactSolvesTinyInstance) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r =
      run({"exact", "--instance", inst_path, "--max-nodes", "2000000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("optimal:         proven"), std::string::npos);
}

TEST(Cli, DotOutputsDigraph) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r = run({"dot", "--instance", inst_path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digraph transfers"), std::string::npos);
}

TEST(Cli, MissingFilesGiveUsefulErrors) {
  EXPECT_EQ(run({"solve"}).code, 1);
  EXPECT_NE(run({"solve"}).err.find("--instance"), std::string::npos);
  const CliResult r = run({"solve", "--instance", "/nonexistent/file"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, BadAlgorithmSpecFails) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r =
      run({"solve", "--instance", inst_path, "--algo", "WAT+H1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown builder"), std::string::npos);
}

TEST(Cli, GenerateRejectsUnknownKind) {
  const CliResult r = run({"generate", "--kind", "quantum"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --kind"), std::string::npos);
}

TEST(Cli, GenerateRandomKindProducesParsableInstance) {
  const std::string path = temp_path("cli_random.rtsp");
  const CliResult r = run({"generate", "--kind", "random", "--servers", "6",
                           "--objects", "12", "--replicas", "2", "--out", path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  EXPECT_NO_THROW(read_instance(f));
}

/// Generates a paper-style instance and solves it with provenance recording,
/// returning the three file paths explain consumes.
struct ProvFiles {
  std::string instance;
  std::string schedule;
  std::string provenance;
};

ProvFiles solve_with_provenance(const std::string& tag, const std::string& algo,
                                const std::string& seed) {
  ProvFiles files{temp_path("cli_" + tag + ".rtsp"),
                  temp_path("cli_" + tag + ".sched"),
                  temp_path("cli_" + tag + ".prov.json")};
  const CliResult gen = run({"generate", "--kind", "paper-equal", "--servers",
                             "10", "--objects", "40", "--replicas", "2",
                             "--seed", seed, "--out", files.instance});
  EXPECT_EQ(gen.code, 0) << gen.err;
  const CliResult solve =
      run({"solve", "--instance", files.instance, "--algo", algo, "--seed",
           seed, "--out", files.schedule, "--provenance-out", files.provenance});
  EXPECT_EQ(solve.code, 0) << solve.err;
  return files;
}

TEST(Cli, ExplainReportsAttributionAndRootCauses) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const ProvFiles f = solve_with_provenance("explain", "GOLCF+H1+H2+OP1", "7");
  const CliResult r = run({"explain", "--instance", f.instance, "--schedule",
                           f.schedule, "--provenance", f.provenance});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("per-stage attribution"), std::string::npos);
  EXPECT_NE(r.out.find("GOLCF"), std::string::npos);
  EXPECT_NE(r.out.find("total"), std::string::npos);
  EXPECT_NE(r.out.find("dummy-transfer root causes"), std::string::npos);

  const CliResult actions =
      run({"explain", "--instance", f.instance, "--schedule", f.schedule,
           "--provenance", f.provenance, "--actions"});
  ASSERT_EQ(actions.code, 0) << actions.err;
  EXPECT_NE(actions.out.find("per-action provenance"), std::string::npos);
}

TEST(Cli, ExplainJsonAndCsvModes) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const ProvFiles f = solve_with_provenance("explainfmt", "GOLCF+H1", "9");
  const CliResult json = run({"explain", "--instance", f.instance, "--schedule",
                              f.schedule, "--provenance", f.provenance,
                              "--json"});
  ASSERT_EQ(json.code, 0) << json.err;
  EXPECT_NE(json.out.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.out.find("\"actions_table\":["), std::string::npos);

  const CliResult csv = run({"explain", "--instance", f.instance, "--schedule",
                             f.schedule, "--provenance", f.provenance, "--csv"});
  ASSERT_EQ(csv.code, 0) << csv.err;
  EXPECT_NE(csv.out.find("pos,action,stage"), std::string::npos);
}

TEST(Cli, ExplainDiffComparesTwoSchedules) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const ProvFiles a = solve_with_provenance("diff_a", "GOLCF+H1+H2+OP1", "11");
  const ProvFiles b = solve_with_provenance("diff_b", "GOLCF+H1", "11");
  const CliResult r = run({"explain", "--instance", a.instance, "--schedule",
                           a.schedule, "--provenance", a.provenance,
                           "--diff-schedule", b.schedule, "--diff-provenance",
                           b.provenance});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("per-stage diff"), std::string::npos);
  EXPECT_NE(r.out.find("d-cost"), std::string::npos);
  EXPECT_NE(r.out.find("total"), std::string::npos);
}

TEST(Cli, ExplainRejectsMismatchedProvenance) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const ProvFiles f = solve_with_provenance("mismatch", "GOLCF+H1", "13");
  const std::string other = temp_path("cli_mismatch_other.sched");
  {
    std::ofstream sched(other);
    sched << "D 0 0\n";
  }
  const CliResult r = run({"explain", "--instance", f.instance, "--schedule",
                           other, "--provenance", f.provenance});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("does not match"), std::string::npos);
}

TEST(Cli, DotScheduleModeColorsByProvenance) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const ProvFiles f = solve_with_provenance("dot", "GOLCF+H1", "15");
  const CliResult plain =
      run({"dot", "--instance", f.instance, "--schedule", f.schedule});
  ASSERT_EQ(plain.code, 0) << plain.err;
  EXPECT_NE(plain.out.find("digraph schedule"), std::string::npos);

  const CliResult colored = run({"dot", "--instance", f.instance, "--schedule",
                                 f.schedule, "--provenance", f.provenance});
  ASSERT_EQ(colored.code, 0) << colored.err;
  EXPECT_NE(colored.out.find("cluster_legend"), std::string::npos);
  EXPECT_NE(colored.out.find("GOLCF"), std::string::npos);
}

TEST(Cli, SolveProvenanceOutRequiresObsBuild) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r = run({"solve", "--instance", inst_path, "--algo", "GOLCF",
                           "--provenance-out", temp_path("cli_prov_gate.json")});
  if (prov::kRecorderCompiled) {
    EXPECT_EQ(r.code, 0) << r.err;
  } else {
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("RTSP_OBS"), std::string::npos);
  }
}

TEST(Cli, ExecuteZeroFaultReproducesPlan) {
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_exec.sched");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path}).code, 0);

  const CliResult r =
      run({"execute", "--instance", inst_path, "--schedule", sched_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("reached X_new:       yes"), std::string::npos);
  EXPECT_NE(r.out.find("effective validates: yes"), std::string::npos);
  EXPECT_NE(r.out.find("inflation 1)"), std::string::npos);

  const CliResult j = run({"execute", "--instance", inst_path, "--schedule",
                           sched_path, "--json"});
  ASSERT_EQ(j.code, 0) << j.err;
  EXPECT_NE(j.out.find("\"reached_goal\":true"), std::string::npos);
  EXPECT_NE(j.out.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(j.out.find("\"cost_inflation\":1"), std::string::npos);
}

TEST(Cli, ExecuteUnderFaultsProducesValidEffectiveSchedule) {
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_exec_f.sched");
  const std::string faults_path = temp_path("cli_exec_f.faults.json");
  const std::string eff_path = temp_path("cli_exec_f.effective.sched");
  const std::string prov_path = temp_path("cli_exec_f.prov.json");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path}).code, 0);
  {
    std::ofstream f(faults_path);
    f << R"({"version": 1, "seed": 9, "transient_failure_rate": 0.5,
             "losses": [{"server": 0, "object": 0, "at": 0}]})";
  }
  const CliResult r = run({"execute", "--instance", inst_path, "--schedule",
                           sched_path, "--faults", faults_path, "--out", eff_path,
                           "--provenance-out", prov_path, "--attempts"});
  ASSERT_EQ(r.code, 0) << r.err << r.out;
  EXPECT_NE(r.out.find("loss deletions:      1"), std::string::npos);
  EXPECT_NE(r.out.find("attempt log:"), std::string::npos);

  // The effective schedule must validate standalone...
  const CliResult v =
      run({"validate", "--instance", inst_path, "--schedule", eff_path});
  EXPECT_EQ(v.code, 0) << v.out;
  // ...and the executor-written provenance drives `rtsp explain`, which
  // attributes the forced deletion to the FAULT-LOSS stage.
  const CliResult e = run({"explain", "--instance", inst_path, "--schedule",
                           eff_path, "--provenance", prov_path});
  ASSERT_EQ(e.code, 0) << e.err;
  EXPECT_NE(e.out.find("FAULT-LOSS"), std::string::npos);
  EXPECT_NE(e.out.find("PLAN"), std::string::npos);
}

TEST(Cli, ExecuteRejectsBadInputs) {
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_exec_bad.sched");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path}).code, 0);

  const CliResult missing =
      run({"execute", "--instance", inst_path, "--schedule", sched_path,
           "--faults", temp_path("nonexistent.json")});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("cannot open fault spec"), std::string::npos);

  const std::string bad_faults = temp_path("cli_exec_bad.faults.json");
  {
    std::ofstream f(bad_faults);
    f << R"({"version": 1, "transient_failure_rate": 7.0})";
  }
  const CliResult invalid =
      run({"execute", "--instance", inst_path, "--schedule", sched_path,
           "--faults", bad_faults});
  EXPECT_EQ(invalid.code, 1);
  EXPECT_NE(invalid.err.find("fault spec"), std::string::npos);

  const CliResult bad_retry =
      run({"execute", "--instance", inst_path, "--schedule", sched_path,
           "--jitter", "3"});
  EXPECT_EQ(bad_retry.code, 1);
  EXPECT_NE(bad_retry.err.find("jitter"), std::string::npos);
}

TEST(Cli, ExecuteFlightRecorderThenReport) {
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_rec.sched");
  const std::string faults_path = temp_path("cli_rec.faults.json");
  const std::string journal_path = temp_path("cli_rec.journal");
  const std::string timeline_path = temp_path("cli_rec.trace.json");
  const std::string html_path = temp_path("cli_rec.html");
  const std::string summary_path = temp_path("cli_rec.report.json");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path}).code, 0);
  {
    std::ofstream f(faults_path);
    f << R"({"version": 1, "seed": 9, "transient_failure_rate": 0.5})";
  }
  const CliResult x = run({"execute", "--instance", inst_path, "--schedule",
                           sched_path, "--faults", faults_path, "--journal-out",
                           journal_path, "--timeline-out", timeline_path});
  ASSERT_EQ(x.code, 0) << x.err << x.out;
  EXPECT_NE(x.out.find("journal written to"), std::string::npos);
  EXPECT_NE(x.out.find("timeline written to"), std::string::npos);

  const JournalDoc doc = read_journal_file(journal_path);
  EXPECT_GT(doc.events.size(), 0u);
  EXPECT_TRUE(doc.run.reached_goal);
  EXPECT_GT(doc.run.transient_failures, 0u);

  const CliResult r = run({"report", "--journal", journal_path, "--html",
                           html_path, "--out", summary_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream html(html_path);
  std::stringstream html_buf;
  html_buf << html.rdbuf();
  EXPECT_NE(html_buf.str().find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html_buf.str().find("Cost trajectory"), std::string::npos);
  EXPECT_NE(html_buf.str().find("Per-server lanes"), std::string::npos);
  std::ifstream summary(summary_path);
  std::stringstream summary_buf;
  summary_buf << summary.rdbuf();
  const JsonValue parsed = parse_json(summary_buf.str());
  EXPECT_EQ(parsed.at("run").at("reached_goal").as_bool(), true);
  EXPECT_GT(parsed.at("events").at("attempt_start").as_int(), 0);
}

TEST(Cli, ReportStagesMatchExplainOnZeroFaultRun) {
#if !RTSP_OBS_ENABLED
  GTEST_SKIP() << "provenance capture needs an obs-enabled build";
#else
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_rep.sched");
  const std::string prov_path = temp_path("cli_rep.prov.json");
  const std::string journal_path = temp_path("cli_rep.journal");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path,
                 "--provenance-out", prov_path})
                .code,
            0);
  // Zero faults: the effective schedule IS the plan, so the planner's own
  // provenance attributes it and `rtsp report` must emit exactly the stage
  // records `rtsp explain --json` prints.
  ASSERT_EQ(run({"execute", "--instance", inst_path, "--schedule", sched_path,
                 "--journal-out", journal_path})
                .code,
            0);
  const CliResult rep = run({"report", "--journal", journal_path, "--instance",
                             inst_path, "--schedule", sched_path,
                             "--provenance", prov_path});
  ASSERT_EQ(rep.code, 0) << rep.err;
  const CliResult exp = run({"explain", "--instance", inst_path, "--schedule",
                             sched_path, "--provenance", prov_path, "--json"});
  ASSERT_EQ(exp.code, 0) << exp.err;
  const JsonValue rep_doc = parse_json(rep.out);
  const JsonValue exp_doc = parse_json(exp.out);
  EXPECT_EQ(rep_doc.at("reconciled").as_bool(), true);
  const auto& rep_stages = rep_doc.at("stages").items();
  const auto& exp_stages = exp_doc.at("stages").items();
  ASSERT_EQ(rep_stages.size(), exp_stages.size());
  const char* keys[] = {"name",      "kind",        "actions",
                        "transfers", "deletions",   "dummy_transfers",
                        "cost",      "dummy_cost",  "rewrites",
                        "rewrite_cost_delta",       "rewrite_dummy_delta"};
  for (std::size_t i = 0; i < rep_stages.size(); ++i) {
    for (const char* key : keys) {
      const JsonValue& a = rep_stages[i].at(key);
      const JsonValue& b = exp_stages[i].at(key);
      if (key == std::string("name") || key == std::string("kind")) {
        EXPECT_EQ(a.as_string(), b.as_string()) << "stage " << i << " " << key;
      } else {
        EXPECT_EQ(a.as_int(), b.as_int()) << "stage " << i << " " << key;
      }
    }
  }
#endif
}

TEST(Cli, ReportRejectsMismatchedSchedule) {
#if !RTSP_OBS_ENABLED
  GTEST_SKIP() << "provenance capture needs an obs-enabled build";
#else
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_repm.sched");
  const std::string prov_path = temp_path("cli_repm.prov.json");
  const std::string journal_path = temp_path("cli_repm.journal");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path,
                 "--provenance-out", prov_path})
                .code,
            0);
  ASSERT_EQ(run({"execute", "--instance", inst_path, "--schedule", sched_path,
                 "--journal-out", journal_path})
                .code,
            0);
  {
    // Forge a journal from "another run": its effective cost no longer
    // matches the schedule the stage trio attributes.
    JournalDoc doc = read_journal_file(journal_path);
    doc.run.effective_cost += 1;
    write_journal_file(journal_path, doc.events, doc.dropped, doc.run);
  }
  const CliResult rep = run({"report", "--journal", journal_path, "--instance",
                             inst_path, "--schedule", sched_path,
                             "--provenance", prov_path});
  EXPECT_EQ(rep.code, 1);
  EXPECT_NE(rep.err.find("does not match journal"), std::string::npos);

  const CliResult partial =
      run({"report", "--journal", journal_path, "--instance", inst_path});
  EXPECT_EQ(partial.code, 1);
  EXPECT_NE(partial.err.find("needs all of"), std::string::npos);

  const CliResult no_journal = run({"report"});
  EXPECT_EQ(no_journal.code, 1);
  EXPECT_NE(no_journal.err.find("--journal"), std::string::npos);
#endif
}

TEST(Cli, ExecuteJournalOnOrOffIsBitIdentical) {
  const std::string inst_path = write_fig3_instance();
  const std::string sched_path = temp_path("cli_det.sched");
  const std::string faults_path = temp_path("cli_det.faults.json");
  const std::string eff_off = temp_path("cli_det.off.sched");
  const std::string eff_on = temp_path("cli_det.on.sched");
  const std::string journal_path = temp_path("cli_det.journal");
  ASSERT_EQ(run({"solve", "--instance", inst_path, "--out", sched_path}).code, 0);
  {
    std::ofstream f(faults_path);
    f << R"({"version": 1, "seed": 3, "transient_failure_rate": 0.4,
             "offline": [{"server": 1, "begin": 0, "end": 50}]})";
  }
  const CliResult off = run({"execute", "--instance", inst_path, "--schedule",
                             sched_path, "--faults", faults_path, "--seed", "4",
                             "--out", eff_off});
  ASSERT_EQ(off.code, 0) << off.err;
  const CliResult on = run({"execute", "--instance", inst_path, "--schedule",
                            sched_path, "--faults", faults_path, "--seed", "4",
                            "--out", eff_on, "--journal-out", journal_path});
  ASSERT_EQ(on.code, 0) << on.err;

  const auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    std::stringstream buf;
    buf << f.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(eff_on), slurp(eff_off));

  // The console report (costs, attempts, ticks) matches too, modulo the
  // extra "journal written" line.
  std::string on_out = on.out;
  const std::size_t line = on_out.find("journal written to");
  ASSERT_NE(line, std::string::npos);
  on_out.erase(line, on_out.find('\n', line) - line + 1);
  std::string off_out = off.out;
  const auto strip_written = [](std::string& s) {
    for (const char* prefix : {"effective schedule written to"}) {
      const std::size_t at = s.find(prefix);
      if (at != std::string::npos) s.erase(at, s.find('\n', at) - at + 1);
    }
  };
  strip_written(on_out);
  strip_written(off_out);
  EXPECT_EQ(on_out, off_out);
}

std::string slurp_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

TEST(Cli, SolvePortfolioDeterministicUnderTickBudget) {
  const std::string inst_path = temp_path("cli_pf.rtsp");
  const CliResult gen = run({"generate", "--kind", "paper-equal", "--servers",
                             "10", "--objects", "40", "--replicas", "2",
                             "--seed", "3", "--out", inst_path});
  ASSERT_EQ(gen.code, 0) << gen.err;

  const auto solve_once = [&](const std::string& sched_path) {
    return run({"solve", "--instance", inst_path, "--portfolio",
                "--budget-ticks", "100000", "--seed", "5", "--out", sched_path});
  };
  const std::string sched_a = temp_path("cli_pf_a.sched");
  const std::string sched_b = temp_path("cli_pf_b.sched");
  const CliResult a = solve_once(sched_a);
  const CliResult b = solve_once(sched_b);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_NE(a.out.find("winner:"), std::string::npos);
  EXPECT_NE(a.out.find("gap:"), std::string::npos);
  EXPECT_NE(a.out.find("budget:"), std::string::npos);
  EXPECT_NE(a.out.find("(deterministic)"), std::string::npos);
  EXPECT_NE(a.out.find("lns:"), std::string::npos);
  // Bit-identical schedule file across reruns; stdout differs only in the
  // output path echoed on the "written" line.
  EXPECT_EQ(slurp_file(sched_a), slurp_file(sched_b));

  const CliResult validate =
      run({"validate", "--instance", inst_path, "--schedule", sched_a});
  EXPECT_EQ(validate.code, 0) << validate.err;
}

TEST(Cli, SolveSinglePipelineUnderTickBudget) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r = run({"solve", "--instance", inst_path, "--algo",
                           "GOLCF+H1+H2+OP1", "--budget-ticks", "5000",
                           "--seed", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("budget:          ticks=5000"), std::string::npos);
  EXPECT_NE(r.out.find("ticks used:"), std::string::npos);
}

TEST(Cli, ExplainRendersPortfolioProvenance) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const std::string inst_path = temp_path("cli_pf_prov.rtsp");
  const std::string sched_path = temp_path("cli_pf_prov.sched");
  const std::string prov_path = temp_path("cli_pf_prov.prov.json");
  const CliResult gen = run({"generate", "--kind", "paper-equal", "--servers",
                             "10", "--objects", "40", "--replicas", "2",
                             "--seed", "4", "--out", inst_path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  const CliResult solve = run({"solve", "--instance", inst_path, "--portfolio",
                               "--budget-ticks", "200000", "--seed", "6",
                               "--out", sched_path, "--provenance-out",
                               prov_path});
  ASSERT_EQ(solve.code, 0) << solve.err;
  const CliResult explain = run({"explain", "--instance", inst_path,
                                 "--schedule", sched_path, "--provenance",
                                 prov_path});
  ASSERT_EQ(explain.code, 0) << explain.err;
  EXPECT_NE(explain.out.find("PORTFOLIO:"), std::string::npos);
  EXPECT_NE(explain.out.find("per-stage attribution"), std::string::npos);
}

TEST(Cli, SolvePortfolioRejectsUnknownAlgos) {
  const std::string inst_path = write_fig3_instance();
  const CliResult r = run({"solve", "--instance", inst_path, "--portfolio",
                           "--budget-ticks", "1000", "--algos",
                           "GOLCF+H1,NOPE"});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

}  // namespace
}  // namespace rtsp
