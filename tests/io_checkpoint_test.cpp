// Checkpoint ("RTSPCKP1") and WAL ("RTSPWAL1") persistence: round-trips,
// the append/rotate protocol, and the corruption negative suite — every
// damaged image must surface as a clean error (checkpoint) or a detected
// torn tail (WAL), never be silently accepted.
#include "io/checkpoint_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace rtsp {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

CheckpointDoc sample_doc() {
  CheckpointDoc doc;
  doc.generation = 3;
  doc.seed = 42;
  doc.last_seq = 9;
  doc.clock = 1234;
  doc.servers = 4;
  doc.objects = 6;
  doc.model_crc = 0xdeadbeefcafe;
  doc.placement = {{0, 1}, {0, 3}, {1, 0}, {2, 5}, {3, 2}};
  CheckpointQueueEntry e1;
  e1.seq = 8;
  e1.attempt = 2;
  e1.not_before = 1500;
  e1.target = {{0, 0}, {1, 1}, {3, 5}};
  CheckpointQueueEntry e2;
  e2.seq = 9;
  e2.target = {{2, 2}};
  doc.queue = {e1, e2};
  doc.counters.admitted = 9;
  doc.counters.converged = 7;
  doc.counters.partial_rounds = 3;
  doc.counters.readmissions = 3;
  doc.counters.coalesced = 1;
  doc.counters.checkpoints = 3;
  doc.counters.actions_applied = 40;
  doc.counters.cost_paid = 812;
  return doc;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointIo, RoundTripsFullDocument) {
  const std::string path = temp_path("ckp_roundtrip");
  const CheckpointDoc doc = sample_doc();
  write_checkpoint_file(path, doc, /*fsync=*/false);
  const CheckpointDoc back = read_checkpoint_file(path);

  EXPECT_EQ(back.generation, doc.generation);
  EXPECT_EQ(back.seed, doc.seed);
  EXPECT_EQ(back.last_seq, doc.last_seq);
  EXPECT_EQ(back.clock, doc.clock);
  EXPECT_EQ(back.servers, doc.servers);
  EXPECT_EQ(back.objects, doc.objects);
  EXPECT_EQ(back.model_crc, doc.model_crc);
  EXPECT_EQ(back.placement, doc.placement);
  ASSERT_EQ(back.queue.size(), doc.queue.size());
  EXPECT_EQ(back.queue[0].seq, 8u);
  EXPECT_EQ(back.queue[0].attempt, 2u);
  EXPECT_EQ(back.queue[0].not_before, 1500);
  EXPECT_EQ(back.queue[0].target, doc.queue[0].target);
  EXPECT_EQ(back.queue[1].target, doc.queue[1].target);
  EXPECT_TRUE(back.counters == doc.counters);
}

TEST(CheckpointIo, RewriteIsAtomicReplacement) {
  const std::string path = temp_path("ckp_rewrite");
  CheckpointDoc doc = sample_doc();
  write_checkpoint_file(path, doc, false);
  doc.generation = 4;
  doc.clock = 2000;
  write_checkpoint_file(path, doc, false);
  const CheckpointDoc back = read_checkpoint_file(path);
  EXPECT_EQ(back.generation, 4u);
  EXPECT_EQ(back.clock, 2000);
}

TEST(CheckpointIo, MissingFileThrows) {
  EXPECT_THROW(read_checkpoint_file(temp_path("ckp_missing")),
               std::runtime_error);
}

TEST(CheckpointIo, BadMagicThrows) {
  const std::string path = temp_path("ckp_magic");
  write_checkpoint_file(path, sample_doc(), false);
  std::vector<char> bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
}

TEST(CheckpointIo, FlippedPayloadByteFailsCrc) {
  const std::string path = temp_path("ckp_flip");
  write_checkpoint_file(path, sample_doc(), false);
  std::vector<char> bytes = slurp(path);
  // Flip one byte in the middle of the payload; the CRC must catch it.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  spit(path, bytes);
  EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
}

TEST(CheckpointIo, EveryTruncationFailsCleanly) {
  const std::string path = temp_path("ckp_trunc");
  write_checkpoint_file(path, sample_doc(), false);
  const std::vector<char> bytes = slurp(path);
  const std::string cut = temp_path("ckp_trunc_cut");
  for (std::size_t keep = 0; keep < bytes.size(); keep += 7) {
    spit(cut, std::vector<char>(bytes.begin(),
                                bytes.begin() + static_cast<long>(keep)));
    EXPECT_THROW(read_checkpoint_file(cut), std::runtime_error)
        << "truncation at " << keep << " bytes parsed successfully";
  }
}

// --- WAL ------------------------------------------------------------------

WalRecord admit_record(std::uint64_t seq) {
  WalRecord r;
  r.type = WalRecordType::kAdmit;
  r.seq = seq;
  r.clock = 10;
  r.target = {{0, 0}, {1, 2}};
  return r;
}

WalRecord begin_record(std::uint64_t seq, std::uint32_t attempt = 1) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.seq = seq;
  r.attempt = attempt;
  r.clock = 25;
  return r;
}

WalRecord commit_record(std::uint64_t seq) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.seq = seq;
  r.converged = false;
  r.readmit = true;
  r.readmit_not_before = 600;
  r.placement_crc = 0x1122334455667788ull;
  r.cost = 77;
  r.actions = 5;
  r.clock = 120;
  return r;
}

TEST(WalIo, RoundTripsAllRecordTypes) {
  const std::string path = temp_path("wal_roundtrip");
  {
    WalWriter w;
    w.create(path, /*generation=*/2, /*fsync=*/false);
    w.append(admit_record(1));
    w.append(begin_record(1));
    w.append(commit_record(1));
    EXPECT_EQ(w.records_appended(), 3u);
  }
  const WalReadResult r = read_wal_file(path);
  EXPECT_EQ(r.generation, 2u);
  EXPECT_FALSE(r.torn());
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].type, WalRecordType::kAdmit);
  EXPECT_EQ(r.records[0].target, admit_record(1).target);
  EXPECT_EQ(r.records[1].type, WalRecordType::kBegin);
  EXPECT_EQ(r.records[1].clock, 25);
  EXPECT_EQ(r.records[2].type, WalRecordType::kCommit);
  EXPECT_TRUE(r.records[2].readmit);
  EXPECT_EQ(r.records[2].readmit_not_before, 600);
  EXPECT_EQ(r.records[2].placement_crc, 0x1122334455667788ull);
  EXPECT_EQ(r.records[2].cost, 77);
  EXPECT_EQ(r.records[2].actions, 5u);
}

TEST(WalIo, OpenAppendContinuesAtValidPrefix) {
  const std::string path = temp_path("wal_append");
  {
    WalWriter w;
    w.create(path, 1, false);
    w.append(admit_record(1));
  }
  const WalReadResult first = read_wal_file(path);
  ASSERT_EQ(first.records.size(), 1u);
  {
    WalWriter w;
    w.open_append(path, first.valid_bytes, false);
    w.append(begin_record(1));
  }
  const WalReadResult second = read_wal_file(path);
  ASSERT_EQ(second.records.size(), 2u);
  EXPECT_EQ(second.records[1].type, WalRecordType::kBegin);
}

TEST(WalIo, GarbageTailDetectedAndTruncatable) {
  const std::string path = temp_path("wal_torn");
  {
    WalWriter w;
    w.create(path, 1, false);
    w.append(admit_record(1));
    w.append(begin_record(1));
  }
  const std::uint64_t clean_bytes = read_wal_file(path).valid_bytes;
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("torn!", 5);
  }
  const WalReadResult torn = read_wal_file(path);
  EXPECT_TRUE(torn.torn());
  EXPECT_EQ(torn.valid_bytes, clean_bytes);
  EXPECT_EQ(torn.rolled_back_bytes, 5u);
  ASSERT_EQ(torn.records.size(), 2u);  // the valid prefix still parses

  truncate_file(path, torn.valid_bytes);
  const WalReadResult clean = read_wal_file(path);
  EXPECT_FALSE(clean.torn());
  EXPECT_EQ(clean.records.size(), 2u);
}

TEST(WalIo, TruncatedRecordIsTornNotFatal) {
  const std::string path = temp_path("wal_cutrec");
  {
    WalWriter w;
    w.create(path, 1, false);
    w.append(admit_record(1));
    w.append(commit_record(1));
  }
  const std::vector<char> bytes = slurp(path);
  const WalReadResult full = read_wal_file(path);
  ASSERT_EQ(full.records.size(), 2u);
  // Cut into the middle of the second record: a classic torn write.
  const std::size_t cut = static_cast<std::size_t>(full.valid_bytes) - 3;
  spit(path, std::vector<char>(bytes.begin(),
                               bytes.begin() + static_cast<long>(cut)));
  const WalReadResult torn = read_wal_file(path);
  EXPECT_TRUE(torn.torn());
  EXPECT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.records[0].type, WalRecordType::kAdmit);
}

TEST(WalIo, CorruptRecordByteIsTornAtThatRecord) {
  const std::string path = temp_path("wal_fliprec");
  {
    WalWriter w;
    w.create(path, 1, false);
    w.append(admit_record(1));
    w.append(admit_record(2));
  }
  std::vector<char> bytes = slurp(path);
  // Flip a byte in the last record's payload; its CRC must reject it and
  // the reader reports everything before it as the valid prefix.
  bytes[bytes.size() - 2] = static_cast<char>(bytes[bytes.size() - 2] ^ 0x10);
  spit(path, bytes);
  const WalReadResult r = read_wal_file(path);
  EXPECT_TRUE(r.torn());
  EXPECT_EQ(r.records.size(), 1u);
}

TEST(WalIo, BadHeaderThrows) {
  const std::string path = temp_path("wal_header");
  {
    WalWriter w;
    w.create(path, 1, false);
  }
  std::vector<char> bytes = slurp(path);
  bytes[1] = 'Z';
  spit(path, bytes);
  EXPECT_THROW(read_wal_file(path), std::runtime_error);

  spit(path, std::vector<char>(bytes.begin(), bytes.begin() + 4));
  EXPECT_THROW(read_wal_file(path), std::runtime_error);
}

TEST(WalIo, MissingFileThrows) {
  EXPECT_THROW(read_wal_file(temp_path("wal_missing")), std::runtime_error);
}

TEST(Crc32Ieee, MatchesKnownVectorAndChains) {
  // The classic zlib test vector. (string_view keeps overload resolution
  // away from the (pointer, length) form.)
  EXPECT_EQ(crc32_ieee(std::string_view("123456789")), 0xCBF43926u);
  const std::uint32_t whole = crc32_ieee(std::string_view("hello world"));
  const std::uint32_t part = crc32_ieee(std::string_view("hello "));
  EXPECT_EQ(crc32_ieee(std::string_view("world"), part), whole);
}

}  // namespace
}  // namespace rtsp
