#include "workload/balanced_placement.hpp"

#include <gtest/gtest.h>

namespace rtsp {
namespace {

class BalancedSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BalancedSeeds, ExactReplicaCountsAndBalancedLoad) {
  Rng rng(GetParam());
  BalancedPlacementSpec spec;
  spec.servers = 10;
  spec.objects = 40;
  spec.replicas_per_object = 3;  // 120 replicas -> 12 per server exactly
  const ReplicationMatrix x = balanced_random_placement(spec, rng);
  for (ObjectId k = 0; k < spec.objects; ++k) {
    EXPECT_EQ(x.replica_count(k), 3u) << "object " << k;
  }
  for (ServerId i = 0; i < spec.servers; ++i) {
    EXPECT_EQ(x.count_on(i), 12u) << "server " << i;
  }
}

TEST_P(BalancedSeeds, RemainderSpreadsWithinOne) {
  Rng rng(GetParam());
  BalancedPlacementSpec spec;
  spec.servers = 7;
  spec.objects = 25;
  spec.replicas_per_object = 2;  // 50 replicas -> 7 or 8 per server
  const ReplicationMatrix x = balanced_random_placement(spec, rng);
  for (ServerId i = 0; i < spec.servers; ++i) {
    EXPECT_GE(x.count_on(i), 7u);
    EXPECT_LE(x.count_on(i), 8u);
  }
  EXPECT_EQ(x.total_replicas(), 50u);
}

TEST_P(BalancedSeeds, ForbiddenMaskGivesZeroOverlap) {
  Rng rng(GetParam());
  BalancedPlacementSpec spec;
  spec.servers = 10;
  spec.objects = 50;
  spec.replicas_per_object = 4;
  const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
  BalancedPlacementSpec spec2 = spec;
  spec2.forbidden = &x_old;
  const ReplicationMatrix x_new = balanced_random_placement(spec2, rng);
  EXPECT_EQ(x_old.overlap(x_new), 0u);
  for (ObjectId k = 0; k < spec.objects; ++k) {
    EXPECT_EQ(x_new.replica_count(k), 4u);
  }
  for (ServerId i = 0; i < spec.servers; ++i) {
    EXPECT_EQ(x_new.count_on(i), 20u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancedSeeds,
                         testing::Values(1, 7, 13, 42, 777, 31337));

TEST(BalancedPlacement, DeterministicPerSeed) {
  BalancedPlacementSpec spec;
  spec.servers = 6;
  spec.objects = 18;
  spec.replicas_per_object = 2;
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(balanced_random_placement(spec, a), balanced_random_placement(spec, b));
}

TEST(BalancedPlacement, DifferentSeedsDiffer) {
  BalancedPlacementSpec spec;
  spec.servers = 10;
  spec.objects = 50;
  spec.replicas_per_object = 2;
  Rng a(1);
  Rng b(2);
  EXPECT_FALSE(balanced_random_placement(spec, a) ==
               balanced_random_placement(spec, b));
}

TEST(BalancedPlacement, FullReplicationEverywhere) {
  BalancedPlacementSpec spec;
  spec.servers = 5;
  spec.objects = 8;
  spec.replicas_per_object = 5;
  Rng rng(3);
  const ReplicationMatrix x = balanced_random_placement(spec, rng);
  EXPECT_EQ(x.total_replicas(), 40u);
}

TEST(BalancedPlacement, InvalidSpecsThrow) {
  Rng rng(3);
  BalancedPlacementSpec spec;
  spec.servers = 4;
  spec.objects = 4;
  spec.replicas_per_object = 5;  // > servers
  EXPECT_THROW(balanced_random_placement(spec, rng), PreconditionError);
  spec.replicas_per_object = 0;
  EXPECT_THROW(balanced_random_placement(spec, rng), PreconditionError);
  spec.replicas_per_object = 1;
  spec.servers = 0;
  EXPECT_THROW(balanced_random_placement(spec, rng), PreconditionError);
}

TEST(BalancedPlacement, InfeasibleWithForbiddenThrows) {
  // With full replication forbidden everywhere, nothing can be placed.
  Rng rng(3);
  BalancedPlacementSpec spec;
  spec.servers = 3;
  spec.objects = 5;
  spec.replicas_per_object = 3;
  const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
  BalancedPlacementSpec spec2 = spec;
  spec2.forbidden = &x_old;  // every slot is taken
  EXPECT_THROW(balanced_random_placement(spec2, rng), PreconditionError);
}

class OverlapSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlapSeeds, PinnedReplicasForceTheRequestedOverlap) {
  Rng rng(GetParam());
  BalancedPlacementSpec spec;
  spec.servers = 10;
  spec.objects = 40;
  spec.replicas_per_object = 4;  // 160 replicas, 16 per server
  const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
  for (const double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const ReplicationMatrix x_new =
        overlapping_balanced_placement(x_old, 4, f, rng);
    const std::size_t keep =
        static_cast<std::size_t>(f * 4 + 0.5) * spec.objects;
    EXPECT_EQ(x_old.overlap(x_new), keep) << "f=" << f;
    for (ObjectId k = 0; k < spec.objects; ++k) {
      EXPECT_EQ(x_new.replica_count(k), 4u);
    }
    for (ServerId i = 0; i < spec.servers; ++i) {
      EXPECT_EQ(x_new.count_on(i), 16u) << "f=" << f << " server " << i;
    }
  }
}

TEST_P(OverlapSeeds, FullOverlapReproducesXOld) {
  Rng rng(GetParam());
  BalancedPlacementSpec spec;
  spec.servers = 8;
  spec.objects = 16;
  spec.replicas_per_object = 2;
  const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
  EXPECT_EQ(overlapping_balanced_placement(x_old, 2, 1.0, rng), x_old);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapSeeds, testing::Values(3, 9, 27));

TEST(OverlapPlacement, RejectsBadInputs) {
  Rng rng(1);
  BalancedPlacementSpec spec;
  spec.servers = 6;
  spec.objects = 12;
  spec.replicas_per_object = 2;
  const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
  EXPECT_THROW(overlapping_balanced_placement(x_old, 2, -0.1, rng),
               PreconditionError);
  EXPECT_THROW(overlapping_balanced_placement(x_old, 2, 1.5, rng),
               PreconditionError);
  // Wrong per-object count: x_old built with r=2 but asked for r=3.
  EXPECT_THROW(overlapping_balanced_placement(x_old, 3, 0.5, rng),
               PreconditionError);
}

TEST(BalancedPlacement, PaperScaleSmokeTest) {
  // The actual experiment shape: 50 servers, 1000 objects, r = 5, with a
  // zero-overlap second placement.
  Rng rng(99);
  BalancedPlacementSpec spec;
  spec.servers = 50;
  spec.objects = 1000;
  spec.replicas_per_object = 5;
  const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
  BalancedPlacementSpec spec2 = spec;
  spec2.forbidden = &x_old;
  const ReplicationMatrix x_new = balanced_random_placement(spec2, rng);
  EXPECT_EQ(x_old.overlap(x_new), 0u);
  for (ServerId i = 0; i < 50; ++i) {
    EXPECT_EQ(x_old.count_on(i), 100u);
    EXPECT_EQ(x_new.count_on(i), 100u);
  }
}

}  // namespace
}  // namespace rtsp
