// Flight-recorder tests: the journal ring buffer, the executor's typed event
// stream (schema invariants + determinism with recording on vs off), the
// metrics sampler, and the journal/series/timeline serialization round-trips.
#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_model.hpp"
#include "exec/executor.hpp"
#include "heuristics/registry.hpp"
#include "io/journal_io.hpp"
#include "io/timeline_export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/sampler.hpp"
#include "obs/series_io.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using exec::ExecutionReport;
using exec::ExecutorOptions;
using exec::FaultSpec;
using obs::Journal;
using obs::JournalEvent;
using obs::JournalEventType;

JournalEvent make_event(JournalEventType type, std::int64_t tick) {
  JournalEvent e;
  e.type = type;
  e.tick = tick;
  e.wall_ns = 1000 + static_cast<std::uint64_t>(tick);
  e.server = 2;
  e.object = 5;
  return e;
}

TEST(Journal, RecordsUpToCapacityThenDropsNewest) {
  Journal j(4);
  for (std::int64_t t = 0; t < 7; ++t) {
    j.record(make_event(JournalEventType::AttemptSuccess, t));
  }
  EXPECT_EQ(j.capacity(), 4u);
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.dropped(), 3u);
  const std::vector<JournalEvent> events = j.events();
  ASSERT_EQ(events.size(), 4u);
  // Drop-newest: the retained prefix is the first `capacity` events in
  // emission order, so its invariants (monotone ticks, matched pairs up to
  // truncation) survive overflow.
  for (std::int64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(events[static_cast<std::size_t>(t)].tick, t);
  }
  j.clear();
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.dropped(), 0u);
}

TEST(Journal, EventTypeStringsRoundTrip) {
  for (std::size_t i = 0; i < obs::kJournalEventTypes; ++i) {
    const auto type = static_cast<JournalEventType>(i);
    JournalEventType back = JournalEventType::AttemptStart;
    ASSERT_TRUE(obs::journal_event_type_from_string(obs::to_string(type), back))
        << obs::to_string(type);
    EXPECT_EQ(back, type);
  }
  JournalEventType back = JournalEventType::AttemptStart;
  EXPECT_FALSE(obs::journal_event_type_from_string("bogus", back));
}

// ---------------------------------------------------------------------------
// Executor event stream

Instance medium_instance(std::uint64_t seed) {
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 30;
  Rng rng(seed);
  return random_instance(spec, rng);
}

Schedule plan_for(const Instance& inst, std::uint64_t seed = 1) {
  Rng rng(seed);
  return make_pipeline("GOLCF+H1+H2+OP1")
      .run(inst.model, inst.x_old, inst.x_new, rng);
}

FaultSpec stormy_spec() {
  FaultSpec faults;
  faults.seed = 42;
  faults.transient_failure_rate = 0.2;
  faults.offline.push_back({1, 0, 60});
  faults.losses.push_back({2, 3, 30});
  faults.losses.push_back({4, 7, 90});
  return faults;
}

/// The schema invariants obs_lint enforces, asserted in-process.
void expect_well_formed(const std::vector<JournalEvent>& events) {
  std::int64_t last_tick = 0;
  std::map<std::int64_t, std::int64_t> open_offline;
  for (const JournalEvent& e : events) {
    EXPECT_GE(e.tick, last_tick) << obs::to_string(e.type);
    last_tick = e.tick;
    EXPECT_GE(e.value, 0);
    EXPECT_GE(e.server, -1);
    EXPECT_GE(e.object, -1);
    EXPECT_GE(e.source, -2);
    switch (e.type) {
      case JournalEventType::OfflineOpen:
        EXPECT_EQ(open_offline.count(e.server), 0u);
        open_offline[e.server] = e.value;
        break;
      case JournalEventType::OfflineClose: {
        auto it = open_offline.find(e.server);
        ASSERT_NE(it, open_offline.end());
        EXPECT_EQ(it->second, e.value);
        open_offline.erase(it);
        break;
      }
      case JournalEventType::AttemptStart:
      case JournalEventType::AttemptSuccess:
      case JournalEventType::TransientFault:
        EXPECT_GE(e.server, 0);
        EXPECT_GE(e.object, 0);
        EXPECT_GE(e.extra, 1);
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(open_offline.empty());
}

TEST(ExecutorJournal, FaultedRunEmitsWellFormedStream) {
  const Instance inst = medium_instance(3);
  const Schedule plan = plan_for(inst, 3);
  Journal journal;
  ExecutorOptions options;
  options.journal = &journal;
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, stormy_spec(), options);
  ASSERT_TRUE(r.reached_goal);
  const std::vector<JournalEvent> events = journal.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(journal.dropped(), 0u);
  expect_well_formed(events);

  // The stream reconciles with the report's aggregate counters.
  std::map<JournalEventType, std::size_t> counts;
  for (const JournalEvent& e : events) counts[e.type]++;
  EXPECT_EQ(counts[JournalEventType::AttemptStart], r.attempts.size());
  EXPECT_EQ(counts[JournalEventType::AttemptSuccess] +
                counts[JournalEventType::TransientFault],
            r.attempts.size());
  EXPECT_EQ(counts[JournalEventType::TransientFault], r.transient_failures);
  EXPECT_EQ(counts[JournalEventType::Retry], r.retries);
  EXPECT_EQ(counts[JournalEventType::ReplicaLoss], r.loss_deletions);
  EXPECT_EQ(counts[JournalEventType::ReplanTrigger], r.replans.size());

  // Paying attempts sum to the actual cost.
  std::int64_t paid = 0;
  for (const JournalEvent& e : events) {
    if (e.type == JournalEventType::AttemptSuccess ||
        e.type == JournalEventType::TransientFault) {
      paid += e.value;
    }
  }
  EXPECT_EQ(paid, static_cast<std::int64_t>(r.actual_cost));
}

TEST(ExecutorJournal, RecordingOnOrOffIsBitIdentical) {
  const Instance inst = medium_instance(5);
  const Schedule plan = plan_for(inst, 5);
  const FaultSpec faults = stormy_spec();

  ExecutorOptions bare;
  const ExecutionReport off = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, bare);

  Journal journal;
  obs::MetricsSampler sampler;
  sampler.start(std::chrono::milliseconds(1));
  ExecutorOptions wired;
  wired.journal = &journal;
  wired.sampler = &sampler;
  const ExecutionReport on = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, wired);
  sampler.stop();

  EXPECT_EQ(on.effective.actions(), off.effective.actions());
  EXPECT_EQ(on.actual_cost, off.actual_cost);
  EXPECT_EQ(on.finished_at, off.finished_at);
  EXPECT_EQ(on.retries, off.retries);
  EXPECT_EQ(on.replans.size(), off.replans.size());
  ASSERT_EQ(on.attempts.size(), off.attempts.size());
  for (std::size_t i = 0; i < on.attempts.size(); ++i) {
    EXPECT_EQ(on.attempts[i].action, off.attempts[i].action) << i;
    EXPECT_EQ(on.attempts[i].at, off.attempts[i].at) << i;
    EXPECT_EQ(on.attempts[i].outcome, off.attempts[i].outcome) << i;
    EXPECT_EQ(on.attempts[i].cost_paid, off.attempts[i].cost_paid) << i;
  }
  EXPECT_GT(journal.size(), 0u);
}

TEST(ExecutorJournal, SolversBitIdenticalWithTracingAndSamplingOn) {
  // RDFP/GSDFP (sharded-parallel builders) with the full recorder armed must
  // produce the same schedule as a bare run: instrumentation never steers.
  const Instance inst = medium_instance(7);
  for (const char* algo : {"RDFP+H1", "GSDFP+H2"}) {
    Rng rng_off(9);
    const Schedule off =
        make_pipeline(algo).run(inst.model, inst.x_old, inst.x_new, rng_off);

    obs::set_enabled(true);
    obs::clear_trace();
    obs::MetricsSampler sampler;
    sampler.start(std::chrono::milliseconds(1));
    Rng rng_on(9);
    const Schedule on =
        make_pipeline(algo).run(inst.model, inst.x_old, inst.x_new, rng_on);
    sampler.stop();
    obs::set_enabled(false);

    EXPECT_EQ(on.actions(), off.actions()) << algo;
    EXPECT_GE(sampler.samples().size(), 2u);  // start + stop
  }
}

// ---------------------------------------------------------------------------
// Serialization round-trips

TEST(JournalIo, RoundTripsEventsAndRunSummary) {
  const Instance inst = medium_instance(3);
  const Schedule plan = plan_for(inst, 3);
  Journal journal;
  ExecutorOptions options;
  options.journal = &journal;
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, stormy_spec(), options);

  JournalRunSummary run;
  run.planned_cost = static_cast<std::int64_t>(r.planned_cost);
  run.effective_cost = static_cast<std::int64_t>(r.effective_cost);
  run.actual_cost = static_cast<std::int64_t>(r.actual_cost);
  run.finished_at = r.finished_at;
  run.total_stall = r.total_stall;
  run.total_backoff = r.total_backoff;
  run.attempts = r.attempts.size();
  run.retries = r.retries;
  run.transient_failures = r.transient_failures;
  run.degraded_transfers = r.degraded_transfers;
  run.loss_deletions = r.loss_deletions;
  run.replans = r.replans.size();
  run.reached_goal = r.reached_goal;

  std::stringstream buffer;
  write_journal(buffer, journal.events(), journal.dropped(), run);
  const JournalDoc doc = read_journal(buffer);
  EXPECT_EQ(doc.version, kJournalFormatVersion);
  EXPECT_EQ(doc.dropped, journal.dropped());
  EXPECT_EQ(doc.run, run);
  ASSERT_EQ(doc.events.size(), journal.size());
  const std::vector<JournalEvent> original = journal.events();
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(doc.events[i], original[i]) << "event " << i;
  }
}

TEST(JournalIo, RejectsMalformedInput) {
  std::stringstream missing_header("{\"type\":\"retry\",\"tick\":1}\n");
  EXPECT_THROW(read_journal(missing_header), std::runtime_error);
  std::stringstream bad_version(
      "{\"format\":\"rtsp-journal\",\"version\":99,\"events\":0,"
      "\"dropped\":0,\"run\":{}}\n");
  EXPECT_THROW(read_journal(bad_version), std::runtime_error);
  std::stringstream bad_type(
      "{\"format\":\"rtsp-journal\",\"version\":1,\"events\":1,"
      "\"dropped\":0,\"run\":{}}\n{\"type\":\"warp\",\"tick\":0}\n");
  EXPECT_THROW(read_journal(bad_type), std::runtime_error);
}

TEST(SeriesIo, JsonlRoundTripsSamples) {
  std::vector<obs::SeriesSample> samples;
  obs::SeriesSample a;
  a.wall_ns = 100;
  a.tick = -1;
  a.label = "wall";
  a.counter_deltas.emplace_back("exec.attempts", 3);
  a.gauges.emplace_back("process.peak_rss_kb", 4096);
  samples.push_back(a);
  obs::SeriesSample b;
  b.wall_ns = 250;
  b.tick = 77;
  b.label = "retry";
  samples.push_back(b);

  std::stringstream buffer;
  obs::write_series_jsonl(buffer, samples, 1);
  std::stringstream in(buffer.str());
  const obs::SeriesDoc doc = [&] {
    // read_series_file wants a path; exercise the stream reader through a
    // temp file instead.
    const std::string path =
        ::testing::TempDir() + "/obs_journal_test_series.jsonl";
    std::ofstream file(path);
    file << buffer.str();
    file.close();
    return obs::read_series_file(path);
  }();
  EXPECT_EQ(doc.version, obs::kSeriesFormatVersion);
  EXPECT_EQ(doc.dropped, 1u);
  ASSERT_EQ(doc.samples.size(), 2u);
  EXPECT_EQ(doc.samples[0].wall_ns, 100u);
  EXPECT_EQ(doc.samples[0].label, "wall");
  ASSERT_EQ(doc.samples[0].counter_deltas.size(), 1u);
  EXPECT_EQ(doc.samples[0].counter_deltas[0].first, "exec.attempts");
  EXPECT_EQ(doc.samples[0].counter_deltas[0].second, 3u);
  ASSERT_EQ(doc.samples[0].gauges.size(), 1u);
  EXPECT_EQ(doc.samples[0].gauges[0].second, 4096);
  EXPECT_EQ(doc.samples[1].tick, 77);
  EXPECT_EQ(doc.samples[1].label, "retry");
}

TEST(Timeline, ExportIsParseableChromeTrace) {
  const Instance inst = medium_instance(3);
  const Schedule plan = plan_for(inst, 3);
  Journal journal;
  ExecutorOptions options;
  options.journal = &journal;
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, stormy_spec(), options);
  JournalDoc doc;
  doc.dropped = journal.dropped();
  doc.events = journal.events();
  doc.run.finished_at = r.finished_at;

  std::ostringstream out;
  write_timeline(out, doc);
  const JsonValue parsed = parse_json(out.str());
  const JsonValue& events = parsed.at("traceEvents");
  ASSERT_GT(events.items().size(), doc.events.size() / 2);
  bool saw_span = false, saw_instant = false, saw_meta = false;
  for (const JsonValue& e : events.items()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("pid").as_int(), 2);  // virtual clock process
      EXPECT_GE(e.at("dur").as_int(), 0);
    } else if (ph == "i") {
      saw_instant = true;
    } else if (ph == "M") {
      saw_meta = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);  // stormy spec forces retries/losses
  EXPECT_TRUE(saw_meta);
}

// ---------------------------------------------------------------------------
// Sampler

TEST(Sampler, TickSamplesCaptureCounterDeltas) {
  obs::set_enabled(true);
  obs::MetricsSampler sampler;
  sampler.start(std::chrono::hours(1));  // wall sampling effectively off
  OBS_COUNT("sampler_test.ticks");
  OBS_COUNT("sampler_test.ticks");
  sampler.sample_tick(10, "checkpoint");
  OBS_COUNT("sampler_test.ticks");
  sampler.sample_tick(20, "checkpoint");
  sampler.stop();
  obs::set_enabled(false);

  const std::vector<obs::SeriesSample>& samples = sampler.samples();
  ASSERT_GE(samples.size(), 4u);  // start + 2 ticks + stop
  const auto delta_of = [](const obs::SeriesSample& s) -> std::uint64_t {
    for (const auto& [name, delta] : s.counter_deltas) {
      if (name == "sampler_test.ticks") return delta;
    }
    return 0;
  };
#if RTSP_OBS_ENABLED
  bool saw_two = false, saw_one = false;
  for (const obs::SeriesSample& s : samples) {
    if (s.tick == 10 && delta_of(s) == 2) saw_two = true;
    if (s.tick == 20 && delta_of(s) == 1) saw_one = true;
  }
  EXPECT_TRUE(saw_two);  // first checkpoint sees both increments as a delta
  EXPECT_TRUE(saw_one);  // second sees only the one since
#endif
  EXPECT_EQ(samples.front().label, "start");
  EXPECT_EQ(samples.back().label, "stop");
}

TEST(Sampler, BoundedAndCountsDrops) {
  obs::MetricsSampler sampler(3);
  sampler.start(std::chrono::hours(1));
  for (int i = 0; i < 10; ++i) sampler.sample_tick(i, "tick");
  sampler.stop();
  EXPECT_EQ(sampler.samples().size(), 3u);
  EXPECT_GT(sampler.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Percentiles (satellite: p95 joined the exporter columns)

TEST(Percentiles, OrderedAcrossTheSummaryRow) {
  obs::set_enabled(true);
  const obs::LatencyHistogram h =
      obs::MetricsRegistry::instance().histogram("journal_test.lat_ns");
  for (int i = 1; i <= 1000; ++i) {
    h.record_ns(static_cast<std::uint64_t>(i) * 1000);
  }
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  obs::set_enabled(false);
  for (const auto& v : snap.histograms) {
    if (v.name != "journal_test.lat_ns") continue;
    EXPECT_LE(v.p50_us, v.p90_us);
    EXPECT_LE(v.p90_us, v.p95_us);
    EXPECT_LE(v.p95_us, v.p99_us);
    // Percentiles are nearest-rank upper bucket edges (power-of-two
    // buckets), so p99 may overshoot the exact max by at most one doubling.
    EXPECT_LE(v.p99_us, 2.0 * v.max_us);
    EXPECT_GT(v.p95_us, 0.0);
    return;
  }
#if RTSP_OBS_ENABLED
  FAIL() << "histogram journal_test.lat_ns not in snapshot";
#endif
}

}  // namespace
}  // namespace rtsp
