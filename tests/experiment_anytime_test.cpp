// Small-scale run of the anytime quality-vs-budget sweep. The sweep itself
// throws if the portfolio cost ever exceeds a constituent single pipeline at
// the same tick budget, so completing at all is the dominance check; on top
// of that we verify the cell grid shape, gap sanity and the CSV format.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "experiment/anytime_sweep.hpp"

namespace rtsp {
namespace {

AnytimeSweepConfig small_config() {
  AnytimeSweepConfig cfg;
  cfg.setup.servers = 12;
  cfg.setup.objects = 80;
  cfg.budgets = {2'000, 20'000};
  cfg.algorithms = {"GOLCF+H1+H2+OP1", "AR+H1+H2", "GOLCF+SA"};
  cfg.trials = 2;
  cfg.extra_capacity = 4;
  return cfg;
}

TEST(AnytimeSweep, GridShapeAndDominance) {
  const AnytimeSweepConfig cfg = small_config();
  // run_anytime_sweep throws std::logic_error if any portfolio cell is
  // beaten by a single pipeline at the same budget.
  const std::vector<AnytimeCell> cells = run_anytime_sweep(cfg);

  // 3 setups x 2 budgets x (portfolio + 3 singles).
  EXPECT_EQ(cells.size(), 3 * cfg.budgets.size() * (cfg.algorithms.size() + 1));
  std::set<std::string> setups;
  for (const AnytimeCell& cell : cells) {
    setups.insert(cell.setup);
    EXPECT_EQ(cell.cost.count(), cfg.trials);
    EXPECT_EQ(cell.gap.count(), cfg.trials);
    EXPECT_GE(cell.cost.mean(), 0.0);
    EXPECT_GE(cell.gap.mean(), 0.0);
  }
  EXPECT_EQ(setups, (std::set<std::string>{"equal_size", "uniform_size",
                                           "extra_capacity"}));

  // The portfolio mean can never exceed a single's mean at the same cell
  // (per-trial dominance is enforced inside the sweep; means inherit it).
  for (const AnytimeCell& cell : cells) {
    if (cell.algo != "PORTFOLIO") continue;
    for (const AnytimeCell& other : cells) {
      if (other.setup == cell.setup && other.budget == cell.budget &&
          other.algo != "PORTFOLIO") {
        EXPECT_LE(cell.cost.mean(), other.cost.mean())
            << cell.setup << " @" << cell.budget << " vs " << other.algo;
      }
    }
  }
}

TEST(AnytimeSweep, DeterministicInBaseSeed) {
  const AnytimeSweepConfig cfg = small_config();
  const std::vector<AnytimeCell> a = run_anytime_sweep(cfg);
  const std::vector<AnytimeCell> b = run_anytime_sweep(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].setup, b[i].setup);
    EXPECT_EQ(a[i].budget, b[i].budget);
    EXPECT_EQ(a[i].algo, b[i].algo);
    EXPECT_EQ(a[i].cost.mean(), b[i].cost.mean());
    EXPECT_EQ(a[i].gap.mean(), b[i].gap.mean());
  }
}

TEST(AnytimeSweep, CsvFormat) {
  AnytimeSweepConfig cfg = small_config();
  cfg.budgets = {2'000};
  cfg.trials = 1;
  const std::vector<AnytimeCell> cells = run_anytime_sweep(cfg);
  std::ostringstream out;
  write_anytime_sweep_csv(out, cells);
  std::istringstream in(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "setup,budget_ticks,algo,trials,cost_mean,cost_stderr,gap_mean");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, cells.size());
}

}  // namespace
}  // namespace rtsp
