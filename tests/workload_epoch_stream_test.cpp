// make_epoch_stream: every generated epoch is storage-feasible by
// construction, differs from its predecessor, and the stream is a pure
// function of the seed.
#include "workload/epoch_stream.hpp"

#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "test_helpers.hpp"
#include "workload/scenario.hpp"

namespace rtsp {
namespace {

Instance make_instance(std::uint64_t seed) {
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 20;
  Rng rng(seed);
  return random_instance(spec, rng);
}

TEST(EpochStream, EveryEpochFeasibleAndDistinctFromPredecessor) {
  const Instance inst = make_instance(3);
  EpochStreamSpec spec;
  spec.count = 5;
  spec.moves = 6;
  Rng rng(99);
  const auto epochs = make_epoch_stream(inst.model, inst.x_old, spec, rng);
  ASSERT_EQ(epochs.size(), 5u);
  const ReplicationMatrix* prev = &inst.x_old;
  for (const auto& e : epochs) {
    EXPECT_TRUE(storage_feasible(inst.model, e));
    EXPECT_FALSE(e == *prev);
    prev = &e;
  }
}

TEST(EpochStream, DeterministicPerSeed) {
  const Instance inst = make_instance(3);
  EpochStreamSpec spec;
  spec.count = 3;
  spec.moves = 8;
  Rng a(7);
  Rng b(7);
  Rng c(8);
  const auto ea = make_epoch_stream(inst.model, inst.x_old, spec, a);
  const auto eb = make_epoch_stream(inst.model, inst.x_old, spec, b);
  const auto ec = make_epoch_stream(inst.model, inst.x_old, spec, c);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_TRUE(ea[i] == eb[i]);
  bool any_diff = false;
  for (std::size_t i = 0; i < ec.size(); ++i) {
    if (!(ea[i] == ec[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // a different seed explores a different drift
}

TEST(EpochStream, ChurnZeroOnlyRelocates) {
  const Instance inst = make_instance(5);
  EpochStreamSpec spec;
  spec.count = 4;
  spec.moves = 5;
  spec.churn = 0.0;  // relocation only: replica counts stay fixed
  Rng rng(13);
  const auto epochs = make_epoch_stream(inst.model, inst.x_old, spec, rng);
  const std::size_t objects = inst.model.objects().count();
  for (const auto& e : epochs) {
    for (ObjectId k = 0; k < objects; ++k) {
      EXPECT_EQ(e.replica_count(k), inst.x_old.replica_count(k))
          << "object " << k << " changed replica count under churn=0";
    }
  }
}

TEST(EpochStream, NeverDropsLastReplica) {
  const Instance inst = make_instance(9);
  EpochStreamSpec spec;
  spec.count = 6;
  spec.moves = 10;
  spec.churn = 1.0;  // maximum add/drop pressure
  Rng rng(17);
  const auto epochs = make_epoch_stream(inst.model, inst.x_old, spec, rng);
  const std::size_t objects = inst.model.objects().count();
  for (const auto& e : epochs) {
    for (ObjectId k = 0; k < objects; ++k) {
      EXPECT_GE(e.replica_count(k), 1u) << "object " << k << " vanished";
    }
  }
}

}  // namespace
}  // namespace rtsp
