// Regression tests for the paper's Fig. 1: the infeasible-without-dummy
// rotation instance.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/transfer_graph.hpp"
#include "core/validator.hpp"
#include "exact/branch_and_bound.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig1_instance;

TEST(Fig1, TransferGraphShowsTheCircularDeadlock) {
  const Instance inst = fig1_instance();
  const TransferGraph g(inst.model, inst.x_old, inst.x_new);
  // One arc per outstanding replica (each object has exactly one source).
  EXPECT_EQ(g.arcs().size(), 4u);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_TRUE(g.deadlock_risk(inst.x_old));
}

TEST(Fig1, EveryScheduleMustStartWithADeletion) {
  // No server has free space, so the only valid first actions are
  // deletions — which is why a dummy transfer is unavoidable.
  const Instance inst = fig1_instance();
  ExecutionState state(inst.model, inst.x_old);
  for (ServerId i = 0; i < 4; ++i) {
    for (ObjectId k = 0; k < 4; ++k) {
      for (ServerId j = 0; j < 4; ++j) {
        if (i == j) continue;
        const Action t = Action::transfer(i, k, j);
        EXPECT_NE(state.classify(t), ActionError::None) << t.to_string();
      }
      EXPECT_NE(state.classify(Action::transfer(i, k, kDummyServer)),
                ActionError::None);
    }
  }
}

TEST(Fig1, ExactSolverFindsTheOptimum) {
  const Instance inst = fig1_instance();
  const BnbResult result = solve_exact(inst);
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                  result.schedule));
  // At least one dummy transfer is forced (see the test above); the optimum
  // pays the dummy link (cost 2) at least twice or finds a 1-dummy cascade.
  EXPECT_GE(result.schedule.dummy_transfer_count(), 1u);
  EXPECT_GE(result.cost, 2 + 3);  // >= one dummy fetch + three unit moves
  EXPECT_LE(result.cost, 8);      // never worse than all-dummy
}

TEST(Fig1, HeuristicsStayWithinWorstCase) {
  const Instance inst = fig1_instance();
  const BnbResult optimal = solve_exact(inst);
  for (const std::string spec :
       {"AR", "GOLCF", "GOLCF+H1+H2", "GOLCF+H1+H2+OP1"}) {
    Rng rng(1);
    const Schedule h =
        make_pipeline(spec).run(inst.model, inst.x_old, inst.x_new, rng);
    EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h)) << spec;
    EXPECT_GE(schedule_cost(inst.model, h), optimal.cost) << spec;
    EXPECT_LE(schedule_cost(inst.model, h),
              worst_case_cost(inst.model, inst.x_old, inst.x_new))
        << spec;
  }
}

}  // namespace
}  // namespace rtsp
