#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace rtsp {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliOptions(static_cast<int>(argv.size()), argv.data());
}

TEST(CliOptions, EqualsSyntax) {
  const auto cli = parse({"--trials=12", "--name=abc"});
  EXPECT_EQ(cli.get_int("trials", "", 5), 12);
  EXPECT_EQ(cli.get_string("name", "", "?"), "abc");
}

TEST(CliOptions, SpaceSyntax) {
  const auto cli = parse({"--trials", "7"});
  EXPECT_EQ(cli.get_int("trials", "", 5), 7);
}

TEST(CliOptions, BareFlagIsTrue) {
  const auto cli = parse({"--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool("verbose", "", false));
}

TEST(CliOptions, FallbackWhenAbsent) {
  const auto cli = parse({});
  EXPECT_EQ(cli.get_int("trials", "", 5), 5);
  EXPECT_EQ(cli.get_string("name", "", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("trials"));
}

TEST(CliOptions, EnvironmentFallback) {
  ::setenv("RTSP_TEST_OPTION_XYZ", "33", 1);
  const auto cli = parse({});
  EXPECT_EQ(cli.get_int("opt", "RTSP_TEST_OPTION_XYZ", 5), 33);
  // Explicit flag wins over env.
  const auto cli2 = parse({"--opt=44"});
  EXPECT_EQ(cli2.get_int("opt", "RTSP_TEST_OPTION_XYZ", 5), 44);
  ::unsetenv("RTSP_TEST_OPTION_XYZ");
}

TEST(CliOptions, BoolSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", "", false));
  EXPECT_TRUE(parse({"--x=ON"}).get_bool("x", "", false));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", "", true));
  EXPECT_FALSE(parse({"--x=False"}).get_bool("x", "", true));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x", "", true), std::invalid_argument);
}

TEST(CliOptions, PositionalArguments) {
  const auto cli = parse({"alpha", "--k=v", "beta"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(CliOptions, DoubleParsing) {
  EXPECT_DOUBLE_EQ(parse({"--f=2.5"}).get_double("f", "", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(parse({}).get_double("f", "", 1.0), 1.0);
}

}  // namespace
}  // namespace rtsp
