#include "workload/drift.hpp"

#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"

namespace rtsp {
namespace {

class DriftSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DriftSeeds, TraceShapesAreConsistent) {
  Rng rng(GetParam());
  DriftTraceSpec spec;
  spec.servers = 8;
  spec.objects = 40;
  spec.days = 4;
  const DriftTrace trace = generate_drift_trace(spec, rng);
  EXPECT_EQ(trace.daily_rates.size(), 4u);
  EXPECT_EQ(trace.placements.size(), 4u);
  EXPECT_EQ(trace.transitions.size(), 3u);
  for (const auto& rates : trace.daily_rates) {
    EXPECT_EQ(rates.size(), 40u);
    for (double r : rates) EXPECT_GE(r, 0.0);
  }
  for (const auto& placement : trace.placements) {
    EXPECT_TRUE(storage_feasible(trace.model, placement));
    for (ObjectId k = 0; k < 40; ++k) {
      EXPECT_GE(placement.replica_count(k), 1u) << "object " << k;
    }
  }
}

TEST_P(DriftSeeds, ArrivalsHaveNoOldReplicas) {
  Rng rng(GetParam());
  DriftTraceSpec spec;
  spec.servers = 8;
  spec.objects = 40;
  spec.days = 4;
  spec.arrival_rate = 0.2;  // make arrivals certain
  const DriftTrace trace = generate_drift_trace(spec, rng);
  std::size_t total_arrivals = 0;
  for (std::size_t t = 0; t < trace.transitions.size(); ++t) {
    const DriftTransition& tr = trace.transitions[t];
    total_arrivals += tr.new_objects;
    // x_old equals the previous placement except for cleared columns.
    std::size_t cleared_columns = 0;
    for (ObjectId k = 0; k < 40; ++k) {
      const std::size_t before = trace.placements[t].replica_count(k);
      const std::size_t in_old = tr.x_old.replica_count(k);
      EXPECT_TRUE(in_old == before || in_old == 0);
      if (in_old == 0 && before > 0) ++cleared_columns;
    }
    EXPECT_EQ(cleared_columns, tr.new_objects);
    EXPECT_EQ(tr.x_new, trace.placements[t + 1]);
  }
  EXPECT_GT(total_arrivals, 0u);
}

TEST_P(DriftSeeds, TransitionsAreSolvable) {
  Rng rng(GetParam());
  DriftTraceSpec spec;
  spec.servers = 8;
  spec.objects = 30;
  spec.days = 3;
  const DriftTrace trace = generate_drift_trace(spec, rng);
  for (const DriftTransition& tr : trace.transitions) {
    Rng arng(7);
    const Schedule h = make_pipeline("GOLCF+H1+H2")
                           .run(trace.model, tr.x_old, tr.x_new, arng);
    const auto v = Validator::validate(trace.model, tr.x_old, tr.x_new, h);
    EXPECT_TRUE(v.valid) << v.to_string();
    // Every replica of a brand-new object must be a dummy fetch or sourced
    // from a replica created earlier in the schedule — at least one dummy
    // per new object.
    std::size_t new_with_dummy = 0;
    for (ObjectId k = 0; k < 30; ++k) {
      if (tr.x_old.replica_count(k) != 0 || tr.x_new.replica_count(k) == 0) {
        continue;
      }
      bool has_dummy = false;
      for (const Action& a : h) {
        if (a.is_dummy_transfer() && a.object == k) has_dummy = true;
      }
      EXPECT_TRUE(has_dummy) << "new object " << k << " fetched without archive";
      ++new_with_dummy;
    }
    if (tr.new_objects > 0) {
      EXPECT_GT(new_with_dummy, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriftSeeds, testing::Values(1, 2, 5));

TEST(Drift, ChurnZeroKeepsRatesUntilArrivals) {
  Rng rng(9);
  DriftTraceSpec spec;
  spec.servers = 6;
  spec.objects = 20;
  spec.days = 2;
  spec.churn = 0.0;
  spec.arrival_rate = 0.0;
  const DriftTrace trace = generate_drift_trace(spec, rng);
  EXPECT_EQ(trace.daily_rates[0], trace.daily_rates[1]);
  EXPECT_EQ(trace.transitions[0].new_objects, 0u);
}

TEST(Drift, InvalidSpecThrows) {
  Rng rng(1);
  DriftTraceSpec spec;
  spec.capacity_factor = 0.9;
  EXPECT_THROW(generate_drift_trace(spec, rng), PreconditionError);
  DriftTraceSpec spec2;
  spec2.churn = 1.5;
  EXPECT_THROW(generate_drift_trace(spec2, rng), PreconditionError);
}

}  // namespace
}  // namespace rtsp
