// Binary instance format ("RTSPBIN1"): round-trips against the in-memory
// model and the text format, plus the strict-parser negative suite — every
// corrupted image must fail with a clean parse error, never UB.
#include "io/instance_binary_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/instance_io.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using Bytes = std::vector<unsigned char>;

Bytes to_bytes(const Instance& inst) {
  std::ostringstream os(std::ios::binary);
  write_instance_binary(os, inst);
  const std::string s = os.str();
  return Bytes(s.begin(), s.end());
}

Instance decode(const Bytes& b) { return instance_from_binary(b.data(), b.size()); }

std::uint32_t get_u32(const Bytes& b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[off + static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t get_u64(const Bytes& b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[off + static_cast<std::size_t>(i)];
  return v;
}

void set_u32(Bytes& b, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b[off + static_cast<std::size_t>(i)] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

void set_u64(Bytes& b, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[off + static_cast<std::size_t>(i)] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

struct SectionLoc {
  std::size_t entry;   // byte offset of this section's table entry
  std::size_t offset;  // payload offset
  std::uint64_t length;
};

/// Locates a section's table entry and payload in the serialized image.
SectionLoc find_section(const Bytes& b, std::uint32_t id) {
  for (std::uint32_t t = 0; t < 5; ++t) {
    const std::size_t base = 40 + t * 24;
    if (get_u32(b, base) == id) {
      return {base, static_cast<std::size_t>(get_u64(b, base + 8)), get_u64(b, base + 16)};
    }
  }
  ADD_FAILURE() << "section " << id << " not found";
  return {};
}

void expect_same_instance(const Instance& got, const Instance& want) {
  ASSERT_EQ(got.model.num_servers(), want.model.num_servers());
  ASSERT_EQ(got.model.num_objects(), want.model.num_objects());
  EXPECT_EQ(got.model.dummy_link_cost(), want.model.dummy_link_cost());
  for (ServerId i = 0; i < want.model.num_servers(); ++i) {
    EXPECT_EQ(got.model.capacity(i), want.model.capacity(i));
    for (ServerId j = 0; j < want.model.num_servers(); ++j) {
      EXPECT_EQ(got.model.costs().at(i, j), want.model.costs().at(i, j));
    }
  }
  for (ObjectId k = 0; k < want.model.num_objects(); ++k) {
    EXPECT_EQ(got.model.object_size(k), want.model.object_size(k));
  }
  EXPECT_EQ(got.x_old, want.x_old);
  EXPECT_EQ(got.x_new, want.x_new);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

TEST(InstanceBinaryIo, RoundTripFig3) {
  const Instance inst = testutil::fig3_instance();
  expect_same_instance(decode(to_bytes(inst)), inst);
}

TEST(InstanceBinaryIo, RoundTripRandomInstances) {
  Rng rng(31337);
  for (int rep = 0; rep < 5; ++rep) {
    RandomInstanceSpec spec;
    spec.servers = 7;
    spec.objects = 19;
    const Instance inst = random_instance(spec, rng);
    expect_same_instance(decode(to_bytes(inst)), inst);
  }
}

TEST(InstanceBinaryIo, AgreesWithTextFormat) {
  // Same instance through both codecs must decode to the same placements.
  const Instance inst = testutil::fig3_instance();
  const Instance via_text = instance_from_text(instance_to_text(inst));
  const Instance via_binary = decode(to_bytes(inst));
  EXPECT_EQ(via_binary.x_old, via_text.x_old);
  EXPECT_EQ(via_binary.x_new, via_text.x_new);
  EXPECT_EQ(via_binary.model.dummy_link_cost(), via_text.model.dummy_link_cost());
}

TEST(InstanceBinaryIo, WritesSparseBackedMatricesIdentically) {
  // The writer walks for_each_replicator, so a sparse-backed placement must
  // serialize byte-for-byte like its dense twin.
  Instance dense = testutil::fig3_instance();
  Instance sparse = testutil::fig3_instance();
  ReplicationMatrix so(4, 4, ReplicationMatrix::Store::kSparse);
  ReplicationMatrix sn(4, 4, ReplicationMatrix::Store::kSparse);
  for (ObjectId k = 0; k < 4; ++k) {
    dense.x_old.for_each_replicator(k, [&](ServerId i) { so.set(i, k); });
    dense.x_new.for_each_replicator(k, [&](ServerId i) { sn.set(i, k); });
  }
  sparse.x_old = std::move(so);
  sparse.x_new = std::move(sn);
  EXPECT_EQ(to_bytes(dense), to_bytes(sparse));
}

TEST(InstanceBinaryIo, FileHelpersSniffAndDispatch) {
  const Instance inst = testutil::fig3_instance();
  const std::string bin_path = temp_path("inst.bin");
  const std::string txt_path = temp_path("inst.rtsp");
  write_instance_binary_file(bin_path, inst);
  {
    std::ofstream out(txt_path);
    out << instance_to_text(inst);
  }
  EXPECT_TRUE(is_binary_instance_file(bin_path));
  EXPECT_FALSE(is_binary_instance_file(txt_path));
  EXPECT_FALSE(is_binary_instance_file(temp_path("missing.bin")));
  expect_same_instance(read_instance_binary_file(bin_path), inst);
  expect_same_instance(read_instance_any(bin_path), inst);
  expect_same_instance(read_instance_any(txt_path), inst);
}

TEST(InstanceBinaryIo, RejectsTruncation) {
  const Bytes full = to_bytes(testutil::fig3_instance());
  for (const std::size_t len : {std::size_t{0}, std::size_t{7}, std::size_t{8},
                                std::size_t{100}, std::size_t{159},
                                full.size() / 2, full.size() - 1}) {
    const Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode(cut), std::runtime_error) << "prefix length " << len;
  }
}

TEST(InstanceBinaryIo, RejectsBadMagicAndVersion) {
  Bytes b = to_bytes(testutil::fig3_instance());
  Bytes bad_magic = b;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode(bad_magic), std::runtime_error);

  Bytes bad_version = b;
  set_u32(bad_version, 8, 99);
  EXPECT_THROW(decode(bad_version), std::runtime_error);

  Bytes bad_sections = b;
  set_u32(bad_sections, 12, 4);
  EXPECT_THROW(decode(bad_sections), std::runtime_error);
}

TEST(InstanceBinaryIo, RejectsBadDimensions) {
  Bytes zero_servers = to_bytes(testutil::fig3_instance());
  set_u64(zero_servers, 16, 0);
  EXPECT_THROW(decode(zero_servers), std::runtime_error);

  Bytes huge_objects = to_bytes(testutil::fig3_instance());
  set_u64(huge_objects, 24, std::uint64_t{2'000'000'000});
  EXPECT_THROW(decode(huge_objects), std::runtime_error);
}

TEST(InstanceBinaryIo, RejectsNonFiniteDummyFactor) {
  Bytes b = to_bytes(testutil::fig3_instance());
  set_u64(b, 32, 0x7ff8000000000000ULL);  // quiet NaN
  EXPECT_THROW(decode(b), std::runtime_error);
}

TEST(InstanceBinaryIo, RejectsBadSectionTable) {
  const Bytes good = to_bytes(testutil::fig3_instance());
  const SectionLoc caps = find_section(good, 1);

  Bytes unknown_id = good;
  set_u32(unknown_id, caps.entry, 9);
  EXPECT_THROW(decode(unknown_id), std::runtime_error);

  Bytes duplicate_id = good;
  set_u32(duplicate_id, find_section(good, 2).entry, 1);
  EXPECT_THROW(decode(duplicate_id), std::runtime_error);

  // Section length overflow: extends past the end of the file.
  Bytes overflow = good;
  set_u64(overflow, caps.entry + 16, std::uint64_t{1} << 62);
  EXPECT_THROW(decode(overflow), std::runtime_error);

  // Wrong (but in-bounds) section length for a fixed-size section.
  Bytes short_caps = good;
  set_u64(short_caps, caps.entry + 16, caps.length - 8);
  EXPECT_THROW(decode(short_caps), std::runtime_error);
}

TEST(InstanceBinaryIo, RejectsCorruptPlacementCsr) {
  const Bytes good = to_bytes(testutil::fig3_instance());
  const SectionLoc x_old = find_section(good, 4);
  const std::size_t objects = 4;
  const std::size_t ids_base = x_old.offset + (objects + 1) * 8;

  // Offset table must start at zero.
  Bytes nonzero_start = good;
  set_u64(nonzero_start, x_old.offset, 1);
  EXPECT_THROW(decode(nonzero_start), std::runtime_error);

  // Non-monotonic offset table (fig3: every object has 2 replicas, so the
  // table reads 0,2,4,6,8 — bump the second entry out of sequence).
  Bytes skewed = good;
  set_u64(skewed, x_old.offset + 8, 3);
  EXPECT_THROW(decode(skewed), std::runtime_error);

  // Server id out of range.
  Bytes bad_id = good;
  set_u32(bad_id, ids_base, 999);
  EXPECT_THROW(decode(bad_id), std::runtime_error);

  // Duplicate id within an object breaks strict ascension.
  Bytes dup_id = good;
  set_u32(dup_id, ids_base + 4, get_u32(good, ids_base));
  EXPECT_THROW(decode(dup_id), std::runtime_error);
}

TEST(InstanceBinaryIo, RejectsNegativeValues) {
  const Bytes good = to_bytes(testutil::fig3_instance());

  Bytes neg_cap = good;
  set_u64(neg_cap, find_section(good, 1).offset, static_cast<std::uint64_t>(-1));
  EXPECT_THROW(decode(neg_cap), std::runtime_error);

  Bytes neg_size = good;
  set_u64(neg_size, find_section(good, 2).offset, static_cast<std::uint64_t>(-1));
  EXPECT_THROW(decode(neg_size), std::runtime_error);

  Bytes neg_cost = good;
  set_u64(neg_cost, find_section(good, 3).offset + 8, static_cast<std::uint64_t>(-1));
  EXPECT_THROW(decode(neg_cost), std::runtime_error);
}

TEST(InstanceBinaryIo, ErrorsNameTheProblem) {
  Bytes b = to_bytes(testutil::fig3_instance());
  b[0] = 'X';
  try {
    decode(b);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("binary instance parse error"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rtsp
