// Regression tests replaying the paper's Sec. 4.1 worked example on the
// Fig. 3 network (objects A,B,C,D = 0,1,2,3; servers S1..S4 = 0..3).
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/h1.hpp"
#include "heuristics/h2.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig3_instance;

constexpr ObjectId A = 0, B = 1, C = 2, D = 3;

/// The paper's RDF example schedule:
/// { D_1A, D_4B, D_3B, D_4A, D_2D, D_2C,
///   T_1Dd, T_4C3, T_3D1, T_2B1, T_2Ad, T_4D3 }.
Schedule paper_rdf_schedule() {
  return Schedule({
      Action::remove(0, A), Action::remove(3, B), Action::remove(2, B),
      Action::remove(3, A), Action::remove(1, D), Action::remove(1, C),
      Action::transfer(0, D, kDummyServer), Action::transfer(3, C, 2),
      Action::transfer(2, D, 0), Action::transfer(1, B, 0),
      Action::transfer(1, A, kDummyServer), Action::transfer(3, D, 2),
  });
}

TEST(Fig3, PaperRdfScheduleIsValidWithTwoDummies) {
  const Instance inst = fig3_instance();
  const Schedule h = paper_rdf_schedule();
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  EXPECT_TRUE(v.valid) << v.to_string();
  EXPECT_EQ(h.dummy_transfer_count(), 2u);
}

TEST(Fig3, PaperGsdfScheduleIsValidWithOneDummy) {
  // { D_2C, D_2D, T_2A1, T_2B1, D_3B, T_3Dd, D_4A, D_4B, T_4C3, T_4D3,
  //   D_1A, T_1D3 } — servers visited in the order S2, S3, S4, S1.
  const Instance inst = fig3_instance();
  const Schedule h({
      Action::remove(1, C), Action::remove(1, D), Action::transfer(1, A, 0),
      Action::transfer(1, B, 0), Action::remove(2, B),
      Action::transfer(2, D, kDummyServer), Action::remove(3, A),
      Action::remove(3, B), Action::transfer(3, C, 2), Action::transfer(3, D, 2),
      Action::remove(0, A), Action::transfer(0, D, 2),
  });
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  EXPECT_TRUE(v.valid) << v.to_string();
  EXPECT_EQ(h.dummy_transfer_count(), 1u);
}

TEST(Fig3, H1ReproducesThePaperRewriteExactly) {
  // Sec. 4.1 walks H1 over the RDF schedule: first T_1Dd moves before D_2D
  // (re-sourced from S2), then T_2Ad moves before D_4A, pulling the
  // standalone deletion D_2C forward. Final schedule per the paper:
  // { D_1A, D_4B, D_3B, D_2C, T_2A4, D_4A, T_1D2, D_2D,
  //   T_4C3, T_3D1, T_2B1, T_4D3 }.
  const Instance inst = fig3_instance();
  Rng rng(0);
  const Schedule improved = H1Improver().improve(inst.model, inst.x_old, inst.x_new,
                                                 paper_rdf_schedule(), rng);
  const Schedule expected({
      Action::remove(0, A), Action::remove(3, B), Action::remove(2, B),
      Action::remove(1, C), Action::transfer(1, A, 3), Action::remove(3, A),
      Action::transfer(0, D, 1), Action::remove(1, D),
      Action::transfer(3, C, 2), Action::transfer(2, D, 0),
      Action::transfer(1, B, 0), Action::transfer(3, D, 2),
  });
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_EQ(improved.dummy_transfer_count(), 0u);
  EXPECT_EQ(improved, expected) << "got:\n" << improved.to_string();
}

TEST(Fig3, H1CostNeverWorseThanRdf) {
  const Instance inst = fig3_instance();
  Rng rng(0);
  const Schedule base = paper_rdf_schedule();
  const Schedule improved =
      H1Improver().improve(inst.model, inst.x_old, inst.x_new, base, rng);
  // Dummy cost dominates: removing both dummies must cut the cost.
  EXPECT_LT(schedule_cost(inst.model, improved), schedule_cost(inst.model, base));
}

TEST(Fig3, NearestSourceSelectionMatchesThePaper) {
  // "the transfer of D to S4 uses S3 as source instead of S1 since
  //  l_34 = 1 < l_14 = 2"
  const Instance inst = fig3_instance();
  ReplicationMatrix x(4, 4);
  x.set(0, D);
  x.set(2, D);
  EXPECT_EQ(inst.model.nearest_replicator(3, D, x), std::optional<ServerId>(2));
}

TEST(Fig3, H2AlsoClearsTheRdfDummies) {
  const Instance inst = fig3_instance();
  Rng rng(0);
  Schedule h = H2Improver().improve(inst.model, inst.x_old, inst.x_new,
                                    paper_rdf_schedule(), rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  EXPECT_LE(h.dummy_transfer_count(), 1u);
}

}  // namespace
}  // namespace rtsp
