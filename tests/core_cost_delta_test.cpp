#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/delta.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;

TEST(CostModel, ActionCosts) {
  const SystemModel m = matrix_model({9, 9, 9}, {5, 2},
                                     {{0, 3, 6}, {3, 0, 1}, {6, 1, 0}});
  EXPECT_EQ(action_cost(m, Action::remove(0, 0)), 0);
  EXPECT_EQ(action_cost(m, Action::transfer(0, 0, 1)), 5 * 3);
  EXPECT_EQ(action_cost(m, Action::transfer(2, 1, 1)), 2 * 1);
  EXPECT_EQ(action_cost(m, Action::transfer(1, 1, kDummyServer)), 2 * 7);  // 6+1
}

TEST(CostModel, ScheduleCostSumsTransfersOnly) {
  const SystemModel m = matrix_model({9, 9, 9}, {5, 2},
                                     {{0, 3, 6}, {3, 0, 1}, {6, 1, 0}});
  const Schedule h({Action::remove(0, 0), Action::transfer(0, 0, 1),
                    Action::transfer(1, 1, kDummyServer), Action::remove(2, 1)});
  EXPECT_EQ(schedule_cost(m, h), 15 + 14);
  EXPECT_EQ(dummy_transfer_cost(m, h), 14);
}

TEST(CostModel, EmptyScheduleIsFree) {
  const SystemModel m = matrix_model({1}, {1}, {{0}});
  EXPECT_EQ(schedule_cost(m, Schedule{}), 0);
}

TEST(PlacementDelta, SplitsOutstandingAndSuperfluous) {
  const auto x_old = ReplicationMatrix::from_pairs(3, 3, {{0, 0}, {0, 1}, {1, 2}});
  const auto x_new = ReplicationMatrix::from_pairs(3, 3, {{0, 1}, {2, 0}, {1, 2}});
  const PlacementDelta d(x_old, x_new);
  EXPECT_EQ(d.outstanding(), (std::vector<Replica>{{2, 0}}));
  EXPECT_EQ(d.superfluous(), (std::vector<Replica>{{0, 0}}));
  EXPECT_FALSE(d.empty());
}

TEST(PlacementDelta, IdenticalSchemesAreEmpty) {
  const auto x = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const PlacementDelta d(x, x);
  EXPECT_TRUE(d.empty());
}

TEST(PlacementDelta, PerServerViews) {
  const auto x_old =
      ReplicationMatrix::from_pairs(3, 4, {{0, 0}, {0, 1}, {1, 2}, {2, 3}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 4, {{1, 0}, {1, 1}, {1, 2}, {2, 3}});
  const PlacementDelta d(x_old, x_new);
  EXPECT_EQ(d.outstanding_on(1), (std::vector<Replica>{{1, 0}, {1, 1}}));
  EXPECT_TRUE(d.outstanding_on(2).empty());
  EXPECT_EQ(d.superfluous_on(0), (std::vector<Replica>{{0, 0}, {0, 1}}));
  EXPECT_EQ(d.servers_with_outstanding(), (std::vector<ServerId>{1}));
  EXPECT_EQ(d.servers_with_superfluous(), (std::vector<ServerId>{0}));
}

TEST(PlacementDelta, MismatchedShapesThrow) {
  const ReplicationMatrix a(2, 2);
  const ReplicationMatrix b(2, 3);
  EXPECT_THROW(PlacementDelta(a, b), PreconditionError);
}

}  // namespace
}  // namespace rtsp
