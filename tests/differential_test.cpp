// Differential and idempotence properties across solvers and improvers:
//   * UCS and B&B agree and lower-bound every heuristic;
//   * H1, H2 and OP1 are idempotent once converged;
//   * random mutation storms on schedules never confuse the validator
//     (fuzzing the surgery primitives).
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "exact/uniform_cost_search.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/surgery.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

class DifferentialSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSeeds, ExactMethodsBracketEveryHeuristic) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 4;
  spec.objects = 4;
  spec.max_replicas = 1;
  spec.max_object_size = 2;
  const Instance inst = random_instance(spec, rng);
  const UcsResult ucs = solve_exact_ucs(inst);
  if (!ucs.proved_optimal) GTEST_SKIP() << "state budget exhausted";
  EXPECT_GE(ucs.cost, cost_lower_bound(inst.model, inst.x_old, inst.x_new));
  for (const std::string spec_name :
       {"AR", "RDF", "GSDF", "GOLCF", "GOLCF+H1+H2+OP1", "GOLCF+SA"}) {
    Rng arng(GetParam() ^ 0x1234);
    const Schedule h =
        make_pipeline(spec_name).run(inst.model, inst.x_old, inst.x_new, arng);
    EXPECT_GE(schedule_cost(inst.model, h), ucs.cost) << spec_name;
  }
}

TEST_P(DifferentialSeeds, ImproversAreIdempotent) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 20;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  const Schedule base =
      make_pipeline("RDF").run(inst.model, inst.x_old, inst.x_new, rng);

  for (const std::string imp : {"H1", "H2", "OP1"}) {
    const Pipeline once = make_pipeline("RDF+" + imp);
    const Pipeline twice = make_pipeline("RDF+" + imp + "+" + imp);
    Rng r1(7);
    Rng r2(7);
    const Schedule a = once.run(inst.model, inst.x_old, inst.x_new, r1);
    const Schedule b = twice.run(inst.model, inst.x_old, inst.x_new, r2);
    EXPECT_EQ(a, b) << imp << " is not idempotent (seed " << GetParam() << ")";
  }
}

TEST_P(DifferentialSeeds, MutationStormKeepsValidatorHonest) {
  // Fuzz: random surgery on a valid schedule; whatever comes out, the
  // validator's verdict must be consistent with a manual re-execution.
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 12;
  const Instance inst = random_instance(spec, rng);
  Schedule h = make_pipeline("GSDF").run(inst.model, inst.x_old, inst.x_new, rng);
  for (int storm = 0; storm < 50; ++storm) {
    if (h.empty()) break;
    const std::uint64_t kind = rng.below(3);
    if (kind == 0) {
      const std::size_t from = rng.below(h.size());
      const std::size_t to = rng.below(from + 1);
      move_action_earlier(h, from, to);
    } else if (kind == 1) {
      Action& a = h[rng.below(h.size())];
      if (a.is_transfer()) {
        a.source = rng.chance(0.3)
                       ? kDummyServer
                       : static_cast<ServerId>(rng.below(inst.model.num_servers()));
        if (a.source == a.server) a.source = kDummyServer;
      }
    } else {
      std::swap(h[rng.below(h.size())], h[rng.below(h.size())]);
    }
    // Differential check: validator verdict == manual lenient-free replay.
    const auto verdict = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
    ExecutionState state(inst.model, inst.x_old);
    bool replay_ok = true;
    for (const Action& a : h) {
      if (state.try_apply(a) != ActionError::None) {
        replay_ok = false;
        break;
      }
    }
    if (replay_ok) replay_ok = state.placement() == inst.x_new;
    EXPECT_EQ(verdict.valid, replay_ok) << "storm " << storm;
  }
}

TEST_P(DifferentialSeeds, PullDeletionsNeverTouchesActionsBeyondLimit) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 15;
  const Instance inst = random_instance(spec, rng);
  Schedule h = make_pipeline("RDF").run(inst.model, inst.x_old, inst.x_new, rng);
  // Pick a random transfer and try to repair space for it in place.
  std::vector<std::size_t> transfers;
  for (std::size_t p = 0; p < h.size(); ++p) {
    if (h[p].is_transfer()) transfers.push_back(p);
  }
  if (transfers.empty()) GTEST_SKIP();
  const std::size_t t_pos = transfers[rng.below(transfers.size())];
  const std::size_t limit =
      t_pos + rng.below(h.size() - t_pos);  // in [t_pos, size)
  const Schedule before = h;
  pull_deletions_for_space(inst.model, inst.x_old, h, t_pos, limit,
                           OrphanPolicy::Dummy);
  ASSERT_EQ(h.size(), before.size());
  for (std::size_t p = limit + 1; p < h.size(); ++p) {
    EXPECT_EQ(h[p], before[p]) << "action beyond limit moved at " << p;
  }
  for (std::size_t p = 0; p < t_pos; ++p) {
    EXPECT_EQ(h[p], before[p]) << "action before t_pos moved at " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeeds,
                         testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace rtsp
