#include "heuristics/h1.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/gsdf.hpp"
#include "heuristics/rdf.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

Schedule run_h1(const Instance& inst, Schedule h, H1Options opts = {}) {
  Rng rng(0);
  return H1Improver(opts).improve(inst.model, inst.x_old, inst.x_new, std::move(h),
                                  rng);
}

TEST(H1, RestoresSimpleDummyViaCaseOne) {
  // S0 swaps object 0 for object 1; S1 needs object 0 but the naive
  // schedule deletes S0's copy first and falls back to the dummy.
  SystemModel model = uniform_model({1, 2}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 2, {{0, 1}, {1, 0}, {1, 1}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::transfer(0, 1, 1),
                        Action::transfer(1, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));
  ASSERT_EQ(naive.dummy_transfer_count(), 1u);

  const Schedule improved = run_h1(inst, naive);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_EQ(improved.dummy_transfer_count(), 0u);
  // The transfer moved before the deletion and is sourced from the deleter.
  EXPECT_EQ(improved[0], Action::transfer(1, 0, 0));
  EXPECT_EQ(improved[1], Action::remove(0, 0));
}

TEST(H1, PullsStandaloneDeletionForCapacity) {
  // S1 is full; its own superfluous deletion appears after the dummy
  // transfer's only possible insertion point, so H1 must pull it forward
  // (the paper's case ii).
  SystemModel model = uniform_model({1, 1}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 2, {{1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::remove(1, 1),
                        Action::transfer(1, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));

  const Schedule improved = run_h1(inst, naive);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_EQ(improved.dummy_transfer_count(), 0u);
}

TEST(H1, LeavesScheduleAloneWhenNoDummies) {
  SystemModel model = uniform_model({2, 2}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {0, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 2, {{1, 0}, {1, 1}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule clean({Action::transfer(1, 0, 0), Action::transfer(1, 1, 0),
                        Action::remove(0, 0), Action::remove(0, 1)});
  EXPECT_EQ(run_h1(inst, clean), clean);
}

TEST(H1, KeepsDummyWhenObjectNeverHadAReplica) {
  // Object 0 exists nowhere in X_old (a brand-new object): the dummy is the
  // only possible source and must survive.
  SystemModel model = uniform_model({1}, {1});
  const ReplicationMatrix x_old(1, 1);
  const auto x_new = ReplicationMatrix::from_pairs(1, 1, {{0, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::transfer(0, 0, kDummyServer)});
  const Schedule improved = run_h1(inst, naive);
  EXPECT_EQ(improved, naive);
}

TEST(H1, CaseThreeRecursionRestoresChainedDummies) {
  // Pulling D(1,1) forward for capacity orphans the reader T(2,1,1), which
  // temporarily becomes a dummy (the paper's H'' trick); the recursive
  // restore then moves it before the pulled deletion, ending dummy-free.
  SystemModel model = uniform_model({1, 1, 1}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(3, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(3, 2, {{1, 0}, {2, 1}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::transfer(2, 1, 1),
                        Action::remove(1, 1), Action::transfer(1, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));

  const Schedule improved = run_h1(inst, naive);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_EQ(improved.dummy_transfer_count(), 0u);
}

TEST(H1, ResourceNearestPicksCheaperSourceThanDeleter) {
  // Two replicators of object 0: S0 (expensive from S2) deletes its copy;
  // S1 (cheap) keeps its copy. The paper's H1 re-sources to the deleter S0;
  // with resource_nearest it picks S1 instead.
  SystemModel model(
      ServerCatalog({1, 1, 1}), ObjectCatalog({1}),
      CostMatrix::from_rows({{0, 9, 8}, {9, 0, 1}, {8, 1, 0}}));
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}});
  const auto x_new = ReplicationMatrix::from_pairs(3, 1, {{1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::transfer(2, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));

  const Schedule paper = run_h1(inst, naive);
  ASSERT_EQ(paper.dummy_transfer_count(), 0u);
  EXPECT_EQ(paper[0].source, 0u);  // deleter

  H1Options opts;
  opts.resource_nearest = true;
  const Schedule nearest = run_h1(inst, naive, opts);
  ASSERT_EQ(nearest.dummy_transfer_count(), 0u);
  EXPECT_EQ(nearest[0].source, 1u);  // cheapest replicator at that point
  EXPECT_LE(schedule_cost(inst.model, nearest), schedule_cost(inst.model, paper));
}

class H1Property : public testing::TestWithParam<std::uint64_t> {};

TEST_P(H1Property, ValidAndNeverMoreDummies) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 24;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  for (int round = 0; round < 2; ++round) {
    const Schedule base = (round == 0 ? (const ScheduleBuilder&)RdfBuilder()
                                      : (const ScheduleBuilder&)GsdfBuilder())
                              .build(inst.model, inst.x_old, inst.x_new, rng);
    const Schedule improved = run_h1(inst, base);
    EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
    EXPECT_LE(improved.dummy_transfer_count(), base.dummy_transfer_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, H1Property,
                         testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace rtsp
