#include "heuristics/op1.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/ar.hpp"
#include "heuristics/golcf.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;
using testutil::uniform_model;

Schedule run_op1(const Instance& inst, Schedule h, Op1Options opts = {}) {
  Rng rng(0);
  return Op1Improver(opts).improve(inst.model, inst.x_old, inst.x_new, std::move(h),
                                   rng);
}

TEST(Op1, ReordersSoNewReplicaServesLaterTransfers) {
  // Chain 0 -1- 1 -1- 2 (so l02 = 2). Object 0 lives at S0 and must reach
  // S1 and S2. A bad order serves S2 first straight from S0 (cost 2), then
  // S1 (cost 1) — total 3. OP1 moves the S1 transfer first and re-sources
  // the S2 transfer from S1 — total 2.
  SystemModel model = matrix_model({2, 2, 2}, {1},
                                   {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule bad({Action::transfer(2, 0, 0), Action::transfer(1, 0, 0)});
  ASSERT_EQ(schedule_cost(inst.model, bad), 3);

  const Schedule improved = run_op1(inst, bad);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_EQ(schedule_cost(inst.model, improved), 2);
  EXPECT_EQ(improved[0], Action::transfer(1, 0, 0));
  EXPECT_EQ(improved[1], Action::transfer(2, 0, 1));
}

TEST(Op1, ConvertsLaterDummyTransfersAsSideEffect) {
  // The second transfer of object 0 is a dummy; once the first transfer's
  // replica exists earlier, OP1's re-sourcing replaces the dummy source.
  SystemModel model = uniform_model({1, 1, 1}, {1});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  // Bad order: delete the source, dummy-fetch S2, then fetch S1 from S2.
  const Schedule bad({Action::transfer(1, 0, 0), Action::remove(0, 0),
                      Action::transfer(2, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, bad));
  const Schedule improved = run_op1(inst, bad);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  // The dummy got re-sourced to S1's fresh replica.
  EXPECT_EQ(improved.dummy_transfer_count(), 0u);
  EXPECT_LT(schedule_cost(inst.model, improved), schedule_cost(inst.model, bad));
}

TEST(Op1, LeavesOptimalScheduleUnchanged) {
  SystemModel model = matrix_model({2, 2, 2}, {1},
                                   {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule good({Action::transfer(1, 0, 0), Action::transfer(2, 0, 1)});
  EXPECT_EQ(run_op1(inst, good), good);
}

TEST(Op1, RepairsCapacityWithCaseFourDeletionPull) {
  // Destination S1 is full until its deletion, which sits just before its
  // transfer; moving the transfer earlier must drag the deletion along.
  SystemModel model = matrix_model({1, 1, 1}, {1, 1},
                                   {{0, 1, 3}, {1, 0, 1}, {3, 1, 0}});
  // X_old: S0{0}, S1{1}, S2{}; X_new: S0{0}, S1{0} replaces 1, S2{0}? S2
  // capacity 1... keep S2 as second destination of object 0.
  const auto x_old = ReplicationMatrix::from_pairs(3, 2, {{0, 0}, {1, 1}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 2, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  // Bad order: S2 fetched from distant S0 (cost 3) first, then S1's
  // deletion and its transfer (cost 1).
  const Schedule bad({Action::transfer(2, 0, 0), Action::remove(1, 1),
                      Action::transfer(1, 0, 0)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, bad));
  ASSERT_EQ(schedule_cost(inst.model, bad), 4);
  const Schedule improved = run_op1(inst, bad);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  // S1 first (1), S2 from S1 (1): total 2.
  EXPECT_EQ(schedule_cost(inst.model, improved), 2);
}

TEST(Op1, ContinuePolicyReachesSameCostHere) {
  SystemModel model = matrix_model({2, 2, 2}, {1},
                                   {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule bad({Action::transfer(2, 0, 0), Action::transfer(1, 0, 0)});
  Op1Options opts;
  opts.restart = Op1Options::Restart::Continue;
  const Schedule improved = run_op1(inst, bad, opts);
  EXPECT_EQ(schedule_cost(inst.model, improved), 2);
}

TEST(Op1, MaxChangesCapsWork) {
  SystemModel model = matrix_model({2, 2, 2}, {1},
                                   {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule bad({Action::transfer(2, 0, 0), Action::transfer(1, 0, 0)});
  Op1Options opts;
  opts.max_changes = 1;
  const Schedule improved = run_op1(inst, bad, opts);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_LE(schedule_cost(inst.model, improved), 3);
}

class Op1Property : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Op1Property, ValidAndNeverCostlier) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 20;
  spec.max_replicas = 3;
  const Instance inst = random_instance(spec, rng);
  for (int round = 0; round < 2; ++round) {
    const Schedule base = (round == 0 ? (const ScheduleBuilder&)ArBuilder()
                                      : (const ScheduleBuilder&)GolcfBuilder())
                              .build(inst.model, inst.x_old, inst.x_new, rng);
    const Schedule improved = run_op1(inst, base);
    EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
    EXPECT_LE(schedule_cost(inst.model, improved), schedule_cost(inst.model, base));

    // Prescreen must not change the result's validity or direction; also
    // exercise the no-prescreen path.
    Op1Options noscreen;
    noscreen.prescreen = false;
    const Schedule slow = run_op1(inst, base, noscreen);
    EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, slow));
    EXPECT_LE(schedule_cost(inst.model, slow), schedule_cost(inst.model, base));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Op1Property, testing::Values(5, 15, 25, 35, 45));

}  // namespace
}  // namespace rtsp
