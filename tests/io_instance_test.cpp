#include "io/instance_io.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

TEST(InstanceIo, RoundTripSmallInstance) {
  const Instance inst = testutil::fig3_instance();
  const Instance back = instance_from_text(instance_to_text(inst));
  EXPECT_EQ(back.model.num_servers(), inst.model.num_servers());
  EXPECT_EQ(back.model.num_objects(), inst.model.num_objects());
  EXPECT_EQ(back.model.dummy_link_cost(), inst.model.dummy_link_cost());
  for (ServerId i = 0; i < 4; ++i) {
    EXPECT_EQ(back.model.capacity(i), inst.model.capacity(i));
    for (ServerId j = 0; j < 4; ++j) {
      EXPECT_EQ(back.model.costs().at(i, j), inst.model.costs().at(i, j));
    }
  }
  for (ObjectId k = 0; k < 4; ++k) {
    EXPECT_EQ(back.model.object_size(k), inst.model.object_size(k));
  }
  EXPECT_EQ(back.x_old, inst.x_old);
  EXPECT_EQ(back.x_new, inst.x_new);
}

TEST(InstanceIo, RoundTripRandomInstances) {
  Rng rng(66);
  for (int rep = 0; rep < 5; ++rep) {
    RandomInstanceSpec spec;
    spec.servers = 6;
    spec.objects = 12;
    const Instance inst = random_instance(spec, rng);
    const Instance back = instance_from_text(instance_to_text(inst));
    EXPECT_EQ(back.x_old, inst.x_old);
    EXPECT_EQ(back.x_new, inst.x_new);
    for (ServerId i = 0; i < 6; ++i) {
      EXPECT_EQ(back.model.capacity(i), inst.model.capacity(i));
    }
  }
}

TEST(InstanceIo, RejectsBadMagic) {
  EXPECT_THROW(instance_from_text("not-an-instance\n"), std::runtime_error);
}

TEST(InstanceIo, RejectsTruncatedInput) {
  const std::string text = instance_to_text(testutil::fig3_instance());
  EXPECT_THROW(instance_from_text(text.substr(0, text.size() / 2)),
               std::runtime_error);
}

TEST(InstanceIo, RejectsOutOfRangeIds) {
  std::string text = instance_to_text(testutil::fig1_instance());
  // Corrupt a placement line: object id 99 does not exist.
  const auto pos = text.find("old 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "old 0 99");
  EXPECT_THROW(instance_from_text(text), std::runtime_error);
}

TEST(InstanceIo, RejectsEmptyInput) {
  EXPECT_THROW(instance_from_text(""), std::runtime_error);
  EXPECT_THROW(instance_from_text("\n  \n"), std::runtime_error);
}

// Corrupt header fields must produce clean parse errors, never a bad_alloc
// or an uncaught std::invalid_argument from the numeric conversion.
TEST(InstanceIo, RejectsCorruptHeaderCounts) {
  auto with_servers_line = [](const std::string& line) {
    std::string text = instance_to_text(testutil::fig1_instance());
    const auto pos = text.find("servers 4");
    return text.replace(pos, 9, line);
  };
  EXPECT_THROW(instance_from_text(with_servers_line("servers abc")),
               std::runtime_error);
  EXPECT_THROW(instance_from_text(with_servers_line("servers")),
               std::runtime_error);
  EXPECT_THROW(instance_from_text(with_servers_line("servers 0")),
               std::runtime_error);
  EXPECT_THROW(instance_from_text(with_servers_line("servers 4x")),
               std::runtime_error);
  EXPECT_THROW(
      instance_from_text(with_servers_line("servers 99999999999999")),
      std::runtime_error);
}

TEST(InstanceIo, RejectsBadDummyFactor) {
  auto with_factor = [](const std::string& value) {
    std::string text = instance_to_text(testutil::fig1_instance());
    const auto pos = text.find("dummy_factor 1");
    return text.replace(pos, 14, "dummy_factor " + value);
  };
  EXPECT_THROW(instance_from_text(with_factor("banana")), std::runtime_error);
  EXPECT_THROW(instance_from_text(with_factor("-2")), std::runtime_error);
  EXPECT_THROW(instance_from_text(with_factor("nan")), std::runtime_error);
  EXPECT_THROW(instance_from_text(with_factor("2.0junk")), std::runtime_error);
}

TEST(InstanceIo, RejectsBadValueRows) {
  auto with_caps = [](const std::string& line) {
    std::string text = instance_to_text(testutil::fig1_instance());
    const auto pos = text.find("capacities 1 1 1 1");
    return text.replace(pos, 18, line);
  };
  EXPECT_THROW(instance_from_text(with_caps("capacities 1 1 1")),
               std::runtime_error);  // too few
  EXPECT_THROW(instance_from_text(with_caps("capacities 1 1 1 -1")),
               std::runtime_error);  // negative
  EXPECT_THROW(instance_from_text(with_caps("capacities 1 1 1 1 9")),
               std::runtime_error);  // trailing garbage
  EXPECT_THROW(instance_from_text(with_caps("capacities 1 1 x 1")),
               std::runtime_error);  // non-numeric
}

TEST(InstanceIo, ErrorsNameTheProblem) {
  try {
    instance_from_text("rtsp-instance v1\nservers zebra\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("instance parse error"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("zebra"), std::string::npos);
  }
}

}  // namespace
}  // namespace rtsp
