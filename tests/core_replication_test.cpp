#include "core/replication.hpp"

#include <gtest/gtest.h>

namespace rtsp {
namespace {

TEST(ReplicationMatrix, StartsEmpty) {
  ReplicationMatrix x(3, 100);
  EXPECT_EQ(x.num_servers(), 3u);
  EXPECT_EQ(x.num_objects(), 100u);
  EXPECT_EQ(x.total_replicas(), 0u);
  for (ServerId i = 0; i < 3; ++i) {
    for (ObjectId k = 0; k < 100; ++k) EXPECT_FALSE(x.test(i, k));
  }
}

TEST(ReplicationMatrix, SetClearAssign) {
  ReplicationMatrix x(2, 70);  // spans two words
  x.set(0, 3);
  x.set(0, 64);  // second word
  x.set(1, 69);
  EXPECT_TRUE(x.test(0, 3));
  EXPECT_TRUE(x.test(0, 64));
  EXPECT_TRUE(x.test(1, 69));
  EXPECT_FALSE(x.test(1, 3));
  x.clear(0, 3);
  EXPECT_FALSE(x.test(0, 3));
  x.assign(1, 0, true);
  EXPECT_TRUE(x.test(1, 0));
  x.assign(1, 0, false);
  EXPECT_FALSE(x.test(1, 0));
  // Idempotent set/clear.
  x.set(0, 64);
  EXPECT_TRUE(x.test(0, 64));
  x.clear(1, 3);
  EXPECT_FALSE(x.test(1, 3));
}

TEST(ReplicationMatrix, OutOfRangeThrows) {
  ReplicationMatrix x(2, 10);
  EXPECT_THROW(x.test(2, 0), PreconditionError);
  EXPECT_THROW(x.test(0, 10), PreconditionError);
  EXPECT_THROW(x.set(5, 5), PreconditionError);
}

TEST(ReplicationMatrix, ObjectsOnIsSortedAndComplete) {
  ReplicationMatrix x(1, 130);
  x.set(0, 129);
  x.set(0, 0);
  x.set(0, 63);
  x.set(0, 64);
  EXPECT_EQ(x.objects_on(0), (std::vector<ObjectId>{0, 63, 64, 129}));
}

TEST(ReplicationMatrix, ReplicatorsAndCounts) {
  ReplicationMatrix x(4, 5);
  x.set(1, 2);
  x.set(3, 2);
  x.set(0, 0);
  EXPECT_EQ(x.replicators_of(2), (std::vector<ServerId>{1, 3}));
  EXPECT_EQ(x.replica_count(2), 2u);
  EXPECT_EQ(x.replica_count(4), 0u);
  EXPECT_EQ(x.count_on(1), 1u);
  EXPECT_EQ(x.count_on(2), 0u);
  EXPECT_EQ(x.total_replicas(), 3u);
}

TEST(ReplicationMatrix, UsedStorage) {
  ObjectCatalog objects({10, 20, 30});
  ReplicationMatrix x(2, 3);
  x.set(0, 0);
  x.set(0, 2);
  EXPECT_EQ(x.used_storage(0, objects), 40);
  EXPECT_EQ(x.used_storage(1, objects), 0);
}

TEST(ReplicationMatrix, OverlapCountsSharedReplicas) {
  ReplicationMatrix a(2, 80);
  ReplicationMatrix b(2, 80);
  a.set(0, 1);
  a.set(0, 70);
  a.set(1, 5);
  b.set(0, 70);
  b.set(1, 5);
  b.set(1, 6);
  EXPECT_EQ(a.overlap(b), 2u);
  EXPECT_EQ(b.overlap(a), 2u);
  EXPECT_EQ(a.overlap(a), 3u);
}

TEST(ReplicationMatrix, EqualityAndFromPairs) {
  const auto a = ReplicationMatrix::from_pairs(2, 4, {{0, 1}, {1, 3}});
  auto b = ReplicationMatrix(2, 4);
  b.set(0, 1);
  b.set(1, 3);
  EXPECT_EQ(a, b);
  b.clear(1, 3);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace rtsp
