#include "exact/knapsack.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace rtsp {
namespace {

/// Exhaustive oracle for small n.
std::int64_t brute_force_best(const KnapsackInstance& inst) {
  const std::size_t n = inst.count();
  std::int64_t best = 0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::int64_t size = 0;
    std::int64_t benefit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        size += inst.sizes[i];
        benefit += inst.benefits[i];
      }
    }
    if (size <= inst.capacity) best = std::max(best, benefit);
  }
  return best;
}

std::int64_t brute_force_min_optimal_size(const KnapsackInstance& inst,
                                          std::int64_t best_benefit) {
  const std::size_t n = inst.count();
  std::int64_t best_size = inst.capacity;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::int64_t size = 0;
    std::int64_t benefit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) {
        size += inst.sizes[i];
        benefit += inst.benefits[i];
      }
    }
    if (size <= inst.capacity && benefit == best_benefit) {
      best_size = std::min(best_size, size);
    }
  }
  return best_size;
}

TEST(Knapsack, TextbookInstance) {
  const KnapsackInstance inst{{60, 100, 120}, {10, 20, 30}, 50};
  const auto sol = solve_knapsack(inst);
  EXPECT_EQ(sol.best_benefit, 220);
  EXPECT_FALSE(sol.chosen[0]);
  EXPECT_TRUE(sol.chosen[1]);
  EXPECT_TRUE(sol.chosen[2]);
}

TEST(Knapsack, ZeroCapacityTakesNothing) {
  const KnapsackInstance inst{{5, 6}, {1, 1}, 0};
  const auto sol = solve_knapsack(inst);
  EXPECT_EQ(sol.best_benefit, 0);
  EXPECT_FALSE(sol.chosen[0]);
  EXPECT_FALSE(sol.chosen[1]);
}

TEST(Knapsack, AllItemsFit) {
  const KnapsackInstance inst{{3, 4, 5}, {1, 1, 1}, 10};
  const auto sol = solve_knapsack(inst);
  EXPECT_EQ(sol.best_benefit, 12);
  EXPECT_EQ(sol.min_optimal_size(), 3);
}

TEST(Knapsack, ChosenSubsetIsConsistent) {
  const KnapsackInstance inst{{7, 2, 9, 4}, {3, 1, 5, 2}, 6};
  const auto sol = solve_knapsack(inst);
  std::int64_t size = 0;
  std::int64_t benefit = 0;
  for (std::size_t i = 0; i < inst.count(); ++i) {
    if (sol.chosen[i]) {
      size += inst.sizes[i];
      benefit += inst.benefits[i];
    }
  }
  EXPECT_LE(size, inst.capacity);
  EXPECT_EQ(benefit, sol.best_benefit);
}

TEST(Knapsack, RejectsNonPositiveInputs) {
  EXPECT_THROW(solve_knapsack(KnapsackInstance{{0}, {1}, 5}), PreconditionError);
  EXPECT_THROW(solve_knapsack(KnapsackInstance{{1}, {0}, 5}), PreconditionError);
  EXPECT_THROW(solve_knapsack(KnapsackInstance{{1}, {1}, -1}), PreconditionError);
}

class KnapsackRandom : public testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackRandom, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + rng.below(10);
    KnapsackInstance inst;
    for (std::size_t i = 0; i < n; ++i) {
      inst.benefits.push_back(rng.uniform_int(1, 30));
      inst.sizes.push_back(rng.uniform_int(1, 15));
    }
    inst.capacity = rng.uniform_int(0, 40);
    const auto sol = solve_knapsack(inst);
    EXPECT_EQ(sol.best_benefit, brute_force_best(inst));
    EXPECT_EQ(sol.min_optimal_size(),
              brute_force_min_optimal_size(inst, sol.best_benefit));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandom, testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace rtsp
