// Cross-module property suite: every builder/improver combination must
// uphold the paper's invariants on randomized instances spanning tight,
// slack, equal-size and mixed-size regimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/cost_model.hpp"
#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "portfolio/portfolio.hpp"
#include "workload/paper_setup.hpp"
#include "workload/scenario.hpp"

namespace rtsp {
namespace {

struct Regime {
  const char* name;
  RandomInstanceSpec spec;
};

Regime regimes(int which) {
  RandomInstanceSpec tight;
  tight.servers = 10;
  tight.objects = 30;
  tight.max_replicas = 2;
  tight.capacity_slack = 0.0;

  RandomInstanceSpec slack = tight;
  slack.capacity_slack = 1.5;

  RandomInstanceSpec mixed = tight;
  mixed.min_object_size = 1;
  mixed.max_object_size = 7;

  RandomInstanceSpec single = tight;
  single.min_replicas = 1;
  single.max_replicas = 1;

  switch (which) {
    case 0: return {"tight", tight};
    case 1: return {"slack", slack};
    case 2: return {"mixed_sizes", mixed};
    default: return {"single_replica", single};
  }
}

class PropertySuite
    : public testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PropertySuite, AllPipelinesValidAndImproversMonotone) {
  const auto& [regime_idx, seed] = GetParam();
  const Regime regime = regimes(regime_idx);
  Rng rng(mix64(seed, static_cast<std::uint64_t>(regime_idx)));
  const Instance inst = random_instance(regime.spec, rng);
  const Cost lb = cost_lower_bound(inst.model, inst.x_old, inst.x_new);
  const Cost wc = worst_case_cost(inst.model, inst.x_old, inst.x_new);

  for (const std::string builder : {"AR", "GOLCF", "RDF", "GSDF"}) {
    Rng brng(mix64(seed, 17));
    const Schedule base =
        make_pipeline(builder).run(inst.model, inst.x_old, inst.x_new, brng);
    {
      const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, base);
      ASSERT_TRUE(v.valid) << regime.name << "/" << builder << ": " << v.to_string();
    }
    const Cost base_cost = schedule_cost(inst.model, base);
    EXPECT_GE(base_cost, lb) << regime.name << "/" << builder;
    EXPECT_LE(base_cost, wc) << regime.name << "/" << builder;

    // H1, H2 and their composition: valid, dummies never increase.
    for (const std::string imps : {"H1", "H2", "H1+H2", "H2+H1"}) {
      Rng prng(mix64(seed, 17));  // same builder stream
      const Schedule improved = make_pipeline(builder + "+" + imps)
                                    .run(inst.model, inst.x_old, inst.x_new, prng);
      const auto v =
          Validator::validate(inst.model, inst.x_old, inst.x_new, improved);
      ASSERT_TRUE(v.valid) << regime.name << "/" << builder << "+" << imps << ": "
                           << v.to_string();
      EXPECT_LE(improved.dummy_transfer_count(), base.dummy_transfer_count())
          << regime.name << "/" << builder << "+" << imps;
    }

    // OP1: valid, cost never increases.
    {
      Rng prng(mix64(seed, 17));
      const Schedule improved = make_pipeline(builder + "+OP1")
                                    .run(inst.model, inst.x_old, inst.x_new, prng);
      const auto v =
          Validator::validate(inst.model, inst.x_old, inst.x_new, improved);
      ASSERT_TRUE(v.valid) << regime.name << "/" << builder << "+OP1: "
                           << v.to_string();
      EXPECT_LE(schedule_cost(inst.model, improved), base_cost)
          << regime.name << "/" << builder << "+OP1";
      EXPECT_GE(schedule_cost(inst.model, improved), lb);
    }
  }

  // The paper's winner chain end-to-end.
  Rng prng(mix64(seed, 18));
  const Schedule full = make_pipeline("GOLCF+H1+H2+OP1")
                            .run(inst.model, inst.x_old, inst.x_new, prng);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, full);
  ASSERT_TRUE(v.valid) << regime.name << "/full: " << v.to_string();
  EXPECT_GE(schedule_cost(inst.model, full), lb);
  EXPECT_LE(schedule_cost(inst.model, full), wc);
}

INSTANTIATE_TEST_SUITE_P(
    RegimesBySeeds, PropertySuite,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values(1, 2, 3, 4, 5, 6)),
    [](const auto& info) {
      return std::string(regimes(std::get<0>(info.param)).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(PropertySuite, PortfolioNeverWorseThanAnyConstituentAtSameBudget) {
  // DESIGN.md §13: because the incumbent folds in every stage offer of every
  // candidate, and each candidate's rng stream is keyed by its spec (so the
  // standalone budgeted run replays the in-portfolio run exactly), the
  // portfolio cost is <= min over its constituent singles at the same tick
  // budget — at every budget, not just in the limit.
  const auto& [regime_idx, seed] = GetParam();
  const Regime regime = regimes(regime_idx);
  Rng rng(mix64(seed, static_cast<std::uint64_t>(regime_idx) + 101));
  const Instance inst = random_instance(regime.spec, rng);

  const std::vector<std::string> algos = {"GOLCF+H1+H2", "RDF+OP1", "AR+H1"};
  for (const std::uint64_t ticks :
       {std::uint64_t{500}, std::uint64_t{5'000}, std::uint64_t{50'000}}) {
    PortfolioOptions opts;
    opts.algorithms = algos;
    opts.budget.ticks = ticks;
    const PortfolioResult portfolio =
        solve_portfolio(inst.model, inst.x_old, inst.x_new, seed, opts);
    ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                    portfolio.schedule))
        << regime.name << " @" << ticks;

    Cost best_single = std::numeric_limits<Cost>::max();
    for (const std::string& algo : algos) {
      Budget budget;
      budget.ticks = ticks;
      const BudgetedRun single = run_pipeline_budgeted(
          inst.model, inst.x_old, inst.x_new, algo, seed, budget);
      ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                      single.schedule))
          << regime.name << "/" << algo << " @" << ticks;
      best_single = std::min(best_single, single.cost);
    }
    EXPECT_LE(portfolio.cost, best_single) << regime.name << " @" << ticks;
  }
}

TEST(PropertySuite, PaperScaleEndToEndOnce) {
  // One full-size Sec. 5.1 instance (r = 2) through the winner chain — a
  // smoke test that the real experiment configuration works under test.
  Rng rng(7);
  PaperSetup setup;
  setup.objects = 300;  // keep CI time modest; shape identical
  const Instance inst = make_equal_size_instance(setup, 2, rng);
  Rng r1(42);
  const Schedule base =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, r1);
  Rng r2(42);  // identical builder stream
  const Schedule full = make_pipeline("GOLCF+H1+H2+OP1")
                            .run(inst.model, inst.x_old, inst.x_new, r2);
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, full));
  // The headline claim of the paper, in miniature: at r = 2 the improver
  // chain eliminates most of GOLCF's dummy transfers and cuts its cost.
  EXPECT_LE(full.dummy_transfer_count(), base.dummy_transfer_count() / 2);
  EXPECT_LE(schedule_cost(inst.model, full), schedule_cost(inst.model, base));
}

}  // namespace
}  // namespace rtsp
