#include <gtest/gtest.h>

#include "core/action.hpp"
#include "core/schedule.hpp"

namespace rtsp {
namespace {

TEST(Action, FactoriesAndPredicates) {
  const Action t = Action::transfer(2, 5, 7);
  EXPECT_TRUE(t.is_transfer());
  EXPECT_FALSE(t.is_delete());
  EXPECT_FALSE(t.is_dummy_transfer());
  EXPECT_EQ(t.server, 2u);
  EXPECT_EQ(t.object, 5u);
  EXPECT_EQ(t.source, 7u);

  const Action td = Action::transfer(2, 5, kDummyServer);
  EXPECT_TRUE(td.is_dummy_transfer());

  const Action d = Action::remove(3, 1);
  EXPECT_TRUE(d.is_delete());
  EXPECT_FALSE(d.is_dummy_transfer());
}

TEST(Action, ToStringFormats) {
  EXPECT_EQ(Action::transfer(2, 5, 7).to_string(), "T(S2 <- O5 from S7)");
  EXPECT_EQ(Action::transfer(2, 5, kDummyServer).to_string(),
            "T(S2 <- O5 from dummy)");
  EXPECT_EQ(Action::remove(3, 1).to_string(), "D(S3, O1)");
}

TEST(Action, EqualityIgnoresSourceForDeletes) {
  Action d1 = Action::remove(1, 2);
  Action d2 = Action::remove(1, 2);
  d2.source = 99;  // irrelevant field
  EXPECT_EQ(d1, d2);
  EXPECT_NE(Action::transfer(1, 2, 0), Action::transfer(1, 2, 3));
  EXPECT_NE(Action::transfer(1, 2, 0), Action::remove(1, 2));
}

TEST(Schedule, CountsAndPositions) {
  Schedule h({Action::remove(0, 1), Action::transfer(1, 1, 0),
              Action::transfer(2, 1, kDummyServer), Action::transfer(0, 2, 1),
              Action::remove(1, 2)});
  EXPECT_EQ(h.size(), 5u);
  EXPECT_EQ(h.transfer_count(), 3u);
  EXPECT_EQ(h.delete_count(), 2u);
  EXPECT_EQ(h.dummy_transfer_count(), 1u);
  EXPECT_EQ(h.transfer_positions_of(1), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(h.transfer_positions_of(2), (std::vector<std::size_t>{3}));
  EXPECT_TRUE(h.transfer_positions_of(0).empty());
}

TEST(Schedule, InsertEraseMutation) {
  Schedule h;
  h.push_back(Action::remove(0, 0));
  h.push_back(Action::remove(0, 1));
  h.insert(1, Action::transfer(1, 0, 0));
  EXPECT_EQ(h.size(), 3u);
  EXPECT_TRUE(h[1].is_transfer());
  h.erase(0);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h[0].is_transfer());
  h.clear();
  EXPECT_TRUE(h.empty());
}

TEST(Schedule, ToStringNumbersActions) {
  Schedule h({Action::remove(0, 0), Action::transfer(1, 0, 0)});
  const std::string s = h.to_string();
  EXPECT_NE(s.find("0: D(S0, O0)"), std::string::npos);
  EXPECT_NE(s.find("1: T(S1 <- O0 from S0)"), std::string::npos);
}

}  // namespace
}  // namespace rtsp
