#include "extension/dependency_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

TEST(DependencyGraph, TransferDependsOnItsSourceCreation) {
  // T(1,0,0) creates the source used by T(2,0,1).
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 1)});
  const DependencyGraph dag(h);
  EXPECT_TRUE(dag.dependencies_of(0).empty());
  EXPECT_EQ(dag.dependencies_of(1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.dependents_of(0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dag.critical_path_length(), 2u);
}

TEST(DependencyGraph, XOldSourcesHaveNoDependency) {
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 1, 0)});
  const DependencyGraph dag(h);
  EXPECT_TRUE(dag.dependencies_of(0).empty());
  EXPECT_TRUE(dag.dependencies_of(1).empty());
  EXPECT_EQ(dag.critical_path_length(), 1u);
}

TEST(DependencyGraph, DeletionWaitsForReaders) {
  // D(0,0) must wait for T(1,0,0) and T(2,0,0), which both read (0,0).
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 0),
                    Action::remove(0, 0)});
  const DependencyGraph dag(h);
  EXPECT_EQ(dag.dependencies_of(2), (std::vector<std::size_t>{0, 1}));
}

TEST(DependencyGraph, DeletionThenRecreationChains) {
  // Delete (0,0), then re-create it from S1: the transfer depends on the
  // deletion; a second deletion depends on the creating transfer.
  const Schedule h({Action::transfer(1, 0, 0), Action::remove(0, 0),
                    Action::transfer(0, 0, 1), Action::remove(0, 0)});
  const DependencyGraph dag(h);
  // D(0,0)@1 waits for its reader T(1,0,0)@0.
  EXPECT_EQ(dag.dependencies_of(1), (std::vector<std::size_t>{0}));
  // T(0,0,1)@2 waits for D(0,0)@1 (slot) and T(1,0,0)@0 (its source).
  const auto deps2 = dag.dependencies_of(2);
  EXPECT_NE(std::find(deps2.begin(), deps2.end(), 1u), deps2.end());
  EXPECT_NE(std::find(deps2.begin(), deps2.end(), 0u), deps2.end());
  // D(0,0)@3 waits for the re-creation @2.
  const auto deps3 = dag.dependencies_of(3);
  EXPECT_NE(std::find(deps3.begin(), deps3.end(), 2u), deps3.end());
  EXPECT_EQ(dag.critical_path_length(), 4u);
}

TEST(DependencyGraph, DummyTransfersDependOnNothingUpstream) {
  const Schedule h({Action::remove(0, 0), Action::transfer(1, 0, kDummyServer)});
  const DependencyGraph dag(h);
  // The dummy source always exists; only slot conflicts would matter and
  // there are none here (different servers).
  EXPECT_TRUE(dag.dependencies_of(1).empty());
}

TEST(DependencyGraph, IndependentActionsStayIndependent) {
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(3, 1, 2),
                    Action::remove(0, 0), Action::remove(2, 1)});
  const DependencyGraph dag(h);
  EXPECT_EQ(dag.critical_path_length(), 2u);  // reader -> deletion pairs
  EXPECT_TRUE(dag.dependencies_of(1).empty());
  EXPECT_EQ(dag.dependencies_of(2), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.dependencies_of(3), (std::vector<std::size_t>{1}));
}

TEST(DependencyGraph, EdgesAlwaysPointBackwards) {
  Rng rng(123);
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 20;
  const Instance inst = random_instance(spec, rng);
  const Schedule h =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, rng);
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  const DependencyGraph dag(h);
  EXPECT_TRUE(dag.edges_point_backwards());
  EXPECT_LE(dag.critical_path_length(), h.size());
  EXPECT_GE(dag.critical_path_length(), h.empty() ? 0u : 1u);
}

}  // namespace
}  // namespace rtsp
