#include "support/string_util.hpp"

#include <gtest/gtest.h>

namespace rtsp {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a+b+c", '+'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a++c", '+'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", '+'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", '+'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split("+", '+'), (std::vector<std::string>{"", ""}));
}

TEST(Trim, RemovesEdgesOnly) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("ok"), "ok");
}

TEST(ToLower, Basics) {
  EXPECT_EQ(to_lower("GOLCF+H1"), "golcf+h1");
  EXPECT_EQ(to_lower("already"), "already");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, "+"), "solo");
  EXPECT_EQ(join({}, "+"), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("rtsp-instance v1", "rtsp-instance"));
  EXPECT_FALSE(starts_with("rtsp", "rtsp-instance"));
  EXPECT_TRUE(starts_with("anything", ""));
}

}  // namespace
}  // namespace rtsp
