// Tests of the Sec. 3.4 Knapsack -> RTSP reduction gadget.
#include "exact/reduction.hpp"

#include <gtest/gtest.h>

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "exact/branch_and_bound.hpp"

namespace rtsp {
namespace {

KnapsackInstance tiny() { return KnapsackInstance{{4, 3}, {2, 3}, 3}; }

TEST(Reduction, BuildsTheFig2Structure) {
  const KnapsackInstance ks = tiny();
  const ReducedInstance red = reduce_knapsack_to_rtsp(ks);
  const Instance& inst = red.instance;
  const std::size_t n = ks.count();
  EXPECT_EQ(inst.model.num_servers(), n + 3);
  EXPECT_EQ(inst.model.num_objects(), n + 1);
  EXPECT_EQ(red.size_product, 6);
  // b'_i = b_i * Prod(s) / s_i.
  EXPECT_EQ(red.scaled_benefits[0], 4 * 6 / 2);
  EXPECT_EQ(red.scaled_benefits[1], 3 * 6 / 3);
  // Link costs per Fig. 2 (others follow shortest paths).
  const ServerId sn1 = 2, sn2 = 3, sn3 = 4;
  EXPECT_EQ(inst.model.costs().at(sn1, sn2), 1);
  EXPECT_EQ(inst.model.costs().at(0, sn1), red.scaled_benefits[0]);
  EXPECT_EQ(inst.model.costs().at(1, sn1), red.scaled_benefits[1]);
  EXPECT_EQ(inst.model.costs().at(sn3, sn2),
            red.scaled_benefits[0] + red.scaled_benefits[1] + 2);
  // Big object size = sum of knapsack sizes.
  EXPECT_EQ(inst.model.object_size(static_cast<ObjectId>(n)), 5);
  // Capacities: S_{n+1} has S + sum(s), S_{n+2} and S_{n+3} have sum(s).
  EXPECT_EQ(inst.model.capacity(sn1), 3 + 5);
  EXPECT_EQ(inst.model.capacity(sn2), 5);
  EXPECT_EQ(inst.model.capacity(sn3), 5);
  // X_old / X_new shape: the two middle servers interchange objects.
  EXPECT_TRUE(inst.x_old.test(sn1, static_cast<ObjectId>(n)));
  EXPECT_TRUE(inst.x_new.test(sn2, static_cast<ObjectId>(n)));
  for (ObjectId k = 0; k < n; ++k) {
    EXPECT_TRUE(inst.x_old.test(sn2, k));
    EXPECT_TRUE(inst.x_new.test(sn1, k));
    EXPECT_TRUE(inst.x_old.test(static_cast<ServerId>(k), k));
    EXPECT_TRUE(inst.x_new.test(static_cast<ServerId>(k), k));
  }
  EXPECT_TRUE(storage_feasible(inst.model, inst.x_old));
  EXPECT_TRUE(storage_feasible(inst.model, inst.x_new));
}

TEST(Reduction, OptimalRtspCostEqualsClosedForm) {
  const KnapsackInstance ks = tiny();
  const ReducedInstance red = reduce_knapsack_to_rtsp(ks);
  const BnbResult result = solve_exact(red.instance);
  ASSERT_TRUE(result.proved_optimal);
  EXPECT_TRUE(Validator::is_valid(red.instance.model, red.instance.x_old,
                                  red.instance.x_new, result.schedule));
  EXPECT_EQ(result.cost, reduced_optimal_cost(ks));
}

TEST(Reduction, ClosedFormSpotCheck) {
  // tiny(): best knapsack picks item 0 (benefit 4, size 2 <= 3).
  // Optimal RTSP = sigma* + sum(s) + Prod(s) * (sum(b) - B*)
  //              = 2 + 5 + 6 * (7 - 4) = 25.
  EXPECT_EQ(reduced_optimal_cost(tiny()), 25);
}

TEST(Reduction, ThresholdFormula) {
  // threshold = sum(s) + (sum(b) - K) * Prod(s) + S.
  EXPECT_EQ(reduction_threshold(tiny(), 4), 5 + (7 - 4) * 6 + 3);
  // Decision link: schedule of cost <= threshold(K) exists iff knapsack
  // can reach benefit K. B* = 4 here.
  const Cost opt = reduced_optimal_cost(tiny());
  EXPECT_LE(opt, reduction_threshold(tiny(), 4));
  EXPECT_GT(opt, reduction_threshold(tiny(), 5));
}

class ReductionRandom : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionRandom, ExactSolverAgreesWithClosedForm) {
  Rng rng(GetParam());
  KnapsackInstance ks;
  const std::size_t n = 2 + rng.below(2);  // keep B&B affordable
  for (std::size_t i = 0; i < n; ++i) {
    ks.benefits.push_back(rng.uniform_int(1, 5));
    ks.sizes.push_back(rng.uniform_int(1, 3));
  }
  ks.capacity = rng.uniform_int(1, 6);
  const ReducedInstance red = reduce_knapsack_to_rtsp(ks);
  BnbOptions opts;
  opts.max_nodes = 2'000'000;
  const BnbResult result = solve_exact(red.instance, opts);
  ASSERT_TRUE(result.proved_optimal);
  EXPECT_EQ(result.cost, reduced_optimal_cost(ks))
      << "n=" << n << " cap=" << ks.capacity;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionRandom, testing::Values(10, 20, 30));

}  // namespace
}  // namespace rtsp
