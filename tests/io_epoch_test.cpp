// Epoch stream ("rtsp-epochs" v1) and placement ("rtsp-placement" v1)
// documents: canonical pair encoding, stream/file round-trips, byte
// canonicality (equal placements serialize identically — what lets
// check.sh `cmp` the daemon's final state), and the parser negatives.
#include "io/epoch_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "support/json.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

ReplicationMatrix sample_placement() {
  ReplicationMatrix x(3, 5);
  x.set(0, 4);
  x.set(0, 1);
  x.set(2, 0);
  x.set(1, 3);
  return x;
}

TEST(EpochIo, PlacementPairsAreCanonical) {
  const auto pairs = placement_pairs(sample_placement());
  ASSERT_EQ(pairs.size(), 4u);
  // Server-major, both ascending — independent of insertion order.
  EXPECT_EQ(pairs[0], (std::pair<ServerId, ObjectId>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<ServerId, ObjectId>{0, 4}));
  EXPECT_EQ(pairs[2], (std::pair<ServerId, ObjectId>{1, 3}));
  EXPECT_EQ(pairs[3], (std::pair<ServerId, ObjectId>{2, 0}));
  EXPECT_TRUE(placement_from_pair_list(3, 5, pairs) == sample_placement());
}

TEST(EpochIo, PairsJsonParsesBackViaJsonValue) {
  const ReplicationMatrix x = sample_placement();
  const std::string json = placement_pairs_json(x);
  const JsonValue v = parse_json(json);
  EXPECT_TRUE(placement_from_pairs(v, 3, 5) == x);
}

TEST(EpochIo, NonCanonicalOrderRejected) {
  const JsonValue v = parse_json("[[1,0],[0,1]]");
  EXPECT_THROW(placement_from_pairs(v, 3, 5), std::runtime_error);
}

TEST(EpochIo, OutOfRangeIdsRejected) {
  EXPECT_THROW(placement_from_pairs(parse_json("[[3,0]]"), 3, 5),
               std::runtime_error);
  EXPECT_THROW(placement_from_pairs(parse_json("[[0,5]]"), 3, 5),
               std::runtime_error);
  EXPECT_THROW(
      placement_from_pair_list(3, 5, {{0, 9}}),
      std::runtime_error);
}

TEST(EpochIo, StreamRoundTripsThroughStringAndFile) {
  EpochStreamDoc doc;
  doc.servers = 3;
  doc.objects = 5;
  doc.epochs.push_back(sample_placement());
  ReplicationMatrix second = sample_placement();
  second.set(1, 1);
  doc.epochs.push_back(second);

  std::ostringstream os;
  write_epoch_stream(os, doc);
  std::istringstream is(os.str());
  const EpochStreamDoc back = read_epoch_stream(is);
  EXPECT_EQ(back.servers, 3u);
  EXPECT_EQ(back.objects, 5u);
  ASSERT_EQ(back.epochs.size(), 2u);
  EXPECT_TRUE(back.epochs[0] == doc.epochs[0]);
  EXPECT_TRUE(back.epochs[1] == doc.epochs[1]);

  const std::string path = temp_path("epochs_roundtrip");
  write_epoch_stream_file(path, doc);
  const EpochStreamDoc from_file = read_epoch_stream_file(path);
  ASSERT_EQ(from_file.epochs.size(), 2u);
  EXPECT_TRUE(from_file.epochs[1] == doc.epochs[1]);
}

TEST(EpochIo, StreamHeaderMismatchRejected) {
  std::istringstream bad_format(
      "{\"format\":\"rtsp-nope\",\"version\":1,\"servers\":1,\"objects\":1,"
      "\"epochs\":0}\n");
  EXPECT_THROW(read_epoch_stream(bad_format), std::runtime_error);

  std::istringstream missing_epoch(
      "{\"format\":\"rtsp-epochs\",\"version\":1,\"servers\":1,\"objects\":1,"
      "\"epochs\":2}\n{\"epoch\":1,\"place\":[[0,0]]}\n");
  EXPECT_THROW(read_epoch_stream(missing_epoch), std::runtime_error);
}

TEST(EpochIo, PlacementFileRoundTripsAndIsByteCanonical) {
  const std::string a = temp_path("placement_a");
  const std::string b = temp_path("placement_b");
  const ReplicationMatrix x = sample_placement();
  write_placement_file(a, x);
  EXPECT_TRUE(read_placement_file(a) == x);

  // The same replica set built in a different insertion order must
  // serialize to identical bytes.
  ReplicationMatrix y(3, 5);
  y.set(1, 3);
  y.set(2, 0);
  y.set(0, 1);
  y.set(0, 4);
  write_placement_file(b, y);
  std::ifstream fa(a, std::ios::binary);
  std::ifstream fb(b, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

}  // namespace
}  // namespace rtsp
