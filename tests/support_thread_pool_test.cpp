#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace rtsp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadStillWorks) {
  std::vector<int> out(50, 0);
  parallel_for(std::size_t{1}, out.size(),
               [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 100,
                            [&](std::size_t i) {
                              if (i == 37) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ParallelFor, MoreTasksThanThreadsBalances) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 1000, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPoolZeroMeansHardwareConcurrency, Constructs) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

}  // namespace
}  // namespace rtsp
