#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/obs.hpp"
#include "support/thread_pool.hpp"

namespace rtsp::obs {
namespace {

/// Every test runs with recording on and a clean slate; names registered by
/// earlier tests survive (the registry interns process-wide) but their
/// values are zeroed.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override { set_enabled(false); }
};

TEST_F(ObsMetricsTest, CounterCountsAndInternsByName) {
  Counter a = MetricsRegistry::instance().counter("test.alpha");
  Counter a2 = MetricsRegistry::instance().counter("test.alpha");
  a.add(3);
  a2.inc();  // same slot: both handles feed one total
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.alpha"), 4u);
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.never-registered"),
            0u);
}

TEST_F(ObsMetricsTest, DisabledRecordingCountsNothing) {
  Counter c = MetricsRegistry::instance().counter("test.disabled");
  set_enabled(false);
  c.add(100);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.disabled"), 1u);
}

TEST_F(ObsMetricsTest, ExactTotalsAcrossTransientPoolThreads) {
  // Worker threads of a transient pool exit (and fold their shards) when
  // parallel_for's pool is destroyed, so the total must be exact.
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  Counter c = MetricsRegistry::instance().counter("test.parallel");
  parallel_for(4, kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.inc();
  });
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.parallel"),
            kTasks * kPerTask);
}

TEST_F(ObsMetricsTest, ExactTotalsWithLiveWorkerThreads) {
  // With a persistent pool the worker shards are still live at snapshot
  // time; parallel_for's join (future.get) orders their writes before our
  // reads, so the sum over live shards is exact too.
  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kPerTask = 500;
  Counter c = MetricsRegistry::instance().counter("test.live");
  ThreadPool pool(3);
  parallel_for(pool, kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.inc();
  });
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.live"),
            kTasks * kPerTask);

#if RTSP_OBS_ENABLED
  // Macro-based increments (call-site interned handles) land in the same
  // totals, including from pool threads.
  parallel_for(pool, kTasks, [&](std::size_t) { OBS_COUNT("test.live"); });
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.live"),
            kTasks * kPerTask + kTasks);
#endif
}

TEST_F(ObsMetricsTest, GaugeTracksValueAndMax) {
  Gauge g = MetricsRegistry::instance().gauge("test.depth");
  g.set(5);
  g.set(9);
  g.set(2);
  g.add(-2);
  EXPECT_EQ(g.value(), 0);
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  bool found = false;
  for (const auto& gv : snap.gauges) {
    if (gv.name != "test.depth") continue;
    found = true;
    EXPECT_EQ(gv.value, 0);
    EXPECT_EQ(gv.max, 9);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsMetricsTest, HistogramAggregatesSamples) {
  LatencyHistogram h = MetricsRegistry::instance().histogram("test.lat");
  h.record_ns(1'000);      // 1 us
  h.record_ns(1'000'000);  // 1 ms
  h.record_ns(3'000'000);  // 3 ms
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  bool found = false;
  for (const auto& hv : snap.histograms) {
    if (hv.name != "test.lat") continue;
    found = true;
    EXPECT_EQ(hv.count, 3u);
    EXPECT_NEAR(hv.mean_us, (1.0 + 1000.0 + 3000.0) / 3.0, 1e-9);
    EXPECT_NEAR(hv.max_us, 3000.0, 1e-9);
    // Bucketed percentiles report the bucket's upper edge: a conservative
    // bound that is never below the true sample.
    EXPECT_GE(hv.p50_us, 1000.0);
    EXPECT_GE(hv.p99_us, 3000.0);
    EXPECT_GE(hv.p99_us, hv.p50_us);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsMetricsTest, ResetZeroesValuesButKeepsNames) {
  Counter c = MetricsRegistry::instance().counter("test.reset");
  Gauge g = MetricsRegistry::instance().gauge("test.reset_gauge");
  c.add(7);
  g.set(7);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.reset"), 0u);
  c.add(2);  // old handles stay valid after reset
  EXPECT_EQ(MetricsRegistry::instance().counter_value("test.reset"), 2u);
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("test.reset"), 2u);
}

TEST_F(ObsMetricsTest, SnapshotCounterLookupFindsRegisteredNames) {
  Counter c = MetricsRegistry::instance().counter("test.lookup");
  c.add(11);
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter("test.lookup"), 11u);
  EXPECT_EQ(snap.counter("test.not-there"), 0u);
}

}  // namespace
}  // namespace rtsp::obs
