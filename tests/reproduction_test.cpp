// Qualitative reproduction of the paper's evaluation (Sec. 5.2) on
// scaled-down figures: the orderings and trends the paper reports must hold
// on our instances too. Runs every figure sweep end to end through the
// experiment harness (12 servers / 120 objects instead of 50 / 1000 so the
// whole suite stays fast; the full-scale sweeps live in bench/).
#include <gtest/gtest.h>

#include "experiment/figures.hpp"

namespace rtsp {
namespace {

PaperSetup scaled_setup() {
  PaperSetup s;
  s.servers = 12;
  s.objects = 120;
  return s;
}

SweepResult run_figure_scaled(int number, std::size_t trials = 4) {
  const FigureSpec fig = paper_figure(number, scaled_setup());
  SweepConfig cfg;
  cfg.algorithms = fig.algorithms;
  cfg.trials = trials;
  cfg.base_seed = 0xfeedULL + static_cast<std::uint64_t>(number);
  return run_sweep(fig.points, cfg);
}

double cell_mean(const SweepResult& r, std::size_t point, const std::string& algo,
                 Metric metric) {
  for (std::size_t a = 0; a < r.algorithms.size(); ++a) {
    if (r.algorithms[a] == algo) {
      return metric_samples(r.cells[point][a], metric).mean();
    }
  }
  ADD_FAILURE() << "algorithm " << algo << " not in sweep";
  return 0.0;
}

TEST(Reproduction, Fig4DummiesFallWithReplicasAndH1H2Dominates) {
  const SweepResult r = run_figure_scaled(4);
  // (a) Dummy transfers drop as replicas increase, for every algorithm.
  for (const std::string algo : {"AR", "GOLCF", "AR+H1+H2", "GOLCF+H1+H2"}) {
    const double at1 = cell_mean(r, 0, algo, Metric::DummyTransfers);
    const double at5 = cell_mean(r, 4, algo, Metric::DummyTransfers);
    EXPECT_LT(at5, at1 * 0.5) << algo;
  }
  // (b) GOLCF beats AR where dummies are plentiful (r <= 3). At r = 4..5
  // both are near zero and AR's lazy deletions can edge ahead — visible in
  // the paper's Fig. 4 as the curves converging.
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_LE(cell_mean(r, p, "GOLCF", Metric::DummyTransfers),
              cell_mean(r, p, "AR", Metric::DummyTransfers))
        << "r=" << r.point_labels[p];
  }
  // (c) H1+H2 improves both bases throughout, drastically at r = 1..2.
  for (std::size_t p = 0; p < r.point_labels.size(); ++p) {
    EXPECT_LE(cell_mean(r, p, "GOLCF+H1+H2", Metric::DummyTransfers),
              cell_mean(r, p, "GOLCF", Metric::DummyTransfers));
    EXPECT_LE(cell_mean(r, p, "AR+H1+H2", Metric::DummyTransfers),
              cell_mean(r, p, "AR", Metric::DummyTransfers));
  }
  EXPECT_LT(cell_mean(r, 1, "GOLCF+H1+H2", Metric::DummyTransfers),
            cell_mean(r, 1, "GOLCF", Metric::DummyTransfers) * 0.6)
      << "H1+H2 should nearly nullify dummies at r = 2";
}

TEST(Reproduction, Fig5WinnerChainGivesCheapestSchedules) {
  const SweepResult r = run_figure_scaled(5);
  for (std::size_t p = 0; p < r.point_labels.size(); ++p) {
    const double ar = cell_mean(r, p, "AR", Metric::ImplementationCost);
    const double golcf = cell_mean(r, p, "GOLCF", Metric::ImplementationCost);
    const double winner =
        cell_mean(r, p, "GOLCF+H1+H2+OP1", Metric::ImplementationCost);
    EXPECT_LE(golcf, ar) << "r=" << r.point_labels[p];
    EXPECT_LE(winner, golcf * 1.02) << "r=" << r.point_labels[p];
  }
  // Where dummies are plentiful (r = 1), eliminating them must cut cost
  // noticeably versus OP1 alone.
  EXPECT_LT(cell_mean(r, 0, "GOLCF+H1+H2+OP1", Metric::ImplementationCost),
            cell_mean(r, 0, "GOLCF+OP1", Metric::ImplementationCost));
}

TEST(Reproduction, Fig6And7UniformSizesShowTheSameTrends) {
  const SweepResult r6 = run_figure_scaled(6);
  for (std::size_t p = 0; p < r6.point_labels.size(); ++p) {
    EXPECT_LE(cell_mean(r6, p, "GOLCF+H1+H2", Metric::DummyTransfers),
              cell_mean(r6, p, "GOLCF", Metric::DummyTransfers))
        << "r=" << r6.point_labels[p];
  }
  EXPECT_LT(cell_mean(r6, 4, "GOLCF", Metric::DummyTransfers),
            cell_mean(r6, 0, "GOLCF", Metric::DummyTransfers));

  const SweepResult r7 = run_figure_scaled(7);
  for (std::size_t p = 0; p < r7.point_labels.size(); ++p) {
    EXPECT_LE(
        cell_mean(r7, p, "GOLCF+H1+H2+OP1", Metric::ImplementationCost),
        cell_mean(r7, p, "GOLCF", Metric::ImplementationCost) * 1.02)
        << "r=" << r7.point_labels[p];
  }
  EXPECT_LT(cell_mean(r7, 0, "GOLCF+H1+H2+OP1", Metric::ImplementationCost),
            cell_mean(r7, 0, "GOLCF", Metric::ImplementationCost));
}

TEST(Reproduction, Fig8And9ExtraCapacityHelpsH1H2Most) {
  const SweepResult r8 = run_figure_scaled(8, 6);
  const std::size_t last = r8.point_labels.size() - 1;
  // H1+H2 exploits slack: its dummy count falls clearly from no-slack to
  // full-slack, and stays below plain GOLCF everywhere.
  EXPECT_LT(cell_mean(r8, last, "GOLCF+H1+H2", Metric::DummyTransfers),
            cell_mean(r8, 0, "GOLCF+H1+H2", Metric::DummyTransfers));
  for (std::size_t p = 0; p < r8.point_labels.size(); ++p) {
    EXPECT_LE(cell_mean(r8, p, "GOLCF+H1+H2", Metric::DummyTransfers),
              cell_mean(r8, p, "GOLCF", Metric::DummyTransfers))
        << "extra=" << r8.point_labels[p];
  }

  const SweepResult r9 = run_figure_scaled(9, 6);
  double sum_winner = 0.0;
  double sum_op1 = 0.0;
  for (std::size_t p = 0; p < r9.point_labels.size(); ++p) {
    sum_winner += cell_mean(r9, p, "GOLCF+H1+H2+OP1", Metric::ImplementationCost);
    sum_op1 += cell_mean(r9, p, "GOLCF+OP1", Metric::ImplementationCost);
  }
  EXPECT_LE(sum_winner, sum_op1) << "averaged over the sweep";
}

TEST(Reproduction, FigureSpecsAreWellFormed) {
  const auto figs = all_paper_figures(scaled_setup());
  ASSERT_EQ(figs.size(), 6u);
  for (const auto& f : figs) {
    EXPECT_FALSE(f.points.empty()) << f.id;
    EXPECT_FALSE(f.algorithms.empty()) << f.id;
    EXPECT_FALSE(f.x_label.empty()) << f.id;
  }
  EXPECT_THROW(paper_figure(3, scaled_setup()), PreconditionError);
  EXPECT_THROW(paper_figure(10, scaled_setup()), PreconditionError);
}

}  // namespace
}  // namespace rtsp
