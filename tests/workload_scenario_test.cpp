#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include "core/delta.hpp"

namespace rtsp {
namespace {

TEST(MinimumCapacities, TakesTheRowMaximum) {
  ObjectCatalog objects({2, 3, 5});
  ReplicationMatrix x_old(2, 3);
  x_old.set(0, 0);  // server 0 uses 2
  x_old.set(1, 2);  // server 1 uses 5
  ReplicationMatrix x_new(2, 3);
  x_new.set(0, 1);  // server 0 will use 3
  x_new.set(0, 2);  // ... plus 5 = 8
  const auto caps = minimum_capacities(objects, x_old, x_new);
  EXPECT_EQ(caps, (std::vector<Size>{8, 5}));
}

class RandomInstanceSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceSeeds, SatisfiesItsOwnInvariants) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 9;
  spec.objects = 30;
  spec.min_replicas = 1;
  spec.max_replicas = 3;
  const Instance inst = random_instance(spec, rng);
  EXPECT_EQ(inst.model.num_servers(), 9u);
  EXPECT_EQ(inst.model.num_objects(), 30u);
  EXPECT_TRUE(storage_feasible(inst.model, inst.x_old));
  EXPECT_TRUE(storage_feasible(inst.model, inst.x_new));
  EXPECT_EQ(inst.x_old.overlap(inst.x_new), 0u);  // zero_overlap default
  for (ObjectId k = 0; k < 30; ++k) {
    const std::size_t r_old = inst.x_old.replica_count(k);
    EXPECT_GE(r_old, 1u);
    EXPECT_LE(r_old, 3u);
    EXPECT_EQ(inst.x_new.replica_count(k), r_old);
  }
}

TEST_P(RandomInstanceSeeds, OverlapAllowedWhenRequested) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.zero_overlap = false;
  spec.servers = 4;       // dense: overlap statistically certain
  spec.objects = 40;
  spec.min_replicas = 2;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  EXPECT_GT(inst.x_old.overlap(inst.x_new), 0u);
}

TEST_P(RandomInstanceSeeds, SlackAddsFreeSpace) {
  Rng rng(GetParam());
  RandomInstanceSpec tight;
  tight.capacity_slack = 0.0;
  RandomInstanceSpec slack = tight;
  slack.capacity_slack = 2.0;
  Rng rng2 = rng;  // same stream: identical structure, different capacities
  const Instance a = random_instance(tight, rng);
  const Instance b = random_instance(slack, rng2);
  for (ServerId i = 0; i < a.model.num_servers(); ++i) {
    EXPECT_EQ(b.model.capacity(i),
              a.model.capacity(i) + 2 * tight.max_object_size);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceSeeds, testing::Values(3, 5, 8, 21));

TEST(RandomInstance, InvalidSpecsThrow) {
  Rng rng(1);
  RandomInstanceSpec spec;
  spec.servers = 4;
  spec.max_replicas = 3;  // needs 6 servers with zero overlap
  EXPECT_THROW(random_instance(spec, rng), PreconditionError);
  RandomInstanceSpec spec2;
  spec2.min_replicas = 3;
  spec2.max_replicas = 2;
  EXPECT_THROW(random_instance(spec2, rng), PreconditionError);
}

}  // namespace
}  // namespace rtsp
