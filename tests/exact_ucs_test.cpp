// Cross-checks between the two independent exact methods: uniform-cost
// search must agree with branch-and-bound everywhere both prove optimality.
#include "exact/uniform_cost_search.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "exact/reduction.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

TEST(Ucs, IdentityInstanceIsFree) {
  SystemModel model = testutil::uniform_model({2, 2}, {1, 1});
  const auto x = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const Instance inst{std::move(model), x, x};
  const UcsResult r = solve_exact_ucs(inst);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.schedule.empty());
}

TEST(Ucs, AgreesWithBnbOnFig1) {
  const Instance inst = testutil::fig1_instance();
  const UcsResult ucs = solve_exact_ucs(inst);
  const BnbResult bnb = solve_exact(inst);
  ASSERT_TRUE(ucs.proved_optimal);
  ASSERT_TRUE(bnb.proved_optimal);
  EXPECT_EQ(ucs.cost, bnb.cost);
  EXPECT_EQ(ucs.cost, 5);
  EXPECT_TRUE(
      Validator::is_valid(inst.model, inst.x_old, inst.x_new, ucs.schedule));
  EXPECT_EQ(schedule_cost(inst.model, ucs.schedule), ucs.cost);
}

TEST(Ucs, AgreesWithBnbOnFig3) {
  const Instance inst = testutil::fig3_instance();
  const UcsResult ucs = solve_exact_ucs(inst);
  const BnbResult bnb = solve_exact(inst);
  ASSERT_TRUE(ucs.proved_optimal);
  ASSERT_TRUE(bnb.proved_optimal);
  EXPECT_EQ(ucs.cost, bnb.cost);
  EXPECT_TRUE(
      Validator::is_valid(inst.model, inst.x_old, inst.x_new, ucs.schedule));
}

TEST(Ucs, AgreesWithReductionClosedForm) {
  const KnapsackInstance ks{{4, 3}, {2, 3}, 3};
  const ReducedInstance red = reduce_knapsack_to_rtsp(ks);
  const UcsResult ucs = solve_exact_ucs(red.instance);
  ASSERT_TRUE(ucs.proved_optimal);
  EXPECT_EQ(ucs.cost, reduced_optimal_cost(ks));
}

class UcsVsBnb : public testing::TestWithParam<std::uint64_t> {};

TEST_P(UcsVsBnb, SameOptimaOnRandomTinyInstances) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 4;
  spec.objects = 5;
  spec.max_replicas = 1;
  spec.max_object_size = 2;
  const Instance inst = random_instance(spec, rng);
  const UcsResult ucs = solve_exact_ucs(inst);
  BnbOptions bopts;
  bopts.max_nodes = 3'000'000;
  const BnbResult bnb = solve_exact(inst, bopts);
  if (!ucs.proved_optimal || !bnb.proved_optimal) {
    GTEST_SKIP() << "budget exhausted";
  }
  EXPECT_EQ(ucs.cost, bnb.cost) << "seed " << GetParam();
  EXPECT_TRUE(
      Validator::is_valid(inst.model, inst.x_old, inst.x_new, ucs.schedule));
  EXPECT_EQ(schedule_cost(inst.model, ucs.schedule), ucs.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcsVsBnb,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Ucs, BudgetExhaustionFallsBackToWorstCase) {
  Rng rng(3);
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 10;
  const Instance inst = random_instance(spec, rng);
  UcsOptions opts;
  opts.max_states = 3;
  const UcsResult r = solve_exact_ucs(inst, opts);
  EXPECT_FALSE(r.proved_optimal);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.schedule));
}

TEST(Ucs, InfeasibleTargetThrows) {
  SystemModel model = testutil::uniform_model({1}, {1, 1});
  ReplicationMatrix x_new(1, 2);
  x_new.set(0, 0);
  x_new.set(0, 1);
  const Instance inst{std::move(model), ReplicationMatrix(1, 2), x_new};
  EXPECT_THROW(solve_exact_ucs(inst), PreconditionError);
}

}  // namespace
}  // namespace rtsp
