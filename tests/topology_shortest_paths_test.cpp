#include "topology/shortest_paths.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace rtsp {
namespace {

/// Brute-force Floyd-Warshall used as an oracle.
std::vector<std::vector<LinkCost>> floyd_warshall(const Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<LinkCost>> d(n, std::vector<LinkCost>(n, kUnreachable));
  for (std::size_t i = 0; i < n; ++i) d[i][i] = 0;
  for (const auto& e : g.edges()) {
    d[e.u][e.v] = std::min(d[e.u][e.v], e.cost);
    d[e.v][e.u] = std::min(d[e.v][e.u], e.cost);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (d[i][k] == kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (d[k][j] == kUnreachable) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = line_graph(4, 3);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d, (std::vector<LinkCost>{0, 3, 6, 9}));
}

TEST(Dijkstra, UnreachableNodesReported) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Dijkstra, PicksCheaperOfParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1, 9);
  g.add_edge(0, 1, 4);
  EXPECT_EQ(dijkstra(g, 0)[1], 4);
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(dijkstra(g, 2), PreconditionError);
}

class ApspSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ApspSeeds, MatchesFloydWarshallOnRandomGraphs) {
  Rng rng(GetParam());
  const Graph g = erdos_renyi_connected(20, 0.15, {1, 9}, rng);
  const auto fast = all_pairs_shortest_paths(g);
  const auto oracle = floyd_warshall(g);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_EQ(fast[i][j], oracle[i][j]) << i << "->" << j;
    }
  }
}

TEST_P(ApspSeeds, TreeDistancesAreSymmetricAndTriangular) {
  Rng rng(GetParam());
  const Graph g = barabasi_albert_tree(30, {1, 10}, rng);
  const auto d = all_pairs_shortest_paths(g);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(d[i][i], 0);
    for (std::size_t j = 0; j < 30; ++j) {
      EXPECT_EQ(d[i][j], d[j][i]);
      for (std::size_t k = 0; k < 30; ++k) {
        EXPECT_LE(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspSeeds, testing::Values(3, 17, 2024));

TEST(PathExtraction, ReconstructsShortestRoute) {
  // 0 -1- 1 -1- 2, plus a direct expensive 0-2 edge.
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 10);
  const auto tree = dijkstra_tree(g, 0);
  EXPECT_EQ(extract_path(tree, 0, 2), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(extract_path(tree, 0, 0), (std::vector<std::size_t>{0}));
}

TEST(PathExtraction, EmptyForUnreachable) {
  Graph g(2);
  const auto tree = dijkstra_tree(g, 0);
  EXPECT_TRUE(extract_path(tree, 0, 1).empty());
}

}  // namespace
}  // namespace rtsp
