// Tentpole acceptance tests: per-stage attribution reconciles exactly with
// schedule_stats, every dummy transfer carries a deadlock witness, recording
// never perturbs the schedules, and OP1's parallel screening variant yields
// byte-identical provenance.
#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/incremental.hpp"
#include "core/schedule_stats.hpp"
#include "core/validator.hpp"
#include "heuristics/op1.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"
#include "workload/paper_setup.hpp"

namespace rtsp {
namespace {

PaperSetup small_setup() {
  PaperSetup setup;
  setup.servers = 12;
  setup.objects = 60;
  return setup;
}

struct Recorded {
  Schedule h;
  prov::Provenance p;
};

Recorded solve_recorded(const Instance& inst, const std::string& spec,
                        std::uint64_t seed) {
  const Pipeline pipeline = make_pipeline(spec);
  prov::Scope scope(inst.model, inst.x_old);
  Rng rng(seed);
  Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
  prov::Provenance p = scope.finalize(h);
  return {std::move(h), std::move(p)};
}

void expect_attribution_exact(const Instance& inst, const Recorded& r) {
  ASSERT_EQ(r.p.entries.size(), r.h.size());
  const auto att = prov::attribute_schedule(inst.model, r.h, r.p);
  const ScheduleStats stats = analyze_schedule(inst.model, r.h);
  // The whole point: per-stage sums equal the schedule totals bit for bit.
  EXPECT_EQ(att.total_actions, stats.actions);
  EXPECT_EQ(att.transfers, stats.transfers);
  EXPECT_EQ(att.deletions, stats.deletions);
  EXPECT_EQ(att.dummy_transfers, stats.dummy_transfers);
  EXPECT_EQ(att.total_cost, stats.total_cost);
  EXPECT_EQ(att.dummy_cost, stats.dummy_cost);
  EXPECT_EQ(att.total_cost, schedule_cost(inst.model, r.h));

  std::size_t actions = 0;
  Cost cost = 0;
  std::size_t dummies = 0;
  for (const auto& sa : att.stages) {
    actions += sa.actions;
    cost += sa.cost;
    dummies += sa.dummy_transfers;
  }
  EXPECT_EQ(actions, att.total_actions);
  EXPECT_EQ(cost, att.total_cost);
  EXPECT_EQ(dummies, att.dummy_transfers);
}

void expect_witnesses_valid(const Recorded& r) {
  ASSERT_EQ(r.p.entries.size(), r.h.size());
  for (std::size_t u = 0; u < r.h.size(); ++u) {
    const prov::Entry& e = r.p.entries[u];
    if (!r.h[u].is_dummy_transfer()) {
      EXPECT_EQ(e.root_cause, prov::kNone) << "non-dummy at " << u;
      continue;
    }
    ASSERT_NE(e.root_cause, prov::kNone) << "dummy without root cause at " << u;
    ASSERT_LT(e.root_cause, r.p.root_causes.size());
    const prov::RootCause& rc = r.p.root_causes[e.root_cause];
    EXPECT_EQ(rc.object, r.h[u].object);
    EXPECT_EQ(rc.dest, r.h[u].server);
    // The witness must be non-empty: either blockers that deleted their
    // replica, or (degenerate cases) an explicit kind telling us why.
    if (rc.kind == prov::RootCause::Kind::CapacityDeadlock) {
      EXPECT_FALSE(rc.blockers.empty()) << "deadlock without blockers at " << u;
    }
    for (const auto& b : rc.blockers) {
      ASSERT_NE(b.deleted_at, prov::kNone);
      ASSERT_LT(b.deleted_at, u) << "blocker deletion must precede the dummy";
      EXPECT_EQ(r.h[b.deleted_at], Action::remove(b.server, rc.object))
          << "witness points at position " << b.deleted_at
          << " which is not that deletion";
    }
  }
}

TEST(Provenance, AttributionExactOnPaperWorkload) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  Rng rng(11);
  const Instance inst = make_equal_size_instance(small_setup(), 3, rng);
  const Recorded r = solve_recorded(inst, "GOLCF+H1+H2+OP1", 5);
  expect_attribution_exact(inst, r);

  // The improvers must actually show up as stages on this workload —
  // otherwise the test proves nothing about rewrite attribution.
  bool has_improver = false;
  for (const auto& s : r.p.stages) {
    if (s.kind == prov::StageKind::Improver) has_improver = true;
    EXPECT_NE(s.kind, prov::StageKind::Unknown);
  }
  EXPECT_TRUE(has_improver);
  EXPECT_FALSE(r.p.rewrites.empty());
}

TEST(Provenance, AttributionExactAcrossBuildersAndWorkloads) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  const char* specs[] = {"RDF+H1", "GSDF+H2", "AR+OP1", "GOLCF+H1H2FIX"};
  std::uint64_t seed = 21;
  for (const char* spec : specs) {
    Rng rng(seed);
    const Instance inst = make_uniform_size_instance(small_setup(), 2, rng);
    const Recorded r = solve_recorded(inst, spec, seed);
    SCOPED_TRACE(spec);
    expect_attribution_exact(inst, r);
    expect_witnesses_valid(r);
    ++seed;
  }
}

TEST(Provenance, EveryDummyTransferHasAWitness) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  // Fig. 1's circular deadlock guarantees dummy transfers with a witness
  // that names the deleted former holders.
  const Instance inst = testutil::fig1_instance();
  const Recorded r = solve_recorded(inst, "GOLCF", 1);
  ASSERT_GT(r.h.dummy_transfer_count(), 0u);
  expect_witnesses_valid(r);
  for (std::size_t u = 0; u < r.h.size(); ++u) {
    if (!r.h[u].is_dummy_transfer()) continue;
    const prov::RootCause& rc = r.p.root_causes[r.p.entries[u].root_cause];
    EXPECT_EQ(rc.kind, prov::RootCause::Kind::CapacityDeadlock);
    EXPECT_EQ(rc.free_space.size(), inst.model.num_servers());
  }
}

TEST(Provenance, DummiesOnPaperWorkloadAllExplained) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  // replicas=1 with zero overlap produces plenty of dummies (Fig. 4's
  // leftmost point).
  Rng rng(3);
  const Instance inst = make_equal_size_instance(small_setup(), 1, rng);
  const Recorded r = solve_recorded(inst, "GOLCF+H1+H2+OP1", 9);
  expect_attribution_exact(inst, r);
  expect_witnesses_valid(r);
}

TEST(Provenance, RecordingDoesNotPerturbSchedules) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  Rng rng_a(17);
  const Instance inst = make_equal_size_instance(small_setup(), 2, rng_a);
  for (const char* spec : {"GOLCF+H1+H2+OP1", "GOLCF+H1+H2+OP1P", "RDF+SA"}) {
    SCOPED_TRACE(spec);
    const Pipeline pipeline = make_pipeline(spec);
    Rng rng_plain(33);
    const Schedule plain =
        pipeline.run(inst.model, inst.x_old, inst.x_new, rng_plain);
    Rng rng_rec(33);
    prov::Scope scope(inst.model, inst.x_old);
    const Schedule recorded =
        pipeline.run(inst.model, inst.x_old, inst.x_new, rng_rec);
    scope.finalize(recorded);
    EXPECT_EQ(plain, recorded);
  }
}

TEST(Provenance, Op1SerialAndParallelScreenIdentical) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  Rng rng(29);
  const Instance inst = make_equal_size_instance(small_setup(), 2, rng);
  Rng build_rng(4);
  const Schedule base = make_pipeline("GOLCF+H2").run(inst.model, inst.x_old,
                                                      inst.x_new, build_rng);

  auto run_variant = [&](bool parallel) {
    Op1Options options;
    options.parallel_screen = parallel;
    options.threads = 4;
    const Op1Improver improver(options);
    prov::Scope scope(inst.model, inst.x_old);
    IncrementalEvaluator eval(inst.model, inst.x_old, inst.x_new, base);
    Rng r(1);
    improver.improve_incremental(eval, r);
    Schedule h = eval.take_schedule();
    prov::Provenance p = scope.finalize(h);
    return Recorded{std::move(h), std::move(p)};
  };

  const Recorded serial = run_variant(false);
  const Recorded parallel = run_variant(true);
  EXPECT_EQ(serial.h, parallel.h);
  // Deterministic adoption on the orchestrating thread makes the whole
  // table — ranks, windows, deltas, witnesses — identical, not just similar.
  EXPECT_TRUE(serial.p == parallel.p);
  EXPECT_NE(serial.h, base);  // OP1 actually did something on this input
}

TEST(Provenance, ResetPathImproversAttributeExactly) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  // SA has no incremental loop: the default improve_incremental adapter
  // replaces the evaluator's base wholesale, exercising Recorder::on_reset.
  Rng rng(41);
  const Instance inst = make_equal_size_instance(small_setup(), 2, rng);
  const Recorded r = solve_recorded(inst, "GOLCF+SA", 13);
  expect_attribution_exact(inst, r);
  expect_witnesses_valid(r);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, r.h);
  EXPECT_TRUE(v.valid) << v.to_string();
}

TEST(Provenance, FixpointRoundsAreRecorded) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  Rng rng(19);
  const Instance inst = make_equal_size_instance(small_setup(), 1, rng);
  const Recorded r = solve_recorded(inst, "GOLCF+H1H2FIX", 23);
  expect_attribution_exact(inst, r);
  // Entries rewritten inside the fixpoint chain carry the fixpoint round
  // they were adopted in.
  bool saw_round = false;
  for (const auto& e : r.p.entries) {
    if (e.rewrite != prov::kNone && e.round >= 0) saw_round = true;
  }
  for (const auto& rw : r.p.rewrites) {
    EXPECT_LT(rw.stage, r.p.stages.size());
    EXPECT_GE(rw.rank, 1u);
  }
  if (!r.p.rewrites.empty()) EXPECT_TRUE(saw_round);
}

TEST(Provenance, AttributeScheduleOnEmptyProvenance) {
  const Instance inst = testutil::fig3_instance();
  const prov::Provenance empty;
  const auto att = prov::attribute_schedule(inst.model, Schedule{}, empty);
  EXPECT_EQ(att.total_actions, 0u);
  EXPECT_EQ(att.total_cost, 0);
  EXPECT_TRUE(att.stages.empty());
}

TEST(Provenance, ScopeWithoutRecorderCompiledIsInert) {
  // Valid in both build modes: with RTSP_OBS=OFF this is the whole
  // contract; with it ON it just checks finalize() consumes the recorder.
  const Instance inst = testutil::fig3_instance();
  prov::Scope scope(inst.model, inst.x_old);
  const prov::Provenance p = scope.finalize(Schedule{});
  if (!prov::kRecorderCompiled) EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace rtsp
