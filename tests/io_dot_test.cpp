#include "io/dot_export.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace rtsp {
namespace {

TEST(DotExport, TopologyListsNodesAndLabelledEdges) {
  const Graph g = line_graph(3, 7);
  const std::string dot = topology_to_dot(g);
  EXPECT_NE(dot.find("graph topology {"), std::string::npos);
  EXPECT_NE(dot.find("S0"), std::string::npos);
  EXPECT_NE(dot.find("S2"), std::string::npos);
  EXPECT_NE(dot.find("S0 -- S1 [label=\"7\"]"), std::string::npos);
  EXPECT_NE(dot.find("S1 -- S2 [label=\"7\"]"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, TransferGraphShowsArcsAndHighlightsCycles) {
  const Instance inst = testutil::fig1_instance();
  const TransferGraph g(inst.model, inst.x_old, inst.x_new);
  const std::string dot = transfer_graph_to_dot(g);
  EXPECT_NE(dot.find("digraph transfers {"), std::string::npos);
  // Rotation: S1 sources object 0 for S... every server is in the cycle.
  EXPECT_NE(dot.find("fillcolor=lightcoral"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"O"), std::string::npos);
}

TEST(DotExport, AcyclicTransferGraphHasNoHighlight) {
  const SystemModel m(ServerCatalog::uniform(2, 2), ObjectCatalog::uniform(1, 1),
                      CostMatrix(2, 1));
  const auto x_old = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 1, {{0, 0}, {1, 0}});
  const TransferGraph g(m, x_old, x_new);
  const std::string dot = transfer_graph_to_dot(g);
  EXPECT_EQ(dot.find("lightcoral"), std::string::npos);
  EXPECT_NE(dot.find("S0 -> S1 [label=\"O0\"]"), std::string::npos);
}

}  // namespace
}  // namespace rtsp
