#include "extension/deadline.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

TEST(Deadline, AlreadyMetReturnsInputUnchanged) {
  const SystemModel m = uniform_model({3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  auto x_new = x_old;
  x_new.set(1, 0);
  const Schedule h({Action::transfer(1, 0, 0)});
  DeadlineOptions opts;
  opts.deadline = 100.0;
  const DeadlineResult r = meet_deadline(m, x_old, x_new, h, opts);
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.schedule, h);
  EXPECT_DOUBLE_EQ(r.report.makespan, 6.0);
}

TEST(Deadline, ReSourcesOffTheHotSource) {
  // S0 and S3 both hold the object; a bad schedule sends both copies from
  // S0 (port-serialised). Re-sourcing one to S3 halves the makespan.
  const SystemModel m = uniform_model({3, 3, 3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(4, 1, {{0, 0}, {3, 0}});
  auto x_new = x_old;
  x_new.set(1, 0);
  x_new.set(2, 0);
  const Schedule hot({Action::transfer(1, 0, 0), Action::transfer(2, 0, 0)});
  ASSERT_TRUE(Validator::is_valid(m, x_old, x_new, hot));
  DeadlineOptions opts;
  opts.deadline = 6.0;  // serial would take 12
  const DeadlineResult r = meet_deadline(m, x_old, x_new, hot, opts);
  EXPECT_TRUE(r.met) << "makespan " << r.report.makespan;
  EXPECT_DOUBLE_EQ(r.report.makespan, 6.0);
  EXPECT_TRUE(Validator::is_valid(m, x_old, x_new, r.schedule));
}

TEST(Deadline, ImpossibleDeadlineReportsUnmetButImproves) {
  const SystemModel m = uniform_model({3, 3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  auto x_new = x_old;
  x_new.set(1, 0);
  x_new.set(2, 0);
  // Chain schedule: S1 then S2-from-S1 — inherently two serial hops.
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 1)});
  DeadlineOptions opts;
  opts.deadline = 1.0;  // unreachable: one transfer alone takes 6
  const DeadlineResult r = meet_deadline(m, x_old, x_new, h, opts);
  EXPECT_FALSE(r.met);
  EXPECT_TRUE(Validator::is_valid(m, x_old, x_new, r.schedule));
  // Never worse than the input's makespan.
  const auto before = simulate_makespan(m, x_old, h, opts.execution);
  EXPECT_LE(r.report.makespan, before.makespan + 1e-9);
}

TEST(Deadline, RejectsInvalidStartingSchedule) {
  const SystemModel m = uniform_model({1, 1}, {1}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  auto x_new = x_old;
  x_new.set(1, 0);
  DeadlineOptions opts;
  opts.deadline = 10.0;
  EXPECT_THROW(meet_deadline(m, x_old, x_new, Schedule({Action::remove(1, 0)}), opts),
               PreconditionError);
}

class DeadlineSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DeadlineSeeds, MonotoneMakespanAndValidOnRealSchedules) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 24;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  const Schedule start =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, rng);
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, start));
  const auto before = simulate_makespan(inst.model, inst.x_old, start, {});

  DeadlineOptions opts;
  opts.deadline = before.makespan * 0.7;  // demand a 30% makespan cut
  const DeadlineResult r =
      meet_deadline(inst.model, inst.x_old, inst.x_new, start, opts);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.schedule));
  EXPECT_LE(r.report.makespan, before.makespan + 1e-9);
  EXPECT_EQ(r.cost, schedule_cost(inst.model, r.schedule));
  if (r.met) {
    EXPECT_LE(r.report.makespan, opts.deadline + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlineSeeds, testing::Values(4, 8, 15, 16, 23));

}  // namespace
}  // namespace rtsp
