#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;
using testutil::uniform_model;

TEST(Bnb, TrivialIdentityInstanceCostsNothing) {
  SystemModel model = uniform_model({2, 2}, {1, 1});
  const auto x = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const Instance inst{std::move(model), x, x};
  const BnbResult r = solve_exact(inst);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.schedule.empty());
}

TEST(Bnb, SingleTransferUsesCheapestSource) {
  const SystemModel m = matrix_model({1, 1, 1}, {1},
                                     {{0, 4, 1}, {4, 0, 2}, {1, 2, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{1, 0}, {2, 0}});
  auto x_new = x_old;
  x_new.set(0, 0);
  const Instance inst{m, x_old, x_new};
  const BnbResult r = solve_exact(inst);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.cost, 1);  // from S2
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_EQ(r.schedule[0], Action::transfer(0, 0, 2));
}

TEST(Bnb, CascadeBeatsDirectFetches) {
  // Chain 0 -1- 1 -1- 2: filling S1 first lets S2 fetch cheaply.
  const SystemModel m = matrix_model({1, 1, 1}, {1},
                                     {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{m, x_old, x_new};
  const BnbResult r = solve_exact(inst);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.cost, 2);
}

TEST(Bnb, ForcedDeletionBeforeTransfer) {
  // S1 must drop object 1 before it can take object 0.
  SystemModel model = uniform_model({1, 1}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const BnbResult r = solve_exact(inst);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.cost, 1);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_TRUE(r.schedule[0].is_delete());
  EXPECT_TRUE(r.schedule[1].is_transfer());
}

TEST(Bnb, StagingThroughThirdServerWhenItPays) {
  // The swap instance with an expensive dummy (a = 5, so dummy link = 10):
  // with staging allowed the dummy is avoidable and strictly cheaper.
  SystemModel model = uniform_model({1, 1, 1}, {1, 1}, 1, /*dummy_factor=*/5.0);
  const auto x_old = ReplicationMatrix::from_pairs(3, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(3, 2, {{0, 1}, {1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const BnbResult with_staging = solve_exact(inst);
  EXPECT_TRUE(with_staging.proved_optimal);
  EXPECT_EQ(with_staging.schedule.dummy_transfer_count(), 0u);
  // Stage one object on S2, swap, clean up: 3 transfers of cost 1.
  EXPECT_EQ(with_staging.cost, 3);

  BnbOptions no_staging;
  no_staging.allow_staging = false;
  const BnbResult without = solve_exact(inst, no_staging);
  EXPECT_TRUE(without.proved_optimal);
  // Without staging a dummy fetch is unavoidable: move one object over
  // (cost 1), dummy-fetch the sacrificed one (cost 10).
  EXPECT_EQ(without.cost, 11);
  EXPECT_GE(without.schedule.dummy_transfer_count(), 1u);
}

TEST(Bnb, RespectsInitialUpperBound) {
  SystemModel model = uniform_model({1, 1}, {1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 1, {{0, 0}, {1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  BnbOptions opts;
  opts.initial_upper_bound = 1;  // the true optimum
  const BnbResult r = solve_exact(inst, opts);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.cost, 1);
}

TEST(Bnb, NodeBudgetExhaustionStillReturnsValidSchedule) {
  Rng rng(5);
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 10;
  const Instance inst = random_instance(spec, rng);
  BnbOptions opts;
  opts.max_nodes = 50;  // guaranteed to run out
  const BnbResult r = solve_exact(inst, opts);
  EXPECT_FALSE(r.proved_optimal);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.schedule));
}

TEST(Bnb, InfeasibleTargetThrows) {
  SystemModel model = uniform_model({1}, {1, 1});
  ReplicationMatrix x_new(1, 2);
  x_new.set(0, 0);
  x_new.set(0, 1);
  const Instance inst{std::move(model), ReplicationMatrix(1, 2), x_new};
  EXPECT_THROW(solve_exact(inst), PreconditionError);
}

class BnbVsHeuristics : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbVsHeuristics, OptimumNeverExceedsAnyHeuristic) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 4;
  spec.objects = 5;
  spec.max_replicas = 1;
  spec.max_object_size = 2;
  const Instance inst = random_instance(spec, rng);
  BnbOptions opts;
  opts.max_nodes = 3'000'000;
  const BnbResult r = solve_exact(inst, opts);
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.schedule));
  EXPECT_GE(r.cost, cost_lower_bound(inst.model, inst.x_old, inst.x_new));
  if (!r.proved_optimal) GTEST_SKIP() << "node budget exhausted";
  for (const std::string spec_name : {"AR", "GOLCF", "GOLCF+H1+H2+OP1"}) {
    Rng arng(GetParam() + 99);
    const Schedule h =
        make_pipeline(spec_name).run(inst.model, inst.x_old, inst.x_new, arng);
    EXPECT_LE(r.cost, schedule_cost(inst.model, h)) << spec_name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbVsHeuristics, testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace rtsp
