#include "io/fault_spec_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace rtsp {
namespace {

using exec::FaultSpec;

FaultSpec sample_spec() {
  FaultSpec spec;
  spec.seed = 42;
  spec.transient_failure_rate = 0.25;
  spec.offline.push_back({3, 0, 500});
  spec.offline.push_back({1, 100, 200});
  spec.degraded_links.push_back({1, 2, 2.5, 0, 1000});
  spec.losses.push_back({0, 5, 250});
  return spec;
}

TEST(FaultSpecIo, RoundTripsThroughJson) {
  const FaultSpec spec = sample_spec();
  const FaultSpec back = fault_spec_from_json(fault_spec_to_json(spec));
  EXPECT_EQ(back, spec);
}

TEST(FaultSpecIo, RoundTripsDefaultSpec) {
  const FaultSpec back = fault_spec_from_json(fault_spec_to_json(FaultSpec{}));
  EXPECT_EQ(back, FaultSpec{});
  EXPECT_TRUE(back.fault_free());
}

TEST(FaultSpecIo, StreamRoundTrip) {
  std::stringstream buf;
  write_fault_spec(buf, sample_spec());
  EXPECT_EQ(read_fault_spec(buf), sample_spec());
}

TEST(FaultSpecIo, OmittedListsDefaultEmpty) {
  const FaultSpec spec = fault_spec_from_json(R"({"version": 1, "seed": 7})");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.fault_free());
}

TEST(FaultSpecIo, RejectsUnsupportedVersion) {
  EXPECT_THROW(fault_spec_from_json(R"({"version": 99})"), std::runtime_error);
}

TEST(FaultSpecIo, RejectsMalformedDocuments) {
  EXPECT_THROW(fault_spec_from_json(""), std::runtime_error);
  EXPECT_THROW(fault_spec_from_json("{"), std::runtime_error);
  EXPECT_THROW(fault_spec_from_json(R"({"seed": 1})"), std::runtime_error);
  EXPECT_THROW(fault_spec_from_json(
                   R"({"version": 1, "offline": [{"server": 0}]})"),
               std::runtime_error);
}

TEST(FaultSpecIo, RejectsStructurallyInvalidSpecs) {
  // Parses fine but fails exec::validate_spec (rate out of range).
  EXPECT_THROW(
      fault_spec_from_json(R"({"version": 1, "transient_failure_rate": 2.0})"),
      std::invalid_argument);
  // Offline window with end < begin.
  EXPECT_THROW(fault_spec_from_json(
                   R"({"version": 1,
                       "offline": [{"server": 0, "begin": 10, "end": 5}]})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtsp
