#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <fstream>
#include <sstream>

namespace rtsp {
namespace {

TEST(CsvEscape, PlainStringsPassThrough) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, RowsAndFields) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b,c", "d"});
  csv.field("x").field(std::int64_t{-7}).field(1.5);
  csv.end_row();
  EXPECT_EQ(out.str(), "a,\"b,c\",d\nx,-7,1.5\n");
}

TEST(CsvWriter, UnsignedAndSizeFields) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(std::uint64_t{18446744073709551615ull}).field(std::size_t{3});
  csv.end_row();
  EXPECT_EQ(out.str(), "18446744073709551615,3\n");
}

TEST(CsvWriter, DoubleKeepsPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(0.1);
  csv.end_row();
  const double parsed = std::stod(out.str());
  EXPECT_DOUBLE_EQ(parsed, 0.1);
}

TEST(CsvWriter, DoubleIgnoresGlobalLocale) {
  // printf-family formatting follows the C locale and would emit "1,5" under
  // a comma-decimal locale, silently corrupting the CSV column structure.
  // field(double) must stay locale-independent (std::to_chars).
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = old ? old : "C";
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_NUMERIC, "de_DE") == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(1.5).field(-0.25);
  csv.end_row();
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(out.str(), "1.5,-0.25\n");
}

TEST(CsvFile, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvFile("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(CsvFile, WritesToDisk) {
  const std::string path = testing::TempDir() + "/rtsp_csv_test.csv";
  {
    CsvFile f(path);
    f.writer().row({"h1", "h2"});
    f.writer().field(1).field(2);
    f.writer().end_row();
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "h1,h2\n1,2\n");
}

}  // namespace
}  // namespace rtsp
