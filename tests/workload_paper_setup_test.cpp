#include "workload/paper_setup.hpp"

#include <gtest/gtest.h>

namespace rtsp {
namespace {

PaperSetup small_setup() {
  // A scaled-down paper setup keeps these tests quick; one full-scale smoke
  // test below uses the real dimensions.
  PaperSetup s;
  s.servers = 12;
  s.objects = 60;
  return s;
}

class PaperSetupSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PaperSetupSeeds, EqualSizeInstanceMatchesSection51) {
  Rng rng(GetParam());
  const PaperSetup setup = small_setup();
  const Instance inst = make_equal_size_instance(setup, 2, rng);
  EXPECT_EQ(inst.model.num_servers(), 12u);
  EXPECT_EQ(inst.model.num_objects(), 60u);
  // Equal sizes.
  for (ObjectId k = 0; k < 60; ++k) EXPECT_EQ(inst.model.object_size(k), 5000);
  // Balanced, zero overlap, r replicas.
  EXPECT_EQ(inst.x_old.overlap(inst.x_new), 0u);
  for (ObjectId k = 0; k < 60; ++k) {
    EXPECT_EQ(inst.x_old.replica_count(k), 2u);
    EXPECT_EQ(inst.x_new.replica_count(k), 2u);
  }
  // Tight equal capacities: exactly the storage each server needs, with
  // zero free space in X_old (the paper's "no additional free space").
  for (ServerId i = 0; i < 12; ++i) {
    EXPECT_EQ(inst.model.capacity(i),
              inst.x_old.used_storage(i, inst.model.objects()));
    EXPECT_EQ(inst.model.capacity(i),
              inst.x_new.used_storage(i, inst.model.objects()));
  }
  // a = 1: dummy link is the max server-to-server cost + 1.
  EXPECT_EQ(inst.model.dummy_link_cost(), inst.model.costs().max_cost() + 1);
}

TEST_P(PaperSetupSeeds, UniformSizeInstanceDrawsSizesInRange) {
  Rng rng(GetParam());
  const Instance inst = make_uniform_size_instance(small_setup(), 3, rng);
  bool any_not_max = false;
  for (ObjectId k = 0; k < 60; ++k) {
    EXPECT_GE(inst.model.object_size(k), 1000);
    EXPECT_LE(inst.model.object_size(k), 5000);
    any_not_max |= inst.model.object_size(k) != 5000;
  }
  EXPECT_TRUE(any_not_max);
  EXPECT_EQ(inst.x_old.overlap(inst.x_new), 0u);
  // Capacities are per-server minima.
  for (ServerId i = 0; i < 12; ++i) {
    EXPECT_EQ(inst.model.capacity(i),
              std::max(inst.x_old.used_storage(i, inst.model.objects()),
                       inst.x_new.used_storage(i, inst.model.objects())));
  }
}

TEST_P(PaperSetupSeeds, ExtraCapacityLandsOnExactlyTheRequestedServers) {
  Rng rng(GetParam());
  const PaperSetup setup = small_setup();
  const Instance inst = make_extra_capacity_instance(setup, 2, 5, rng);
  std::size_t with_extra = 0;
  for (ServerId i = 0; i < 12; ++i) {
    const Size base = std::max(inst.x_old.used_storage(i, inst.model.objects()),
                               inst.x_new.used_storage(i, inst.model.objects()));
    const Size extra = inst.model.capacity(i) - base;
    EXPECT_TRUE(extra == 0 || extra == setup.object_size) << "server " << i;
    with_extra += (extra == setup.object_size) ? 1 : 0;
  }
  EXPECT_EQ(with_extra, 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperSetupSeeds, testing::Values(1, 2, 3));

TEST(PaperSetup, FullScaleSmokeTest) {
  // The real Sec. 5.1 dimensions: 50 servers, 1000 objects, r = 5.
  Rng rng(2024);
  const Instance inst = make_equal_size_instance(PaperSetup{}, 5, rng);
  EXPECT_EQ(inst.model.num_servers(), 50u);
  EXPECT_EQ(inst.model.num_objects(), 1000u);
  EXPECT_EQ(inst.x_old.overlap(inst.x_new), 0u);
  EXPECT_EQ(inst.x_old.total_replicas(), 5000u);
  for (ServerId i = 0; i < 50; ++i) {
    EXPECT_EQ(inst.x_old.count_on(i), 100u);
  }
  // Link costs 1..10 on a 50-node tree: the max path cost is bounded by
  // 49 * 10 and at least 1.
  EXPECT_GE(inst.model.costs().max_cost(), 1);
  EXPECT_LE(inst.model.costs().max_cost(), 490);
}

TEST_P(PaperSetupSeeds, OverlapInstanceHitsTheTarget) {
  Rng rng(GetParam());
  const PaperSetup setup = small_setup();
  const Instance inst = make_overlap_instance(setup, 2, 0.5, rng);
  // round(0.5 * 2) = 1 replica kept per object.
  EXPECT_EQ(inst.x_old.overlap(inst.x_new), 60u);
  for (ObjectId k = 0; k < 60; ++k) {
    EXPECT_EQ(inst.x_new.replica_count(k), 2u);
  }
  EXPECT_TRUE(storage_feasible(inst.model, inst.x_new));
  // Overlap 0 matches the main regime's shape.
  const Instance zero = make_overlap_instance(setup, 2, 0.0, rng);
  EXPECT_EQ(zero.x_old.overlap(zero.x_new), 0u);
}

TEST(PaperSetup, RejectsTooManyReplicas) {
  Rng rng(1);
  PaperSetup s = small_setup();
  EXPECT_THROW(make_equal_size_instance(s, 7, rng), PreconditionError);  // 2r > M
  EXPECT_THROW(make_extra_capacity_instance(s, 2, 13, rng), PreconditionError);
}

}  // namespace
}  // namespace rtsp
