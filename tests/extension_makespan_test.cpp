#include "extension/makespan.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

TEST(Makespan, EmptyScheduleIsInstant) {
  const SystemModel m = uniform_model({1}, {1});
  const auto r = simulate_makespan(m, ReplicationMatrix(1, 1), Schedule{});
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.serial_time, 0.0);
  EXPECT_DOUBLE_EQ(r.speedup, 1.0);
}

TEST(Makespan, DependentChainRunsSerially) {
  // S0 -> S1 -> S2 cascade: second transfer needs the first.
  const SystemModel m = uniform_model({3, 3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 1)});
  const auto r = simulate_makespan(m, x_old, h);
  // Each transfer: size 3 * link 2 = 6 time units, strictly sequential.
  EXPECT_DOUBLE_EQ(r.serial_time, 12.0);
  EXPECT_DOUBLE_EQ(r.makespan, 12.0);
  EXPECT_DOUBLE_EQ(r.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(r.start_times[1], 6.0);
  EXPECT_EQ(r.peak_parallelism, 1u);
}

TEST(Makespan, DisjointTransfersOverlap) {
  // Two transfers between disjoint server pairs run concurrently.
  const SystemModel m = uniform_model({3, 3, 3, 3}, {3, 3}, 2);
  ReplicationMatrix x_old(4, 2);
  x_old.set(0, 0);
  x_old.set(2, 1);
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(3, 1, 2)});
  const auto r = simulate_makespan(m, x_old, h);
  EXPECT_DOUBLE_EQ(r.serial_time, 12.0);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.speedup, 2.0);
  EXPECT_EQ(r.peak_parallelism, 2u);
}

TEST(Makespan, PortLimitSerializesSharedSource) {
  // Both transfers read S0: with 1 port each must wait; with 2 they overlap.
  const SystemModel m = uniform_model({3, 3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 0)});
  const auto serial = simulate_makespan(m, x_old, h, {1.0, 1});
  EXPECT_DOUBLE_EQ(serial.makespan, 12.0);
  const auto parallel = simulate_makespan(m, x_old, h, {1.0, 2});
  EXPECT_DOUBLE_EQ(parallel.makespan, 6.0);
}

TEST(Makespan, BandwidthScalesTime) {
  const SystemModel m = uniform_model({4, 4}, {4}, 3);
  const auto x_old = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  const Schedule h({Action::transfer(1, 0, 0)});
  EXPECT_DOUBLE_EQ(simulate_makespan(m, x_old, h, {1.0, 1}).makespan, 12.0);
  EXPECT_DOUBLE_EQ(simulate_makespan(m, x_old, h, {4.0, 1}).makespan, 3.0);
}

TEST(Makespan, DeletionsAreFreeButOrdered) {
  // The deletion frees the slot the transfer needs; both are at S0, so the
  // per-server start order holds and the transfer starts at t = 0.
  const SystemModel m = uniform_model({1, 1}, {1}, 2);
  ReplicationMatrix x_old(2, 1);
  x_old.set(1, 0);
  // S0 holds nothing; transfer object into S0 after deleting nothing —
  // use the swap shape instead: S0 holds the object, S1 takes it.
  const SystemModel m2 = uniform_model({1, 1}, {1, 1}, 2);
  const auto x2 = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const Schedule h({Action::remove(1, 1), Action::transfer(1, 0, 0)});
  const auto r = simulate_makespan(m2, x2, h);
  EXPECT_DOUBLE_EQ(r.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(r.start_times[1], 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(Makespan, MakespanBoundsHoldOnRealSchedules) {
  Rng rng(9);
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 24;
  const Instance inst = random_instance(spec, rng);
  const Schedule h =
      make_pipeline("GOLCF+H1+H2+OP1").run(inst.model, inst.x_old, inst.x_new, rng);
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  const auto r = simulate_makespan(inst.model, inst.x_old, h);
  EXPECT_DOUBLE_EQ(r.serial_time,
                   static_cast<double>(schedule_cost(inst.model, h)));
  EXPECT_LE(r.makespan, r.serial_time + 1e-9);
  EXPECT_GE(r.speedup, 1.0 - 1e-12);
  EXPECT_GE(r.peak_parallelism, 1u);
  // Start times never decrease across a dependency.
  const DependencyGraph dag(h);
  for (std::size_t u = 0; u < h.size(); ++u) {
    for (std::size_t d : dag.dependencies_of(u)) {
      EXPECT_LE(r.start_times[d], r.start_times[u] + 1e-9);
    }
  }
  // More ports can only help.
  const auto wide = simulate_makespan(inst.model, inst.x_old, h, {1.0, 4});
  EXPECT_LE(wide.makespan, r.makespan + 1e-9);
}

}  // namespace
}  // namespace rtsp
