#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using exec::ExecutionReport;
using exec::ExecutorOptions;
using exec::FaultSpec;
using testutil::fig3_instance;
using testutil::uniform_model;

Schedule plan_for(const Instance& inst, std::uint64_t seed = 1) {
  Rng rng(seed);
  return make_pipeline("GOLCF+H1+H2+OP1")
      .run(inst.model, inst.x_old, inst.x_new, rng);
}

Instance medium_instance(std::uint64_t seed) {
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 30;
  Rng rng(seed);
  return random_instance(spec, rng);
}

void expect_clean_goal(const Instance& inst, const ExecutionReport& r) {
  EXPECT_TRUE(r.reached_goal);
  EXPECT_TRUE(r.final_placement == inst.x_new);
  EXPECT_TRUE(
      Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.effective));
}

TEST(Executor, ZeroFaultReproducesPlanExactly) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, FaultSpec{}, ExecutorOptions{});
  expect_clean_goal(inst, r);
  EXPECT_EQ(r.effective.actions(), plan.actions());
  EXPECT_EQ(r.actual_cost, r.planned_cost);
  EXPECT_EQ(r.planned_cost, schedule_cost(inst.model, plan));
  EXPECT_DOUBLE_EQ(r.cost_inflation(), 1.0);
  EXPECT_EQ(r.attempts.size(), plan.size());
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.replans.size(), 0u);
  EXPECT_EQ(r.total_stall, 0);
  EXPECT_EQ(r.total_backoff, 0);
  EXPECT_EQ(r.finished_at, r.planned_cost);
}

TEST(Executor, ZeroFaultExactOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance inst = medium_instance(seed);
    const Schedule plan = plan_for(inst, seed);
    const ExecutionReport r =
        exec::execute_schedule(inst.model, inst.x_old, inst.x_new, plan,
                               FaultSpec{}, ExecutorOptions{});
    expect_clean_goal(inst, r);
    EXPECT_EQ(r.effective.actions(), plan.actions()) << "seed " << seed;
    EXPECT_EQ(r.actual_cost, r.planned_cost) << "seed " << seed;
  }
}

TEST(Executor, TransientFailuresRetryAndInflateCost) {
  const Instance inst = medium_instance(2);
  const Schedule plan = plan_for(inst);
  FaultSpec faults;
  faults.seed = 11;
  faults.transient_failure_rate = 0.3;
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, ExecutorOptions{});
  expect_clean_goal(inst, r);
  EXPECT_GT(r.transient_failures, 0u);
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.actual_cost, r.planned_cost);  // failed attempts still pay
  EXPECT_GT(r.total_backoff, 0);
  EXPECT_GT(r.cost_inflation(), 1.0);
}

TEST(Executor, CertainFailureDegradesToDummyAndTerminates) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  FaultSpec faults;
  faults.transient_failure_rate = 1.0;  // every real-source attempt fails
  ExecutorOptions opt;
  opt.retry.max_retries = 1;
  opt.degrade_after = 1;
  const ExecutionReport r = exec::execute_schedule(inst.model, inst.x_old,
                                                   inst.x_new, plan, faults, opt);
  expect_clean_goal(inst, r);
  EXPECT_GT(r.degraded_transfers, 0u);
  EXPECT_GT(r.effective_dummy_transfers, r.planned_dummy_transfers);
  // No real-source transfer can ever succeed at rate 1.0.
  for (const Action& a : r.effective.actions()) {
    if (a.is_transfer()) EXPECT_TRUE(is_dummy(a.source)) << a.to_string();
  }
}

TEST(Executor, ReplicaLossForcesDeletionAndReplan) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  FaultSpec faults;
  faults.losses.push_back({0, 0, 0});  // S1 loses object A before anything runs
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, ExecutorOptions{});
  expect_clean_goal(inst, r);
  EXPECT_EQ(r.loss_deletions, 1u);
  ASSERT_FALSE(r.effective.actions().empty());
  EXPECT_EQ(r.effective[0], Action::remove(0, 0));  // forced deletion recorded
  EXPECT_GE(r.replans.size(), 1u);  // the planned delete of (S0, O0) is invalid
}

TEST(Executor, OfflineWindowStallsWithoutExtraCost) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  FaultSpec faults;
  for (ServerId i = 0; i < 4; ++i) faults.offline.push_back({i, 0, 25});
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, ExecutorOptions{});
  expect_clean_goal(inst, r);
  EXPECT_GE(r.total_stall, 25);
  EXPECT_EQ(r.actual_cost, r.planned_cost);  // dark servers delay, never pay
  EXPECT_EQ(r.finished_at, r.planned_cost + r.total_stall);
  EXPECT_EQ(r.effective.actions(), plan.actions());
}

TEST(Executor, LinkDegradationInflatesActualCostOnly) {
  const SystemModel model = uniform_model({2, 2}, {1, 1});
  const ReplicationMatrix x_old =
      ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {0, 1}});
  const ReplicationMatrix x_new =
      ReplicationMatrix::from_pairs(2, 2, {{1, 0}, {1, 1}});
  const Schedule plan({Action::transfer(1, 0, 0), Action::transfer(1, 1, 0),
                       Action::remove(0, 0), Action::remove(0, 1)});
  FaultSpec faults;
  faults.degraded_links.push_back({1, 0, 3.0, 0, 1000});
  const ExecutionReport r = exec::execute_schedule(model, x_old, x_new, plan,
                                                   faults, ExecutorOptions{});
  EXPECT_TRUE(r.reached_goal);
  EXPECT_EQ(r.planned_cost, 2);
  EXPECT_EQ(r.actual_cost, 6);        // both transfers paid 3x
  EXPECT_EQ(r.effective_cost, 2);     // nominal cost of the same actions
  EXPECT_DOUBLE_EQ(r.cost_inflation(), 3.0);
}

TEST(Executor, ReplanBudgetExhaustedDrainsViaDummy) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  FaultSpec faults;
  faults.transient_failure_rate = 1.0;
  ExecutorOptions opt;
  opt.retry.max_retries = 0;
  opt.max_replans = 0;          // first failure goes straight to the drain
  opt.degrade_after = 100;      // per-action degradation never kicks in
  const ExecutionReport r = exec::execute_schedule(inst.model, inst.x_old,
                                                   inst.x_new, plan, faults, opt);
  expect_clean_goal(inst, r);
  EXPECT_GT(r.degraded_transfers, 0u);
  EXPECT_EQ(r.replans.size(), 0u);
}

// Satellite: bit-identical reruns. Same instance + plan + spec + options must
// reproduce the attempt log, effective schedule, final state and cost totals.
TEST(Executor, DeterministicAcrossReruns) {
  const Instance inst = medium_instance(5);
  const Schedule plan = plan_for(inst, 5);
  FaultSpec faults;
  faults.seed = 77;
  faults.transient_failure_rate = 0.4;
  faults.offline.push_back({1, 10, 60});
  faults.degraded_links.push_back({0, 2, 2.0, 0, 500});
  faults.losses.push_back({2, 1, 40});
  ExecutorOptions opt;
  opt.seed = 3;
  const ExecutionReport a = exec::execute_schedule(inst.model, inst.x_old,
                                                   inst.x_new, plan, faults, opt);
  const ExecutionReport b = exec::execute_schedule(inst.model, inst.x_old,
                                                   inst.x_new, plan, faults, opt);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.effective.actions(), b.effective.actions());
  EXPECT_TRUE(a.final_placement == b.final_placement);
  EXPECT_EQ(a.actual_cost, b.actual_cost);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.replans.size(), b.replans.size());
  expect_clean_goal(inst, a);
}

TEST(Executor, ProvenanceAttributesFaultStages) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  FaultSpec faults;
  faults.losses.push_back({0, 0, 0});
  ExecutorOptions opt;
  opt.record_provenance = true;
  const ExecutionReport r = exec::execute_schedule(inst.model, inst.x_old,
                                                   inst.x_new, plan, faults, opt);
  expect_clean_goal(inst, r);
  ASSERT_EQ(r.provenance.entries.size(), r.effective.size());
  auto has_stage = [&](const std::string& name) {
    for (const auto& s : r.provenance.stages) {
      if (s.name.rfind(name, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_stage("PLAN"));
  EXPECT_TRUE(has_stage("FAULT-LOSS"));
  EXPECT_TRUE(has_stage("REPLAN1:"));
  // Every effective dummy transfer carries a root cause for `rtsp explain`.
  for (std::size_t u = 0; u < r.effective.size(); ++u) {
    if (r.effective[u].is_dummy_transfer()) {
      EXPECT_NE(r.provenance.entries[u].root_cause, prov::kNone);
    }
  }
}

TEST(Executor, BudgetZeroMatchesUnbudgetedBitForBit) {
  const Instance inst = medium_instance(31);
  const Schedule plan = plan_for(inst, 31);
  FaultSpec faults;
  faults.transient_failure_rate = 0.2;
  faults.seed = 31;
  ExecutorOptions unbudgeted;
  ExecutorOptions budgeted;
  budgeted.budget_ticks = 0;  // explicit zero means unlimited
  const ExecutionReport a = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, unbudgeted);
  const ExecutionReport b = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, faults, budgeted);
  EXPECT_TRUE(a.final_placement == b.final_placement);
  EXPECT_EQ(a.effective.actions(), b.effective.actions());
  EXPECT_EQ(a.actual_cost, b.actual_cost);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_FALSE(b.budget_exhausted);
  EXPECT_TRUE(b.reached_goal);
}

TEST(Executor, TinyBudgetStopsEarlyWithValidEffectivePrefix) {
  const Instance inst = medium_instance(32);
  const Schedule plan = plan_for(inst, 32);
  ExecutorOptions opt;
  opt.budget_ticks = 5;  // far below the plan's cost
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, FaultSpec{}, opt);
  ASSERT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.reached_goal);
  EXPECT_FALSE(r.final_placement == inst.x_new);
  // The partial run is a checkpointable state: the effective prefix
  // validates against (X_old, final_placement), and the clock only
  // overshoots by at most the in-flight action.
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, r.final_placement,
                                  r.effective));
  EXPECT_GE(r.finished_at, opt.budget_ticks);
}

TEST(Executor, BudgetedTailResumesToGoal) {
  const Instance inst = medium_instance(33);
  const Schedule plan = plan_for(inst, 33);
  ExecutorOptions opt;
  opt.budget_ticks = 20;
  ExecutionReport partial = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, FaultSpec{}, opt);
  int rounds = 1;
  ReplicationMatrix x_mid = partial.final_placement;
  Schedule cumulative = partial.effective;
  // Re-plan the residual (X_mid -> X_new) and keep executing under the
  // same budget — the daemon's partial-convergence loop in miniature.
  while (partial.budget_exhausted) {
    ASSERT_LT(rounds, 200) << "budgeted resume loop did not converge";
    Rng rng(100 + rounds);
    const Schedule tail = make_pipeline("GOLCF+H1+H2+OP1")
                              .run(inst.model, x_mid, inst.x_new, rng);
    partial = exec::execute_schedule(inst.model, x_mid, inst.x_new, tail,
                                     FaultSpec{}, opt);
    for (const Action& a : partial.effective) cumulative.push_back(a);
    x_mid = partial.final_placement;
    ++rounds;
  }
  EXPECT_TRUE(partial.reached_goal);
  EXPECT_GT(rounds, 1);  // the budget actually split the work
  EXPECT_TRUE(x_mid == inst.x_new);
  EXPECT_TRUE(
      Validator::is_valid(inst.model, inst.x_old, inst.x_new, cumulative));
}

TEST(Executor, GenerousBudgetDoesNotTriggerEarlyStop) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  ExecutorOptions opt;
  opt.budget_ticks = 1 << 20;
  const ExecutionReport r = exec::execute_schedule(
      inst.model, inst.x_old, inst.x_new, plan, FaultSpec{}, opt);
  expect_clean_goal(inst, r);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(Executor, RejectsMalformedInputs) {
  const Instance inst = fig3_instance();
  const Schedule plan = plan_for(inst);
  ExecutorOptions opt;
  opt.degrade_after = 0;
  EXPECT_THROW(exec::execute_schedule(inst.model, inst.x_old, inst.x_new, plan,
                                      FaultSpec{}, opt),
               std::invalid_argument);
  opt = ExecutorOptions{};
  opt.retry.multiplier = 0.0;
  EXPECT_THROW(exec::execute_schedule(inst.model, inst.x_old, inst.x_new, plan,
                                      FaultSpec{}, opt),
               std::invalid_argument);
  // Plan action ids out of range for the model.
  const Schedule bad({Action::transfer(9, 0, 0)});
  EXPECT_THROW(exec::execute_schedule(inst.model, inst.x_old, inst.x_new, bad,
                                      FaultSpec{}, ExecutorOptions{}),
               std::invalid_argument);
  // Storage-infeasible goal: no terminating degradation exists.
  const SystemModel tiny = uniform_model({1, 1}, {1, 1});
  const ReplicationMatrix x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}});
  const ReplicationMatrix x_new =
      ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {0, 1}});
  EXPECT_THROW(exec::execute_schedule(tiny, x_old, x_new, Schedule{},
                                      FaultSpec{}, ExecutorOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtsp
