#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/ar.hpp"
#include "heuristics/builder_common.hpp"
#include "heuristics/golcf.hpp"
#include "heuristics/gsdf.hpp"
#include "heuristics/rdf.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig1_instance;
using testutil::fig3_instance;
using testutil::matrix_model;
using testutil::uniform_model;

// ---------- shared helpers ----------

TEST(SuperfluousTracker, TracksRemovals) {
  const auto x_old = ReplicationMatrix::from_pairs(2, 3, {{0, 0}, {0, 1}, {1, 2}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 3, {{1, 2}});
  const PlacementDelta delta(x_old, x_new);
  SuperfluousTracker tracker(2, delta);
  EXPECT_EQ(tracker.total_remaining(), 2u);
  EXPECT_EQ(tracker.on(0).size(), 2u);
  EXPECT_TRUE(tracker.on(1).empty());
  tracker.remove(0, 1);
  EXPECT_EQ(tracker.total_remaining(), 1u);
  EXPECT_EQ(tracker.remaining(), (std::vector<Replica>{{0, 0}}));
  EXPECT_THROW(tracker.remove(0, 1), PreconditionError);
}

TEST(NearestTransfer, PicksCheapestSourceOrDummy) {
  const SystemModel m = matrix_model({9, 9, 9}, {1},
                                     {{0, 4, 2}, {4, 0, 1}, {2, 1, 0}});
  ExecutionState state(m, ReplicationMatrix::from_pairs(3, 1, {{1, 0}, {2, 0}}));
  const Action t = nearest_transfer(state, 0, 0);
  EXPECT_EQ(t.source, 2u);  // cost 2 beats 4
  ExecutionState empty(m, ReplicationMatrix(3, 1));
  EXPECT_TRUE(nearest_transfer(empty, 0, 0).is_dummy_transfer());
}

// ---------- builder validity across all four builders ----------

class EveryBuilder
    : public testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  static BuilderPtr make(const std::string& name) {
    if (name == "RDF") return std::make_shared<RdfBuilder>();
    if (name == "GSDF") return std::make_shared<GsdfBuilder>();
    if (name == "AR") return std::make_shared<ArBuilder>();
    return std::make_shared<GolcfBuilder>();
  }
};

TEST_P(EveryBuilder, ProducesValidScheduleOnTightRandomInstances) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  RandomInstanceSpec spec;
  spec.servers = 10;
  spec.objects = 30;
  spec.max_replicas = 3;
  spec.capacity_slack = 0.0;  // tight: deadlocks and dummies happen
  const Instance inst = random_instance(spec, rng);
  const Schedule h = make(name)->build(inst.model, inst.x_old, inst.x_new, rng);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  EXPECT_TRUE(v.valid) << name << " seed " << seed << ": " << v.to_string();
}

TEST_P(EveryBuilder, ProducesValidScheduleOnFig1Deadlock) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  const Instance inst = fig1_instance();
  const Schedule h = make(name)->build(inst.model, inst.x_old, inst.x_new, rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  // The rotation deadlock cannot be implemented without the dummy.
  EXPECT_GE(h.dummy_transfer_count(), 1u);
}

TEST_P(EveryBuilder, NoActionsWhenSchemesAreEqual) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  const Instance inst = fig3_instance();
  const Schedule h = make(name)->build(inst.model, inst.x_old, inst.x_old, rng);
  EXPECT_TRUE(h.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BuilderBySeed, EveryBuilder,
    testing::Combine(testing::Values("RDF", "GSDF", "AR", "GOLCF"),
                     testing::Values(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- builder-specific structure ----------

TEST(Rdf, AllDeletionsPrecedeAllTransfers) {
  Rng rng(9);
  const Instance inst = fig3_instance();
  const Schedule h = RdfBuilder().build(inst.model, inst.x_old, inst.x_new, rng);
  bool seen_transfer = false;
  for (const Action& a : h) {
    if (a.is_transfer()) seen_transfer = true;
    else EXPECT_FALSE(seen_transfer) << "deletion after a transfer in RDF";
  }
  // Fig. 3 has 6 superfluous and 6 outstanding replicas.
  EXPECT_EQ(h.delete_count(), 6u);
  EXPECT_EQ(h.transfer_count(), 6u);
}

TEST(Gsdf, ActionsAreGroupedByServer) {
  Rng rng(9);
  const Instance inst = fig3_instance();
  const Schedule h = GsdfBuilder().build(inst.model, inst.x_old, inst.x_new, rng);
  // Within the schedule, each server's deletions come right before its
  // transfers; a server never reappears once another has started, except as
  // a transfer source. Track the sequence of acting servers:
  std::vector<ServerId> acting;
  for (const Action& a : h) {
    if (acting.empty() || acting.back() != a.server) acting.push_back(a.server);
  }
  // 4 servers, each forming at most one deletions-block + transfers-block
  // means at most 4 distinct acting runs.
  EXPECT_LE(acting.size(), 4u);
}

TEST(Golcf, BenefitFormulaMatchesEquationFour) {
  // Destinations S0 (links: to S2=2, to S3=6) and S1 (links: to S2=3, to
  // S3=4) both await object 0, currently held by S2 and S3.
  const SystemModel m = matrix_model(
      {9, 9, 9, 9}, {5},
      {{0, 9, 2, 6}, {9, 0, 3, 4}, {2, 3, 0, 9}, {6, 4, 9, 0}});
  ExecutionState state(m, ReplicationMatrix::from_pairs(4, 1, {{2, 0}, {3, 0}}));
  // Benefit of S2's copy: S0's nearest is S2 (2) vs second (S3, 6) -> 4;
  // S1's nearest is S2 (3) vs second (S3, 4) -> 1. Total (4+1)*size 5 = 25.
  EXPECT_EQ(golcf_benefit(state, 2, 0, {0, 1}), 25);
  // Benefit of S3's copy: it is nobody's nearest -> 0.
  EXPECT_EQ(golcf_benefit(state, 3, 0, {0, 1}), 0);
  // With only one replicator, the second-nearest is the dummy (cost 10).
  ExecutionState lone(m, ReplicationMatrix::from_pairs(4, 1, {{2, 0}}));
  EXPECT_EQ(golcf_benefit(lone, 2, 0, {0}), 5 * (10 - 2));
}

TEST(Golcf, ServesCheapestDestinationFirstAndCascades) {
  // Chain topology 0-1-2 (cost 1 per hop); object at S0 must reach S1, S2.
  // GOLCF serves S1 first (cost 1), then S2 from the new S1 copy (cost 1).
  const SystemModel m = matrix_model({2, 2, 2}, {1},
                                     {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  Rng rng(3);
  const Schedule h = GolcfBuilder().build(m, x_old, x_new, rng);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], Action::transfer(1, 0, 0));
  EXPECT_EQ(h[1], Action::transfer(2, 0, 1));  // sourced from the new copy
  EXPECT_EQ(schedule_cost(m, h), 2);
}

TEST(Ar, DeletesLazilyOnlyWhenSpaceIsNeeded) {
  // One server with slack: AR should not delete before transferring there.
  const SystemModel m = uniform_model({3, 1}, {1, 1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 3, {{0, 0}, {0, 1}, {1, 2}});
  // S0 swaps object 1 for object 2; S1 keeps its object.
  const auto x_new = ReplicationMatrix::from_pairs(2, 3, {{0, 0}, {0, 2}, {1, 2}});
  Rng rng(5);
  const Schedule h = ArBuilder().build(m, x_old, x_new, rng);
  EXPECT_TRUE(Validator::is_valid(m, x_old, x_new, h));
  // S0 has one free unit (capacity 3, holds 2): the transfer can go first
  // and the deletion of object 1 must come after it in AR's lazy policy.
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(h[0].is_transfer());
  EXPECT_TRUE(h[1].is_delete());
}

}  // namespace
}  // namespace rtsp
