// RDFP/GSDFP must be bit-identical to their serial counterparts: same
// (instance, seed) pair, same action sequence, same transfer sources — the
// acceptance bar for the sharded parallel passes.
#include "heuristics/sharded_build.hpp"

#include <gtest/gtest.h>

#include "core/validator.hpp"
#include "heuristics/gsdf.hpp"
#include "heuristics/rdf.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

/// Forces the resolve phase onto the pool even for tiny instances, so the
/// tests cover the threaded code path and not just the inline fallback.
ShardedBuildOptions forced_parallel() {
  ShardedBuildOptions options;
  options.threads = 4;
  options.min_transfers_parallel = 0;
  return options;
}

template <typename Serial, typename Sharded>
void expect_bit_identical(const Serial& serial, const Sharded& sharded,
                          const Instance& inst, std::uint64_t seed) {
  Rng r1(seed);
  Rng r2(seed);
  const Schedule a = serial.build(inst.model, inst.x_old, inst.x_new, r1);
  const Schedule b = sharded.build(inst.model, inst.x_old, inst.x_new, r2);
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u], b[u]) << "seed " << seed << " position " << u << ": "
                          << a[u].to_string() << " vs " << b[u].to_string();
  }
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, b);
  EXPECT_TRUE(v.valid) << v.to_string();
}

TEST(ShardedBuild, RdfpMatchesRdfOnRandomInstances) {
  Rng rng(515);
  for (int rep = 0; rep < 4; ++rep) {
    RandomInstanceSpec spec;
    spec.servers = 9;
    spec.objects = 40;
    spec.max_replicas = 3;
    const Instance inst = random_instance(spec, rng);
    for (std::uint64_t seed : {1u, 7u, 1234u}) {
      expect_bit_identical(RdfBuilder(), ShardedRdfBuilder(forced_parallel()),
                           inst, seed);
    }
  }
}

TEST(ShardedBuild, GsdfpMatchesGsdfOnRandomInstances) {
  Rng rng(616);
  for (int rep = 0; rep < 4; ++rep) {
    RandomInstanceSpec spec;
    spec.servers = 9;
    spec.objects = 40;
    spec.max_replicas = 3;
    const Instance inst = random_instance(spec, rng);
    for (std::uint64_t seed : {1u, 7u, 1234u}) {
      expect_bit_identical(GsdfBuilder(), ShardedGsdfBuilder(forced_parallel()),
                           inst, seed);
    }
  }
}

TEST(ShardedBuild, MatchesOnDummyHeavyInstances) {
  // Fig. 1's circular deadlock forces dummy-sourced transfers; the sharded
  // resolver must pick the dummy in exactly the same places.
  const Instance inst = testutil::fig1_instance();
  for (std::uint64_t seed : {2u, 3u, 99u}) {
    expect_bit_identical(RdfBuilder(), ShardedRdfBuilder(forced_parallel()),
                         inst, seed);
    expect_bit_identical(GsdfBuilder(), ShardedGsdfBuilder(forced_parallel()),
                         inst, seed);
  }
}

TEST(ShardedBuild, InlineAndPooledPathsAgree) {
  Rng rng(717);
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 30;
  const Instance inst = random_instance(spec, rng);
  ShardedBuildOptions inline_only;
  inline_only.threads = 1;
  expect_bit_identical(ShardedRdfBuilder(inline_only),
                       ShardedRdfBuilder(forced_parallel()), inst, 42);
  expect_bit_identical(ShardedGsdfBuilder(inline_only),
                       ShardedGsdfBuilder(forced_parallel()), inst, 42);
}

TEST(ShardedBuild, FullPipelinesStayBitIdentical) {
  // Improvers are deterministic given (schedule, rng), so a bit-identical
  // builder keeps the whole registry pipeline bit-identical.
  Rng rng(818);
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 25;
  const Instance inst = random_instance(spec, rng);
  const std::pair<const char*, const char*> pairs[] = {
      {"RDF", "RDFP"},
      {"GSDF", "GSDFP"},
      {"RDF+H1+H2+OP1", "RDFP+H1+H2+OP1"},
      {"GSDF+H2+H1+OP1", "GSDFP+H2+H1+OP1"},
  };
  for (const auto& [serial_spec, sharded_spec] : pairs) {
    Rng r1(2026);
    Rng r2(2026);
    const Schedule a =
        make_pipeline(serial_spec).run(inst.model, inst.x_old, inst.x_new, r1);
    const Schedule b =
        make_pipeline(sharded_spec).run(inst.model, inst.x_old, inst.x_new, r2);
    EXPECT_EQ(a, b) << serial_spec << " vs " << sharded_spec;
  }
}

}  // namespace
}  // namespace rtsp
