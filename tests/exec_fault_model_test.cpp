#include "exec/fault_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exec/retry_policy.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using exec::FaultOracle;
using exec::FaultSpec;
using exec::RetryPolicy;
using exec::Tick;

TEST(FaultSpec, DefaultIsFaultFree) {
  const FaultSpec spec;
  EXPECT_TRUE(spec.fault_free());
  EXPECT_NO_THROW(exec::validate_spec(spec));
}

TEST(FaultSpec, ValidateRejectsBadRate) {
  FaultSpec spec;
  spec.transient_failure_rate = 1.5;
  EXPECT_THROW(exec::validate_spec(spec), std::invalid_argument);
  spec.transient_failure_rate = -0.1;
  EXPECT_THROW(exec::validate_spec(spec), std::invalid_argument);
}

TEST(FaultSpec, ValidateRejectsBadWindowsAndFactors) {
  FaultSpec spec;
  spec.offline.push_back({0, 10, 5});  // end < begin
  EXPECT_THROW(exec::validate_spec(spec), std::invalid_argument);
  spec.offline.clear();
  spec.degraded_links.push_back({0, 1, -2.0, 0, 10});  // negative factor
  EXPECT_THROW(exec::validate_spec(spec), std::invalid_argument);
  spec.degraded_links.clear();
  spec.losses.push_back({0, 0, -5});  // negative time
  EXPECT_THROW(exec::validate_spec(spec), std::invalid_argument);
}

TEST(FaultSpec, ModelValidationRejectsUnknownIds) {
  const Instance inst = testutil::fig3_instance();  // 4 servers, 4 objects
  FaultSpec spec;
  spec.offline.push_back({9, 0, 10});
  EXPECT_THROW(exec::validate_spec(inst.model, spec), std::invalid_argument);
  spec.offline.clear();
  spec.losses.push_back({0, 17, 0});
  EXPECT_THROW(exec::validate_spec(inst.model, spec), std::invalid_argument);
  spec.losses.clear();
  // The dummy server is outside the fault model and not addressable.
  spec.degraded_links.push_back({0, kDummyServer, 2.0, 0, 10});
  EXPECT_THROW(exec::validate_spec(inst.model, spec), std::invalid_argument);
}

TEST(FaultOracle, OnlineAtSkipsChainedWindows) {
  FaultSpec spec;
  spec.offline.push_back({2, 10, 20});
  spec.offline.push_back({2, 20, 30});  // touching window: must chain
  spec.offline.push_back({2, 100, 110});
  const FaultOracle oracle(spec);
  EXPECT_EQ(oracle.online_at(2, 0), 0);
  EXPECT_EQ(oracle.online_at(2, 10), 30);
  EXPECT_EQ(oracle.online_at(2, 25), 30);
  EXPECT_EQ(oracle.online_at(2, 30), 30);
  EXPECT_EQ(oracle.online_at(2, 105), 110);
  EXPECT_EQ(oracle.online_at(1, 15), 15);  // other servers unaffected
  EXPECT_EQ(oracle.online_at(kDummyServer, 15), 15);  // dummy always online
  EXPECT_EQ(oracle.horizon(), 110);
}

TEST(FaultOracle, LinkFactorMultipliesCoveringWindows) {
  FaultSpec spec;
  spec.degraded_links.push_back({1, 2, 2.0, 0, 100});
  spec.degraded_links.push_back({1, 2, 3.0, 50, 100});
  const FaultOracle oracle(spec);
  EXPECT_DOUBLE_EQ(oracle.link_factor(1, 2, 10), 2.0);
  EXPECT_DOUBLE_EQ(oracle.link_factor(1, 2, 60), 6.0);
  EXPECT_DOUBLE_EQ(oracle.link_factor(1, 2, 100), 1.0);  // end exclusive
  EXPECT_DOUBLE_EQ(oracle.link_factor(2, 1, 10), 1.0);   // directed
  EXPECT_DOUBLE_EQ(oracle.link_factor(1, kDummyServer, 10), 1.0);
}

TEST(FaultOracle, LossesConsumedInTimeOrder) {
  FaultSpec spec;
  spec.losses.push_back({1, 1, 50});
  spec.losses.push_back({0, 0, 10});
  FaultOracle oracle(spec);
  EXPECT_EQ(oracle.next_loss_due(5), nullptr);
  const exec::ReplicaLoss* first = oracle.next_loss_due(60);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->server, 0u);  // earliest first despite spec order
  oracle.pop_loss();
  const exec::ReplicaLoss* second = oracle.next_loss_due(60);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->server, 1u);
  oracle.pop_loss();
  EXPECT_EQ(oracle.next_loss_due(1000), nullptr);
  EXPECT_EQ(oracle.horizon(), 50);
}

TEST(RetryPolicy, ValidateRejectsBadFields) {
  RetryPolicy p;
  p.max_retries = -1;
  EXPECT_THROW(exec::validate_policy(p), std::invalid_argument);
  p = RetryPolicy{};
  p.base_backoff = -1;
  EXPECT_THROW(exec::validate_policy(p), std::invalid_argument);
  p = RetryPolicy{};
  p.multiplier = 0.5;
  EXPECT_THROW(exec::validate_policy(p), std::invalid_argument);
  p = RetryPolicy{};
  p.jitter = 1.5;
  EXPECT_THROW(exec::validate_policy(p), std::invalid_argument);
}

TEST(RetryPolicy, BackoffGrowsGeometricallyAndClamps) {
  RetryPolicy p;
  p.base_backoff = 10;
  p.multiplier = 2.0;
  p.max_backoff = 35;
  p.jitter = 0.0;  // deterministic waits
  Rng rng(7);
  EXPECT_EQ(backoff_wait(p, 1, rng), 10);
  EXPECT_EQ(backoff_wait(p, 2, rng), 20);
  EXPECT_EQ(backoff_wait(p, 3, rng), 35);  // clamped from 40
  EXPECT_EQ(backoff_wait(p, 10, rng), 35);
}

TEST(RetryPolicy, ZeroJitterConsumesNoRngDraw) {
  RetryPolicy p;
  p.base_backoff = 10;
  p.jitter = 0.0;
  Rng with_backoff(99);
  Rng untouched(99);
  (void)backoff_wait(p, 1, with_backoff);
  (void)backoff_wait(p, 2, with_backoff);
  // The stream positions must still agree: jitter-free waits are not
  // allowed to perturb downstream draws (determinism of everything that
  // shares the executor's stream depends on this).
  EXPECT_EQ(with_backoff(), untouched());
}

TEST(RetryPolicy, JitteredWaitsConsumeExactlyOneDrawEach) {
  RetryPolicy p;
  p.base_backoff = 100;
  p.jitter = 0.5;
  Rng jittered(7);
  Rng reference(7);
  (void)backoff_wait(p, 1, jittered);
  (void)reference();  // one draw
  EXPECT_EQ(jittered(), reference());
}

TEST(RetryPolicy, JitterShrinksWaitWithinBoundsDeterministically) {
  RetryPolicy p;
  p.base_backoff = 100;
  p.multiplier = 1.0;
  p.max_backoff = 100;
  p.jitter = 0.5;
  Rng a(42);
  Rng b(42);
  for (int n = 1; n <= 20; ++n) {
    const Tick w = backoff_wait(p, n, a);
    EXPECT_GE(w, 50);
    EXPECT_LE(w, 100);
    EXPECT_EQ(w, backoff_wait(p, n, b));  // same seed, same waits
  }
}

}  // namespace
}  // namespace rtsp
