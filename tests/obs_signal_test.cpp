// SIGTERM during `rtsp execute`: the async-signal-safe watcher thread in
// obs::Session must flush every armed sink (journal via the registered
// interrupt hook, structured log) before the process dies of the signal —
// so an interrupted run still leaves parseable files behind.
//
// The child process runs a real execute via run_cli in a fork; the parent
// delivers SIGTERM mid-run. Timing makes "mid-run" best-effort: when the
// child wins the race and finishes cleanly the files must be parseable all
// the same, so the assertion holds on both paths.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "exec/fault_model.hpp"
#include "io/fault_spec_io.hpp"
#include "io/journal_io.hpp"
#include "support/json.hpp"

namespace rtsp {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + std::to_string(::getpid()) + "_sig_" + name;
}

int run_cli_vec(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  std::vector<const char*> argv = {"rtsp"};
  for (const auto& a : args) argv.push_back(a.c_str());
  return cli::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
}

TEST(ObsSignal, SigtermMidExecuteLeavesParseableJournalAndLog) {
  const std::string inst_path = temp_path("exec.rtsp");
  const std::string sched_path = temp_path("exec.sched");
  const std::string journal_path = temp_path("exec.journal");
  const std::string log_path = temp_path("exec.log");

  // A large, fault-ridden run so the child is very likely still executing
  // when the signal lands.
  std::ostringstream out, err;
  ASSERT_EQ(run_cli_vec({"generate", "--kind", "paper-equal", "--servers", "24",
                         "--objects", "400", "--replicas", "2", "--seed", "9",
                         "--out", inst_path},
                        out, err),
            0)
      << err.str();
  ASSERT_EQ(run_cli_vec({"solve", "--instance", inst_path, "--algo",
                         "GOLCF+H1+H2", "--out", sched_path},
                        out, err),
            0)
      << err.str();
  const std::string faults_path = temp_path("exec.faults");
  {
    exec::FaultSpec faults;
    faults.transient_failure_rate = 0.3;
    faults.seed = 3;
    std::ofstream f(faults_path);
    write_fault_spec(f, faults);
  }

  int ready[2];
  ASSERT_EQ(pipe(ready), 0);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(ready[0]);
    // Tell the parent we are about to enter run_cli, then start executing.
    (void)!::write(ready[1], "g", 1);
    ::close(ready[1]);
    std::ostringstream devnull;
    const int code = run_cli_vec(
        {"execute", "--instance", inst_path, "--schedule", sched_path,
         "--faults", faults_path, "--seed", "3",
         "--journal-out", journal_path, "--log-out", log_path},
        devnull, devnull);
    _exit(code);
  }

  ::close(ready[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready[0], &byte, 1), 1);
  ::close(ready[0]);
  // The child's obs::Session opens the log sink (and installs the signal
  // watcher) before the executor starts: wait for the file so SIGTERM
  // cannot land before the flush machinery exists, then let the executor
  // get going and interrupt it.
  for (int i = 0; i < 500 && ::access(log_path.c_str(), F_OK) != 0; ++i) {
    ::usleep(10 * 1000);
  }
  ASSERT_EQ(::access(log_path.c_str(), F_OK), 0) << "log sink never opened";
  ::usleep(60 * 1000);
  ASSERT_EQ(::kill(child, SIGTERM), 0);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  const bool died_of_sigterm =
      WIFSIGNALED(status) && WTERMSIG(status) == SIGTERM;
  const bool finished_first = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  EXPECT_TRUE(died_of_sigterm || finished_first)
      << "unexpected child status " << status;

  // Either way the journal must exist and parse — the interrupt hook (or
  // the normal completion path) wrote it.
  const JournalDoc journal = read_journal_file(journal_path);
  EXPECT_GT(journal.events.size(), 0u);

  // The structured log must be line-by-line parseable JSONL with the
  // rtsp-log header first.
  std::ifstream log(log_path);
  ASSERT_TRUE(log.good()) << "log file missing";
  std::string line;
  std::size_t lines = 0;
  while (std::getline(log, line)) {
    if (line.empty()) continue;
    const JsonValue v = parse_json(line);  // throws on a torn line
    if (lines == 0) {
      EXPECT_EQ(v.at("format").as_string(), "rtsp-log");
    }
    ++lines;
  }
  EXPECT_GE(lines, 1u);  // the header line survives even an early kill
}

}  // namespace
}  // namespace rtsp
