#include "io/json_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

TEST(JsonWriter, EscapesSpecials) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, ObjectsArraysAndCommas) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("a").value(std::int64_t{1});
  j.key("b").begin_array().value("x").value("y").end_array();
  j.key("c").value(true);
  j.key("d").value(2.5);
  j.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":["x","y"],"c":true,"d":2.5})");
}

TEST(JsonWriter, NestedObjects) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("outer").begin_object().key("inner").value(std::int64_t{7}).end_object();
  j.end_object();
  EXPECT_EQ(out.str(), R"({"outer":{"inner":7}})");
}

TEST(ScheduleJson, ContainsActionsAndCounters) {
  const Schedule h({Action::transfer(1, 2, 0), Action::remove(0, 2),
                    Action::transfer(3, 4, kDummyServer)});
  std::ostringstream out;
  schedule_to_json(out, h);
  const std::string s = out.str();
  EXPECT_NE(s.find(R"("type":"transfer","server":1,"object":2,"source":0)"),
            std::string::npos);
  EXPECT_NE(s.find(R"("type":"delete","server":0,"object":2)"), std::string::npos);
  EXPECT_NE(s.find(R"("source":"dummy")"), std::string::npos);
  EXPECT_NE(s.find(R"("transfers":2)"), std::string::npos);
  EXPECT_NE(s.find(R"("dummy_transfers":1)"), std::string::npos);
}

TEST(InstanceJson, SummarisesTheFig3Instance) {
  std::ostringstream out;
  instance_summary_to_json(out, testutil::fig3_instance());
  const std::string s = out.str();
  EXPECT_NE(s.find(R"("servers":4)"), std::string::npos);
  EXPECT_NE(s.find(R"("objects":4)"), std::string::npos);
  EXPECT_NE(s.find(R"("outstanding":6)"), std::string::npos);
  EXPECT_NE(s.find(R"("superfluous":6)"), std::string::npos);
  EXPECT_NE(s.find(R"("feasible":true)"), std::string::npos);
  EXPECT_NE(s.find(R"("capacities":[2,2,2,2])"), std::string::npos);
}

TEST(SweepJson, HasAllMetricsPerCell) {
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 12;
  std::vector<SweepPoint> points = {
      {"p0", [spec](Rng& rng) { return random_instance(spec, rng); }}};
  SweepConfig cfg;
  cfg.algorithms = {"AR"};
  cfg.trials = 2;
  const SweepResult result = run_sweep(points, cfg);
  std::ostringstream out;
  sweep_to_json(out, result, "x");
  const std::string s = out.str();
  EXPECT_NE(s.find(R"("x_label":"x")"), std::string::npos);
  EXPECT_NE(s.find(R"("algorithm":"AR")"), std::string::npos);
  EXPECT_NE(s.find(R"("dummy_transfers":{"n":2)"), std::string::npos);
  EXPECT_NE(s.find(R"("implementation_cost":{"n":2)"), std::string::npos);
  EXPECT_NE(s.find(R"("schedule_length")"), std::string::npos);
  EXPECT_NE(s.find(R"("algorithm_seconds")"), std::string::npos);
}

}  // namespace
}  // namespace rtsp
