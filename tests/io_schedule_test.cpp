#include "io/schedule_io.hpp"

#include <gtest/gtest.h>

namespace rtsp {
namespace {

Schedule sample() {
  return Schedule({Action::remove(0, 3), Action::transfer(1, 3, 0),
                   Action::transfer(2, 3, kDummyServer), Action::remove(1, 3)});
}

TEST(ScheduleIo, RoundTripPreservesEverything) {
  const Schedule h = sample();
  const Schedule back = schedule_from_text(schedule_to_text(h));
  EXPECT_EQ(back, h);
}

TEST(ScheduleIo, TextFormatIsTheDocumentedOne) {
  EXPECT_EQ(schedule_to_text(sample()),
            "D 0 3\nT 1 3 0\nT 2 3 dummy\nD 1 3\n");
}

TEST(ScheduleIo, SkipsBlankLinesAndComments) {
  const Schedule h = schedule_from_text(
      "# a comment\n\nD 0 1   # trailing comment\n\n  T 1 1 0\n");
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], Action::remove(0, 1));
  EXPECT_EQ(h[1], Action::transfer(1, 1, 0));
}

TEST(ScheduleIo, EmptyInputGivesEmptySchedule) {
  EXPECT_TRUE(schedule_from_text("").empty());
  EXPECT_TRUE(schedule_from_text("# only comments\n").empty());
}

TEST(ScheduleIo, MalformedInputThrowsWithLineNumber) {
  try {
    schedule_from_text("D 0 1\nX 1 2\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unknown action kind"), std::string::npos);
  }
  EXPECT_THROW(schedule_from_text("T 1 2\n"), std::runtime_error);   // missing src
  EXPECT_THROW(schedule_from_text("D 1\n"), std::runtime_error);     // missing obj
  EXPECT_THROW(schedule_from_text("T 1 2 banana\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_text("T -1 2 0\n"), std::runtime_error);
}

// Hardening regressions: ids that would silently truncate on the uint32
// narrowing cast, partially-numeric sources, and trailing garbage must all
// fail loudly instead of producing a wrong schedule.
TEST(ScheduleIo, RejectsIdsThatWouldTruncate) {
  EXPECT_THROW(schedule_from_text("T 4294967296 0 1\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_text("T 0 4294967296 1\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_text("T 0 1 4294967296\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_text("D 99999999999 0\n"), std::runtime_error);
  // kDummyServer itself is reserved; spell it "dummy".
  EXPECT_THROW(schedule_from_text("T 0 1 4294967295\n"), std::runtime_error);
  EXPECT_EQ(schedule_from_text("T 0 1 dummy\n")[0],
            Action::transfer(0, 1, kDummyServer));
}

TEST(ScheduleIo, RejectsPartiallyNumericSource) {
  EXPECT_THROW(schedule_from_text("T 0 1 2x\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_text("T 0 1 -2\n"), std::runtime_error);
}

TEST(ScheduleIo, RejectsTrailingGarbage) {
  EXPECT_THROW(schedule_from_text("T 0 1 2 extra\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_text("D 0 1 2\n"), std::runtime_error);
  // Comments after the fields are still fine.
  EXPECT_EQ(schedule_from_text("D 0 1 # drop it\n").size(), 1u);
}

}  // namespace
}  // namespace rtsp
