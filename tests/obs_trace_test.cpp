#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "heuristics/registry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "workload/paper_setup.hpp"

namespace rtsp::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser, enough to verify the exported trace conforms
// to the Chrome trace-event schema (we deliberately avoid re-using the
// repo's JsonWriter: the check must be independent of the code under test).

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is(Type t) const { return type == t; }
  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    if (consume('}')) return v;
    do {
      JsonValue key = parse_string();
      expect(':');
      v.object.emplace(std::move(key.str), parse_value());
    } while (consume(','));
    expect('}');
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    expect(']');
    return v;
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::String;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            v.str += s_.substr(pos_ - 2, 6);  // kept verbatim; fine for tests
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        v.str += c;
      }
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) skip_ws();
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("expected bool");
    }
    return v;
  }

  JsonValue parse_null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    clear_trace();
  }
  void TearDown() override {
    set_enabled(false);
    clear_trace();
    set_trace_capacity(std::size_t{1} << 16);
  }
};

TEST_F(ObsTraceTest, ScopedSpanRecordsCompleteEvent) {
  {
    ScopedSpan outer("outer", "k=v");
    ScopedSpan inner("inner");
  }
  const std::vector<TraceEvent> events = collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].detail, "k=v");
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::Complete);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  // The inner span closes first, so it cannot outlast the outer one.
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
}

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  set_enabled(false);
  {
    ScopedSpan span("invisible");
    trace_counter("invisible.counter", 1);
  }
  EXPECT_TRUE(collect_trace().empty());
}

TEST_F(ObsTraceTest, CapacityBoundsBufferAndCountsDrops) {
  set_trace_capacity(4);
  for (int i = 0; i < 10; ++i) trace_counter("test.cap", i);
  EXPECT_EQ(collect_trace().size(), 4u);
  EXPECT_EQ(trace_dropped(), 6u);
  clear_trace();  // also zeroes the dropped count
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(ObsTraceTest, ExportedTraceParsesAsChromeTraceEvents) {
  {
    ScopedSpan span("phase.one", "detail text with \"quotes\" and \\slashes");
    trace_counter("candidates", 42);
  }
  { ScopedSpan span("phase.two"); }

  std::ostringstream out;
  write_chrome_trace(out, collect_trace());

  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(out.str()).parse());
  ASSERT_TRUE(root.is(JsonValue::Type::Object));
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(JsonValue::Type::Array));
  ASSERT_EQ(events->array.size(), 3u);

  std::size_t spans = 0;
  std::size_t counters = 0;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is(JsonValue::Type::Object));
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    const JsonValue* ts = e.find("ts");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(ts, nullptr);
    EXPECT_TRUE(name->is(JsonValue::Type::String));
    EXPECT_TRUE(pid->is(JsonValue::Type::Number));
    EXPECT_TRUE(tid->is(JsonValue::Type::Number));
    EXPECT_TRUE(ts->is(JsonValue::Type::Number));
    EXPECT_GE(ts->number, 0.0);
    ASSERT_TRUE(ph->is(JsonValue::Type::String));
    if (ph->str == "X") {
      ++spans;
      const JsonValue* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_TRUE(dur->is(JsonValue::Type::Number));
      EXPECT_GE(dur->number, 0.0);
    } else {
      ASSERT_EQ(ph->str, "C");
      ++counters;
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* value = args->find("value");
      ASSERT_NE(value, nullptr);
      EXPECT_TRUE(value->is(JsonValue::Type::Number));
      EXPECT_EQ(value->number, 42.0);
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(counters, 1u);
}

/// Instrumentation must never change algorithm output: the same pipeline,
/// seeds and instance produce bit-identical schedules with tracing on and
/// off — including OP1P's parallel candidate screening.
TEST_F(ObsTraceTest, TracingDoesNotChangeSchedules) {
  PaperSetup setup;
  setup.servers = 30;
  setup.objects = 200;

  for (const char* spec : {"GOLCF+H1+H2+OP1", "GOLCF+OP1P"}) {
    const Pipeline pipeline = make_pipeline(spec);
    const auto run_once = [&] {
      Rng inst_rng(7);
      const Instance inst = make_equal_size_instance(setup, 2, inst_rng);
      Rng algo_rng(11);
      return pipeline.run(inst.model, inst.x_old, inst.x_new, algo_rng);
    };

    set_enabled(false);
    const Schedule plain = run_once();
    set_enabled(true);
    clear_trace();
    const Schedule traced = run_once();

    ASSERT_EQ(plain.size(), traced.size()) << spec;
    for (std::size_t u = 0; u < plain.size(); ++u) {
      ASSERT_TRUE(plain[u] == traced[u]) << spec << " diverges at " << u;
    }
#if RTSP_OBS_ENABLED
    // The traced run actually recorded the improver spans.
    bool saw_improver_span = false;
    for (const TraceEvent& e : collect_trace()) {
      if (e.name.rfind("improve.", 0) == 0) saw_improver_span = true;
    }
    EXPECT_TRUE(saw_improver_span) << spec;
#endif
  }
}

}  // namespace
}  // namespace rtsp::obs
