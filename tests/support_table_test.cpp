#include "support/table.hpp"

#include <gtest/gtest.h>

namespace rtsp {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string s = t.to_string();
  // Header first, then a separator line of dashes.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  // First column is left-aligned by default, second right-aligned.
  EXPECT_NE(s.find("a        "), std::string::npos);
  EXPECT_NE(s.find("    1"), std::string::npos);
}

TEST(TextTable, NoHeaderNoSeparator) {
  TextTable t;
  t.add_row({"x", "y"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

TEST(TextTable, RaggedRowsPad) {
  TextTable t;
  t.add_row({"a", "b", "c"});
  t.add_row({"only"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TextTable, ExplicitAlignment) {
  TextTable t;
  t.align(1, TextTable::Align::Left);
  t.add_row({"k", "v"});
  t.add_row({"key", "value"});
  const std::string s = t.to_string();
  // Column 1 left-aligned: "v" followed by padding, not preceded.
  EXPECT_NE(s.find("k    v"), std::string::npos);
}

TEST(FormatMeanErr, WithAndWithoutError) {
  EXPECT_EQ(format_mean_err(12.0, 0.0), "12");
  const std::string s = format_mean_err(12.3456, 0.789);
  EXPECT_NE(s.find("12.35"), std::string::npos);
  EXPECT_NE(s.find("±"), std::string::npos);
  EXPECT_NE(s.find("0.79"), std::string::npos);
}

}  // namespace
}  // namespace rtsp
