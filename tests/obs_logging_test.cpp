#include "obs/logging.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "support/json.hpp"

namespace rtsp::obs {
namespace {

/// The Logger is a process-wide singleton; every test re-arms it ring-only
/// at Trace and wipes the ring, and disarms on the way out so other suites
/// in this binary see the default (Off) logger.
class ObsLoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().configure(LogLevel::Trace, "");
    Logger::instance().clear();
  }
  void TearDown() override {
    Logger::instance().shutdown();
    Logger::instance().clear();
  }
};

TEST_F(ObsLoggingTest, LevelNamesRoundTrip) {
  for (const LogLevel l : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
    LogLevel back = LogLevel::Info;
    ASSERT_TRUE(log_level_from_string(to_string(l), back)) << to_string(l);
    EXPECT_EQ(back, l);
  }
  LogLevel out;
  EXPECT_FALSE(log_level_from_string("verbose", out));
  EXPECT_FALSE(log_level_from_string("", out));
}

TEST_F(ObsLoggingTest, LevelGateFiltersBelowArmedLevel) {
  Logger& logger = Logger::instance();
  logger.configure(LogLevel::Warn, "");
  logger.clear();
  EXPECT_FALSE(logger.should_log(LogLevel::Trace));
  EXPECT_FALSE(logger.should_log(LogLevel::Info));
  EXPECT_TRUE(logger.should_log(LogLevel::Warn));
  EXPECT_TRUE(logger.should_log(LogLevel::Error));
  logger.log(LogLevel::Error, "kept");
  EXPECT_EQ(logger.records_emitted(), 1u);
}

TEST_F(ObsLoggingTest, DefaultLoggerIsOff) {
  Logger::instance().shutdown();
  EXPECT_EQ(Logger::instance().level(), LogLevel::Off);
  EXPECT_FALSE(Logger::instance().should_log(LogLevel::Error));
}

TEST_F(ObsLoggingTest, RecordsCarrySequenceAndFields) {
  Logger& logger = Logger::instance();
  logger.log(LogLevel::Info, "first", {log_field("k", std::int64_t{7})});
  logger.log(LogLevel::Warn, "second",
             {log_field("ratio", 0.5), log_field("on", true),
              log_field("algo", "GOLCF")});
  const std::vector<LogRecord> tail = logger.tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].message, "first");
  EXPECT_EQ(tail[1].message, "second");
  EXPECT_LT(tail[0].seq, tail[1].seq);  // oldest first
  EXPECT_EQ(tail[1].level, LogLevel::Warn);
  ASSERT_EQ(tail[1].fields.size(), 3u);
  EXPECT_EQ(tail[1].fields[0].key, "ratio");
  EXPECT_EQ(tail[1].fields[2].s, "GOLCF");
}

TEST_F(ObsLoggingTest, RingKeepsMostRecentAndCountsEvictions) {
  Logger& logger = Logger::instance();
  logger.configure(LogLevel::Trace, "", /*ring_capacity=*/4);
  logger.clear();
  for (int i = 0; i < 10; ++i) {
    logger.log(LogLevel::Info, "m" + std::to_string(i));
  }
  EXPECT_EQ(logger.records_emitted(), 10u);
  EXPECT_EQ(logger.evicted(), 6u);
  const std::vector<LogRecord> tail = logger.tail(100);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().message, "m6");
  EXPECT_EQ(tail.back().message, "m9");
  // Asking for fewer than held returns the newest ones, oldest first.
  const std::vector<LogRecord> two = logger.tail(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].message, "m8");
  EXPECT_EQ(two[1].message, "m9");
}

TEST_F(ObsLoggingTest, JsonLinesAreValidAndTyped) {
  LogRecord record;
  record.seq = 3;
  record.wall_ns = 123;
  record.tid = 1;
  record.level = LogLevel::Debug;
  record.message = "escape \"this\"\n";
  record.fields = {log_field("i", std::int64_t{-5}),
                   log_field("u", std::uint64_t{18446744073709551615ull}),
                   log_field("d", 1.5), log_field("b", false),
                   log_field("s", "x\ty")};
  const std::string line = log_record_to_json(record);
  const JsonValue doc = parse_json(line);
  EXPECT_EQ(doc.at("seq").as_int(), 3);
  EXPECT_EQ(doc.at("level").as_string(), "debug");
  EXPECT_EQ(doc.at("msg").as_string(), "escape \"this\"\n");
  const JsonValue& fields = doc.at("fields");
  EXPECT_EQ(fields.at("i").as_int(), -5);
  EXPECT_EQ(fields.at("d").as_double(), 1.5);
  EXPECT_FALSE(fields.at("b").as_bool());
  EXPECT_EQ(fields.at("s").as_string(), "x\ty");

  const JsonValue header = parse_json(log_header_json());
  EXPECT_EQ(header.at("format").as_string(), "rtsp-log");
  EXPECT_EQ(header.at("version").as_int(), 1);
}

TEST_F(ObsLoggingTest, FileSinkWritesHeaderAndEveryRecord) {
  const std::string path =
      ::testing::TempDir() + "obs_logging_test_sink.jsonl";
  Logger& logger = Logger::instance();
  logger.configure(LogLevel::Debug, path, /*ring_capacity=*/2);
  logger.clear();
  for (int i = 0; i < 5; ++i) {
    logger.log(LogLevel::Info, "r" + std::to_string(i),
               {log_field("i", std::int64_t{i})});
  }
  logger.shutdown();  // flushes + closes

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(parse_json(line).at("format").as_string(), "rtsp-log");
  int records = 0;
  std::int64_t last_seq = -1;
  while (std::getline(in, line)) {
    const JsonValue doc = parse_json(line);
    EXPECT_GT(doc.at("seq").as_int(), last_seq);
    last_seq = doc.at("seq").as_int();
    ++records;
  }
  // The ring held only 2, but the sink must have all 5.
  EXPECT_EQ(records, 5);
  std::remove(path.c_str());
}

TEST_F(ObsLoggingTest, ObsLogMacroRespectsLevelGate) {
  Logger& logger = Logger::instance();
  logger.configure(LogLevel::Warn, "");
  logger.clear();
  int evaluations = 0;
  const auto field_with_side_effect = [&] {
    ++evaluations;
    return log_field("n", std::int64_t{1});
  };
#if RTSP_OBS_ENABLED
  OBS_LOG_DEBUG("below the gate", field_with_side_effect());
  EXPECT_EQ(evaluations, 0) << "gated-out fields must not be evaluated";
  OBS_LOG_ERROR("above the gate", field_with_side_effect());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(logger.records_emitted(), 1u);
#else
  OBS_LOG_ERROR("compiled out", field_with_side_effect());
  (void)field_with_side_effect;
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(logger.records_emitted(), 0u);
#endif
}

TEST_F(ObsLoggingTest, ConcurrentWritersKeepSequencesUniqueAndComplete) {
  Logger& logger = Logger::instance();
  logger.configure(LogLevel::Trace, "", /*ring_capacity=*/4096);
  logger.clear();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.log(LogLevel::Info, "w", {log_field("t", std::int64_t{t})});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(logger.records_emitted(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const std::vector<LogRecord> tail = logger.tail(kThreads * kPerThread);
  ASSERT_EQ(tail.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, tail[i - 1].seq + 1);  // gap- and dup-free
  }
}

}  // namespace
}  // namespace rtsp::obs
