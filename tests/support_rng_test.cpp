#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace rtsp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForTrialStreamsAreIndependent) {
  Rng a = Rng::for_trial(99, 0);
  Rng b = Rng::for_trial(99, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
  // Reconstructing the same trial gives the same stream.
  Rng a2 = Rng::for_trial(99, 0);
  Rng a3 = Rng::for_trial(99, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a2(), a3());
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, kDraws / kBound * 0.15) << "value " << v;
  }
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntInvalidRangeThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleHandlesSmallVectors) {
  Rng rng(17);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, PickReturnsContainedElement) {
  Rng rng(19);
  const std::vector<int> v = {3, 1, 4, 1, 5};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_NE(std::find(v.begin(), v.end(), x), v.end());
  }
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), PreconditionError);
}

TEST(Rng, Mix64SensitiveToBothArguments) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
  EXPECT_NE(mix64(0, 0), mix64(1, 0));
}

TEST(SampleWithoutReplacement, ProducesDistinctValidIndices) {
  Rng rng(23);
  for (std::size_t n : {1ul, 5ul, 100ul, 1000ul}) {
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, n / 2, n}) {
      auto s = sample_without_replacement(rng, n, count);
      EXPECT_EQ(s.size(), count);
      std::set<std::size_t> distinct(s.begin(), s.end());
      EXPECT_EQ(distinct.size(), count);
      for (std::size_t x : s) EXPECT_LT(x, n);
    }
  }
}

TEST(SampleWithoutReplacement, CountAboveNThrows) {
  Rng rng(23);
  EXPECT_THROW(sample_without_replacement(rng, 3, 4), PreconditionError);
}

TEST(SampleWithoutReplacement, SparsePathIsUniformish) {
  Rng rng(29);
  std::vector<int> hits(50, 0);
  for (int rep = 0; rep < 5000; ++rep) {
    for (std::size_t idx : sample_without_replacement(rng, 50, 2)) ++hits[idx];
  }
  for (int h : hits) EXPECT_NEAR(h, 200, 60);
}

}  // namespace
}  // namespace rtsp
