// Differential tests for the incremental evaluation engine: every metrics()
// and is_valid() answer must equal the ground truth computed by the full
// Validator replay and schedule_cost re-sum, on valid candidates, broken
// candidates (injected capacity violations, bad sources, wrong end states)
// and across adoptions that shift the base schedule under the prefix cache.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/incremental.hpp"
#include "core/validator.hpp"
#include "heuristics/op1.hpp"
#include "heuristics/registry.hpp"
#include "heuristics/surgery.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

Instance make_instance(std::uint64_t trial) {
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 24;
  spec.max_replicas = 3;
  spec.capacity_slack = trial % 3 == 0 ? 0.5 : 0.0;
  Rng rng = Rng::for_trial(0xCAC4E, trial);
  return random_instance(spec, rng);
}

Schedule seed_schedule(const Instance& inst, std::uint64_t trial) {
  Rng rng = Rng::for_trial(0x5EED, trial);
  return make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, rng);
}

/// Ground truth for one candidate against one evaluator.
void expect_matches_full_evaluation(const IncrementalEvaluator& eval,
                                    const Schedule& cand, const Instance& inst,
                                    std::size_t prefix_hint, std::size_t suffix_hint) {
  const auto m = eval.metrics(cand, prefix_hint, suffix_hint);
  EXPECT_EQ(m.cost, schedule_cost(inst.model, cand));
  EXPECT_EQ(m.dummy_transfers, cand.dummy_transfer_count());
  IncrementalEvaluator::Scratch scratch(inst.model, inst.x_old);
  EXPECT_EQ(eval.is_valid(cand, m, scratch),
            Validator::is_valid(inst.model, inst.x_old, inst.x_new, cand));
}

/// One random structure-preserving or structure-breaking edit. Returns the
/// sound (prefix, suffix) hints for it.
std::pair<std::size_t, std::size_t> mutate(Schedule& cand, const SystemModel& model,
                                           Rng& rng) {
  const std::size_t size = cand.size();
  switch (rng.below(5)) {
    case 0: {  // move an action earlier (what OP1/H1 do)
      const std::size_t from = rng.below(size);
      const std::size_t to = rng.below(from + 1);
      move_action_earlier(cand, from, to);
      return {to, size - from - 1};
    }
    case 1: {  // re-source a transfer, possibly to a nonsense server
      const std::size_t p = rng.below(size);
      if (cand[p].is_transfer()) {
        cand[p].source = rng.chance(0.2)
                             ? kDummyServer
                             : static_cast<ServerId>(rng.below(model.num_servers()));
      }
      return {p, size - p - 1};
    }
    case 2: {  // duplicate an action (changes length; often breaks capacity)
      const std::size_t p = rng.below(size);
      const std::size_t at = rng.below(size + 1);
      const Action a = cand[p];
      cand.insert(at, a);
      return {std::min(at, p), 0};
    }
    case 3: {  // drop an action (often leaves the wrong final state)
      const std::size_t p = rng.below(size);
      cand.erase(p);
      return {p, size - p - 1};
    }
    default: {  // inject a capacity violation: duplicate transfers up front
      const std::size_t copies = 1 + rng.below(3);
      for (std::size_t c = 0; c < copies; ++c) {
        const std::size_t p = rng.below(cand.size());
        if (cand[p].is_transfer()) cand.insert(0, cand[p]);
      }
      return {0, 0};
    }
  }
}

TEST(PrefixStateCache, MatchesDirectSimulationAtEveryPosition) {
  const Instance inst = make_instance(1);
  const Schedule h = seed_schedule(inst, 1);
  PrefixStateCache cache(inst.model, inst.x_old, h);
  EXPECT_GE(cache.spacing(), 1u);
  ExecutionState state(inst.model, inst.x_old);
  for (std::size_t pos = 0; pos <= h.size(); pos += 7) {
    cache.state_before(h, pos, state);
    const ExecutionState direct =
        simulate_prefix_lenient(inst.model, inst.x_old, h, pos);
    EXPECT_EQ(state.placement(), direct.placement()) << "pos " << pos;
  }
}

TEST(IncrementalEvaluator, SummaryMatchesFullEvaluationOnSeedSchedules) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const Instance inst = make_instance(trial);
    const Schedule h = seed_schedule(inst, trial);
    IncrementalEvaluator eval(inst.model, inst.x_old, inst.x_new, h);
    EXPECT_EQ(eval.cost(), schedule_cost(inst.model, h));
    EXPECT_EQ(eval.dummy_transfers(), h.dummy_transfer_count());
    EXPECT_EQ(eval.base_valid(),
              Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  }
}

TEST(IncrementalEvaluator, DifferentialAgainstValidatorAcrossSeededMutations) {
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    const Instance inst = make_instance(trial);
    IncrementalEvaluator eval(inst.model, inst.x_old, inst.x_new,
                              seed_schedule(inst, trial));
    Rng rng = Rng::for_trial(0xD1FF, trial);
    for (int round = 0; round < 40; ++round) {
      Schedule cand = eval.schedule();
      const auto [prefix_hint, suffix_hint] = mutate(cand, inst.model, rng);
      // Identical answers with tight hints, loose hints, and no hints.
      expect_matches_full_evaluation(eval, cand, inst, prefix_hint, suffix_hint);
      expect_matches_full_evaluation(eval, cand, inst, prefix_hint / 2,
                                     suffix_hint / 2);
      expect_matches_full_evaluation(eval, cand, inst, 0, 0);

      // Occasionally adopt a valid candidate so later rounds run against a
      // refreshed prefix cache and updated summary.
      const auto m = eval.metrics(cand, prefix_hint, suffix_hint);
      if (eval.is_valid(cand, m) && rng.chance(0.5)) {
        eval.adopt(std::move(cand), m);
        EXPECT_EQ(eval.cost(), schedule_cost(inst.model, eval.schedule()));
        EXPECT_EQ(eval.dummy_transfers(), eval.schedule().dummy_transfer_count());
        EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                        eval.schedule()));
      }
    }
  }
}

TEST(IncrementalEvaluator, HandlesInvalidBaseByFullFallback) {
  const Instance inst = make_instance(3);
  Schedule h = seed_schedule(inst, 3);
  Schedule valid = h;
  h.erase(h.size() / 2);  // wrong final state: base_valid() must be false
  IncrementalEvaluator eval(inst.model, inst.x_old, inst.x_new, h);
  EXPECT_FALSE(eval.base_valid());
  expect_matches_full_evaluation(eval, valid, inst, 0, 0);
  expect_matches_full_evaluation(eval, h, inst, 0, 0);
}

TEST(Op1ParallelScreen, ProducesByteIdenticalSchedules) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const Instance inst = make_instance(trial);
    Rng build_rng = Rng::for_trial(0xA0B1, trial);
    const Schedule start =
        make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new,
                                         build_rng);

    Op1Options sequential;
    Op1Options parallel;
    parallel.parallel_screen = true;
    parallel.threads = 4;
    for (const auto restart :
         {Op1Options::Restart::FromStart, Op1Options::Restart::Continue}) {
      sequential.restart = restart;
      parallel.restart = restart;
      Rng rng_seq(1);
      Rng rng_par(1);
      const Schedule a = Op1Improver(sequential)
                             .improve(inst.model, inst.x_old, inst.x_new, start,
                                      rng_seq);
      const Schedule b = Op1Improver(parallel)
                             .improve(inst.model, inst.x_old, inst.x_new, start,
                                      rng_par);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t p = 0; p < a.size(); ++p) {
        EXPECT_EQ(a[p], b[p]) << "trial " << trial << " position " << p;
      }
      EXPECT_EQ(schedule_cost(inst.model, a), schedule_cost(inst.model, b));
    }
  }
}

}  // namespace
}  // namespace rtsp
