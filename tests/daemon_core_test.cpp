// DaemonCore and EpochQueue: admission policies, partial convergence with
// re-admission backoff, durable kill/recover bit-identity, and the
// refusal paths (occupied state dir, seed/model mismatch, corrupt state).
#include "daemon/daemon.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "io/checkpoint_io.hpp"
#include "support/rng.hpp"
#include "test_helpers.hpp"
#include "workload/epoch_stream.hpp"

namespace rtsp {
namespace {

using daemon::AdmitResult;
using daemon::DaemonCore;
using daemon::DaemonError;
using daemon::DaemonOptions;
using daemon::EpochQueue;
using daemon::PendingEpoch;
using daemon::QueuePolicy;
using daemon::RecoverReport;
using exec::Tick;

std::string fresh_dir(const std::string& name) {
  const std::string path = testing::TempDir() + "/" +
                           std::to_string(::getpid()) + "_daemon_" + name;
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  return path;
}

Instance small_instance(std::uint64_t seed = 11) {
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 12;
  Rng rng(seed);
  return random_instance(spec, rng);
}

std::vector<ReplicationMatrix> targets_for(const Instance& inst,
                                           std::size_t count,
                                           std::uint64_t seed = 21) {
  EpochStreamSpec spec;
  spec.count = count;
  spec.moves = 4;
  Rng rng(seed);
  return make_epoch_stream(inst.model, inst.x_old, spec, rng);
}

DaemonOptions memory_options() {
  DaemonOptions o;
  o.seed = 5;
  return o;  // no state_dir: fully in-memory
}

// --- EpochQueue -----------------------------------------------------------

PendingEpoch pending(std::uint64_t seq, Tick not_before = 0,
                     std::uint32_t attempt = 1) {
  PendingEpoch e;
  e.seq = seq;
  e.attempt = attempt;
  e.not_before = not_before;
  e.target = ReplicationMatrix(1, 1);
  return e;
}

TEST(EpochQueue, KeepsAscendingSeqOrderRegardlessOfPushOrder) {
  EpochQueue q(8);
  q.push(pending(3));
  q.push(pending(1));
  q.push(pending(2));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.entries()[0].seq, 1u);
  EXPECT_EQ(q.entries()[1].seq, 2u);
  EXPECT_EQ(q.entries()[2].seq, 3u);
  EXPECT_EQ(q.newest_seq(), 3u);
}

TEST(EpochQueue, NextReadyHonorsNotBeforeGate) {
  EpochQueue q(8);
  q.push(pending(1, 100));
  q.push(pending(2, 0));
  // Seq 1 gates until tick 100; seq 2 is ready but seq 1 is lower.
  const PendingEpoch* ready = q.next_ready(0);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->seq, 2u);
  ready = q.next_ready(100);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->seq, 1u);
  EXPECT_EQ(q.earliest_not_before(), 0);
}

TEST(EpochQueue, NextReadyNullWhenEverythingGated) {
  EpochQueue q(8);
  q.push(pending(1, 50));
  q.push(pending(2, 30));
  EXPECT_EQ(q.next_ready(10), nullptr);
  EXPECT_EQ(q.earliest_not_before(), 30);
}

TEST(EpochQueue, ReplaceSwapsCoalesceVictim) {
  EpochQueue q(2);
  q.push(pending(1));
  q.push(pending(2));
  EXPECT_TRUE(q.full());
  q.replace(2, pending(3));
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.entries()[1].seq, 3u);
}

TEST(EpochQueue, PopRemovesExactEntry) {
  EpochQueue q(8);
  q.push(pending(1));
  q.push(pending(2, 7, 3));
  const PendingEpoch e = q.pop(2, 3);
  EXPECT_EQ(e.seq, 2u);
  EXPECT_EQ(e.attempt, 3u);
  EXPECT_EQ(e.not_before, 7);
  EXPECT_EQ(q.size(), 1u);
}

// --- In-memory DaemonCore -------------------------------------------------

TEST(DaemonCore, ConvergesToLastSubmittedTarget) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 3);
  DaemonCore core(inst.model, inst.x_old, memory_options());

  for (const auto& t : targets) {
    const AdmitResult r = core.admit(t);
    EXPECT_TRUE(r.accepted());
  }
  core.run_until_idle();

  EXPECT_TRUE(core.idle());
  EXPECT_TRUE(core.placement() == targets.back());
  EXPECT_EQ(core.counters().admitted, 3u);
  EXPECT_EQ(core.counters().converged, 3u);
  EXPECT_EQ(core.placement_crc(), daemon::placement_fingerprint(targets.back()));
}

TEST(DaemonCore, TrivialEpochCommitsWithoutCost) {
  const Instance inst = small_instance();
  DaemonCore core(inst.model, inst.x_old, memory_options());
  const AdmitResult r = core.admit(inst.x_old);  // already there
  EXPECT_TRUE(r.accepted());
  core.run_until_idle();
  EXPECT_EQ(core.counters().converged, 1u);
  EXPECT_EQ(core.counters().cost_paid, 0);
  EXPECT_EQ(core.counters().actions_applied, 0u);
}

TEST(DaemonCore, RefusesInfeasibleTarget) {
  const Instance inst = small_instance();
  DaemonCore core(inst.model, inst.x_old, memory_options());
  // Every object on every server cannot fit the tight random capacities.
  ReplicationMatrix everything(inst.model.num_servers(),
                               inst.model.objects().count());
  for (ServerId s = 0; s < inst.model.num_servers(); ++s) {
    for (ObjectId k = 0; k < inst.model.objects().count(); ++k) {
      everything.set(s, k);
    }
  }
  ASSERT_FALSE(storage_feasible(inst.model, everything));
  const AdmitResult r = core.admit(everything);
  EXPECT_EQ(r.status, AdmitResult::Status::kInfeasible);
  EXPECT_FALSE(r.accepted());
  EXPECT_EQ(core.counters().infeasible, 1u);
  EXPECT_TRUE(core.idle());
}

TEST(DaemonCore, RefusesDimensionMismatch) {
  const Instance inst = small_instance();
  DaemonCore core(inst.model, inst.x_old, memory_options());
  const AdmitResult r = core.admit(ReplicationMatrix(2, 3));
  EXPECT_EQ(r.status, AdmitResult::Status::kMismatched);
  EXPECT_FALSE(r.error.empty());
}

TEST(DaemonCore, RejectPolicyBouncesWithRetryAfter) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 3);
  DaemonOptions o = memory_options();
  o.queue_depth = 2;
  o.policy = QueuePolicy::kReject;
  DaemonCore core(inst.model, inst.x_old, o);

  EXPECT_TRUE(core.admit(targets[0]).accepted());
  EXPECT_TRUE(core.admit(targets[1]).accepted());
  const AdmitResult r = core.admit(targets[2]);
  EXPECT_EQ(r.status, AdmitResult::Status::kRejected);
  EXPECT_GT(r.retry_after, 0);
  EXPECT_EQ(core.counters().rejected, 1u);
  // Draining makes room again.
  core.run_until_idle();
  EXPECT_TRUE(core.admit(targets[2]).accepted());
  core.run_until_idle();
  EXPECT_TRUE(core.placement() == targets[2]);
}

TEST(DaemonCore, CoalescePolicyReplacesNewestPending) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 3);
  DaemonOptions o = memory_options();
  o.queue_depth = 2;
  o.policy = QueuePolicy::kCoalesce;
  DaemonCore core(inst.model, inst.x_old, o);

  EXPECT_TRUE(core.admit(targets[0]).accepted());
  const AdmitResult second = core.admit(targets[1]);
  EXPECT_TRUE(second.accepted());
  const AdmitResult third = core.admit(targets[2]);
  EXPECT_EQ(third.status, AdmitResult::Status::kCoalesced);
  EXPECT_EQ(third.replaced, second.seq);
  EXPECT_EQ(core.counters().coalesced, 1u);
  EXPECT_EQ(core.counters().admitted, 3u);

  core.run_until_idle();
  // The coalesced-away target is never visited; the final state is the
  // replacement (latest) target.
  EXPECT_TRUE(core.placement() == targets[2]);
  EXPECT_EQ(core.counters().converged, 2u);
}

TEST(DaemonCore, BudgetedEpochsReadmitAndStillConverge) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 2);
  DaemonOptions o = memory_options();
  o.epoch_budget_ticks = 10;  // far too small: forces partial rounds
  o.max_attempts = 3;
  DaemonCore core(inst.model, inst.x_old, o);
  for (const auto& t : targets) ASSERT_TRUE(core.admit(t).accepted());
  core.run_until_idle();

  EXPECT_TRUE(core.placement() == targets.back());
  EXPECT_EQ(core.counters().converged, 2u);
  EXPECT_GT(core.counters().partial_rounds, 0u);
  EXPECT_EQ(core.counters().partial_rounds, core.counters().readmissions);
}

TEST(DaemonCore, DeterministicAcrossIdenticalRuns) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 3);
  DaemonOptions o = memory_options();
  o.epoch_budget_ticks = 25;

  auto run = [&] {
    DaemonCore core(inst.model, inst.x_old, o);
    for (const auto& t : targets) core.admit(t);
    core.run_until_idle();
    return core.status();
  };
  const DaemonCore::Status a = run();
  const DaemonCore::Status b = run();
  EXPECT_EQ(a.placement_crc, b.placement_crc);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_TRUE(a.counters == b.counters);
}

TEST(DaemonCore, EffectiveLogValidatesEndToEnd) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 2);
  DaemonOptions o = memory_options();
  o.record_effective = true;
  o.epoch_budget_ticks = 30;
  DaemonCore core(inst.model, inst.x_old, o);
  for (const auto& t : targets) core.admit(t);
  core.run_until_idle();
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, core.placement(),
                                  core.effective_log()));
}

// --- Durable state + recovery --------------------------------------------

DaemonOptions durable_options(const std::string& dir) {
  DaemonOptions o;
  o.seed = 5;
  o.state_dir = dir;
  o.fsync = false;  // tests exercise the protocol, not the disk
  o.checkpoint_every = 2;
  return o;
}

TEST(DaemonCore, FreshConstructorRefusesOccupiedStateDir) {
  const Instance inst = small_instance();
  const std::string dir = fresh_dir("occupied");
  DaemonCore first(inst.model, inst.x_old, durable_options(dir));
  EXPECT_THROW(DaemonCore(inst.model, inst.x_old, durable_options(dir)),
               DaemonError);
}

TEST(DaemonCore, RecoverFromCleanShutdownResumesState) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 2);
  const std::string dir = fresh_dir("clean");

  DaemonCore::Status before;
  {
    DaemonCore core(inst.model, inst.x_old, durable_options(dir));
    for (const auto& t : targets) core.admit(t);
    core.run_until_idle();
    core.shutdown();
    before = core.status();
  }
  RecoverReport report;
  DaemonCore core(inst.model, inst.x_old, durable_options(dir), report);
  EXPECT_TRUE(report.had_checkpoint);
  const DaemonCore::Status after = core.status();
  EXPECT_EQ(after.placement_crc, before.placement_crc);
  EXPECT_EQ(after.clock, before.clock);
  EXPECT_EQ(after.last_seq, before.last_seq);
  EXPECT_EQ(after.counters.converged, before.counters.converged);
  EXPECT_EQ(after.counters.recoveries, before.counters.recoveries + 1);
}

TEST(DaemonCore, RecoverRefusesSeedMismatch) {
  const Instance inst = small_instance();
  const std::string dir = fresh_dir("seed_mismatch");
  {
    DaemonCore core(inst.model, inst.x_old, durable_options(dir));
    core.admit(targets_for(inst, 1)[0]);
    core.run_until_idle();
    core.shutdown();
  }
  DaemonOptions other = durable_options(dir);
  other.seed = 6;
  RecoverReport report;
  EXPECT_THROW(DaemonCore(inst.model, inst.x_old, other, report), DaemonError);
}

TEST(DaemonCore, RecoverRefusesModelMismatch) {
  const Instance inst = small_instance(11);
  const Instance other = small_instance(12);
  ASSERT_EQ(inst.model.num_servers(), other.model.num_servers());
  const std::string dir = fresh_dir("model_mismatch");
  {
    DaemonCore core(inst.model, inst.x_old, durable_options(dir));
    core.admit(targets_for(inst, 1)[0]);
    core.run_until_idle();
    core.shutdown();
  }
  RecoverReport report;
  EXPECT_THROW(DaemonCore(other.model, other.x_old, durable_options(dir), report),
               DaemonError);
}

TEST(DaemonCore, RecoverRefusesCorruptCheckpoint) {
  const Instance inst = small_instance();
  const std::string dir = fresh_dir("corrupt_ckp");
  {
    DaemonCore core(inst.model, inst.x_old, durable_options(dir));
    core.admit(targets_for(inst, 1)[0]);
    core.run_until_idle();
    core.shutdown();  // writes the final checkpoint
  }
  {
    std::fstream f(dir + "/checkpoint",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24);
    f.put('\xff');
  }
  RecoverReport report;
  EXPECT_THROW(DaemonCore(inst.model, inst.x_old, durable_options(dir), report),
               DaemonError);
}

struct CrashAt {
  std::string point;
  int countdown = 1;
};

/// Runs the workload against a durable core, crashing (abandon, no flush)
/// when the `n`-th firing of hook `point` is reached, then recovers and
/// finishes. Returns the final status.
DaemonCore::Status crash_and_recover(const Instance& inst,
                                     const std::vector<ReplicationMatrix>& targets,
                                     const DaemonOptions& base,
                                     const CrashAt& crash,
                                     RecoverReport& report) {
  struct Crash {};
  auto core = std::make_unique<DaemonCore>(inst.model, inst.x_old, base);
  int remaining = crash.countdown;
  core->crash_hook = [&](const char* p) {
    if (crash.point == p && --remaining == 0) throw Crash{};
  };
  std::size_t next = 0;
  try {
    while (next < targets.size()) {
      if (!core->admit(targets[next]).accepted()) core->step();
      else ++next;
    }
    core->run_until_idle();
    ADD_FAILURE() << "crash point '" << crash.point << "' never fired";
  } catch (const Crash&) {
    core->crash_hook = nullptr;
    core->abandon();
    core.reset();
    core = std::make_unique<DaemonCore>(inst.model, inst.x_old, base, report);
    next = static_cast<std::size_t>(core->last_seq());
    while (next < targets.size()) {
      if (!core->admit(targets[next]).accepted()) core->step();
      else ++next;
    }
    core->run_until_idle();
  }
  return core->status();
}

class DaemonRecoveryBitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(DaemonRecoveryBitIdentity, CrashPointPreservesOutcome) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 3);

  DaemonOptions o = durable_options(fresh_dir(std::string("ref_") + GetParam()));
  o.epoch_budget_ticks = 25;  // partials + readmissions in the mix
  DaemonCore reference(inst.model, inst.x_old, o);
  for (const auto& t : targets) {
    if (!reference.admit(t).accepted()) reference.step();
  }
  reference.run_until_idle();
  const DaemonCore::Status expected = reference.status();

  DaemonOptions crashed =
      durable_options(fresh_dir(std::string("crash_") + GetParam()));
  crashed.epoch_budget_ticks = 25;
  RecoverReport report;
  const DaemonCore::Status got = crash_and_recover(
      inst, targets, crashed, CrashAt{GetParam(), 2}, report);

  EXPECT_EQ(got.placement_crc, expected.placement_crc);
  EXPECT_EQ(got.clock, expected.clock);
  EXPECT_EQ(got.last_seq, expected.last_seq);
  DaemonCounters a = expected.counters;
  DaemonCounters b = got.counters;
  a.checkpoints = b.checkpoints = 0;  // crash timing may change these two
  a.recoveries = b.recoveries = 0;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(got.counters.recoveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, DaemonRecoveryBitIdentity,
                         ::testing::Values("admit", "begin", "commit",
                                           "checkpoint"));

TEST(DaemonCore, TornWalTailRolledBackOnRecovery) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 2);
  const std::string dir = fresh_dir("torn");
  {
    DaemonCore core(inst.model, inst.x_old, durable_options(dir));
    for (const auto& t : targets) core.admit(t);
    core.run_until_idle();
    core.abandon();  // no final checkpoint: the WAL is the only record
  }
  {
    std::ofstream wal(dir + "/wal.log", std::ios::binary | std::ios::app);
    wal.write("\x03garbage-torn-tail", 18);
  }
  RecoverReport report;
  DaemonCore core(inst.model, inst.x_old, durable_options(dir), report);
  EXPECT_EQ(report.rolled_back_bytes, 18u);
  EXPECT_TRUE(core.placement() == targets.back());
  // A second recovery sees the truncated (clean) file.
  core.shutdown();
  RecoverReport again;
  DaemonCore core2(inst.model, inst.x_old, durable_options(dir), again);
  EXPECT_EQ(again.rolled_back_bytes, 0u);
}

TEST(DaemonCore, CrashBeforeWalRotationDiscardsStaleWal) {
  const Instance inst = small_instance();
  const auto targets = targets_for(inst, 3);
  DaemonOptions o = durable_options(fresh_dir("stale"));
  struct Crash {};
  RecoverReport report;

  auto core = std::make_unique<DaemonCore>(inst.model, inst.x_old, o);
  core->crash_hook = [](const char* p) {
    if (std::string("checkpoint") == p) throw Crash{};
  };
  std::size_t next = 0;
  try {
    while (next < targets.size()) {
      if (!core->admit(targets[next]).accepted()) core->step();
      else ++next;
    }
    core->run_until_idle();
    FAIL() << "checkpoint crash point never fired";
  } catch (const Crash&) {
    core->crash_hook = nullptr;
    core->abandon();
    core.reset();
    core = std::make_unique<DaemonCore>(inst.model, inst.x_old, o, report);
  }
  // The WAL on disk was one generation behind the just-written checkpoint.
  EXPECT_TRUE(report.wal_stale);
  EXPECT_TRUE(report.had_checkpoint);
  next = static_cast<std::size_t>(core->last_seq());
  while (next < targets.size()) {
    if (!core->admit(targets[next]).accepted()) core->step();
    else ++next;
  }
  core->run_until_idle();
  EXPECT_TRUE(core->placement() == targets.back());
}

}  // namespace
}  // namespace rtsp
