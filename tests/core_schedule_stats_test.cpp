#include "core/schedule_stats.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;
using testutil::uniform_model;

TEST(ScheduleStats, CountsAndVolumes) {
  const SystemModel m = matrix_model({20, 20, 20}, {5, 2},
                                     {{0, 3, 6}, {3, 0, 1}, {6, 1, 0}});
  const Schedule h({Action::transfer(0, 0, 1),               // 5 units in, cost 15
                    Action::transfer(2, 1, kDummyServer),    // 2 units, cost 14
                    Action::remove(1, 0), Action::remove(1, 1)});
  const ScheduleStats s = analyze_schedule(m, h);
  EXPECT_EQ(s.actions, 4u);
  EXPECT_EQ(s.transfers, 2u);
  EXPECT_EQ(s.deletions, 2u);
  EXPECT_EQ(s.dummy_transfers, 1u);
  EXPECT_EQ(s.total_cost, 15 + 14);
  EXPECT_EQ(s.dummy_cost, 14);
  EXPECT_EQ(s.real_volume, 5);
  EXPECT_EQ(s.dummy_volume, 2);
  EXPECT_EQ(s.per_server[0].bytes_in, 5);
  EXPECT_EQ(s.per_server[0].cost_in, 15);
  EXPECT_EQ(s.per_server[1].bytes_out, 5);
  EXPECT_EQ(s.per_server[1].deletions, 2u);
  EXPECT_EQ(s.per_server[2].bytes_in, 2);
  EXPECT_EQ(s.per_server[2].transfers_in, 1u);
  EXPECT_EQ(s.transfers_per_object[0], 1u);
  EXPECT_EQ(s.transfers_per_object[1], 1u);
  EXPECT_EQ(s.max_object_fanout, 1u);
  EXPECT_NE(s.to_string().find("4 actions"), std::string::npos);
}

TEST(ScheduleStats, EmptySchedule) {
  const SystemModel m = uniform_model({1}, {1});
  const ScheduleStats s = analyze_schedule(m, Schedule{});
  EXPECT_EQ(s.actions, 0u);
  EXPECT_EQ(s.total_cost, 0);
  EXPECT_EQ(s.max_object_fanout, 0u);
}

TEST(ScheduleStats, TotalCostMatchesCostModel) {
  Rng rng(4);
  RandomInstanceSpec spec;
  const Instance inst = random_instance(spec, rng);
  const Schedule h =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, rng);
  const ScheduleStats s = analyze_schedule(inst.model, h);
  EXPECT_EQ(s.total_cost, schedule_cost(inst.model, h));
  EXPECT_EQ(s.dummy_transfers, h.dummy_transfer_count());
  EXPECT_EQ(s.transfers + s.deletions, h.size());
}

TEST(PeakStorage, TracksTheHighWaterMark) {
  // Server 0: starts with 4+7=11, transfer adds 4 more (peak 15), then
  // deletions bring it down.
  const SystemModel m = uniform_model({20, 20}, {4, 7, 4});
  ReplicationMatrix x_old(2, 3);
  x_old.set(0, 0);
  x_old.set(0, 1);
  x_old.set(1, 2);
  const Schedule h({Action::transfer(0, 2, 1), Action::remove(0, 1),
                    Action::remove(0, 0)});
  const auto peak = peak_storage(m, x_old, h);
  EXPECT_EQ(peak[0], 15);
  EXPECT_EQ(peak[1], 4);  // never grows
  const auto headroom = min_headroom(m, x_old, h);
  EXPECT_EQ(headroom[0], 5);
  EXPECT_EQ(headroom[1], 16);
}

TEST(PeakStorage, TightSchedulesHaveZeroHeadroomSomewhere) {
  Rng rng(12);
  RandomInstanceSpec spec;
  spec.capacity_slack = 0.0;
  const Instance inst = random_instance(spec, rng);
  const Schedule h =
      make_pipeline("AR").run(inst.model, inst.x_old, inst.x_new, rng);
  const auto headroom = min_headroom(inst.model, inst.x_old, h);
  Size tightest = headroom[0];
  for (Size v : headroom) {
    tightest = std::min(tightest, v);
    EXPECT_GE(v, 0);  // a valid schedule never oversubscribes
  }
  EXPECT_EQ(tightest, 0);  // zero-slack instances run some server full
}

}  // namespace
}  // namespace rtsp
