// support/net: bounded-deadline socket primitives and the tiny HTTP
// clients, including the slow-peer regression — a stalled or dripping
// client must never pin a handler past its deadline or block the next
// request behind it.
#include "support/net.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/introspect.hpp"

namespace rtsp {
namespace {

using Clock = std::chrono::steady_clock;

int elapsed_ms(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

TEST(Net, FindContentLengthParsesCaseInsensitively) {
  EXPECT_EQ(net::find_content_length("Content-Length: 42\r\n"), 42);
  EXPECT_EQ(net::find_content_length("content-length:7\r\n"), 7);
  EXPECT_EQ(net::find_content_length("CONTENT-LENGTH:  0\r\n"), 0);
  EXPECT_EQ(net::find_content_length(
                "Host: x\r\nContent-Length: 9\r\nAccept: */*\r\n"),
            9);
  EXPECT_EQ(net::find_content_length("Content-Length: nope\r\n"), -1);
  EXPECT_EQ(net::find_content_length("Host: x\r\n"), -1);
  // A header that merely ends in the name must not match.
  EXPECT_EQ(net::find_content_length("X-Content-Length: 5\r\n"), -1);
}

TEST(Net, ConnectToRefusedPortThrowsQuickly) {
  net::TcpListener probe;
  probe.listen("127.0.0.1", 0);
  const std::uint16_t dead_port = probe.port();
  probe.close();  // nothing listens here any more

  const auto start = Clock::now();
  EXPECT_THROW(net::connect_to("127.0.0.1", dead_port, 2000),
               std::runtime_error);
  EXPECT_LT(elapsed_ms(start), 2000);  // refused, not timed out
}

TEST(Net, ReadExactReportsShortBodyInsteadOfHanging) {
  net::TcpListener listener;
  listener.listen("127.0.0.1", 0);
  std::thread peer([&] {
    net::Socket s = listener.accept(2000);
    ASSERT_TRUE(s.valid());
    s.write_all("abc");  // promises nothing more; stays open
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });
  net::Socket c = net::connect_to("127.0.0.1", listener.port(), 1000);
  std::string buffer;
  const auto start = Clock::now();
  const bool got = c.read_exact(buffer, 8, 250);
  EXPECT_FALSE(got);  // deadline, not a hang
  EXPECT_EQ(buffer, "abc");
  EXPECT_GE(elapsed_ms(start), 200);
  EXPECT_LT(elapsed_ms(start), 550);
  peer.join();
}

TEST(Net, ReadUntilDeadlineBoundsDrippingPeer) {
  net::TcpListener listener;
  listener.listen("127.0.0.1", 0);
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    net::Socket s = listener.accept(2000);
    ASSERT_TRUE(s.valid());
    // Drip one byte at a time, never sending the terminator.
    while (!stop.load()) {
      if (!s.write_all("x")) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  net::Socket c = net::connect_to("127.0.0.1", listener.port(), 1000);
  std::string buffer;
  const auto start = Clock::now();
  const bool got = c.read_until(buffer, "\r\n\r\n", 1 << 20, 300);
  const int took = elapsed_ms(start);
  EXPECT_FALSE(got);
  // The drip must not extend the overall deadline (one poll of slack).
  EXPECT_LT(took, 700);
  EXPECT_GE(took, 250);
  stop.store(true);
  c.close();
  peer.join();
}

TEST(Net, HttpGetAndPostRoundTripAgainstIntrospectServer) {
  obs::IntrospectOptions options;
  options.handler_threads = 2;
  options.route = [](const obs::HttpRouteRequest& req,
                     obs::HttpRouteReply& reply) {
    if (req.target == "/echo" && req.method == "POST") {
      reply.body = req.body;
      reply.content_type = "text/plain";
      return true;
    }
    if (req.target == "/busy") {
      reply.status = 429;
      reply.retry_after = "3";
      reply.body = "{}";
      return true;
    }
    return false;
  };
  obs::IntrospectServer server(options);

  const net::HttpResponse health =
      net::http_get("127.0.0.1", server.port(), "/healthz", 2000);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\""), std::string::npos);

  const net::HttpResponse echo = net::http_post(
      "127.0.0.1", server.port(), "/echo", "payload-123", "text/plain", 2000);
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "payload-123");

  const net::HttpResponse busy =
      net::http_get("127.0.0.1", server.port(), "/busy", 2000);
  EXPECT_EQ(busy.status, 429);
  EXPECT_NE(busy.headers.find("Retry-After: 3"), std::string::npos);
}

// The slow-peer regression: with a single handler thread and a short
// request timeout, a client that connects and then stalls must be dropped
// at the deadline — the next (well-behaved) request completes promptly
// instead of waiting behind the stalled one forever.
TEST(Net, StalledPeerDoesNotBlockNextRequest) {
  obs::IntrospectOptions options;
  options.handler_threads = 1;
  options.request_timeout_ms = 300;
  obs::IntrospectServer server(options);

  net::Socket stalled =
      net::connect_to("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(stalled.valid());
  // Send nothing: the lone handler thread is now parked in the read with
  // a 300ms deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = Clock::now();
  const net::HttpResponse r =
      net::http_get("127.0.0.1", server.port(), "/healthz", 5000);
  const int took = elapsed_ms(start);
  EXPECT_EQ(r.status, 200);
  // Served once the stalled peer's deadline freed the handler — well under
  // the client's own 5s budget.
  EXPECT_LT(took, 2000);
  stalled.close();
}

TEST(Net, OversizedDeclaredBodyRejectedWithoutReading) {
  obs::IntrospectOptions options;
  options.max_body_bytes = 64;
  options.route = [](const obs::HttpRouteRequest&, obs::HttpRouteReply& reply) {
    reply.body = "should never run";
    return true;
  };
  obs::IntrospectServer server(options);

  net::Socket c = net::connect_to("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(c.write_all("POST /x HTTP/1.1\r\nHost: t\r\n"
                          "Content-Length: 100000\r\n\r\n"));
  std::string response;
  EXPECT_TRUE(c.read_until(response, "\r\n\r\n", 1 << 16, 2000));
  EXPECT_NE(response.find("413"), std::string::npos);
}

}  // namespace
}  // namespace rtsp
