// Shared fixtures for the test suite.
#pragma once

#include "core/system.hpp"
#include "workload/scenario.hpp"

namespace rtsp::testutil {

/// Model over a complete graph with one uniform link cost.
inline SystemModel uniform_model(std::vector<Size> capacities, std::vector<Size> sizes,
                                 LinkCost link = 1, double dummy_factor = 1.0) {
  const std::size_t m = capacities.size();
  return SystemModel(ServerCatalog(std::move(capacities)),
                     ObjectCatalog(std::move(sizes)), CostMatrix(m, link),
                     dummy_factor);
}

/// Model with an explicit symmetric cost matrix.
inline SystemModel matrix_model(std::vector<Size> capacities, std::vector<Size> sizes,
                                std::vector<std::vector<LinkCost>> rows,
                                double dummy_factor = 1.0) {
  return SystemModel(ServerCatalog(std::move(capacities)),
                     ObjectCatalog(std::move(sizes)),
                     CostMatrix::from_rows(std::move(rows)), dummy_factor);
}

/// The paper's Fig. 1 instance: 4 servers with capacity for one unit object
/// each, 4 objects A..D (ids 0..3), X_old = identity ring, X_new = rotate,
/// producing the circular transfer-graph deadlock. Link costs are uniform 1.
inline Instance fig1_instance() {
  SystemModel model = uniform_model({1, 1, 1, 1}, {1, 1, 1, 1});
  ReplicationMatrix x_old(4, 4);
  ReplicationMatrix x_new(4, 4);
  // S_i holds O_i; afterwards S_i must hold O_{i-1 mod 4}:
  // S1 gets D(3), S2 gets A(0), S3 gets B(1), S4 gets C(2).
  for (ServerId i = 0; i < 4; ++i) x_old.set(i, i);
  for (ServerId i = 0; i < 4; ++i) x_new.set(i, (i + 3) % 4);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

/// The paper's Fig. 3 instance: 4 servers with room for two unit objects,
/// objects A,B,C,D = 0,1,2,3.
///   X_old: S1{A,B} S2{C,D} S3{B,C} S4{A,B}
///   X_new: S1{B,D} S2{A,B} S3{C,D} S4{C,D}
/// Link costs are chosen consistently with the paper's traces
/// (l_34 = 1 < l_14 = 2; S1 is the nearest source picked by S2).
inline Instance fig3_instance() {
  SystemModel model = matrix_model({2, 2, 2, 2}, {1, 1, 1, 1},
                                   {{0, 1, 1, 2},
                                    {1, 0, 2, 3},
                                    {1, 2, 0, 1},
                                    {2, 3, 1, 0}});
  ReplicationMatrix x_old = ReplicationMatrix::from_pairs(
      4, 4, {{0, 0}, {0, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 0}, {3, 1}});
  ReplicationMatrix x_new = ReplicationMatrix::from_pairs(
      4, 4, {{0, 1}, {0, 3}, {1, 0}, {1, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3}});
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace rtsp::testutil
