#include "heuristics/h2.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/h1.hpp"
#include "heuristics/rdf.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

Schedule run_h2(const Instance& inst, Schedule h) {
  Rng rng(0);
  return H2Improver().improve(inst.model, inst.x_old, inst.x_new, std::move(h), rng);
}

TEST(H2, UsesSpareServerAsTemporaryHost) {
  // S0 and S1 swap unit objects with zero slack — H1 cannot help because
  // every move violates capacity. S2 has a free slot: H2 stages there.
  SystemModel model = uniform_model({1, 1, 1}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(3, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(3, 2, {{0, 1}, {1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  // Naive schedule with a dummy: delete 0@S0, delete 1@S1, fetch both;
  // object 0 has lost its last replica by then.
  const Schedule naive({Action::remove(0, 0), Action::remove(1, 1),
                        Action::transfer(0, 1, kDummyServer),
                        Action::transfer(1, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));
  ASSERT_EQ(naive.dummy_transfer_count(), 2u);

  const Schedule improved = run_h2(inst, naive);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  // H2 alone restores the first dummy via S2 (the second restoration would
  // need S2 twice concurrently, which capacity forbids).
  EXPECT_EQ(improved.dummy_transfer_count(), 1u);
  bool used_s2 = false;
  for (const Action& a : improved) {
    if (a.is_transfer() && a.server == 2) used_s2 = true;
  }
  EXPECT_TRUE(used_s2);

  // The paper's H1+H2 combination clears the instance completely.
  Rng rng(0);
  Schedule chained =
      H1Improver().improve(inst.model, inst.x_old, inst.x_new, naive, rng);
  chained = run_h2(inst, chained);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, chained));
  EXPECT_EQ(chained.dummy_transfer_count(), 0u);
}

TEST(H2, DoesNothingWithoutDummies) {
  SystemModel model = uniform_model({2, 2}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {0, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 2, {{1, 0}, {1, 1}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule clean({Action::transfer(1, 0, 0), Action::transfer(1, 1, 0),
                        Action::remove(0, 0), Action::remove(0, 1)});
  EXPECT_EQ(run_h2(inst, clean), clean);
}

TEST(H2, KeepsDummyWhenNoHostExists) {
  // Two full servers, no third party: staging is impossible.
  SystemModel model = uniform_model({1, 1}, {1, 1});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(2, 2, {{0, 1}, {1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::remove(1, 1),
                        Action::transfer(0, 1, kDummyServer),
                        Action::transfer(1, 0, kDummyServer)});
  const Schedule improved = run_h2(inst, naive);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  // Both objects lose their last replica before their dummy fetches and no
  // server can stage them: nothing improvable.
  EXPECT_EQ(improved.dummy_transfer_count(), 2u);
}

TEST(H2, PicksCheapestFeasibleHost) {
  // Two spare servers; S3 is much closer to both endpoints than S2.
  SystemModel model(
      ServerCatalog({1, 1, 1, 1}), ObjectCatalog({1, 1}),
      CostMatrix::from_rows({{0, 1, 9, 1},
                             {1, 0, 9, 1},
                             {9, 9, 0, 9},
                             {1, 1, 9, 0}}));
  const auto x_old = ReplicationMatrix::from_pairs(4, 2, {{0, 0}, {1, 1}});
  const auto x_new = ReplicationMatrix::from_pairs(4, 2, {{1, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::remove(1, 1),
                        Action::transfer(1, 0, kDummyServer)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));
  const Schedule improved = run_h2(inst, naive);
  EXPECT_EQ(improved.dummy_transfer_count(), 0u);
  for (const Action& a : improved) {
    if (a.is_transfer()) {
      EXPECT_NE(a.server, 2u) << "expensive host chosen";
    }
  }
}

TEST(H2, FallbackCreatesSpaceByPullingLaterDeletions) {
  // The only third-party server S2 is full, but its resident object 2 is
  // superfluous and object 2 keeps a second replica on S3, so H2 may pull
  // S2's deletion forward to stage there.
  SystemModel model = uniform_model({1, 1, 1, 1}, {1, 1, 1});
  ReplicationMatrix x_old(4, 3);
  x_old.set(0, 0);
  x_old.set(1, 1);
  x_old.set(2, 2);
  x_old.set(3, 2);
  ReplicationMatrix x_new(4, 3);
  x_new.set(0, 1);
  x_new.set(1, 0);
  x_new.set(3, 2);  // S2 drops its copy of object 2
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule naive({Action::remove(0, 0), Action::remove(1, 1),
                        Action::transfer(0, 1, kDummyServer),
                        Action::transfer(1, 0, kDummyServer),
                        Action::remove(2, 2)});
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, naive));
  const Schedule improved = run_h2(inst, naive);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_LT(improved.dummy_transfer_count(), naive.dummy_transfer_count());
}

class H2Property : public testing::TestWithParam<std::uint64_t> {};

TEST_P(H2Property, ValidAndNeverMoreDummies) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 20;
  spec.max_replicas = 2;
  spec.capacity_slack = 1.0;  // some room for staging
  const Instance inst = random_instance(spec, rng);
  const Schedule base = RdfBuilder().build(inst.model, inst.x_old, inst.x_new, rng);
  const Schedule improved = run_h2(inst, base);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_LE(improved.dummy_transfer_count(), base.dummy_transfer_count());

  // H1 then H2, the paper's combination, must also hold the invariants.
  Rng rng2(GetParam() + 1);
  Schedule chained =
      H1Improver().improve(inst.model, inst.x_old, inst.x_new, base, rng2);
  chained = run_h2(inst, chained);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, chained));
  EXPECT_LE(chained.dummy_transfer_count(), base.dummy_transfer_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, H2Property,
                         testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace rtsp
