#include "core/transfer_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig1_instance;
using testutil::uniform_model;

TEST(TransferGraph, ArcsFromEveryPotentialSource) {
  // Object 0 outstanding at S2, held by S0 and S1 in X_old.
  const SystemModel m = uniform_model({3, 3, 3}, {1});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}});
  auto x_new = x_old;
  x_new.set(2, 0);
  const TransferGraph g(m, x_old, x_new);
  ASSERT_EQ(g.arcs().size(), 2u);
  std::set<ServerId> sources;
  for (const auto& a : g.arcs()) {
    EXPECT_EQ(a.to, 2u);
    EXPECT_EQ(a.object, 0u);
    sources.insert(a.from);
  }
  EXPECT_EQ(sources, (std::set<ServerId>{0, 1}));
  EXPECT_EQ(g.arcs_from(0).size(), 1u);
  EXPECT_TRUE(g.arcs_from(2).empty());
}

TEST(TransferGraph, NoArcsWhenNothingOutstanding) {
  const SystemModel m = uniform_model({2, 2}, {1});
  const auto x = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  const TransferGraph g(m, x, x);
  EXPECT_TRUE(g.arcs().empty());
  EXPECT_FALSE(g.has_cycle());
  EXPECT_FALSE(g.deadlock_risk(x));
}

TEST(TransferGraph, Fig1CycleIsDetected) {
  const Instance inst = fig1_instance();
  const TransferGraph g(inst.model, inst.x_old, inst.x_new);
  EXPECT_TRUE(g.has_cycle());
  // All four servers form one SCC.
  const auto sccs = g.strongly_connected_components();
  const auto big = std::find_if(sccs.begin(), sccs.end(),
                                [](const auto& c) { return c.size() == 4; });
  EXPECT_NE(big, sccs.end());
  // Every server is full and must receive along the cycle: deadlock risk.
  EXPECT_TRUE(g.deadlock_risk(inst.x_old));
}

TEST(TransferGraph, ChainHasNoCycle) {
  // S0 -> S1 -> S2 transfer chain, no back arcs.
  const SystemModel m = uniform_model({2, 2, 2}, {1, 1, 1});
  const auto x_old =
      ReplicationMatrix::from_pairs(3, 3, {{0, 0}, {1, 1}, {2, 2}});
  const auto x_new = ReplicationMatrix::from_pairs(
      3, 3, {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}});
  const TransferGraph g(m, x_old, x_new);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_FALSE(g.deadlock_risk(x_old));
  // SCCs are all singletons, in reverse topological order.
  for (const auto& scc : g.strongly_connected_components()) {
    EXPECT_EQ(scc.size(), 1u);
  }
}

TEST(TransferGraph, CycleWithSlackIsNotFlaggedAsDeadlock) {
  // Same Fig. 1 rotation but servers have room for two objects: the cycle
  // exists yet nobody is tight.
  SystemModel model = uniform_model({2, 2, 2, 2}, {1, 1, 1, 1});
  ReplicationMatrix x_old(4, 4);
  ReplicationMatrix x_new(4, 4);
  for (ServerId i = 0; i < 4; ++i) x_old.set(i, i);
  for (ServerId i = 0; i < 4; ++i) x_new.set(i, (i + 3) % 4);
  const TransferGraph g(model, x_old, x_new);
  EXPECT_TRUE(g.has_cycle());
  EXPECT_FALSE(g.deadlock_risk(x_old));
}

TEST(TransferGraph, SccMatchesBruteForceReachability) {
  // Random instances: Tarjan components must equal mutual-reachability
  // classes computed by brute force over the arc set.
  Rng rng(77);
  for (int rep = 0; rep < 10; ++rep) {
    RandomInstanceSpec spec;
    spec.servers = 7;
    spec.objects = 10;
    spec.max_replicas = 2;
    const Instance inst = random_instance(spec, rng);
    const TransferGraph g(inst.model, inst.x_old, inst.x_new);

    const std::size_t n = g.num_servers();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (std::size_t i = 0; i < n; ++i) reach[i][i] = true;
    for (const auto& a : g.arcs()) reach[a.from][a.to] = true;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (reach[i][k] && reach[k][j]) reach[i][j] = true;
        }
      }
    }
    std::vector<std::size_t> brute_class(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t cls = i;
      for (std::size_t j = 0; j < i; ++j) {
        if (reach[i][j] && reach[j][i]) {
          cls = brute_class[j];
          break;
        }
      }
      brute_class[i] = cls;
    }
    std::vector<std::size_t> tarjan_class(n, 0);
    const auto sccs = g.strongly_connected_components();
    for (std::size_t c = 0; c < sccs.size(); ++c) {
      for (ServerId s : sccs[c]) tarjan_class[s] = c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(tarjan_class[i] == tarjan_class[j],
                  brute_class[i] == brute_class[j])
            << "servers " << i << "," << j << " rep " << rep;
      }
    }
  }
}

}  // namespace
}  // namespace rtsp
