// Determinism contract of the anytime portfolio (DESIGN.md §13): with a
// tick-only budget the result is a pure function of (instance, seed,
// options) — identical across reruns, thread counts, runtime obs on/off and
// provenance arming. Wall-clock mode validates but is excluded from
// bit-identity. Also covers the WorkMeter primitive itself.
#include <gtest/gtest.h>

#include <sstream>

#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "core/work_meter.hpp"
#include "io/provenance_io.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "portfolio/portfolio.hpp"
#include "workload/scenario.hpp"

namespace rtsp {
namespace {

Instance test_instance(std::uint64_t seed = 11) {
  RandomInstanceSpec spec;  // 8 servers, 24 objects
  Rng rng(seed);
  return random_instance(spec, rng);
}

PortfolioOptions tick_options(std::uint64_t ticks, std::size_t threads = 0) {
  PortfolioOptions opts;
  opts.budget.ticks = ticks;
  opts.threads = threads;
  return opts;
}

void expect_same_result(const PortfolioResult& a, const PortfolioResult& b) {
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.dummy_transfers, b.dummy_transfers);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.race_cost, b.race_cost);
  EXPECT_EQ(a.gap(), b.gap());
  EXPECT_EQ(a.incumbent_offers, b.incumbent_offers);
  EXPECT_EQ(a.lns.rounds, b.lns.rounds);
  EXPECT_EQ(a.lns.accepts, b.lns.accepts);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].algo, b.candidates[i].algo);
    EXPECT_EQ(a.candidates[i].cost, b.candidates[i].cost);
    EXPECT_EQ(a.candidates[i].dummy_transfers, b.candidates[i].dummy_transfers);
    EXPECT_EQ(a.candidates[i].ticks_used, b.candidates[i].ticks_used);
    EXPECT_EQ(a.candidates[i].completed, b.candidates[i].completed);
  }
}

TEST(WorkMeter, UnarmedNeverExhausts) {
  WorkMeter meter;
  EXPECT_FALSE(meter.limited());
  meter.charge(1'000'000);
  EXPECT_FALSE(meter.exhausted());
  EXPECT_EQ(meter.ticks(), 1'000'000u);
}

TEST(WorkMeter, TickLimitIsSticky) {
  WorkMeter meter;
  meter.set_tick_limit(100);
  EXPECT_TRUE(meter.limited());
  EXPECT_TRUE(meter.deterministic());
  meter.charge(99);
  EXPECT_FALSE(meter.exhausted());
  meter.charge(1);
  EXPECT_TRUE(meter.exhausted());
  EXPECT_TRUE(meter.exhausted());  // stays exhausted
}

TEST(WorkMeter, PastDeadlineExhausts) {
  WorkMeter meter;
  meter.set_deadline(WorkMeter::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_FALSE(meter.deterministic());
  EXPECT_TRUE(meter.exhausted());
}

TEST(Portfolio, BitIdenticalAcrossReruns) {
  const Instance inst = test_instance();
  for (const std::uint64_t ticks : {std::uint64_t{2'000}, std::uint64_t{50'000}}) {
    const PortfolioResult a =
        solve_portfolio(inst.model, inst.x_old, inst.x_new, 7, tick_options(ticks));
    const PortfolioResult b =
        solve_portfolio(inst.model, inst.x_old, inst.x_new, 7, tick_options(ticks));
    expect_same_result(a, b);
    EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, a.schedule));
  }
}

TEST(Portfolio, BitIdenticalAcrossThreadCounts) {
  const Instance inst = test_instance();
  const PortfolioResult one = solve_portfolio(inst.model, inst.x_old, inst.x_new,
                                              7, tick_options(20'000, 1));
  const PortfolioResult many = solve_portfolio(inst.model, inst.x_old, inst.x_new,
                                               7, tick_options(20'000, 4));
  expect_same_result(one, many);
}

TEST(Portfolio, BitIdenticalAcrossRuntimeObsToggle) {
  const Instance inst = test_instance();
  obs::set_enabled(false);
  const PortfolioResult off = solve_portfolio(inst.model, inst.x_old, inst.x_new,
                                              3, tick_options(30'000));
  obs::set_enabled(true);
  const PortfolioResult on = solve_portfolio(inst.model, inst.x_old, inst.x_new,
                                             3, tick_options(30'000));
  obs::set_enabled(false);
  expect_same_result(off, on);
}

TEST(Portfolio, BitIdenticalProvenanceSidecars) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "provenance compiled out";
  const Instance inst = test_instance();
  const auto run_with_provenance = [&](std::string& sidecar) {
    prov::Scope scope(inst.model, inst.x_old);
    const PortfolioResult r = solve_portfolio(inst.model, inst.x_old, inst.x_new,
                                              5, tick_options(200'000));
    std::ostringstream buffer;
    write_provenance(buffer, scope.finalize(r.schedule));
    sidecar = buffer.str();
    return r;
  };
  std::string sidecar_a;
  std::string sidecar_b;
  const PortfolioResult a = run_with_provenance(sidecar_a);
  const PortfolioResult b = run_with_provenance(sidecar_b);
  expect_same_result(a, b);
  EXPECT_EQ(sidecar_a, sidecar_b);
  EXPECT_NE(sidecar_a.find("PORTFOLIO:"), std::string::npos);

  // Arming the recorder must not change the schedule either.
  const PortfolioResult bare = solve_portfolio(inst.model, inst.x_old, inst.x_new,
                                               5, tick_options(200'000));
  expect_same_result(a, bare);
}

TEST(Portfolio, WallClockModeValidates) {
  const Instance inst = test_instance();
  PortfolioOptions opts;
  opts.budget.wall_ms = 50.0;
  EXPECT_FALSE(opts.budget.deterministic());
  const PortfolioResult r =
      solve_portfolio(inst.model, inst.x_old, inst.x_new, 9, opts);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.schedule));
  EXPECT_GE(r.cost, cost_lower_bound(inst.model, inst.x_old, inst.x_new));
}

TEST(Portfolio, UnlimitedBudgetCompletesEveryCandidate) {
  const Instance inst = test_instance();
  PortfolioOptions opts;  // no budget: run to completion, LNS stall-bounded
  const PortfolioResult r =
      solve_portfolio(inst.model, inst.x_old, inst.x_new, 1, opts);
  for (const CandidateOutcome& c : r.candidates) {
    EXPECT_TRUE(c.completed) << c.algo;
  }
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, r.schedule));
}

TEST(Portfolio, BudgetedSingleRunIsDeterministicAndMatchesCandidate) {
  const Instance inst = test_instance();
  const std::string spec = "GOLCF+SA";
  Budget budget;
  budget.ticks = 25'000;
  const BudgetedRun a = run_pipeline_budgeted(inst.model, inst.x_old, inst.x_new,
                                              spec, 7, budget);
  const BudgetedRun b = run_pipeline_budgeted(inst.model, inst.x_old, inst.x_new,
                                              spec, 7, budget);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.ticks_used, b.ticks_used);

  // Inside the portfolio the same spec replays the identical run (streams
  // are keyed by spec, not roster position).
  PortfolioOptions opts = tick_options(25'000);
  opts.algorithms = {"GOLCF+H1+H2+OP1", spec};
  opts.lns_enabled = false;
  const PortfolioResult r =
      solve_portfolio(inst.model, inst.x_old, inst.x_new, 7, opts);
  ASSERT_EQ(r.candidates.size(), 2u);
  EXPECT_EQ(r.candidates[1].cost, a.cost);
  EXPECT_EQ(r.candidates[1].ticks_used, a.ticks_used);
}

TEST(Portfolio, UnknownSpecThrows) {
  const Instance inst = test_instance();
  PortfolioOptions opts = tick_options(1'000);
  opts.algorithms = {"NOPE"};
  EXPECT_THROW(solve_portfolio(inst.model, inst.x_old, inst.x_new, 1, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace rtsp
