#include "extension/phases.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/validator.hpp"
#include "extension/dependency_graph.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

TEST(Phases, IndependentActionsShareARound) {
  const SystemModel m = uniform_model({3, 3, 3, 3}, {3, 3}, 2);
  ReplicationMatrix x_old(4, 2);
  x_old.set(0, 0);
  x_old.set(2, 1);
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(3, 1, 2)});
  const PhasePlan plan = phase_partition(m, x_old, h);
  ASSERT_EQ(plan.rounds(), 1u);
  EXPECT_EQ(plan.phases[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.max_width(), 2u);
}

TEST(Phases, DependentChainSplitsRounds) {
  const SystemModel m = uniform_model({3, 3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 1)});
  const PhasePlan plan = phase_partition(m, x_old, h);
  ASSERT_EQ(plan.rounds(), 2u);
  EXPECT_EQ(plan.phases[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(plan.phases[1], (std::vector<std::size_t>{1}));
  // Bottleneck: each round's slowest transfer costs 6.
  EXPECT_EQ(plan.bottleneck_cost(m, h), 12);
}

TEST(Phases, PortLimitSplitsSharedSource) {
  const SystemModel m = uniform_model({3, 3, 3}, {3}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(2, 0, 0)});
  EXPECT_EQ(phase_partition(m, x_old, h, 1).rounds(), 2u);
  EXPECT_EQ(phase_partition(m, x_old, h, 2).rounds(), 1u);
}

TEST(Phases, DeletionsAreFreeRiders) {
  const SystemModel m = uniform_model({1, 1}, {1, 1}, 2);
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {1, 1}});
  const Schedule h({Action::remove(1, 1), Action::transfer(1, 0, 0)});
  const PhasePlan plan = phase_partition(m, x_old, h);
  ASSERT_EQ(plan.rounds(), 1u);
  EXPECT_EQ(plan.phases[0].size(), 2u);
}

class PhaseSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseSeeds, PartitionIsAPermutationRespectingDependencies) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 20;
  const Instance inst = random_instance(spec, rng);
  const Schedule h =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, rng);
  ASSERT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  const PhasePlan plan = phase_partition(inst.model, inst.x_old, h);

  // Every action appears exactly once.
  std::set<std::size_t> seen;
  std::vector<std::size_t> round_of(h.size());
  for (std::size_t r = 0; r < plan.rounds(); ++r) {
    for (std::size_t u : plan.phases[r]) {
      EXPECT_TRUE(seen.insert(u).second) << "duplicate action " << u;
      round_of[u] = r;
    }
  }
  EXPECT_EQ(seen.size(), h.size());

  // Dependencies live in strictly earlier rounds.
  const DependencyGraph dag(h);
  for (std::size_t u = 0; u < h.size(); ++u) {
    for (std::size_t d : dag.dependencies_of(u)) {
      EXPECT_LT(round_of[d], round_of[u]);
    }
  }

  // Executing the rounds in order is a valid linearisation.
  Schedule linear;
  for (const auto& phase : plan.phases) {
    for (std::size_t u : phase) linear.push_back(h[u]);
  }
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, linear));

  // Rounds never beat the critical path, never exceed the action count.
  EXPECT_GE(plan.rounds(), dag.critical_path_length() == 0
                               ? 0u
                               : 1u);
  EXPECT_LE(plan.rounds(), h.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseSeeds, testing::Values(7, 14, 21, 28));

TEST(Phases, EmptyScheduleHasNoRounds) {
  const SystemModel m = uniform_model({1}, {1});
  const PhasePlan plan = phase_partition(m, ReplicationMatrix(1, 1), Schedule{});
  EXPECT_EQ(plan.rounds(), 0u);
  EXPECT_EQ(plan.max_width(), 0u);
}

}  // namespace
}  // namespace rtsp
