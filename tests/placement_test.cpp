#include <gtest/gtest.h>

#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "placement/access_cost.hpp"
#include "placement/greedy_place.hpp"
#include "placement/zipf.hpp"
#include "test_helpers.hpp"
#include "workload/scenario.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;
using testutil::uniform_model;

TEST(Zipf, WeightsAreNormalizedAndMonotone) {
  const auto w = zipf_weights(100, 0.8);
  double sum = 0.0;
  for (std::size_t r = 0; r < w.size(); ++r) {
    sum += w[r];
    if (r > 0) {
      EXPECT_LE(w[r], w[r - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, ThetaZeroIsUniform) {
  const auto w = zipf_weights(10, 0.0);
  for (double x : w) EXPECT_NEAR(x, 0.1, 1e-12);
}

TEST(Zipf, RandomRatesSumToTotal) {
  Rng rng(5);
  const auto rates = random_zipf_rates(50, 1.0, 1000.0, rng);
  double sum = 0.0;
  for (double r : rates) sum += r;
  EXPECT_NEAR(sum, 1000.0, 1e-9);
}

TEST(AccessCost, ZeroWhenEverythingIsLocal) {
  const SystemModel m = uniform_model({10, 10}, {1, 1}, 3);
  ReplicationMatrix x(2, 2);
  x.set(0, 0);
  x.set(0, 1);
  x.set(1, 0);
  x.set(1, 1);
  DemandMatrix demand(2, 2);
  demand.set(0, 0, 5.0);
  demand.set(1, 1, 2.0);
  EXPECT_DOUBLE_EQ(access_cost(m, x, demand), 0.0);
}

TEST(AccessCost, UsesNearestReplicaDistance) {
  const SystemModel m = matrix_model({10, 10, 10}, {2},
                                     {{0, 1, 4}, {1, 0, 2}, {4, 2, 0}});
  const auto x = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  DemandMatrix demand(3, 1);
  demand.set(1, 0, 3.0);  // S1 reads from S0 at distance 1
  demand.set(2, 0, 1.0);  // S2 reads from S0 at distance 4
  EXPECT_DOUBLE_EQ(access_cost(m, x, demand), 3.0 * 2 * 1 + 1.0 * 2 * 4);
}

TEST(AccessCost, MissingObjectChargedAtDummyCost) {
  const SystemModel m = uniform_model({10, 10}, {2}, 3);
  const ReplicationMatrix x(2, 1);
  DemandMatrix demand(2, 1);
  demand.set(0, 0, 1.0);
  EXPECT_DOUBLE_EQ(access_cost(m, x, demand), 1.0 * 2 * 4);  // dummy = 3+1
}

TEST(UniformDemand, SpreadsRatesOverServers) {
  const auto d = uniform_demand(4, {8.0, 4.0});
  EXPECT_DOUBLE_EQ(d.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(3, 1), 1.0);
}

class GreedyPlacementSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyPlacementSeeds, RespectsCapacitiesAndPlacesEveryObject) {
  Rng rng(GetParam());
  const Graph g = barabasi_albert_tree(8, {1, 10}, rng);
  SystemModel m(ServerCatalog::uniform(8, 30), ObjectCatalog::uniform(20, 5),
                CostMatrix::from_graph_shortest_paths(g));
  const auto rates = random_zipf_rates(20, 0.9, 100.0, rng);
  const DemandMatrix demand = uniform_demand(8, rates);
  const ReplicationMatrix x = greedy_placement(m, demand, {}, rng);
  for (ObjectId k = 0; k < 20; ++k) EXPECT_GE(x.replica_count(k), 1u);
  for (ServerId i = 0; i < 8; ++i) {
    EXPECT_LE(x.used_storage(i, m.objects()), m.capacity(i));
  }
}

TEST_P(GreedyPlacementSeeds, MoreReplicasNeverRaiseAccessCost) {
  Rng rng(GetParam());
  const Graph g = barabasi_albert_tree(8, {1, 10}, rng);
  SystemModel m(ServerCatalog::uniform(8, 40), ObjectCatalog::uniform(15, 5),
                CostMatrix::from_graph_shortest_paths(g));
  const auto rates = random_zipf_rates(15, 0.9, 100.0, rng);
  const DemandMatrix demand = uniform_demand(8, rates);
  GreedyPlacementOptions one_each;
  one_each.max_total_replicas = 15;  // phase 1 only
  Rng r1 = rng;
  Rng r2 = rng;
  const ReplicationMatrix sparse = greedy_placement(m, demand, one_each, r1);
  const ReplicationMatrix full = greedy_placement(m, demand, {}, r2);
  EXPECT_LE(access_cost(m, full, demand), access_cost(m, sparse, demand));
  EXPECT_GE(full.total_replicas(), sparse.total_replicas());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPlacementSeeds, testing::Values(2, 4, 6));

TEST(PlacementEndToEnd, DriftedPopularityYieldsValidRtspMigration) {
  // The paper's motivating loop: place for today's popularity, drift the
  // popularity, re-place, then implement the move with RTSP heuristics.
  Rng rng(11);
  const Graph g = barabasi_albert_tree(10, {1, 10}, rng);
  SystemModel m(ServerCatalog::uniform(10, 25), ObjectCatalog::uniform(30, 5),
                CostMatrix::from_graph_shortest_paths(g));
  const DemandMatrix before = uniform_demand(10, random_zipf_rates(30, 1.0, 100, rng));
  const DemandMatrix after = uniform_demand(10, random_zipf_rates(30, 1.0, 100, rng));
  const ReplicationMatrix x_old = greedy_placement(m, before, {}, rng);
  const ReplicationMatrix x_new = greedy_placement(m, after, {}, rng);
  const Pipeline algo = make_pipeline("GOLCF+H1+H2+OP1");
  const Schedule h = algo.run(m, x_old, x_new, rng);
  const auto v = Validator::validate(m, x_old, x_new, h);
  EXPECT_TRUE(v.valid) << v.to_string();
}

}  // namespace
}  // namespace rtsp
