#include "io/provenance_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "heuristics/registry.hpp"
#include "test_helpers.hpp"
#include "workload/paper_setup.hpp"

namespace rtsp {
namespace {

prov::Provenance sample_provenance() {
  prov::Provenance p;
  p.stages.push_back({prov::StageKind::Builder, "GOLCF"});
  p.stages.push_back({prov::StageKind::Improver, "H1"});

  prov::Rewrite rw;
  rw.stage = 1;
  rw.pass = 2;
  rw.rank = 1;
  rw.pos = 3;
  rw.removed = 1;
  rw.inserted = 2;
  rw.cost_delta = -70;
  rw.dummy_delta = -1;
  rw.span_id = 42;
  rw.replaced = {7, 8};
  p.rewrites.push_back(rw);

  prov::RootCause rc;
  rc.kind = prov::RootCause::Kind::CapacityDeadlock;
  rc.object = 5;
  rc.dest = 2;
  rc.object_size = 1000;
  rc.dest_free_space = 200;
  rc.blockers.push_back({3, 11, 0, {1, 4}});
  rc.blockers.push_back({0, prov::kNone, 7, {}});
  rc.free_space = {10, 0, 200, 0};
  p.root_causes.push_back(rc);

  prov::RootCause rc2;
  rc2.kind = prov::RootCause::Kind::SourceAvailable;
  rc2.object = 1;
  rc2.dest = 0;
  rc2.holders = {2, 3};
  rc2.free_space = {1, 2, 3, 4};
  p.root_causes.push_back(rc2);

  prov::Entry builder_entry;
  builder_entry.id = 7;
  builder_entry.stage = 0;
  p.entries.push_back(builder_entry);

  prov::Entry dummy_entry;
  dummy_entry.id = 9;
  dummy_entry.stage = 1;
  dummy_entry.pass = 2;
  dummy_entry.round = 1;
  dummy_entry.rewrite = 0;
  dummy_entry.root_cause = 0;
  dummy_entry.span_id = 42;
  p.entries.push_back(dummy_entry);

  return p;
}

TEST(ProvenanceIo, RoundTripPreservesEverything) {
  const prov::Provenance p = sample_provenance();
  const std::string json = provenance_to_json(p);
  const prov::Provenance q = provenance_from_json(json);
  EXPECT_TRUE(p == q);
}

TEST(ProvenanceIo, RoundTripOfRecordedRun) {
  if (!prov::kRecorderCompiled) GTEST_SKIP() << "built with RTSP_OBS=OFF";
  PaperSetup setup;
  setup.servers = 10;
  setup.objects = 40;
  Rng rng(5);
  const Instance inst = make_equal_size_instance(setup, 2, rng);
  const Pipeline pipeline = make_pipeline("GOLCF+H1+H2+OP1");
  prov::Scope scope(inst.model, inst.x_old);
  Rng run_rng(6);
  const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, run_rng);
  const prov::Provenance p = scope.finalize(h);
  ASSERT_EQ(p.entries.size(), h.size());
  const prov::Provenance q = provenance_from_json(provenance_to_json(p));
  EXPECT_TRUE(p == q);
}

TEST(ProvenanceIo, StreamInterface) {
  const prov::Provenance p = sample_provenance();
  std::stringstream s;
  write_provenance(s, p);
  EXPECT_TRUE(read_provenance(s) == p);
}

TEST(ProvenanceIo, RejectsBadInput) {
  EXPECT_THROW(provenance_from_json("{}"), std::runtime_error);
  EXPECT_THROW(provenance_from_json("not json"), std::runtime_error);
  EXPECT_THROW(provenance_from_json(
                   R"({"version":99,"stages":[],"rewrites":[],)"
                   R"("root_causes":[],"entries":[]})"),
               std::runtime_error);
  // Entry referencing a stage that does not exist.
  EXPECT_THROW(provenance_from_json(
                   R"({"version":1,"stages":[],"rewrites":[],)"
                   R"("root_causes":[],"entries":[{"id":1,"stage":3}]})"),
               std::runtime_error);
  // Unknown stage kind.
  EXPECT_THROW(provenance_from_json(
                   R"({"version":1,"stages":[{"kind":"x","name":"y"}],)"
                   R"("rewrites":[],"root_causes":[],"entries":[]})"),
               std::runtime_error);
}

TEST(ProvenanceIo, OmittedOptionalFieldsDefault) {
  const prov::Provenance p = provenance_from_json(
      R"({"version":1,"stages":[{"kind":"builder","name":"RDF"}],)"
      R"("rewrites":[],"root_causes":[],"entries":[{"id":1,"stage":0}]})");
  ASSERT_EQ(p.entries.size(), 1u);
  EXPECT_EQ(p.entries[0].pass, -1);
  EXPECT_EQ(p.entries[0].round, -1);
  EXPECT_EQ(p.entries[0].rewrite, prov::kNone);
  EXPECT_EQ(p.entries[0].root_cause, prov::kNone);
  EXPECT_EQ(p.entries[0].span_id, 0u);
}

}  // namespace
}  // namespace rtsp
