#include "core/residual.hpp"

#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "core/state.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig3_instance;

TEST(Residual, CompleteWhenMidEqualsGoal) {
  const Instance inst = fig3_instance();
  const ResidualProblem r = make_residual(inst.model, inst.x_new, inst.x_new);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.delta.outstanding().empty());
  EXPECT_TRUE(r.delta.superfluous().empty());
  EXPECT_EQ(r.lower_bound, 0);
}

TEST(Residual, SnapshotsPartialExecution) {
  const Instance inst = fig3_instance();
  // Apply a prefix by hand: S2 drops C, fetches A from S1; S1 drops A.
  ExecutionState state(inst.model, inst.x_old);
  state.apply(Action::remove(1, 2));
  state.apply(Action::transfer(1, 0, 0));
  state.apply(Action::remove(0, 0));
  const ResidualProblem r =
      make_residual(inst.model, state.placement(), inst.x_new);
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(r.x_mid == state.placement());
  // (S2, A) is already in place, so it is no longer outstanding.
  for (const Replica& rep : r.delta.outstanding()) {
    EXPECT_FALSE(rep == (Replica{1, 0}));
  }
  // Free space reflects the mid-flight placement, not X_old.
  ASSERT_EQ(r.free_space.size(), inst.model.num_servers());
  for (ServerId i = 0; i < inst.model.num_servers(); ++i) {
    EXPECT_EQ(r.free_space[i],
              inst.model.capacity(i) -
                  r.x_mid.used_storage(i, inst.model.objects()));
  }
  // The residual bound is admissible for the tail problem.
  EXPECT_EQ(r.lower_bound,
            cost_lower_bound(inst.model, r.x_mid, inst.x_new));
}

}  // namespace
}  // namespace rtsp
