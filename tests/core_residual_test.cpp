#include "core/residual.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/feasibility.hpp"
#include "core/state.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig3_instance;

TEST(Residual, CompleteWhenMidEqualsGoal) {
  const Instance inst = fig3_instance();
  const ResidualProblem r = make_residual(inst.model, inst.x_new, inst.x_new);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.delta.outstanding().empty());
  EXPECT_TRUE(r.delta.superfluous().empty());
  EXPECT_EQ(r.lower_bound, 0);
}

TEST(Residual, SnapshotsPartialExecution) {
  const Instance inst = fig3_instance();
  // Apply a prefix by hand: S2 drops C, fetches A from S1; S1 drops A.
  ExecutionState state(inst.model, inst.x_old);
  state.apply(Action::remove(1, 2));
  state.apply(Action::transfer(1, 0, 0));
  state.apply(Action::remove(0, 0));
  const ResidualProblem r =
      make_residual(inst.model, state.placement(), inst.x_new);
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(r.x_mid == state.placement());
  // (S2, A) is already in place, so it is no longer outstanding.
  for (const Replica& rep : r.delta.outstanding()) {
    EXPECT_FALSE(rep == (Replica{1, 0}));
  }
  // Free space reflects the mid-flight placement, not X_old.
  ASSERT_EQ(r.free_space.size(), inst.model.num_servers());
  for (ServerId i = 0; i < inst.model.num_servers(); ++i) {
    EXPECT_EQ(r.free_space[i],
              inst.model.capacity(i) -
                  r.x_mid.used_storage(i, inst.model.objects()));
  }
  // The residual bound is admissible for the tail problem.
  EXPECT_EQ(r.lower_bound,
            cost_lower_bound(inst.model, r.x_mid, inst.x_new));
}

TEST(Residual, EmptyResidualFromIdenticalPlacements) {
  // Degenerate but legal: a 1x1 system already at its goal.
  const SystemModel tiny = testutil::uniform_model({1}, {1});
  ReplicationMatrix x(1, 1);
  x.set(0, 0);
  const ResidualProblem r = make_residual(tiny, x, x);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.free_space[0], 0);
}

TEST(Residual, ReplanFromPartialConverges) {
  // The daemon's partial-convergence path: stop a plan midway, snapshot
  // the residual, replan it with a fresh pipeline, and the tail must land
  // exactly on X_new.
  const Instance inst = fig3_instance();
  Rng rng(5);
  const Schedule full = make_pipeline("GOLCF+H1+H2+OP1")
                            .run(inst.model, inst.x_old, inst.x_new, rng);
  ASSERT_GT(full.size(), 2u);
  ExecutionState state(inst.model, inst.x_old);
  for (std::size_t i = 0; i < full.size() / 2; ++i) {
    state.apply(full.actions()[i]);
  }
  const ResidualProblem r =
      make_residual(inst.model, state.placement(), inst.x_new);
  ASSERT_FALSE(r.complete());

  Rng tail_rng(6);
  const Schedule tail = make_pipeline("GOLCF+H1+H2+OP1")
                            .run(inst.model, r.x_mid, inst.x_new, tail_rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, r.x_mid, inst.x_new, tail));
  EXPECT_GE(schedule_cost(inst.model, tail), r.lower_bound);
}

TEST(Residual, SnapshotAfterDummySourcedTransfer) {
  // Interrupt fig1's deadlock break right after its dummy-sourced
  // transfer: S1 frees its slot and refetches O_3 from the dummy (the
  // always-available worst-case source). The mid-state holds O_3 twice;
  // the residual must see the extra X_new-replica as settled, keep the
  // remaining ring rotation outstanding, and stay replannable.
  const Instance inst = testutil::fig1_instance();
  ExecutionState state(inst.model, inst.x_old);
  state.apply(Action::remove(0, 0));
  state.apply(Action::transfer(0, 3, kDummyServer));
  const ResidualProblem r =
      make_residual(inst.model, state.placement(), inst.x_new);
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(r.x_mid.test(0, 3));
  EXPECT_EQ(r.x_mid.replica_count(3), 2u);  // S3 still holds the original
  // (S0, O3) is in place, so it is no longer outstanding.
  for (const Replica& rep : r.delta.outstanding()) {
    EXPECT_FALSE(rep == (Replica{0, 3}));
  }
  // S3's stale copy of O_3 is superfluous in X_new.
  bool stale_seen = false;
  for (const Replica& rep : r.delta.superfluous()) {
    if (rep == (Replica{3, 3})) stale_seen = true;
  }
  EXPECT_TRUE(stale_seen);
  // A pipeline replan of the residual still converges.
  Rng rng(9);
  const Schedule tail = make_pipeline("GOLCF+H1+H2+OP1")
                            .run(inst.model, r.x_mid, inst.x_new, rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, r.x_mid, inst.x_new, tail));
}

}  // namespace
}  // namespace rtsp
