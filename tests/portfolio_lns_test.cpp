// Differential properties of the LNS improver (DESIGN.md §13): after every
// destroy/repair round the incumbent must validate, its incrementally
// maintained (cost, dummies) must reconcile exactly with a from-scratch
// schedule_stats recompute, and on acceptance the cost never exceeds the
// pre-destroy incumbent. Rounds are observed through the on_round callback.
#include <gtest/gtest.h>

#include <vector>

#include "core/feasibility.hpp"
#include "core/incremental.hpp"
#include "core/schedule_stats.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "portfolio/lns.hpp"
#include "workload/scenario.hpp"

namespace rtsp {
namespace {

struct LnsFixture {
  Instance inst;
  Schedule incumbent;
};

LnsFixture make_fixture(std::uint64_t seed, std::size_t servers = 10,
                        std::size_t objects = 48) {
  RandomInstanceSpec spec;
  spec.servers = servers;
  spec.objects = objects;
  Rng rng(seed);
  Instance inst = random_instance(spec, rng);
  Rng build_rng(mix64(seed, 0xbeef));
  Schedule incumbent = make_pipeline("GOLCF+H1+H2+OP1")
                           .run(inst.model, inst.x_old, inst.x_new, build_rng);
  return LnsFixture{std::move(inst), std::move(incumbent)};
}

TEST(PortfolioLns, EveryRoundValidatesAndReconciles) {
  for (const std::uint64_t seed : {2ull, 17ull, 91ull}) {
    const LnsFixture fx = make_fixture(seed);
    IncrementalEvaluator eval(fx.inst.model, fx.inst.x_old, fx.inst.x_new,
                              fx.incumbent);
    ASSERT_TRUE(eval.base_valid());
    WorkMeter meter;
    meter.set_tick_limit(120'000);
    eval.set_meter(&meter);

    const Cost initial_cost = eval.cost();
    const Cost lb = cost_lower_bound(fx.inst.model, fx.inst.x_old, fx.inst.x_new);
    Cost incumbent_cost = initial_cost;
    std::size_t rounds_seen = 0;
    Rng lns_rng(mix64(seed, 1));
    const LnsReport report = run_lns(
        eval, LnsOptions{}, lns_rng, lb, [&](const LnsRound& round) {
          ++rounds_seen;
          // The incumbent is replaced only on acceptance and must stay
          // validator-clean at every observation point.
          ASSERT_TRUE(Validator::is_valid(fx.inst.model, fx.inst.x_old,
                                          fx.inst.x_new, eval.schedule()))
              << "round " << round.round;
          // Exact reconcile of the delta-maintained totals against a
          // from-scratch recompute.
          const ScheduleStats stats =
              analyze_schedule(fx.inst.model, eval.schedule());
          ASSERT_EQ(stats.total_cost, eval.cost()) << "round " << round.round;
          ASSERT_EQ(stats.dummy_transfers, eval.dummy_transfers())
              << "round " << round.round;

          EXPECT_EQ(round.cost_before, incumbent_cost);
          if (round.accepted) {
            EXPECT_LE(round.cost_after, round.cost_before);
            EXPECT_EQ(round.cost_after, eval.cost());
          } else {
            EXPECT_EQ(round.cost_after, round.cost_before);
          }
          // Repaired cost never exceeds the pre-destroy incumbent.
          EXPECT_LE(eval.cost(), incumbent_cost);
          EXPECT_LE(eval.cost(), initial_cost);
          incumbent_cost = eval.cost();

          // Destroy windows stay inside the schedule and inside the
          // configured size bounds.
          EXPECT_LT(round.window_lo, round.window_hi);
          EXPECT_LE(round.window_hi - round.window_lo, LnsOptions{}.max_window);
        });
    eval.set_meter(nullptr);
    EXPECT_EQ(report.rounds, rounds_seen);
    EXPECT_LE(report.accepts, report.rounds);
    EXPECT_EQ(report.cost_delta, eval.cost() - initial_cost);
    EXPECT_LE(report.cost_delta, 0);
    EXPECT_GE(eval.cost(), lb);
  }
}

TEST(PortfolioLns, DeterministicUnderTickBudget) {
  const LnsFixture fx = make_fixture(5);
  const auto run_once = [&](std::vector<LnsRound>& trace) {
    IncrementalEvaluator eval(fx.inst.model, fx.inst.x_old, fx.inst.x_new,
                              fx.incumbent);
    WorkMeter meter;
    meter.set_tick_limit(80'000);
    eval.set_meter(&meter);
    Rng rng(42);
    const LnsReport report =
        run_lns(eval, LnsOptions{}, rng,
                cost_lower_bound(fx.inst.model, fx.inst.x_old, fx.inst.x_new),
                [&](const LnsRound& r) { trace.push_back(r); });
    eval.set_meter(nullptr);
    return std::make_pair(report, eval.take_schedule());
  };
  std::vector<LnsRound> trace_a;
  std::vector<LnsRound> trace_b;
  const auto [report_a, schedule_a] = run_once(trace_a);
  const auto [report_b, schedule_b] = run_once(trace_b);
  EXPECT_EQ(schedule_a, schedule_b);
  EXPECT_EQ(report_a.rounds, report_b.rounds);
  EXPECT_EQ(report_a.accepts, report_b.accepts);
  EXPECT_EQ(report_a.cost_delta, report_b.cost_delta);
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].window_lo, trace_b[i].window_lo);
    EXPECT_EQ(trace_a[i].window_hi, trace_b[i].window_hi);
    EXPECT_EQ(trace_a[i].accepted, trace_b[i].accepted);
    EXPECT_EQ(trace_a[i].cost_after, trace_b[i].cost_after);
  }
}

TEST(PortfolioLns, GapClosedStopsWithoutRounds) {
  // X_old == X_new: the pipeline emits an empty schedule whose cost already
  // meets the (zero) lower bound, so LNS must stop before any round.
  RandomInstanceSpec spec;
  Rng rng(3);
  Instance inst = random_instance(spec, rng);
  inst.x_new = inst.x_old;
  Rng build_rng(4);
  Schedule incumbent =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, build_rng);
  IncrementalEvaluator eval(inst.model, inst.x_old, inst.x_new,
                            std::move(incumbent));
  Rng lns_rng(5);
  const LnsReport report =
      run_lns(eval, LnsOptions{}, lns_rng,
              cost_lower_bound(inst.model, inst.x_old, inst.x_new));
  EXPECT_TRUE(report.gap_closed);
  EXPECT_EQ(report.rounds, 0u);
}

TEST(PortfolioLns, StallCutoffTerminatesUnmeteredRuns) {
  const LnsFixture fx = make_fixture(8);
  IncrementalEvaluator eval(fx.inst.model, fx.inst.x_old, fx.inst.x_new,
                            fx.incumbent);
  LnsOptions opts;
  opts.max_stall = 6;
  Rng rng(9);
  const LnsReport report =
      run_lns(eval, opts, rng,
              cost_lower_bound(fx.inst.model, fx.inst.x_old, fx.inst.x_new));
  // Rejections between accepts never exceed the stall cutoff, so the round
  // count is bounded even without a meter.
  EXPECT_LE(report.rounds, (report.accepts + 1) * opts.max_stall + report.accepts);
}

TEST(PortfolioLns, MaxRoundsIsRespected) {
  const LnsFixture fx = make_fixture(21);
  IncrementalEvaluator eval(fx.inst.model, fx.inst.x_old, fx.inst.x_new,
                            fx.incumbent);
  LnsOptions opts;
  opts.max_rounds = 10;
  Rng rng(22);
  const LnsReport report =
      run_lns(eval, opts, rng,
              cost_lower_bound(fx.inst.model, fx.inst.x_old, fx.inst.x_new));
  EXPECT_LE(report.rounds, 10u);
}

}  // namespace
}  // namespace rtsp
