#include "core/feasibility.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::fig1_instance;
using testutil::matrix_model;
using testutil::uniform_model;

TEST(StorageFeasible, ChecksEveryServer) {
  const SystemModel m = uniform_model({5, 3}, {2, 2, 2});
  ReplicationMatrix x(2, 3);
  x.set(0, 0);
  x.set(0, 1);
  x.set(1, 2);
  EXPECT_TRUE(storage_feasible(m, x));
  x.set(1, 0);  // server 1 now needs 4 > 3
  EXPECT_FALSE(storage_feasible(m, x));
}

TEST(WorstCase, ScheduleIsValidAndCostMatches) {
  const Instance inst = fig1_instance();
  const Schedule h = worst_case_schedule(inst.model, inst.x_old, inst.x_new);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  EXPECT_EQ(schedule_cost(inst.model, h),
            worst_case_cost(inst.model, inst.x_old, inst.x_new));
  // 4 unit objects fetched from the dummy at cost 2 each (max link 1 + 1).
  EXPECT_EQ(schedule_cost(inst.model, h), 8);
  EXPECT_EQ(h.dummy_transfer_count(), 4u);
}

TEST(WorstCase, InfeasibleTargetThrows) {
  const SystemModel m = uniform_model({1}, {1, 1});
  ReplicationMatrix x_new(1, 2);
  x_new.set(0, 0);
  x_new.set(0, 1);  // needs 2 > capacity 1
  EXPECT_THROW(worst_case_schedule(m, ReplicationMatrix(1, 2), x_new),
               PreconditionError);
}

TEST(LowerBound, ZeroWhenNothingOutstanding) {
  const Instance inst = fig1_instance();
  EXPECT_EQ(cost_lower_bound(inst.model, inst.x_old, inst.x_old), 0);
}

TEST(LowerBound, UsesCheapestConceivableSource) {
  // Object 0 outstanding at S0; X_old holder S1 at cost 5, another X_new
  // destination S2 at cost 2 — the bound may assume S2 serves S0.
  const SystemModel m = matrix_model({4, 4, 4}, {3},
                                     {{0, 5, 2}, {5, 0, 4}, {2, 4, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{1, 0}});
  const auto x_new = ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {2, 0}});
  // S0: cheapest of {S1:5, S2:2} = 2; S2: cheapest of {S1:4, S0:2} = 2.
  EXPECT_EQ(cost_lower_bound(m, x_old, x_new), 3 * 2 + 3 * 2);
}

TEST(LowerBound, FallsBackToDummyWhenNoSourceExists) {
  const SystemModel m = uniform_model({4, 4}, {3}, 5);
  const ReplicationMatrix x_old(2, 1);  // object exists nowhere
  const auto x_new = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  EXPECT_EQ(cost_lower_bound(m, x_old, x_new), 3 * 6);  // dummy = 5 + 1
}

TEST(LowerBound, NeverExceedsWorstCase) {
  Rng rng(31);
  for (int rep = 0; rep < 20; ++rep) {
    RandomInstanceSpec spec;
    const Instance inst = random_instance(spec, rng);
    EXPECT_LE(cost_lower_bound(inst.model, inst.x_old, inst.x_new),
              worst_case_cost(inst.model, inst.x_old, inst.x_new));
  }
}

}  // namespace
}  // namespace rtsp
