#include "core/state.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

class StateTest : public testing::Test {
 protected:
  // Two servers, capacity 10 each; objects of size 4 and 7.
  SystemModel model_ = uniform_model({10, 10}, {4, 7});
  ReplicationMatrix start_ = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {0, 1}});
};

TEST_F(StateTest, InitialBookkeeping) {
  ExecutionState s(model_, start_);
  EXPECT_EQ(s.used(0), 11);  // oversubscribed start is representable
  EXPECT_EQ(s.used(1), 0);
  EXPECT_EQ(s.free_space(1), 10);
  EXPECT_EQ(s.replica_count(0), 1u);
  EXPECT_TRUE(s.holds(0, 1));
  EXPECT_FALSE(s.holds(1, 1));
}

TEST_F(StateTest, ValidTransferUpdatesEverything) {
  ExecutionState s(model_, start_);
  const Action t = Action::transfer(1, 0, 0);
  EXPECT_EQ(s.classify(t), ActionError::None);
  s.apply(t);
  EXPECT_TRUE(s.holds(1, 0));
  EXPECT_EQ(s.used(1), 4);
  EXPECT_EQ(s.replica_count(0), 2u);
}

TEST_F(StateTest, ValidDeleteUpdatesEverything) {
  ExecutionState s(model_, start_);
  const Action d = Action::remove(0, 1);
  EXPECT_EQ(s.classify(d), ActionError::None);
  s.apply(d);
  EXPECT_FALSE(s.holds(0, 1));
  EXPECT_EQ(s.used(0), 4);
  EXPECT_EQ(s.replica_count(1), 0u);
}

TEST_F(StateTest, ClassifiesEveryErrorKind) {
  ExecutionState s(model_, start_);
  // Source not a replicator.
  EXPECT_EQ(s.classify(Action::transfer(1, 0, 1)), ActionError::SelfTransfer);
  EXPECT_EQ(s.classify(Action::transfer(1, 1, 1)), ActionError::SelfTransfer);
  ExecutionState s2(model_, ReplicationMatrix(2, 2));
  EXPECT_EQ(s2.classify(Action::transfer(1, 0, 0)), ActionError::SourceNotReplicator);
  // Destination already replicates.
  EXPECT_EQ(s.classify(Action::transfer(0, 0, kDummyServer)),
            ActionError::DestAlreadyReplicator);
  // Insufficient space: fill server 1 with object 1 (7), then object 0 (4)
  // does not fit into the remaining 3.
  s.apply(Action::transfer(1, 1, 0));
  EXPECT_EQ(s.classify(Action::transfer(1, 0, 0)), ActionError::InsufficientSpace);
  // Deleting something not held.
  EXPECT_EQ(s.classify(Action::remove(1, 0)), ActionError::NotReplicator);
}

TEST_F(StateTest, DummySourceIsAlwaysAcceptable) {
  ExecutionState s(model_, ReplicationMatrix(2, 2));
  EXPECT_EQ(s.classify(Action::transfer(0, 0, kDummyServer)), ActionError::None);
}

TEST_F(StateTest, ApplyInvalidThrows) {
  ExecutionState s(model_, start_);
  EXPECT_THROW(s.apply(Action::remove(1, 0)), PreconditionError);
}

TEST_F(StateTest, TryApplyReportsWithoutThrowing) {
  ExecutionState s(model_, start_);
  EXPECT_EQ(s.try_apply(Action::remove(1, 0)), ActionError::NotReplicator);
  EXPECT_FALSE(s.holds(1, 0));
  EXPECT_EQ(s.try_apply(Action::remove(0, 0)), ActionError::None);
  EXPECT_FALSE(s.holds(0, 0));
}

TEST_F(StateTest, LenientApplyIgnoresValidityButKeepsBooksExact) {
  ExecutionState s(model_, start_);
  // Lenient duplicate transfer: no double count.
  s.apply_lenient(Action::transfer(0, 0, 1));
  EXPECT_EQ(s.used(0), 11);
  // Lenient delete of absent replica: no underflow.
  s.apply_lenient(Action::remove(1, 0));
  EXPECT_EQ(s.used(1), 0);
  // Lenient transfer without source/space bookkeeping still lands.
  s.apply_lenient(Action::transfer(1, 1, 0));
  EXPECT_TRUE(s.holds(1, 1));
  EXPECT_EQ(s.used(1), 7);
}

TEST_F(StateTest, ActionErrorNames) {
  EXPECT_STREQ(to_string(ActionError::None), "ok");
  EXPECT_STREQ(to_string(ActionError::InsufficientSpace),
               "insufficient free space at destination");
}

}  // namespace
}  // namespace rtsp
