#include "core/validator.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

class ValidatorTest : public testing::Test {
 protected:
  // Two servers, room for two unit objects each.
  SystemModel model_ = uniform_model({2, 2}, {1, 1});
  ReplicationMatrix x_old_ = ReplicationMatrix::from_pairs(2, 2, {{0, 0}, {0, 1}});
  ReplicationMatrix x_new_ = ReplicationMatrix::from_pairs(2, 2, {{1, 0}, {1, 1}});
};

TEST_F(ValidatorTest, AcceptsCorrectSchedule) {
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(1, 1, 0),
                    Action::remove(0, 0), Action::remove(0, 1)});
  const auto v = Validator::validate(model_, x_old_, x_new_, h);
  EXPECT_TRUE(v.valid);
  EXPECT_TRUE(v.issues.empty());
  EXPECT_EQ(v.to_string(), "valid");
}

TEST_F(ValidatorTest, RejectsActionInvalidMidway) {
  // Second transfer uses a source that was already deleted.
  const Schedule h({Action::transfer(1, 0, 0), Action::remove(0, 0),
                    Action::remove(0, 1), Action::transfer(1, 1, 0)});
  const auto v = Validator::validate(model_, x_old_, x_new_, h);
  ASSERT_FALSE(v.valid);
  ASSERT_EQ(v.issues.size(), 1u);
  EXPECT_EQ(v.issues[0].index, 3u);
  EXPECT_EQ(v.issues[0].error, ActionError::SourceNotReplicator);
  EXPECT_NE(v.to_string().find("source is not a replicator"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsCapacityViolation) {
  // Push a third unit object onto server 0 (capacity 2, holds 2).
  SystemModel model = uniform_model({2, 2}, {1, 1, 1});
  ReplicationMatrix x_old(2, 3);
  x_old.set(0, 0);
  x_old.set(0, 1);
  x_old.set(1, 2);
  ReplicationMatrix x_new = x_old;
  x_new.set(0, 2);
  const Schedule h({Action::transfer(0, 2, 1)});
  const auto v = Validator::validate(model, x_old, x_new, h);
  ASSERT_FALSE(v.valid);
  EXPECT_EQ(v.issues[0].error, ActionError::InsufficientSpace);
}

TEST_F(ValidatorTest, RejectsWrongFinalState) {
  // Valid actions but deletions missing: final state has extra replicas.
  const Schedule h({Action::transfer(1, 0, 0), Action::transfer(1, 1, 0)});
  const auto v = Validator::validate(model_, x_old_, x_new_, h);
  ASSERT_FALSE(v.valid);
  EXPECT_EQ(v.issues[0].index, h.size());
  EXPECT_EQ(v.issues[0].error, ActionError::None);
  EXPECT_NE(v.issues[0].message.find("final state mismatch"), std::string::npos);
}

TEST_F(ValidatorTest, EmptyScheduleValidOnlyIfStatesEqual) {
  EXPECT_FALSE(Validator::is_valid(model_, x_old_, x_new_, Schedule{}));
  EXPECT_TRUE(Validator::is_valid(model_, x_old_, x_old_, Schedule{}));
}

TEST_F(ValidatorTest, CollectAllModeAccumulatesIssues) {
  const Schedule h({Action::remove(1, 0),        // not a replicator
                    Action::transfer(1, 0, 0),   // fine
                    Action::remove(0, 0)});      // fine; but final state wrong
  const auto v = Validator::validate(model_, x_old_, x_new_, h,
                                     /*stop_at_first=*/false);
  ASSERT_FALSE(v.valid);
  EXPECT_GE(v.issues.size(), 2u);  // the bad delete + final mismatch
}

TEST_F(ValidatorTest, DummyTransfersAreValidActions) {
  const Schedule h({Action::remove(0, 0), Action::remove(0, 1),
                    Action::transfer(1, 0, kDummyServer),
                    Action::transfer(1, 1, kDummyServer)});
  EXPECT_TRUE(Validator::is_valid(model_, x_old_, x_new_, h));
}

// Machine-readable failure codes: callers branch on issue.code instead of
// string-matching the message; the message still carries the code token.
TEST_F(ValidatorTest, IssuesCarryMachineReadableCodes) {
  // Action-level failure: deleting a non-replica.
  const Schedule bad_action({Action::remove(1, 0)});
  const auto va = Validator::validate(model_, x_old_, x_new_, bad_action);
  ASSERT_FALSE(va.valid);
  EXPECT_EQ(va.issues[0].code, ValidationCode::ActionNotReplicator);
  EXPECT_NE(va.issues[0].message.find("action_not_replicator"),
            std::string::npos);

  // Missing deletions: the run leaves replicas X_new does not want.
  const Schedule extra({Action::transfer(1, 0, 0), Action::transfer(1, 1, 0)});
  const auto ve = Validator::validate(model_, x_old_, x_new_, extra);
  ASSERT_FALSE(ve.valid);
  EXPECT_EQ(ve.issues[0].code, ValidationCode::FinalStateExtraReplica);

  // Missing transfers: X_new wants replicas the run never produced.
  const Schedule missing({Action::remove(0, 0), Action::remove(0, 1),
                          Action::transfer(1, 0, kDummyServer)});
  const auto vm = Validator::validate(model_, x_old_, x_new_, missing);
  ASSERT_FALSE(vm.valid);
  EXPECT_EQ(vm.issues[0].code, ValidationCode::FinalStateMissingReplica);
  EXPECT_NE(vm.issues[0].message.find("final_state_missing_replica"),
            std::string::npos);
}

TEST(ValidationCode, MapsEveryActionError) {
  EXPECT_EQ(code_for(ActionError::SourceNotReplicator),
            ValidationCode::ActionSourceNotReplicator);
  EXPECT_EQ(code_for(ActionError::DestAlreadyReplicator),
            ValidationCode::ActionDestAlreadyReplicator);
  EXPECT_EQ(code_for(ActionError::InsufficientSpace),
            ValidationCode::ActionInsufficientSpace);
  EXPECT_EQ(code_for(ActionError::SelfTransfer),
            ValidationCode::ActionSelfTransfer);
  EXPECT_EQ(code_for(ActionError::NotReplicator),
            ValidationCode::ActionNotReplicator);
  EXPECT_STREQ(to_string(ValidationCode::ActionInsufficientSpace),
               "action_insufficient_space");
}

}  // namespace
}  // namespace rtsp
