#include "support/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rtsp {
namespace {

TEST(JsonWriter, NestedStructure) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.key("a").value(1);
  j.key("b").begin_array().value("x").value(true).end_array();
  j.key("c").begin_object().key("d").value(2.5).end_object();
  j.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":["x",true],"c":{"d":2.5}})");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegralityIsTracked) {
  const JsonValue i = parse_json("5");
  EXPECT_TRUE(i.is_number());
  EXPECT_EQ(i.as_int(), 5);
  EXPECT_DOUBLE_EQ(i.as_double(), 5.0);
  const JsonValue d = parse_json("5.0");
  EXPECT_TRUE(d.is_number());
  EXPECT_THROW(d.as_int(), std::runtime_error);  // literal was not integral
}

TEST(JsonParse, LargeIdsRoundTripExactly) {
  // Doubles lose precision past 2^53; ids must not.
  const std::int64_t big = (std::int64_t{1} << 60) + 7;
  const JsonValue v = parse_json(std::to_string(big));
  EXPECT_EQ(v.as_int(), big);
}

TEST(JsonParse, ObjectKeepsMemberOrder) {
  const JsonValue v = parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
  EXPECT_EQ(v.at("a").as_int(), 2);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), std::runtime_error);
}

TEST(JsonParse, ArraysAndNesting) {
  const JsonValue v = parse_json(R"([1, [2, 3], {"k": [4]}])");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.items().size(), 3u);
  EXPECT_EQ(v.items()[1].items()[1].as_int(), 3);
  EXPECT_EQ(v.items()[2].at("k").items()[0].as_int(), 4);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
  EXPECT_EQ(parse_json(R"("✓")").as_string(), "\xe2\x9c\x93");  // ✓
}

TEST(JsonParse, WriterEscapesRoundTrip) {
  const std::string nasty = "line\nquote\"back\\slash\ttab\x01";
  std::ostringstream os;
  JsonWriter(os).value(nasty);
  EXPECT_EQ(parse_json(os.str()).as_string(), nasty);
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1} extra"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("\"bad \\q escape\""), std::runtime_error);
  EXPECT_THROW(parse_json("-"), std::runtime_error);
  try {
    parse_json("[1, oops]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParse, TypeMismatchThrows) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_bool(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.members(), std::runtime_error);
  EXPECT_THROW(parse_json("3").items(), std::runtime_error);
}

TEST(JsonParse, DeepNestingIsRejectedNotCrashing) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_THROW(parse_json(deep), std::runtime_error);
}

}  // namespace
}  // namespace rtsp
