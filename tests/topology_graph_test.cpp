#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace rtsp {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.add_node(), 3u);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 7);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].node, 1u);
  EXPECT_EQ(g.neighbors(0)[0].cost, 5);
}

TEST(Graph, EdgeValidation) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1), PreconditionError);   // self loop
  EXPECT_THROW(g.add_edge(0, 2, 1), PreconditionError);   // out of range
  EXPECT_THROW(g.add_edge(0, 1, 0), PreconditionError);   // non-positive cost
  EXPECT_THROW(g.add_edge(0, 1, -3), PreconditionError);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2, 1);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_tree());
}

TEST(Graph, TreeDetection) {
  Graph path(3);
  path.add_edge(0, 1, 1);
  path.add_edge(1, 2, 1);
  EXPECT_TRUE(path.is_tree());

  Graph cycle(3);
  cycle.add_edge(0, 1, 1);
  cycle.add_edge(1, 2, 1);
  cycle.add_edge(2, 0, 1);
  EXPECT_FALSE(cycle.is_tree());  // n edges

  Graph forest(4);
  forest.add_edge(0, 1, 1);
  forest.add_edge(2, 3, 1);
  EXPECT_FALSE(forest.is_tree());  // disconnected
}

}  // namespace
}  // namespace rtsp
