// Differential suite: SparseReplicaIndex (via ReplicationMatrix's sparse
// store) must agree with the dense bitset on every observable — membership,
// counts, iteration order, overlap, equality — under randomized workloads.
#include "core/sparse_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/replication.hpp"
#include "support/rng.hpp"

namespace rtsp {
namespace {

using Store = ReplicationMatrix::Store;

std::vector<ServerId> replicator_order(const ReplicationMatrix& x, ObjectId k) {
  std::vector<ServerId> out;
  x.for_each_replicator(k, [&](ServerId i) { out.push_back(i); });
  return out;
}

std::vector<ObjectId> object_order(const ReplicationMatrix& x, ServerId i) {
  std::vector<ObjectId> out;
  x.for_each_object(i, [&](ObjectId k) { out.push_back(k); });
  return out;
}

void expect_agree(const ReplicationMatrix& dense, const ReplicationMatrix& sparse) {
  ASSERT_EQ(dense.num_servers(), sparse.num_servers());
  ASSERT_EQ(dense.num_objects(), sparse.num_objects());
  EXPECT_EQ(dense.total_replicas(), sparse.total_replicas());
  for (ServerId i = 0; i < dense.num_servers(); ++i) {
    EXPECT_EQ(dense.count_on(i), sparse.count_on(i)) << "server " << i;
    EXPECT_EQ(object_order(dense, i), object_order(sparse, i)) << "server " << i;
    EXPECT_EQ(dense.objects_on(i), sparse.objects_on(i)) << "server " << i;
  }
  for (ObjectId k = 0; k < dense.num_objects(); ++k) {
    EXPECT_EQ(dense.replica_count(k), sparse.replica_count(k)) << "object " << k;
    EXPECT_EQ(replicator_order(dense, k), replicator_order(sparse, k))
        << "object " << k;
    for (ServerId i = 0; i < dense.num_servers(); ++i) {
      EXPECT_EQ(dense.test(i, k), sparse.test(i, k)) << "(" << i << "," << k << ")";
    }
  }
  // Cross-store semantic equality, both directions.
  EXPECT_TRUE(dense == sparse);
  EXPECT_TRUE(sparse == dense);
}

TEST(SparseIndex, DifferentialRandomizedOps) {
  constexpr std::size_t kServers = 17;
  constexpr std::size_t kObjects = 97;
  Rng rng(20260808);
  ReplicationMatrix dense(kServers, kObjects, Store::kDense);
  ReplicationMatrix sparse(kServers, kObjects, Store::kSparse);
  ASSERT_TRUE(dense.is_dense());
  ASSERT_TRUE(sparse.is_sparse());

  for (int round = 0; round < 20; ++round) {
    for (int op = 0; op < 200; ++op) {
      const ServerId i = static_cast<ServerId>(rng.below(kServers));
      const ObjectId k = static_cast<ObjectId>(rng.below(kObjects));
      // Biased towards set so the matrices actually fill; both stores must
      // also agree on redundant set/clear (no-ops).
      if (rng.below(3) != 0) {
        dense.set(i, k);
        sparse.set(i, k);
      } else {
        dense.clear(i, k);
        sparse.clear(i, k);
      }
    }
    expect_agree(dense, sparse);
  }
}

TEST(SparseIndex, OverlapAgreesAcrossAllStoreCombinations) {
  constexpr std::size_t kServers = 11;
  constexpr std::size_t kObjects = 53;
  Rng rng(99);
  ReplicationMatrix ad(kServers, kObjects, Store::kDense);
  ReplicationMatrix as(kServers, kObjects, Store::kSparse);
  ReplicationMatrix bd(kServers, kObjects, Store::kDense);
  ReplicationMatrix bs(kServers, kObjects, Store::kSparse);
  for (int op = 0; op < 400; ++op) {
    const ServerId i = static_cast<ServerId>(rng.below(kServers));
    const ObjectId k = static_cast<ObjectId>(rng.below(kObjects));
    if (rng.below(2) == 0) {
      ad.set(i, k);
      as.set(i, k);
    } else {
      bd.set(i, k);
      bs.set(i, k);
    }
  }
  const std::size_t expected = ad.overlap(bd);
  EXPECT_EQ(as.overlap(bs), expected);  // sparse/sparse
  EXPECT_EQ(ad.overlap(bs), expected);  // dense/sparse
  EXPECT_EQ(as.overlap(bd), expected);  // sparse/dense
  EXPECT_EQ(bd.overlap(ad), expected);  // symmetry
  EXPECT_EQ(bs.overlap(as), expected);
}

TEST(SparseIndex, SetAndClearAreIdempotent) {
  SparseReplicaIndex idx(4, 6);
  idx.set(2, 3);
  idx.set(2, 3);
  EXPECT_EQ(idx.total_replicas(), 1u);
  EXPECT_EQ(idx.replica_count(3), 1u);
  EXPECT_EQ(idx.count_on(2), 1u);
  idx.clear(2, 3);
  idx.clear(2, 3);
  EXPECT_EQ(idx.total_replicas(), 0u);
  EXPECT_EQ(idx.count_on(2), 0u);
  EXPECT_FALSE(idx.test(2, 3));
}

TEST(SparseIndex, LazyServerListsCompactToSortedUnique) {
  SparseReplicaIndex idx(3, 10);
  // Interleave sets and clears so the append-log accumulates stale and
  // duplicate entries before the first read.
  for (ObjectId k : {7u, 3u, 9u, 3u, 1u}) idx.set(0, k);
  idx.clear(0, 9);
  idx.set(0, 9);
  idx.clear(0, 3);
  EXPECT_EQ(idx.objects(0), (std::vector<ObjectId>{1, 7, 9}));
  // Reading again without mutations must not re-sort or change anything.
  EXPECT_EQ(idx.objects(0), (std::vector<ObjectId>{1, 7, 9}));
  idx.compact_all();
  EXPECT_EQ(idx.objects(0), (std::vector<ObjectId>{1, 7, 9}));
}

TEST(SparseIndex, AutoStoreSelectsByDensityThreshold) {
  // With 65536 servers the dense bitset crosses kDenseBitLimit (= 2^26 bits)
  // at 1024 objects; one object past the boundary must flip to sparse.
  const std::size_t servers = 1 << 16;
  const std::size_t boundary = ReplicationMatrix::kDenseBitLimit / servers;
  EXPECT_TRUE(ReplicationMatrix(servers, boundary).is_dense());
  EXPECT_TRUE(ReplicationMatrix(servers, boundary + 1).is_sparse());
  // Explicit stores override the heuristic in both directions.
  EXPECT_TRUE(ReplicationMatrix(servers, boundary + 1, Store::kDense).is_dense());
  EXPECT_TRUE(ReplicationMatrix(4, 4, Store::kSparse).is_sparse());
}

TEST(SparseIndex, ReplicaSetSpillsPastInlineBufferAndBack) {
  // The per-object ReplicaSet holds two ids inline; push well past the
  // spill point with out-of-order inserts, then erase back below it (the
  // set stays on the heap — contents are what matters).
  SparseReplicaIndex idx(64, 1);
  const std::vector<ServerId> order = {7, 3, 60, 1, 22, 9, 41, 5, 0, 63};
  for (ServerId i : order) idx.set(i, 0);
  for (ServerId i : order) idx.set(i, 0);  // idempotent re-inserts
  std::vector<ServerId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<ServerId> seen;
  idx.for_each_replicator(0, [&](ServerId i) { seen.push_back(i); });
  EXPECT_EQ(seen, sorted);
  EXPECT_EQ(idx.replica_count(0), order.size());
  for (ServerId i : {3u, 60u, 0u, 63u, 22u, 9u, 41u, 5u}) idx.clear(i, 0);
  seen.clear();
  idx.for_each_replicator(0, [&](ServerId i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<ServerId>{1, 7}));
  EXPECT_TRUE(idx.test(7, 0));
  EXPECT_FALSE(idx.test(60, 0));
}

TEST(SparseIndex, CopiedIndexIsDeepAndIndependent) {
  SparseReplicaIndex a(16, 4);
  for (ServerId i : {1u, 5u, 9u, 12u}) a.set(i, 2);  // heap-spilled set
  a.set(3, 0);                                       // inline set
  SparseReplicaIndex b = a;  // copy: exact-fit clones of every set
  EXPECT_TRUE(b == a);
  b.set(14, 2);
  b.clear(3, 0);
  EXPECT_FALSE(b == a);
  EXPECT_TRUE(a.test(3, 0));
  EXPECT_FALSE(a.test(14, 2));
  EXPECT_EQ(a.replica_count(2), 4u);
  EXPECT_EQ(b.replica_count(2), 5u);
  // Move leaves the source reusable-but-empty and the target intact.
  SparseReplicaIndex c = std::move(b);
  EXPECT_TRUE(c.test(14, 2));
  EXPECT_EQ(c.replica_count(2), 5u);
}

TEST(SparseIndex, GatedAccessorsRequireMatchingStore) {
  const ReplicationMatrix dense(4, 4, Store::kDense);
  const ReplicationMatrix sparse(4, 4, Store::kSparse);
  EXPECT_NO_THROW(dense.words());
  EXPECT_NO_THROW(sparse.sparse_index());
  EXPECT_THROW((void)sparse.words(), PreconditionError);
  EXPECT_THROW((void)dense.sparse_index(), PreconditionError);
}

}  // namespace
}  // namespace rtsp
