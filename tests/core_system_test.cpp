#include "core/system.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;
using testutil::uniform_model;

TEST(SystemModel, BasicAccessors) {
  const SystemModel m = uniform_model({10, 20}, {3, 4, 5}, 2);
  EXPECT_EQ(m.num_servers(), 2u);
  EXPECT_EQ(m.num_objects(), 3u);
  EXPECT_EQ(m.capacity(1), 20);
  EXPECT_EQ(m.object_size(2), 5);
  EXPECT_EQ(m.dummy_link_cost(), 3);  // max link 2, a = 1
}

TEST(SystemModel, CostMatrixSizeMustMatchServers) {
  EXPECT_THROW(SystemModel(ServerCatalog::uniform(3, 10),
                           ObjectCatalog::uniform(2, 1), CostMatrix(2, 1)),
               PreconditionError);
}

TEST(SystemModel, SourceLinkAndTransferCost) {
  const SystemModel m = matrix_model({5, 5, 5}, {2, 3},
                                     {{0, 4, 7}, {4, 0, 2}, {7, 2, 0}});
  EXPECT_EQ(m.source_link_cost(0, 1), 4);
  EXPECT_EQ(m.source_link_cost(0, kDummyServer), 8);  // max 7 + 1
  EXPECT_EQ(m.transfer_cost(0, 1, 2), 3 * 7);
  EXPECT_EQ(m.transfer_cost(1, 0, kDummyServer), 2 * 8);
}

TEST(SystemModel, DummyFactorScalesDummyCost) {
  const SystemModel m = uniform_model({1}, {1}, 1, 3.0);
  // Single server: max link 0 (no pairs), dummy = 3 * (0 + 1).
  EXPECT_EQ(m.dummy_link_cost(), 3);
}

TEST(SystemModel, NearestAndSecondNearestReplicator) {
  const SystemModel m = matrix_model({5, 5, 5, 5}, {1},
                                     {{0, 3, 1, 9},
                                      {3, 0, 4, 2},
                                      {1, 4, 0, 5},
                                      {9, 2, 5, 0}});
  ReplicationMatrix x(4, 1);
  EXPECT_EQ(m.nearest_replicator(0, 0, x), std::nullopt);
  EXPECT_EQ(m.nearest_source_or_dummy(0, 0, x), kDummyServer);
  EXPECT_EQ(m.nearest_source_cost(0, 0, x), 10);  // dummy: max 9 + 1

  x.set(1, 0);
  x.set(3, 0);
  // From S0: S1 costs 3, S3 costs 9.
  EXPECT_EQ(m.nearest_replicator(0, 0, x), std::optional<ServerId>(1));
  EXPECT_EQ(m.second_nearest_replicator(0, 0, x), std::optional<ServerId>(3));
  EXPECT_EQ(m.nearest_source_cost(0, 0, x), 3);
  EXPECT_EQ(m.second_nearest_source_cost(0, 0, x), 9);
  // Only one replicator: second-nearest falls back to dummy cost.
  x.clear(3, 0);
  EXPECT_EQ(m.second_nearest_replicator(0, 0, x), std::nullopt);
  EXPECT_EQ(m.second_nearest_source_cost(0, 0, x), 10);
}

TEST(SystemModel, NearestExcludesSelf) {
  const SystemModel m = uniform_model({5, 5}, {1}, 4);
  ReplicationMatrix x(2, 1);
  x.set(0, 0);
  // Server 0 asking for object 0: itself is a replicator but must not be
  // returned as a source.
  EXPECT_EQ(m.nearest_replicator(0, 0, x), std::nullopt);
  EXPECT_EQ(m.nearest_replicator(1, 0, x), std::optional<ServerId>(0));
}

TEST(SystemModel, NeighborsByCostTiesBrokenByIndex) {
  const SystemModel m = uniform_model({1, 1, 1, 1}, {1}, 5);
  EXPECT_EQ(m.neighbors_by_cost(2), (std::vector<ServerId>{0, 1, 3}));
}

}  // namespace
}  // namespace rtsp
