#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include "support/assert.hpp"

namespace rtsp {
namespace {

TEST(Histogram, BucketsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);  // buckets [0,2) [2,4) [4,6) [6,8) [8,10]
  for (double v : {0.0, 1.9, 2.0, 5.0, 9.9}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 0u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBuckets) {
  Histogram h(0.0, 10.0, 2);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // exactly hi lands in the last bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
}

TEST(Histogram, BucketBoundsArePredictable) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 20.0);
}

TEST(Histogram, OfDerivesBoundsFromData) {
  const std::vector<double> values = {3.0, 7.0, 5.0, 3.0};
  const Histogram h = Histogram::of(values, 4);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 7.0);
}

TEST(Histogram, DegenerateDataGetsOneWideBucket) {
  const Histogram h = Histogram::of({5.0, 5.0, 5.0}, 3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 3u);
}

TEST(Histogram, AsciiRenderingShowsBarsAndCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.0);
  h.add(3.0);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find("##########  2"), std::string::npos);  // full bar
  EXPECT_NE(s.find("#####       1"), std::string::npos);  // half bar
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(Histogram::of({}, 3), PreconditionError);
}

}  // namespace
}  // namespace rtsp
