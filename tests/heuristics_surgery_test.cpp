#include "heuristics/surgery.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::uniform_model;

TEST(MoveActionEarlier, ShiftsInterveningActionsRight) {
  Schedule h({Action::remove(0, 0), Action::remove(1, 1), Action::remove(2, 2),
              Action::transfer(3, 3, 0)});
  move_action_earlier(h, 3, 1);
  EXPECT_EQ(h[0], Action::remove(0, 0));
  EXPECT_EQ(h[1], Action::transfer(3, 3, 0));
  EXPECT_EQ(h[2], Action::remove(1, 1));
  EXPECT_EQ(h[3], Action::remove(2, 2));
}

TEST(MoveActionEarlier, SamePositionIsNoop) {
  Schedule h({Action::remove(0, 0), Action::remove(1, 1)});
  const Schedule copy = h;
  move_action_earlier(h, 1, 1);
  EXPECT_EQ(h, copy);
}

TEST(MoveActionEarlier, InvalidPositionsThrow) {
  Schedule h({Action::remove(0, 0)});
  EXPECT_THROW(move_action_earlier(h, 1, 0), PreconditionError);
}

TEST(FindPrecedingDeletion, FindsNearestBefore) {
  Schedule h({Action::remove(0, 7), Action::remove(1, 7), Action::remove(2, 5),
              Action::transfer(3, 7, kDummyServer)});
  EXPECT_EQ(find_preceding_deletion(h, 3, 7), 1u);
  EXPECT_EQ(find_preceding_deletion(h, 3, 5), 2u);
  EXPECT_EQ(find_preceding_deletion(h, 3, 9), npos);
  EXPECT_EQ(find_preceding_deletion(h, 0, 7), npos);  // nothing strictly before
  EXPECT_EQ(find_preceding_deletion(h, 1, 7), 0u);
}

TEST(OccupancyBefore, TracksOneServerLeniently) {
  const SystemModel m = uniform_model({10, 10}, {4, 7});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}});
  // Mixed valid/invalid actions; occupancy follows server 0's bit flips.
  Schedule h({Action::transfer(0, 1, 1),   // +7 (source invalid, irrelevant)
              Action::transfer(0, 1, 1),   // duplicate: no change
              Action::remove(0, 0),        // -4
              Action::remove(0, 0),        // absent: no change
              Action::transfer(1, 0, 0)}); // other server
  EXPECT_EQ(occupancy_before(m, x_old, h, 0, 0), 4);
  EXPECT_EQ(occupancy_before(m, x_old, h, 1, 0), 11);
  EXPECT_EQ(occupancy_before(m, x_old, h, 2, 0), 11);
  EXPECT_EQ(occupancy_before(m, x_old, h, 3, 0), 7);
  EXPECT_EQ(occupancy_before(m, x_old, h, 5, 0), 7);
  EXPECT_EQ(occupancy_before(m, x_old, h, 5, 1), 4);
}

TEST(SimulatePrefixLenient, MatchesLenientSemantics) {
  const SystemModel m = uniform_model({10, 10}, {4, 7});
  const auto x_old = ReplicationMatrix::from_pairs(2, 2, {{0, 0}});
  Schedule h({Action::transfer(1, 0, 0), Action::remove(0, 0)});
  const auto st = simulate_prefix_lenient(m, x_old, h, 2);
  EXPECT_TRUE(st.holds(1, 0));
  EXPECT_FALSE(st.holds(0, 0));
  EXPECT_EQ(st.replica_count(0), 1u);
}

class PullDeletionsTest : public testing::Test {
 protected:
  // Server 0 capacity 2; unit objects. X_old: S0 holds {1, 2}, S1 holds {0}.
  SystemModel model_ = uniform_model({2, 3}, {1, 1, 1});
  ReplicationMatrix x_old_ =
      ReplicationMatrix::from_pairs(2, 3, {{0, 1}, {0, 2}, {1, 0}});
};

TEST_F(PullDeletionsTest, StandaloneDeletionIsPulled) {
  // Transfer of object 0 into full S0 at position 0; its enabling deletion
  // sits later in the schedule.
  Schedule h({Action::transfer(0, 0, 1), Action::remove(1, 0),
              Action::remove(0, 1)});
  const auto r =
      pull_deletions_for_space(model_, x_old_, h, 0, 2, OrphanPolicy::Dummy);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.new_dummies.empty());
  EXPECT_EQ(r.t_pos, 1u);
  EXPECT_EQ(h[0], Action::remove(0, 1));
  EXPECT_EQ(h[1], Action::transfer(0, 0, 1));
}

TEST_F(PullDeletionsTest, DependentReaderBecomesDummyUnderDummyPolicy) {
  // The deletion D(0,1) is read by T(1,1,0) in between: pulling it orphans
  // the reader, which is re-sourced to the dummy.
  Schedule h({Action::transfer(0, 0, 1), Action::transfer(1, 1, 0),
              Action::remove(0, 1)});
  const auto r =
      pull_deletions_for_space(model_, x_old_, h, 0, 2, OrphanPolicy::Dummy);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.new_dummies.size(), 1u);
  EXPECT_EQ(r.new_dummies[0].server, 1u);
  EXPECT_EQ(r.new_dummies[0].object, 1u);
  EXPECT_EQ(h[0], Action::remove(0, 1));
  EXPECT_EQ(h[1], Action::transfer(0, 0, 1));
  EXPECT_TRUE(h[2].is_dummy_transfer());
}

TEST_F(PullDeletionsTest, NearestPolicyReSourcesToAlternativeReplica) {
  // Object 1 also lives on S1 in X_old, so the orphaned reader can switch
  // to S1 instead of the dummy.
  auto x_old = x_old_;
  x_old.set(1, 1);
  SystemModel model = uniform_model({2, 4}, {1, 1, 1});
  Schedule h({Action::transfer(0, 0, 1), Action::transfer(1, 1, 0),
              Action::remove(0, 1)});
  // Destination of the reader is S1 itself... use a third server instead.
  SystemModel model3 = uniform_model({2, 3, 2}, {1, 1, 1});
  ReplicationMatrix x3(3, 3);
  x3.set(0, 1);
  x3.set(0, 2);
  x3.set(1, 0);
  x3.set(2, 1);  // alternative source of object 1
  Schedule h3({Action::transfer(0, 0, 1), Action::transfer(1, 1, 0),
               Action::remove(0, 1)});
  const auto r = pull_deletions_for_space(model3, x3, h3, 0, 2,
                                          OrphanPolicy::NearestElseDummy);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.new_dummies.empty());
  EXPECT_EQ(h3[2].source, 2u);  // re-sourced to S2's copy
  (void)model;
  (void)h;
}

TEST_F(PullDeletionsTest, FailsWhenNoDeletionAvailable) {
  Schedule h({Action::transfer(0, 0, 1), Action::remove(1, 0)});
  const auto r =
      pull_deletions_for_space(model_, x_old_, h, 0, 1, OrphanPolicy::Dummy);
  EXPECT_FALSE(r.ok);
}

TEST_F(PullDeletionsTest, NeverPullsDeletionOfTheTransferredObject) {
  // The only deletion in range is of the transfer's own object — pulling it
  // would be nonsense, so the repair must fail.
  Schedule h({Action::transfer(0, 0, 1), Action::remove(0, 0)});
  const auto r =
      pull_deletions_for_space(model_, x_old_, h, 0, 1, OrphanPolicy::Dummy);
  EXPECT_FALSE(r.ok);
}

TEST_F(PullDeletionsTest, NoopWhenSpaceAlreadySufficient) {
  SystemModel roomy = uniform_model({5, 5}, {1, 1, 1});
  Schedule h({Action::transfer(0, 0, 1), Action::remove(0, 1)});
  const Schedule copy = h;
  const auto r =
      pull_deletions_for_space(roomy, x_old_, h, 0, 1, OrphanPolicy::Dummy);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.t_pos, 0u);
  EXPECT_EQ(h, copy);
}

}  // namespace
}  // namespace rtsp
