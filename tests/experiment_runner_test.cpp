#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "experiment/report.hpp"
#include "experiment/runner.hpp"

namespace rtsp {
namespace {

std::vector<SweepPoint> tiny_points() {
  std::vector<SweepPoint> points;
  for (std::size_t r : {1, 2}) {
    RandomInstanceSpec spec;
    spec.servers = 8;
    spec.objects = 16;
    spec.min_replicas = r;
    spec.max_replicas = r;
    points.push_back(
        {std::to_string(r), [spec](Rng& rng) { return random_instance(spec, rng); }});
  }
  return points;
}

SweepConfig tiny_config() {
  SweepConfig cfg;
  cfg.algorithms = {"AR", "GOLCF+H1+H2"};
  cfg.trials = 3;
  cfg.threads = 2;
  return cfg;
}

TEST(Runner, ShapesAndCountsAreRight) {
  const SweepResult result = run_sweep(tiny_points(), tiny_config());
  ASSERT_EQ(result.point_labels.size(), 2u);
  ASSERT_EQ(result.algorithms.size(), 2u);
  EXPECT_EQ(result.algorithms[0], "AR");
  EXPECT_EQ(result.algorithms[1], "GOLCF+H1+H2");
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& row : result.cells) {
    ASSERT_EQ(row.size(), 2u);
    for (const auto& cell : row) {
      EXPECT_EQ(cell.dummy_transfers.count(), 3u);
      EXPECT_EQ(cell.implementation_cost.count(), 3u);
      EXPECT_GT(cell.implementation_cost.mean(), 0.0);
    }
  }
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  SweepConfig one = tiny_config();
  one.threads = 1;
  SweepConfig four = tiny_config();
  four.threads = 4;
  const SweepResult a = run_sweep(tiny_points(), one);
  const SweepResult b = run_sweep(tiny_points(), four);
  for (std::size_t p = 0; p < a.cells.size(); ++p) {
    for (std::size_t alg = 0; alg < a.cells[p].size(); ++alg) {
      EXPECT_DOUBLE_EQ(a.cells[p][alg].implementation_cost.mean(),
                       b.cells[p][alg].implementation_cost.mean());
      EXPECT_DOUBLE_EQ(a.cells[p][alg].dummy_transfers.mean(),
                       b.cells[p][alg].dummy_transfers.mean());
    }
  }
}

TEST(Runner, DifferentBaseSeedsChangeResults) {
  SweepConfig cfg = tiny_config();
  const SweepResult a = run_sweep(tiny_points(), cfg);
  cfg.base_seed += 1;
  const SweepResult b = run_sweep(tiny_points(), cfg);
  bool any_diff = false;
  for (std::size_t p = 0; p < a.cells.size(); ++p) {
    for (std::size_t alg = 0; alg < a.cells[p].size(); ++alg) {
      any_diff |= a.cells[p][alg].implementation_cost.mean() !=
                  b.cells[p][alg].implementation_cost.mean();
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Runner, RejectsBadConfigs) {
  SweepConfig cfg = tiny_config();
  cfg.algorithms = {"NOT_AN_ALGO"};
  EXPECT_THROW(run_sweep(tiny_points(), cfg), std::invalid_argument);
  SweepConfig empty = tiny_config();
  empty.algorithms.clear();
  EXPECT_THROW(run_sweep(tiny_points(), empty), PreconditionError);
  EXPECT_THROW(run_sweep({}, tiny_config()), PreconditionError);
}

TEST(Report, SeriesTableContainsAlgorithmsAndPoints) {
  const SweepResult result = run_sweep(tiny_points(), tiny_config());
  std::ostringstream out;
  print_series(out, result, Metric::DummyTransfers, "replicas/object");
  const std::string s = out.str();
  EXPECT_NE(s.find("dummy transfers"), std::string::npos);
  EXPECT_NE(s.find("replicas/object"), std::string::npos);
  EXPECT_NE(s.find("GOLCF+H1+H2"), std::string::npos);
  EXPECT_NE(s.find("\n1 "), std::string::npos);  // x row
}

TEST(Report, CsvHasHeaderAndOneRowPerCell) {
  const SweepResult result = run_sweep(tiny_points(), tiny_config());
  std::ostringstream out;
  write_series_csv(out, result, Metric::ImplementationCost, "r");
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 1u + 2u * 2u);  // header + points x algorithms
  EXPECT_NE(out.str().find("implementation cost"), std::string::npos);
}

TEST(Report, MaybeDumpCsvWritesFileOrSkips) {
  const SweepResult result = run_sweep(tiny_points(), tiny_config());
  maybe_dump_csv("", result, "r");  // no-op
  const std::string path = testing::TempDir() + "/rtsp_sweep.csv";
  maybe_dump_csv(path, result, "r");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("metric"), std::string::npos);
}

TEST(MetricHelpers, NamesAndSelection) {
  CellMetrics cell;
  TrialMetrics t;
  t.dummy_transfers = 4;
  t.implementation_cost = 100;
  t.schedule_length = 9;
  t.seconds = 0.5;
  cell.add(t);
  EXPECT_DOUBLE_EQ(metric_samples(cell, Metric::DummyTransfers).mean(), 4.0);
  EXPECT_DOUBLE_EQ(metric_samples(cell, Metric::ImplementationCost).mean(), 100.0);
  EXPECT_DOUBLE_EQ(metric_samples(cell, Metric::ScheduleLength).mean(), 9.0);
  EXPECT_DOUBLE_EQ(metric_samples(cell, Metric::Seconds).mean(), 0.5);
  EXPECT_STREQ(metric_name(Metric::DummyTransfers), "dummy transfers");
}

}  // namespace
}  // namespace rtsp
