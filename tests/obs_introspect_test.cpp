#include "obs/introspect.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "exec/fault_model.hpp"
#include "io/schedule_io.hpp"
#include "obs/export.hpp"
#include "obs/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "portfolio/portfolio.hpp"
#include "support/json.hpp"
#include "support/net.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"

namespace rtsp::obs {
namespace {

Instance test_instance(std::uint64_t seed = 11) {
  RandomInstanceSpec spec;
  Rng rng(seed);
  return random_instance(spec, rng);
}

PortfolioOptions tick_options(std::uint64_t ticks, std::size_t threads = 0) {
  PortfolioOptions opts;
  opts.budget.ticks = ticks;
  opts.threads = threads;
  return opts;
}

/// Arms the full obs surface (registry + Progress + log ring) and disarms
/// on the way out, so other suites in this binary see the defaults.
class ObsIntrospectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::instance().reset();
    Progress::instance().reset();
    Logger::instance().configure(LogLevel::Debug, "");
    Logger::instance().clear();
  }
  void TearDown() override {
    Logger::instance().shutdown();
    Logger::instance().clear();
    Progress::instance().reset();
    set_enabled(false);
  }
};

std::string lint_messages(const std::vector<std::string>& violations) {
  std::string all;
  for (const auto& v : violations) all += v + "\n";
  return all;
}

TEST_F(ObsIntrospectTest, MetricNameCharsetIsEnforcedAtRegistration) {
  EXPECT_TRUE(valid_metric_name("exec.retries"));
  EXPECT_TRUE(valid_metric_name("_private:series.v2"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("9starts.with.digit"));
  EXPECT_FALSE(valid_metric_name("has space"));
  EXPECT_FALSE(valid_metric_name("bad-dash"));
  EXPECT_FALSE(valid_metric_name("unicode\xc3\xa9"));

  auto& reg = MetricsRegistry::instance();
  EXPECT_THROW(reg.counter("bad name!"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("-leading.dash"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("tab\tchar"), std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("introspect.test.ok"));
}

TEST_F(ObsIntrospectTest, PrometheusNameMapsDotsAndPrefixes) {
  EXPECT_EQ(prometheus_name("exec.retries"), "rtsp_exec_retries");
  EXPECT_EQ(prometheus_name("plain"), "rtsp_plain");
  EXPECT_EQ(prometheus_name("a.b.c"), "rtsp_a_b_c");
}

TEST_F(ObsIntrospectTest, PrometheusExpositionHasCumulativeHistograms) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("introspect.events").add(5);
  reg.gauge("introspect.depth").set(7);
  auto h = reg.histogram("introspect.latency");
  h.record_ns(900);      // bit_width(900) == 10
  h.record_ns(123456);   // bit_width(123456) == 17
  h.record_ns(123456);

  std::ostringstream out;
  write_metrics_prometheus(out, reg.snapshot());
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE rtsp_introspect_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rtsp_introspect_events_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rtsp_introspect_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("rtsp_introspect_depth 7"), std::string::npos);
  EXPECT_NE(text.find("rtsp_introspect_depth_max 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rtsp_introspect_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rtsp_introspect_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rtsp_introspect_latency_seconds_count 3"),
            std::string::npos);

  std::vector<std::string> violations;
  EXPECT_TRUE(lint_prometheus_text(text, violations))
      << lint_messages(violations);
}

TEST_F(ObsIntrospectTest, PrometheusLintCatchesViolations) {
  std::vector<std::string> violations;
  // Sample without a TYPE header.
  EXPECT_FALSE(lint_prometheus_text("orphan_total 1\n", violations));
  violations.clear();
  // +Inf bucket disagreeing with _count.
  const std::string bad_hist =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_sum 0.5\n"
      "h_count 3\n";
  EXPECT_FALSE(lint_prometheus_text(bad_hist, violations));
  violations.clear();
  // Non-cumulative buckets.
  const std::string non_cumulative =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 5\n"
      "h_bucket{le=\"0.2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 0.5\n"
      "h_count 5\n";
  EXPECT_FALSE(lint_prometheus_text(non_cumulative, violations));
  violations.clear();
  // Invalid metric name.
  EXPECT_FALSE(lint_prometheus_text("# TYPE 9bad counter\n9bad 1\n", violations));
}

TEST_F(ObsIntrospectTest, EndpointsServeOverLoopback) {
  MetricsRegistry::instance().counter("introspect.served").add(2);
  Progress::instance().set_stage("unit-test");
  Progress::instance().set_incumbent(42, 1);
  Progress::instance().set_ticks(10, 100);
  Logger::instance().log(LogLevel::Info, "one");
  Logger::instance().log(LogLevel::Info, "two");
  Logger::instance().log(LogLevel::Info, "three");

  IntrospectOptions opts;
  opts.port = 0;
  IntrospectServer server(opts);
  ASSERT_GT(server.port(), 0);

  const auto metrics = net::http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain"), std::string::npos);
  std::vector<std::string> violations;
  EXPECT_TRUE(lint_prometheus_text(metrics.body, violations))
      << lint_messages(violations);
  EXPECT_NE(metrics.body.find("rtsp_introspect_served_total 2"),
            std::string::npos);

  const auto healthz = net::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  const JsonValue health = parse_json(healthz.body);
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("stage").as_string(), "unit-test");

  const auto progress = net::http_get("127.0.0.1", server.port(), "/progress");
  EXPECT_EQ(progress.status, 200);
  EXPECT_NE(progress.headers.find("application/json"), std::string::npos);
  const JsonValue view = parse_json(progress.body);
  EXPECT_EQ(view.at("stage").as_string(), "unit-test");
  EXPECT_EQ(view.at("incumbent").at("cost").as_int(), 42);
  EXPECT_EQ(view.at("incumbent").at("dummy_transfers").as_int(), 1);
  EXPECT_EQ(view.at("ticks").at("spent").as_int(), 10);
  EXPECT_EQ(view.at("ticks").at("budget").as_int(), 100);

  const auto logz = net::http_get("127.0.0.1", server.port(), "/logz?n=2");
  EXPECT_EQ(logz.status, 200);
  EXPECT_NE(logz.headers.find("application/x-ndjson"), std::string::npos);
  std::istringstream lines(logz.body);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(parse_json(line).at("format").as_string(), "rtsp-log");
  std::vector<std::string> messages;
  while (std::getline(lines, line)) {
    messages.push_back(parse_json(line).at("msg").as_string());
  }
  ASSERT_EQ(messages.size(), 2u);  // n=2 means the 2 most recent
  EXPECT_EQ(messages[0], "two");
  EXPECT_EQ(messages[1], "three");

  const auto missing = net::http_get("127.0.0.1", server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);

  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
  server.stop();  // idempotent
}

/// net::http_get only speaks GET, so non-GET and malformed requests go over
/// a raw loopback connection.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  net::Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_TRUE(sock.write_all(request));
  std::string response;
  sock.read_to_eof(response, 1 << 20, /*timeout_ms=*/5000);
  return response;
}

TEST_F(ObsIntrospectTest, NonGetAndMalformedRequestsAreRejected) {
  IntrospectOptions opts;
  opts.port = 0;
  IntrospectServer server(opts);

  const std::string post = raw_request(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;
  EXPECT_NE(post.find("Allow: GET"), std::string::npos) << post;

  const std::string garbage =
      raw_request(server.port(), "not-http-at-all\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;

  // A rejected request must not take the server down.
  const auto still_up = net::http_get("127.0.0.1", server.port(), "/healthz");
  EXPECT_EQ(still_up.status, 200);
}

TEST_F(ObsIntrospectTest, ProgressJsonOmitsIncumbentUntilPublished) {
  Progress::instance().reset();
  Progress::instance().set_stage("warming");
  const JsonValue before = parse_json(Progress::instance().to_json());
  EXPECT_TRUE(before.at("incumbent").is_null());
  EXPECT_EQ(before.find("gap"), nullptr);

  Progress::instance().set_incumbent(110, 2);
  Progress::instance().set_lower_bound(100);
  const JsonValue after = parse_json(Progress::instance().to_json());
  EXPECT_EQ(after.at("incumbent").at("cost").as_int(), 110);
  ASSERT_NE(after.find("gap"), nullptr);
  EXPECT_NEAR(after.at("gap").as_double(), 0.1, 1e-9);
}

// Satellite 2 regression: run a full solve + execute in process, then check
// that every name the instrumentation registered passes the charset gate
// and that the resulting exposition lints clean end to end.
TEST_F(ObsIntrospectTest, FullRunRegistersOnlyValidMetricNames) {
  const Instance inst = test_instance();
  const PortfolioResult solved =
      solve_portfolio(inst.model, inst.x_old, inst.x_new, /*seed=*/3,
                      tick_options(20000));
  exec::ExecutorOptions eopts;
  eopts.seed = 5;
  const exec::ExecutionReport report =
      exec::execute_schedule(inst.model, inst.x_old, inst.x_new,
                             solved.schedule, exec::FaultSpec{}, eopts);
  EXPECT_TRUE(report.reached_goal);

  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
#if RTSP_OBS_ENABLED
  // Under RTSP_OBS=OFF the instrumentation macros fold away and register
  // nothing, so only the armed build can insist the run produced metrics.
  EXPECT_FALSE(snap.counters.empty());
#endif
  for (const auto& c : snap.counters) {
    EXPECT_TRUE(valid_metric_name(c.name)) << c.name;
  }
  for (const auto& g : snap.gauges) {
    EXPECT_TRUE(valid_metric_name(g.name)) << g.name;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_TRUE(valid_metric_name(h.name)) << h.name;
  }

  std::ostringstream out;
  write_metrics_prometheus(out, snap);
  std::vector<std::string> violations;
  EXPECT_TRUE(lint_prometheus_text(out.str(), violations))
      << lint_messages(violations);

  // The served body is byte-equivalent to the exporter's output modulo
  // registry churn between the two snapshots; it must at least lint.
  violations.clear();
  EXPECT_TRUE(lint_prometheus_text(introspect_metrics_body(), violations))
      << lint_messages(violations);
}

// Satellite 3: a solve hammered by concurrent scrapes must produce a
// bit-identical schedule to an unscraped run, and every scraped payload
// must be well-formed (no torn snapshots).
TEST_F(ObsIntrospectTest, ConcurrentScrapesNeverPerturbTheSchedule) {
  const Instance inst = test_instance(23);
  const std::uint64_t kTicks = 60000;

  // Baseline: obs fully disarmed, no server.
  set_enabled(false);
  Logger::instance().shutdown();
  const PortfolioResult baseline = solve_portfolio(
      inst.model, inst.x_old, inst.x_new, /*seed=*/7, tick_options(kTicks, 2));
  const std::string baseline_text = schedule_to_text(baseline.schedule);

  // Armed run: metrics + log ring + Progress live, scraper thread hammering
  // /metrics and /progress for the whole solve.
  set_enabled(true);
  MetricsRegistry::instance().reset();
  Progress::instance().reset();
  Logger::instance().configure(LogLevel::Debug, "");
  Logger::instance().clear();

  IntrospectOptions opts;
  opts.port = 0;
  IntrospectServer server(opts);
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> bad_payloads{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      try {
        const auto metrics = net::http_get("127.0.0.1", port, "/metrics");
        std::vector<std::string> violations;
        if (metrics.status != 200 ||
            !lint_prometheus_text(metrics.body, violations)) {
          bad_payloads.fetch_add(1, std::memory_order_relaxed);
        }
        const auto progress = net::http_get("127.0.0.1", port, "/progress");
        if (progress.status != 200) {
          bad_payloads.fetch_add(1, std::memory_order_relaxed);
        } else {
          parse_json(progress.body);  // throws on a torn write
        }
        scrapes.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception&) {
        bad_payloads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  const PortfolioResult scraped = solve_portfolio(
      inst.model, inst.x_old, inst.x_new, /*seed=*/7, tick_options(kTicks, 4));
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  server.stop();

  EXPECT_GT(scrapes.load(), 0u) << "scraper never completed a round trip";
  EXPECT_EQ(bad_payloads.load(), 0u);
  EXPECT_EQ(schedule_to_text(scraped.schedule), baseline_text)
      << "introspection or thread count changed the schedule";
  EXPECT_EQ(scraped.cost, baseline.cost);
  EXPECT_EQ(scraped.dummy_transfers, baseline.dummy_transfers);
  EXPECT_EQ(scraped.winner, baseline.winner);
}

}  // namespace
}  // namespace rtsp::obs
