#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/pipeline.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

TEST(Registry, ParsesAllBuilders) {
  for (const std::string& b : known_builders()) {
    const Pipeline p = make_pipeline(b);
    EXPECT_EQ(p.name(), b);
    EXPECT_TRUE(p.improvers().empty());
  }
}

TEST(Registry, ParsesCombos) {
  const Pipeline p = make_pipeline("GOLCF+H1+H2+OP1");
  EXPECT_EQ(p.name(), "GOLCF+H1+H2+OP1");
  EXPECT_EQ(p.improvers().size(), 3u);
  EXPECT_EQ(p.improvers()[0]->name(), "H1");
  EXPECT_EQ(p.improvers()[1]->name(), "H2");
  EXPECT_EQ(p.improvers()[2]->name(), "OP1");
}

TEST(Registry, CaseInsensitive) {
  EXPECT_EQ(make_pipeline("golcf+op1").name(), "GOLCF+OP1");
  EXPECT_EQ(make_pipeline("Ar").name(), "AR");
}

TEST(Registry, RejectsUnknownNames) {
  EXPECT_THROW(make_pipeline(""), std::invalid_argument);
  EXPECT_THROW(make_pipeline("NOPE"), std::invalid_argument);
  EXPECT_THROW(make_pipeline("GOLCF+NOPE"), std::invalid_argument);
  EXPECT_THROW(make_pipeline("H1"), std::invalid_argument);        // improver first
  EXPECT_THROW(make_pipeline("GOLCF+AR"), std::invalid_argument);  // builder later
}

TEST(Registry, KnownListsAreStable) {
  EXPECT_EQ(known_builders(), (std::vector<std::string>{"AR", "GOLCF", "RDF",
                                                        "GSDF", "RDFP", "GSDFP"}));
  EXPECT_EQ(known_improvers(),
            (std::vector<std::string>{"H1", "H2", "OP1", "OP1P", "SA", "H1H2FIX"}));
}

class PipelineRun : public testing::TestWithParam<std::string> {};

TEST_P(PipelineRun, EveryComboProducesValidSchedules) {
  Rng rng(4242);
  RandomInstanceSpec spec;
  spec.servers = 8;
  spec.objects = 20;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  const Pipeline p = make_pipeline(GetParam());
  const Schedule h = p.run(inst.model, inst.x_old, inst.x_new, rng);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  EXPECT_TRUE(v.valid) << GetParam() << ": " << v.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PipelineRun,
    testing::Values("AR", "GOLCF", "RDF", "GSDF", "RDFP", "GSDFP", "AR+H1+H2",
                    "GOLCF+H1+H2", "GOLCF+OP1", "GOLCF+H1+H2+OP1",
                    "RDF+H1+H2+OP1", "GSDF+H2+H1+OP1", "RDFP+H1+H2+OP1",
                    "GSDFP+H2+H1+OP1"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(Pipeline, ImproversComposeMonotonically) {
  Rng rng(777);
  RandomInstanceSpec spec;
  spec.servers = 10;
  spec.objects = 30;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);

  Rng r1(1);
  const Schedule base =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, r1);
  Rng r2(1);
  const Schedule cleaned =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, r2);
  Rng r3(1);
  const Schedule full =
      make_pipeline("GOLCF+H1+H2+OP1").run(inst.model, inst.x_old, inst.x_new, r3);

  // Same builder stream: H1+H2 only remove dummies; OP1 only cuts cost.
  EXPECT_LE(cleaned.dummy_transfer_count(), base.dummy_transfer_count());
  EXPECT_LE(schedule_cost(inst.model, full), schedule_cost(inst.model, cleaned));
}

}  // namespace
}  // namespace rtsp
