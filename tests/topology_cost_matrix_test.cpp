#include "topology/cost_matrix.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace rtsp {
namespace {

TEST(CostMatrix, UniformFillAndZeroDiagonal) {
  const CostMatrix m(4, 7);
  EXPECT_EQ(m.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.at(i, i), 0);
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_EQ(m.at(i, j), 7);
      }
    }
  }
}

TEST(CostMatrix, FromGraphShortestPaths) {
  const Graph g = line_graph(3, 2);
  const CostMatrix m = CostMatrix::from_graph_shortest_paths(g);
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.at(0, 2), 4);
  EXPECT_EQ(m.at(2, 0), 4);
  EXPECT_EQ(m.max_cost(), 4);
}

TEST(CostMatrix, FromGraphRequiresConnectivity) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_THROW(CostMatrix::from_graph_shortest_paths(g), PreconditionError);
}

TEST(CostMatrix, FromRowsValidation) {
  EXPECT_NO_THROW(CostMatrix::from_rows({{0, 2}, {2, 0}}));
  EXPECT_THROW(CostMatrix::from_rows({{0, 2}, {3, 0}}), PreconditionError);  // asym
  EXPECT_THROW(CostMatrix::from_rows({{1, 2}, {2, 0}}), PreconditionError);  // diag
  EXPECT_THROW(CostMatrix::from_rows({{0, 2, 3}, {2, 0, 1}}), PreconditionError);
}

TEST(CostMatrix, SetKeepsSymmetry) {
  CostMatrix m(3, 1);
  m.set(0, 2, 9);
  EXPECT_EQ(m.at(0, 2), 9);
  EXPECT_EQ(m.at(2, 0), 9);
  EXPECT_THROW(m.set(1, 1, 4), PreconditionError);
}

TEST(CostMatrix, DummyCostIsScaledMaxPlusOne) {
  CostMatrix m(3, 1);
  m.set(0, 2, 9);
  EXPECT_EQ(m.dummy_cost(), 10);        // a = 1
  EXPECT_EQ(m.dummy_cost(2.0), 20);     // a = 2
  EXPECT_EQ(m.dummy_cost(0.5), 5);      // a < 1 allowed by the formulation
  EXPECT_THROW(m.dummy_cost(0.0), PreconditionError);
}

TEST(CostMatrix, SortedNeighborsOrderAndTies) {
  // Costs from node 0: node1=5, node2=2, node3=5 -> order {2, 1, 3}.
  CostMatrix m(4, 1);
  m.set(0, 1, 5);
  m.set(0, 2, 2);
  m.set(0, 3, 5);
  const auto order = m.sorted_neighbors(0);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 1, 3}));
}

TEST(CostMatrix, SingleNode) {
  const CostMatrix m(1, 0);
  EXPECT_TRUE(m.sorted_neighbors(0).empty());
  EXPECT_EQ(m.max_cost(), 0);
  EXPECT_EQ(m.dummy_cost(), 1);
}

}  // namespace
}  // namespace rtsp
