// Tests for the extension improvers: FixpointImprover and the simulated
// annealing baseline.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/annealing.hpp"
#include "heuristics/fixpoint.hpp"
#include "heuristics/h1.hpp"
#include "heuristics/h2.hpp"
#include "heuristics/registry.hpp"
#include "test_helpers.hpp"

namespace rtsp {
namespace {

using testutil::matrix_model;

TEST(Fixpoint, NameReflectsChain) {
  FixpointImprover fp({std::make_shared<H1Improver>(), std::make_shared<H2Improver>()});
  EXPECT_EQ(fp.name(), "FIX(H1+H2)");
}

TEST(Fixpoint, RejectsEmptyChain) {
  EXPECT_THROW(FixpointImprover({}), PreconditionError);
}

TEST(Fixpoint, StopsAfterOneRoundWhenNothingChanges) {
  Rng rng(3);
  RandomInstanceSpec spec;
  const Instance inst = random_instance(spec, rng);
  const Schedule clean =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, rng);
  FixpointImprover fp({std::make_shared<H1Improver>(), std::make_shared<H2Improver>()});
  Rng unused(0);
  const Schedule result =
      fp.improve(inst.model, inst.x_old, inst.x_new, clean, unused);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, result));
  EXPECT_LE(fp.last_rounds(), 2);  // at most one changing + one confirming round
}

class FixpointSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FixpointSeeds, NeverWorseThanSinglePass) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 9;
  spec.objects = 27;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  Rng b1(1);
  const Schedule base =
      make_pipeline("RDF").run(inst.model, inst.x_old, inst.x_new, b1);
  Rng b2(1);
  const Schedule single =
      make_pipeline("RDF+H1+H2").run(inst.model, inst.x_old, inst.x_new, b2);
  Rng b3(1);
  const Schedule fixed =
      make_pipeline("RDF+H1H2FIX").run(inst.model, inst.x_old, inst.x_new, b3);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, fixed));
  EXPECT_LE(fixed.dummy_transfer_count(), single.dummy_transfer_count());
  EXPECT_LE(fixed.dummy_transfer_count(), base.dummy_transfer_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixpointSeeds, testing::Values(2, 4, 8, 16));

TEST(Annealing, ImprovesABlatantlyBadSchedule) {
  // Chain 0 -1- 1 -1- 2; serving the far server from the root wastes cost.
  SystemModel model = matrix_model({2, 2, 2}, {1},
                                   {{0, 1, 2}, {1, 0, 1}, {2, 1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(3, 1, {{0, 0}});
  const auto x_new =
      ReplicationMatrix::from_pairs(3, 1, {{0, 0}, {1, 0}, {2, 0}});
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule bad({Action::transfer(2, 0, 0), Action::transfer(1, 0, 0)});
  AnnealingOptions opts;
  opts.iterations = 2000;
  Rng rng(5);
  const Schedule improved = AnnealingImprover(opts).improve(
      inst.model, inst.x_old, inst.x_new, bad, rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_EQ(schedule_cost(inst.model, improved), 2);  // the optimum
}

TEST(Annealing, RequiresValidInput) {
  SystemModel model = matrix_model({1, 1}, {1}, {{0, 1}, {1, 0}});
  const auto x_old = ReplicationMatrix::from_pairs(2, 1, {{0, 0}});
  auto x_new = x_old;
  x_new.set(1, 0);
  const Instance inst{std::move(model), x_old, x_new};
  const Schedule nonsense({Action::remove(1, 0)});
  AnnealingImprover sa;
  Rng rng(1);
  EXPECT_THROW(
      sa.improve(inst.model, inst.x_old, inst.x_new, nonsense, rng),
      PreconditionError);
}

class AnnealingSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnealingSeeds, ValidAndNeverWorseThanInput) {
  Rng rng(GetParam());
  RandomInstanceSpec spec;
  spec.servers = 7;
  spec.objects = 15;
  spec.max_replicas = 2;
  const Instance inst = random_instance(spec, rng);
  const Schedule base =
      make_pipeline("AR").run(inst.model, inst.x_old, inst.x_new, rng);
  AnnealingOptions opts;
  opts.iterations = 800;
  const AnnealingImprover sa(opts);
  Rng sa_rng(GetParam() * 3 + 1);
  const Schedule improved =
      sa.improve(inst.model, inst.x_old, inst.x_new, base, sa_rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_LE(schedule_cost(inst.model, improved), schedule_cost(inst.model, base));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealingSeeds, testing::Values(3, 6, 9, 12));

TEST(Annealing, ZeroTemperatureIsHillClimbing) {
  Rng rng(44);
  RandomInstanceSpec spec;
  spec.servers = 6;
  spec.objects = 12;
  const Instance inst = random_instance(spec, rng);
  const Schedule base =
      make_pipeline("AR").run(inst.model, inst.x_old, inst.x_new, rng);
  AnnealingOptions opts;
  opts.iterations = 500;
  opts.initial_temperature_fraction = 0.0;
  Rng sa_rng(9);
  const Schedule improved = AnnealingImprover(opts).improve(
      inst.model, inst.x_old, inst.x_new, base, sa_rng);
  EXPECT_TRUE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, improved));
  EXPECT_LE(schedule_cost(inst.model, improved), schedule_cost(inst.model, base));
}

TEST(Registry, NewImproverTokensWork) {
  EXPECT_EQ(make_pipeline("GOLCF+SA").name(), "GOLCF+SA");
  EXPECT_EQ(make_pipeline("RDF+H1H2FIX").name(), "RDF+FIX(H1+H2)");
}

}  // namespace
}  // namespace rtsp
