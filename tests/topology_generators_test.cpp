#include "topology/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rtsp {
namespace {

class TreeGeneratorSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeGeneratorSeeds, BarabasiAlbertProducesTreeWithCostsInRange) {
  Rng rng(GetParam());
  const Graph g = barabasi_albert_tree(50, {1, 10}, rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_EQ(g.num_edges(), 49u);
  EXPECT_TRUE(g.is_tree());
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.cost, 1);
    EXPECT_LE(e.cost, 10);
  }
}

TEST_P(TreeGeneratorSeeds, UniformTreeIsATree) {
  Rng rng(GetParam());
  const Graph g = uniform_random_tree(30, {2, 5}, rng);
  EXPECT_TRUE(g.is_tree());
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.cost, 2);
    EXPECT_LE(e.cost, 5);
  }
}

TEST_P(TreeGeneratorSeeds, ErdosRenyiIsAlwaysConnectedAfterRepair) {
  Rng rng(GetParam());
  for (double p : {0.0, 0.01, 0.1, 0.5}) {
    const Graph g = erdos_renyi_connected(25, p, {1, 10}, rng);
    EXPECT_EQ(g.num_nodes(), 25u);
    EXPECT_TRUE(g.is_connected()) << "p=" << p;
  }
}

TEST_P(TreeGeneratorSeeds, WaxmanIsConnectedWithCostsInRange) {
  Rng rng(GetParam());
  const Graph g = waxman_connected(40, {}, {1, 10}, rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_TRUE(g.is_connected());
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.cost, 1);
    EXPECT_LE(e.cost, 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeGeneratorSeeds,
                         testing::Values(1, 2, 3, 7, 42, 1234, 99999));

TEST(Waxman, DensityGrowsWithAlpha) {
  Rng a(5);
  Rng b(5);
  WaxmanParams sparse{0.05, 0.3};
  WaxmanParams dense{0.9, 0.9};
  std::size_t sparse_edges = 0;
  std::size_t dense_edges = 0;
  for (int rep = 0; rep < 10; ++rep) {
    sparse_edges += waxman_connected(40, sparse, {1, 10}, a).num_edges();
    dense_edges += waxman_connected(40, dense, {1, 10}, b).num_edges();
  }
  EXPECT_LT(sparse_edges, dense_edges);
}

TEST(Waxman, RejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(waxman_connected(10, {0.0, 0.3}, {1, 10}, rng), PreconditionError);
  EXPECT_THROW(waxman_connected(10, {0.4, 1.5}, {1, 10}, rng), PreconditionError);
}

TEST(BarabasiAlbert, PreferentialAttachmentSkewsDegrees) {
  // Hubs should emerge: across many trees, the max degree of a BA tree
  // should typically exceed that of a uniform attachment tree.
  Rng rng(7);
  double ba_sum = 0;
  double uni_sum = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const Graph ba = barabasi_albert_tree(200, {1, 10}, rng);
    const Graph uni = uniform_random_tree(200, {1, 10}, rng);
    std::size_t ba_max = 0;
    std::size_t uni_max = 0;
    for (std::size_t v = 0; v < 200; ++v) {
      ba_max = std::max(ba_max, ba.degree(v));
      uni_max = std::max(uni_max, uni.degree(v));
    }
    ba_sum += static_cast<double>(ba_max);
    uni_sum += static_cast<double>(uni_max);
  }
  EXPECT_GT(ba_sum, uni_sum);
}

TEST(BarabasiAlbert, TinySizes) {
  Rng rng(1);
  EXPECT_EQ(barabasi_albert_tree(1, {1, 10}, rng).num_nodes(), 1u);
  const Graph two = barabasi_albert_tree(2, {1, 10}, rng);
  EXPECT_EQ(two.num_edges(), 1u);
  EXPECT_THROW(barabasi_albert_tree(0, {1, 10}, rng), PreconditionError);
}

TEST(Generators, InvalidCostRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(barabasi_albert_tree(5, {0, 10}, rng), PreconditionError);
  EXPECT_THROW(barabasi_albert_tree(5, {5, 2}, rng), PreconditionError);
}

TEST(DeterministicShapes, RingStarLineGridComplete) {
  const Graph ring = ring_graph(5, 2);
  EXPECT_EQ(ring.num_edges(), 5u);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(ring.degree(v), 2u);

  const Graph star = star_graph(6, 3);
  EXPECT_EQ(star.num_edges(), 5u);
  EXPECT_EQ(star.degree(0), 5u);
  EXPECT_EQ(star.degree(1), 1u);

  const Graph line = line_graph(4, 1);
  EXPECT_TRUE(line.is_tree());
  EXPECT_EQ(line.degree(0), 1u);
  EXPECT_EQ(line.degree(1), 2u);

  const Graph grid = grid_graph(3, 4, 1);
  EXPECT_EQ(grid.num_nodes(), 12u);
  EXPECT_EQ(grid.num_edges(), 3u * 3 + 2u * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(grid.is_connected());

  const Graph complete = complete_graph(5, 1);
  EXPECT_EQ(complete.num_edges(), 10u);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(complete.degree(v), 4u);
}

TEST(DeterministicShapes, GeneratorDeterminismPerSeed) {
  Rng a(123);
  Rng b(123);
  const Graph g1 = barabasi_albert_tree(40, {1, 10}, a);
  const Graph g2 = barabasi_albert_tree(40, {1, 10}, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (std::size_t e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edges()[e].u, g2.edges()[e].u);
    EXPECT_EQ(g1.edges()[e].v, g2.edges()[e].v);
    EXPECT_EQ(g1.edges()[e].cost, g2.edges()[e].cost);
  }
}

}  // namespace
}  // namespace rtsp
