// scale_smoke: end-to-end guard for the scale tier, run by scripts/check.sh.
//
// Generates an M=500, N=100,000 instance, round-trips it through the binary
// codec (exercising the mmap reader), solves it with the serial and sharded
// parallel builders, checks the two schedules are bit-identical, validates
// the result, and fails if the whole cycle blows a wall-clock budget. Keeps
// the scale path from silently rotting: any dense-matrix materialisation or
// accidental O(M*N) pass shows up as a timeout here long before it ships.
//
// Usage: scale_smoke [BUDGET_SECONDS]   (default 600 — roomy enough for the
// sanitizer build; check.sh passes a tighter budget for the regular build.)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "io/instance_binary_io.hpp"
#include "obs/session.hpp"
#include "workload/scale_instance.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtsp;
  double budget_s = 600.0;
  if (argc > 1) budget_s = std::atof(argv[1]);
  if (budget_s <= 0) {
    std::cerr << "scale_smoke: bad budget '" << argv[1] << "'\n";
    return 1;
  }

  const auto t0 = Clock::now();
  ScaleInstanceSpec spec;
  spec.servers = 500;
  spec.objects = 100'000;
  spec.replicas_per_object = 2;
  Rng gen_rng(7);
  const Instance generated = make_scale_instance(spec, gen_rng);
  std::cout << "generate: " << seconds_since(t0) << " s (M=" << spec.servers
            << ", N=" << spec.objects << ")\n";

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir ? tmpdir : "/tmp") +
                           "/rtsp_scale_smoke_" + std::to_string(::getpid()) +
                           ".bin";
  const auto t_io = Clock::now();
  write_instance_binary_file(path, generated);
  const Instance inst = read_instance_binary_file(path);
  std::remove(path.c_str());
  std::cout << "binary round-trip: " << seconds_since(t_io) << " s\n";
  if (inst.x_old != generated.x_old || inst.x_new != generated.x_new) {
    std::cerr << "scale_smoke: binary round-trip changed the placements\n";
    return 1;
  }

  const auto t_serial = Clock::now();
  Rng r1(42);
  const Schedule serial =
      make_pipeline("RDF").run(inst.model, inst.x_old, inst.x_new, r1);
  std::cout << "solve RDF:  " << seconds_since(t_serial) << " s ("
            << serial.size() << " actions)\n";

  const auto t_parallel = Clock::now();
  Rng r2(42);
  const Schedule parallel =
      make_pipeline("RDFP").run(inst.model, inst.x_old, inst.x_new, r2);
  std::cout << "solve RDFP: " << seconds_since(t_parallel) << " s\n";
  if (!(serial == parallel)) {
    std::cerr << "scale_smoke: RDFP diverged from RDF (not bit-identical)\n";
    return 1;
  }

  const auto t_validate = Clock::now();
  const auto verdict = Validator::validate(inst.model, inst.x_old, inst.x_new, parallel);
  std::cout << "validate: " << seconds_since(t_validate) << " s\n";
  if (!verdict.valid) {
    std::cerr << "scale_smoke: schedule invalid: " << verdict.to_string() << "\n";
    return 1;
  }

  const double elapsed = seconds_since(t0);
  const std::int64_t rss_kb = obs::record_peak_rss();
  std::cout << "total: " << elapsed << " s, peak rss " << rss_kb << " KiB\n";
  if (elapsed > budget_s) {
    std::cerr << "scale_smoke: blew the " << budget_s << " s budget\n";
    return 1;
  }
  std::cout << "scale_smoke: ok\n";
  return 0;
}
