// Determinism / regression harness for the improver chain: runs a pipeline
// on the paper's Fig-5 workload (equal sizes, N objects, M servers, r
// replicas) over a set of trial seeds and prints, per seed, the schedule
// cost, dummy-transfer count, length, an FNV-1a hash of the full action
// sequence, and the builder/improver wall-clock split.
//
// The hash makes "bitwise-identical schedules" checkable across revisions:
// run before and after an improver change and diff the output.
//
// Each row also reports the incremental-evaluation engine's obs counters for
// that trial (candidates screened, adoptions, convergence early-exits, full
// replays), so an engine regression shows up as a counter shift even when
// the schedules stay bit-identical.
//
// Flags: --pipeline SPEC (default GOLCF+H1+H2+OP1), --objects N, --servers M,
//        --replicas R, --trials T, --seed BASE, plus the shared obs flags
//        (--trace-out / --metrics-out / --obs).
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/cost_model.hpp"
#include "core/incremental.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "obs/obs.hpp"
#include "obs/session.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"
#include "workload/paper_setup.hpp"

namespace {

using namespace rtsp;

std::uint64_t schedule_hash(const Schedule& h) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (const Action& a : h) {
    mix(static_cast<std::uint64_t>(a.kind));
    mix(a.server);
    mix(a.object);
    mix(a.is_transfer() ? a.source : 0);
  }
  return hash;
}

/// Snapshot of the incremental-engine counters this tool reports per trial.
struct IncrCounters {
  std::uint64_t candidates = 0;
  std::uint64_t adopts = 0;
  std::uint64_t early_exits = 0;
  std::uint64_t full_replays = 0;

  static IncrCounters read() {
    const auto& reg = obs::MetricsRegistry::instance();
    return {reg.counter_value(kObsIncrCandidates),
            reg.counter_value(kObsIncrAdopts),
            reg.counter_value(kObsIncrConvergedEarly),
            reg.counter_value(kObsIncrFullReplays)};
  }

  IncrCounters delta_from(const IncrCounters& before) const {
    return {candidates - before.candidates, adopts - before.adopts,
            early_exits - before.early_exits,
            full_replays - before.full_replays};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  const obs::Session obs_session(cli);
  // The counter columns are part of this tool's regression output, so
  // recording is on regardless of the obs flags.
  obs::set_enabled(true);
  PaperSetup setup;
  setup.servers = static_cast<std::size_t>(cli.get_int("servers", "RTSP_SERVERS", 50));
  setup.objects =
      static_cast<std::size_t>(cli.get_int("objects", "RTSP_OBJECTS", 1000));
  const auto replicas =
      static_cast<std::size_t>(cli.get_int("replicas", "RTSP_REPLICAS", 3));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", "RTSP_TRIALS", 5));
  const auto base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 20070326));
  const std::string spec =
      cli.get_string("pipeline", "RTSP_PIPELINE", "GOLCF+H1+H2+OP1");

  const Pipeline pipeline = make_pipeline(spec);
  std::printf("pipeline %s on %zu servers, %zu objects, r=%zu (base seed %" PRIu64
              ")\n",
              spec.c_str(), setup.servers, setup.objects, replicas, base_seed);
  std::printf("%-6s %14s %8s %8s %18s %10s %10s %10s %8s %8s %8s\n", "trial",
              "cost", "dummies", "length", "hash", "build_ms", "improve_ms",
              "cands", "adopts", "early", "fullrpl");
  double improve_total = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng = Rng::for_trial(base_seed, trial);
    const Instance inst = make_equal_size_instance(setup, replicas, rng);
    const IncrCounters before = IncrCounters::read();
    Timer timer;
    Schedule h = pipeline.builder().build(inst.model, inst.x_old, inst.x_new, rng);
    const double build_ms = timer.millis();
    timer.reset();
    for (const auto& improver : pipeline.improvers()) {
      h = improver->improve(inst.model, inst.x_old, inst.x_new, std::move(h), rng);
    }
    const double improve_ms = timer.millis();
    improve_total += improve_ms;
    const IncrCounters d = IncrCounters::read().delta_from(before);
    if (!Validator::is_valid(inst.model, inst.x_old, inst.x_new, h)) {
      std::printf("trial %zu: INVALID SCHEDULE\n", trial);
      return 1;
    }
    std::printf("%-6zu %14lld %8zu %8zu 0x%016" PRIx64
                " %10.1f %10.1f %10" PRIu64 " %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 "\n",
                trial, static_cast<long long>(schedule_cost(inst.model, h)),
                h.dummy_transfer_count(), h.size(), schedule_hash(h), build_ms,
                improve_ms, d.candidates, d.adopts, d.early_exits,
                d.full_replays);
  }
  std::printf("total improver time: %.1f ms over %zu trials\n", improve_total, trials);
  obs_session.finish(std::cout);
  return 0;
}
