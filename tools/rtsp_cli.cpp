// The `rtsp` command-line tool; all logic lives in src/cli/commands.cpp.
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return rtsp::cli::run_cli(argc, argv, std::cout, std::cerr);
}
