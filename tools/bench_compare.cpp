// Compares two google-benchmark JSON reports (e.g. BENCH_perf_heuristics.json
// against a fresh run) and prints the per-benchmark time delta.
//
// Usage:
//   bench_compare BASELINE.json CANDIDATE.json [--metric cpu_time|real_time]
//                 [--threshold PCT] [--fail]
//
// Benchmarks are matched by name; aggregate rows (mean/median/stddev repeats)
// are skipped so a repeated run compares raw iterations only. A delta above
// +PCT is flagged as a regression; with --fail the exit code is 2 when any
// regression is found (default: report only, benches are noisy in CI).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

struct BenchRow {
  std::string name;
  double time = 0.0;
  std::string unit;
};

std::vector<BenchRow> load_report(const std::string& path,
                                  const std::string& metric) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const rtsp::JsonValue doc = rtsp::parse_json(buf.str());
  std::vector<BenchRow> rows;
  for (const rtsp::JsonValue& b : doc.at("benchmarks").items()) {
    if (const rtsp::JsonValue* rt = b.find("run_type")) {
      if (rt->as_string() == "aggregate") continue;
    }
    BenchRow row;
    row.name = b.at("name").as_string();
    row.time = b.at(metric).as_double();
    if (const rtsp::JsonValue* u = b.find("time_unit")) row.unit = u->as_string();
    rows.push_back(std::move(row));
  }
  return rows;
}

const BenchRow* find_row(const std::vector<BenchRow>& rows,
                         const std::string& name) {
  for (const BenchRow& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string format_time(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string format_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const rtsp::CliOptions opt(argc, argv);
  if (opt.positional().size() != 2) {
    std::cerr << "usage: bench_compare BASELINE.json CANDIDATE.json\n"
                 "       [--metric cpu_time|real_time] [--threshold PCT] "
                 "[--fail]\n";
    return 1;
  }
  const std::string metric = opt.get_string("metric", "", "cpu_time");
  if (metric != "cpu_time" && metric != "real_time") {
    std::cerr << "error: --metric must be cpu_time or real_time\n";
    return 1;
  }
  const double threshold = opt.get_double("threshold", "", 5.0);

  std::vector<BenchRow> base, cand;
  try {
    base = load_report(opt.positional()[0], metric);
    cand = load_report(opt.positional()[1], metric);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  rtsp::TextTable t;
  t.header({"benchmark", "base", "cand", "delta", ""});
  std::size_t regressions = 0;
  std::size_t matched = 0;
  for (const BenchRow& b : base) {
    const BenchRow* c = find_row(cand, b.name);
    if (!c) {
      t.add_row({b.name, format_time(b.time), "-", "-", "removed"});
      continue;
    }
    ++matched;
    const double delta =
        b.time > 0.0 ? (c->time - b.time) / b.time * 100.0 : 0.0;
    const bool regressed = delta > threshold;
    if (regressed) ++regressions;
    t.add_row({b.name + (b.unit.empty() ? "" : " (" + b.unit + ")"),
               format_time(b.time), format_time(c->time), format_pct(delta),
               regressed ? "REGRESSION" : (delta < -threshold ? "improved" : "")});
  }
  for (const BenchRow& c : cand) {
    if (!find_row(base, c.name)) {
      t.add_row({c.name, "-", format_time(c.time), "-", "new"});
    }
  }
  t.print(std::cout);
  std::cout << matched << " benchmark(s) compared, " << regressions
            << " regression(s) beyond +" << threshold << "% (" << metric
            << ")\n";
  if (regressions > 0 && opt.get_bool("fail", "", false)) return 2;
  return 0;
}
