// Validates the flight-recorder artifacts of an `rtsp execute` run against
// their versioned schemas:
//
//   obs_lint --journal FILE     execution journal JSONL (io/journal_io)
//   obs_lint --series FILE      metrics time-series (.csv or JSONL)
//   obs_lint --log FILE         structured log JSONL (`rtsp-log` v1)
//   obs_lint --prom FILE        Prometheus text exposition (obs/export)
//   obs_lint --scrape-smoke     start an in-process introspect server,
//                               scrape /metrics /healthz /progress /logz
//                               over real HTTP and lint the payloads
//                               (curl-free; used by scripts/check.sh)
//   obs_lint --checkpoint FILE  daemon checkpoint (`RTSPCKP1`)
//   obs_lint --wal FILE         daemon write-ahead log (`RTSPWAL1`)
//
// Any combination may be given. Checks beyond "it parses":
//   journal: known event types; non-negative costs/ids in bounds; ticks
//            non-decreasing in emission order (the executor journals in
//            program order, and drop-newest overflow keeps the retained
//            prefix well-formed); offline_open/offline_close strictly
//            matched per server with equal stall values; event count
//            matches the header.
//   series:  wall_ns non-decreasing; tick >= -1 (-1 = wall sample);
//            non-empty labels; counter deltas present only with non-zero
//            values.
//   log:     versioned header; seq strictly increasing; known levels;
//            non-empty messages; fields (when present) an object of
//            scalars.
//   prom:    every line a header or sample; TYPE before samples; histogram
//            buckets cumulative with le="+Inf" last and equal to _count.
//   checkpoint: CRC-verified parse; canonical (server-major ascending,
//            duplicate-free, in-bounds) placement and queue targets;
//            queue seqs unique/ascending and <= last_seq; counters
//            internally consistent.
//   wal:     CRC-framed parse; a torn tail is a violation (a daemon at
//            rest must have rolled it back); ADMIT seqs ascending; at
//            most one BEGIN open at a time and every COMMIT matches the
//            open BEGIN. With --checkpoint given too, the generations
//            must agree.
//
// Exit code 0 when everything passes, 2 on any violation (messages on
// stderr), 1 on usage/IO errors. Wired into scripts/check.sh after a small
// execute + report smoke run.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/checkpoint_io.hpp"
#include "io/journal_io.hpp"
#include "obs/export.hpp"
#include "obs/introspect.hpp"
#include "obs/journal.hpp"
#include "obs/logging.hpp"
#include "obs/series_io.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/net.hpp"

namespace {

int g_violations = 0;

void fail(const std::string& what) {
  std::cerr << "obs_lint: " << what << '\n';
  ++g_violations;
}

void lint_journal(const std::string& path) {
  const rtsp::JournalDoc doc = rtsp::read_journal_file(path);
  // read_journal_file already enforced the format name, version and known
  // event types; re-check the structural invariants the executor promises.
  std::int64_t last_tick = 0;
  // server -> open stall value; offline windows never nest per server.
  std::map<std::int64_t, std::int64_t> open_offline;
  std::size_t line = 0;
  for (const rtsp::obs::JournalEvent& e : doc.events) {
    ++line;
    const std::string where =
        path + ": event " + std::to_string(line) + " (" +
        rtsp::obs::to_string(e.type) + ")";
    if (e.tick < 0) fail(where + ": negative tick " + std::to_string(e.tick));
    if (e.tick < last_tick) {
      fail(where + ": tick " + std::to_string(e.tick) +
           " decreases below " + std::to_string(last_tick));
    }
    last_tick = e.tick;
    if (e.value < 0) fail(where + ": negative value " + std::to_string(e.value));
    if (e.server < -1) fail(where + ": server id " + std::to_string(e.server));
    if (e.object < -1) fail(where + ": object id " + std::to_string(e.object));
    if (e.source < -2) fail(where + ": source id " + std::to_string(e.source));
    switch (e.type) {
      case rtsp::obs::JournalEventType::OfflineOpen:
        if (open_offline.count(e.server) != 0) {
          fail(where + ": offline_open while server " +
               std::to_string(e.server) + " already open");
        }
        open_offline[e.server] = e.value;
        break;
      case rtsp::obs::JournalEventType::OfflineClose: {
        auto it = open_offline.find(e.server);
        if (it == open_offline.end()) {
          fail(where + ": offline_close without matching open on server " +
               std::to_string(e.server));
        } else {
          if (it->second != e.value) {
            fail(where + ": offline_close stall " + std::to_string(e.value) +
                 " != open stall " + std::to_string(it->second));
          }
          open_offline.erase(it);
        }
        break;
      }
      case rtsp::obs::JournalEventType::AttemptStart:
      case rtsp::obs::JournalEventType::AttemptSuccess:
      case rtsp::obs::JournalEventType::TransientFault:
        if (e.server < 0 || e.object < 0) {
          fail(where + ": attempt without server/object ids");
        }
        if (e.extra < 1) {
          fail(where + ": attempt number " + std::to_string(e.extra) + " < 1");
        }
        break;
      default:
        break;
    }
  }
  if (!open_offline.empty()) {
    fail(path + ": " + std::to_string(open_offline.size()) +
         " offline_open without close at end of journal");
  }
  std::cout << "obs_lint: " << path << ": " << doc.events.size()
            << " events, " << doc.dropped << " dropped: "
            << (g_violations == 0 ? "OK" : "VIOLATIONS") << '\n';
}

void lint_series(const std::string& path) {
  const rtsp::obs::SeriesDoc doc = rtsp::obs::read_series_file(path);
  std::uint64_t last_wall = 0;
  std::size_t line = 0;
  const int before = g_violations;
  for (const rtsp::obs::SeriesSample& s : doc.samples) {
    ++line;
    const std::string where = path + ": sample " + std::to_string(line);
    if (s.wall_ns < last_wall) {
      fail(where + ": wall_ns decreases");
    }
    last_wall = s.wall_ns;
    if (s.tick < -1) fail(where + ": tick " + std::to_string(s.tick) + " < -1");
    if (s.label.empty()) fail(where + ": empty label");
    for (const auto& [name, delta] : s.counter_deltas) {
      if (name.empty()) fail(where + ": unnamed counter delta");
      if (delta == 0) fail(where + ": zero delta for counter '" + name + "'");
    }
  }
  std::cout << "obs_lint: " << path << ": " << doc.samples.size()
            << " samples, " << doc.dropped << " dropped: "
            << (g_violations == before ? "OK" : "VIOLATIONS") << '\n';
}

/// Shared `rtsp-log` v1 line validator: used for --log files and for the
/// /logz payload scraped in --scrape-smoke (identical bytes by design).
void lint_log_lines(std::istream& in, const std::string& where) {
  std::string line;
  if (!std::getline(in, line)) {
    fail(where + ": empty (missing header line)");
    return;
  }
  std::size_t records = 0;
  try {
    const rtsp::JsonValue header = rtsp::parse_json(line);
    if (header.at("format").as_string() != rtsp::obs::kLogFormatName) {
      fail(where + ": header format '" + header.at("format").as_string() +
           "' != rtsp-log");
    }
    if (header.at("version").as_int() != rtsp::obs::kLogFormatVersion) {
      fail(where + ": unsupported version " +
           std::to_string(header.at("version").as_int()));
    }
  } catch (const std::exception& e) {
    fail(where + ": header: " + e.what());
  }
  std::int64_t last_seq = -1;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string at = where + ": line " + std::to_string(line_no);
    try {
      const rtsp::JsonValue rec = rtsp::parse_json(line);
      const std::int64_t seq = rec.at("seq").as_int();
      if (seq <= last_seq) {
        fail(at + ": seq " + std::to_string(seq) + " not increasing");
      }
      last_seq = seq;
      if (rec.at("ts_ns").as_int() < 0) fail(at + ": negative ts_ns");
      if (rec.at("thread").as_int() < 0) fail(at + ": negative thread id");
      rtsp::obs::LogLevel level;
      if (!rtsp::obs::log_level_from_string(rec.at("level").as_string(),
                                            level)) {
        fail(at + ": unknown level '" + rec.at("level").as_string() + "'");
      }
      if (rec.at("msg").as_string().empty()) fail(at + ": empty msg");
      if (const rtsp::JsonValue* fields = rec.find("fields")) {
        for (const auto& [key, value] : fields->members()) {
          if (key.empty()) fail(at + ": unnamed field");
          if (value.is_object() || value.is_array()) {
            fail(at + ": field '" + key + "' is not a scalar");
          }
        }
      }
      ++records;
    } catch (const std::exception& e) {
      fail(at + ": " + e.what());
    }
  }
  std::cout << "obs_lint: " << where << ": " << records << " log records: "
            << (g_violations == 0 ? "OK" : "VIOLATIONS") << '\n';
}

void lint_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  lint_log_lines(in, path);
}

void lint_prom_text(const std::string& text, const std::string& where) {
  std::vector<std::string> violations;
  rtsp::obs::lint_prometheus_text(text, violations);
  for (const std::string& v : violations) fail(where + ": " + v);
  std::cout << "obs_lint: " << where << ": "
            << (violations.empty() ? "OK" : "VIOLATIONS") << '\n';
}

void lint_prom(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open exposition file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  lint_prom_text(buffer.str(), path);
}

/// In-process scrape smoke: arm obs, populate one metric of each kind plus
/// a couple of log records and progress slots, start the introspect server
/// on an ephemeral loopback port, fetch every endpoint over real HTTP and
/// lint the payloads. Exercises the exact path `rtsp solve
/// --introspect-port` serves, without needing a long-running solve or curl.
void scrape_smoke() {
  using namespace rtsp;
  obs::set_enabled(true);
  obs::MetricsRegistry::instance().counter("lint.smoke_events").add(3);
  obs::MetricsRegistry::instance().gauge("lint.smoke_depth").set(7);
  obs::LatencyHistogram hist =
      obs::MetricsRegistry::instance().histogram("lint.smoke_latency");
  hist.record_ns(900);
  hist.record_ns(123456);
  obs::Logger::instance().configure(obs::LogLevel::Debug, "");
  obs::Logger::instance().log(obs::LogLevel::Info, "scrape smoke",
                              {obs::log_field("answer", 42)});
  obs::Progress::instance().set_stage("scrape-smoke");
  obs::Progress::instance().set_incumbent(42, 1);
  obs::Progress::instance().set_ticks(10, 100);

  obs::IntrospectOptions options;
  obs::IntrospectServer server(options);
  const std::uint16_t port = server.port();

  const net::HttpResponse metrics = net::http_get("127.0.0.1", port, "/metrics");
  if (metrics.status != 200) {
    fail("scrape /metrics: status " + std::to_string(metrics.status));
  }
  lint_prom_text(metrics.body, "scrape /metrics");

  const net::HttpResponse healthz = net::http_get("127.0.0.1", port, "/healthz");
  if (healthz.status != 200) {
    fail("scrape /healthz: status " + std::to_string(healthz.status));
  }
  try {
    const JsonValue doc = parse_json(healthz.body);
    if (doc.at("status").as_string() != "ok") {
      fail("scrape /healthz: status field '" + doc.at("status").as_string() +
           "'");
    }
  } catch (const std::exception& e) {
    fail(std::string("scrape /healthz: ") + e.what());
  }

  const net::HttpResponse progress =
      net::http_get("127.0.0.1", port, "/progress");
  if (progress.status != 200) {
    fail("scrape /progress: status " + std::to_string(progress.status));
  }
  try {
    const JsonValue doc = parse_json(progress.body);
    if (doc.at("stage").as_string() != "scrape-smoke") {
      fail("scrape /progress: unexpected stage '" +
           doc.at("stage").as_string() + "'");
    }
    if (doc.at("incumbent").at("cost").as_int() != 42) {
      fail("scrape /progress: incumbent cost mismatch");
    }
  } catch (const std::exception& e) {
    fail(std::string("scrape /progress: ") + e.what());
  }

  const net::HttpResponse logz =
      net::http_get("127.0.0.1", port, "/logz?n=10");
  if (logz.status != 200) {
    fail("scrape /logz: status " + std::to_string(logz.status));
  }
  std::istringstream logz_in(logz.body);
  lint_log_lines(logz_in, "scrape /logz");

  const net::HttpResponse missing = net::http_get("127.0.0.1", port, "/nope");
  if (missing.status != 404) {
    fail("scrape /nope: expected 404, got " + std::to_string(missing.status));
  }
  server.stop();
  obs::Logger::instance().shutdown();
}

void lint_pairs(const std::vector<std::pair<rtsp::ServerId, rtsp::ObjectId>>& pairs,
                std::uint64_t servers, std::uint64_t objects,
                const std::string& what) {
  bool first = true;
  std::uint64_t prev = 0;
  for (const auto& [s, k] : pairs) {
    if (s >= servers || k >= objects) {
      fail(what + ": pair (" + std::to_string(s) + "," + std::to_string(k) +
           ") out of " + std::to_string(servers) + "x" + std::to_string(objects));
      return;
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | k;
    if (!first && key <= prev) {
      fail(what + ": pairs not in canonical server-major ascending order");
      return;
    }
    prev = key;
    first = false;
  }
}

rtsp::CheckpointDoc* g_checkpoint = nullptr;
rtsp::CheckpointDoc g_checkpoint_doc;

void lint_checkpoint(const std::string& path) {
  rtsp::CheckpointDoc doc;
  try {
    doc = rtsp::read_checkpoint_file(path);
  } catch (const std::exception& e) {
    fail(std::string("checkpoint: ") + e.what());
    return;
  }
  if (doc.servers == 0 || doc.objects == 0) {
    fail("checkpoint: zero-sized model");
  }
  if (doc.clock < 0) fail("checkpoint: negative clock");
  lint_pairs(doc.placement, doc.servers, doc.objects, "checkpoint placement");
  std::uint64_t prev_seq = 0;
  for (const rtsp::CheckpointQueueEntry& q : doc.queue) {
    if (q.seq <= prev_seq) {
      fail("checkpoint queue: seqs not strictly ascending");
      break;
    }
    prev_seq = q.seq;
    if (q.seq > doc.last_seq) {
      fail("checkpoint queue: seq " + std::to_string(q.seq) +
           " above last_seq " + std::to_string(doc.last_seq));
    }
    if (q.attempt == 0) fail("checkpoint queue: zero attempt");
    lint_pairs(q.target, doc.servers, doc.objects,
               "checkpoint queue seq " + std::to_string(q.seq));
  }
  const rtsp::DaemonCounters& c = doc.counters;
  if (c.converged > c.admitted) {
    fail("checkpoint counters: converged above admitted");
  }
  if (c.readmissions > c.partial_rounds) {
    fail("checkpoint counters: readmissions above partial_rounds");
  }
  if (c.coalesced > c.admitted) {
    fail("checkpoint counters: coalesced above admitted");
  }
  if (c.cost_paid < 0) fail("checkpoint counters: negative cost_paid");
  g_checkpoint_doc = doc;
  g_checkpoint = &g_checkpoint_doc;
}

void lint_wal(const std::string& path) {
  rtsp::WalReadResult wal;
  try {
    wal = rtsp::read_wal_file(path);
  } catch (const std::exception& e) {
    fail(std::string("wal: ") + e.what());
    return;
  }
  if (wal.torn()) {
    fail("wal: torn tail (" + std::to_string(wal.rolled_back_bytes) +
         " bytes past the valid prefix) — a daemon at rest must roll it back");
  }
  if (g_checkpoint != nullptr && wal.generation != g_checkpoint->generation) {
    fail("wal generation " + std::to_string(wal.generation) +
         " does not match checkpoint generation " +
         std::to_string(g_checkpoint->generation));
  }
  std::uint64_t prev_admit = 0;
  bool open_begin = false;
  std::uint64_t begin_seq = 0;
  std::uint32_t begin_attempt = 0;
  for (std::size_t i = 0; i < wal.records.size(); ++i) {
    const rtsp::WalRecord& r = wal.records[i];
    const std::string at = "wal record " + std::to_string(i);
    if (r.attempt == 0) fail(at + ": zero attempt");
    switch (r.type) {
      case rtsp::WalRecordType::kAdmit:
        if (r.seq <= prev_admit) fail(at + ": admit seqs not ascending");
        prev_admit = r.seq;
        if (r.target.empty()) fail(at + ": admit without a target");
        break;
      case rtsp::WalRecordType::kBegin:
        if (open_begin) fail(at + ": BEGIN while another epoch is open");
        open_begin = true;
        begin_seq = r.seq;
        begin_attempt = r.attempt;
        break;
      case rtsp::WalRecordType::kCommit:
        if (!open_begin || r.seq != begin_seq || r.attempt != begin_attempt) {
          fail(at + ": COMMIT without matching BEGIN");
        }
        open_begin = false;
        if (r.converged && r.readmit) {
          fail(at + ": converged commit must not readmit");
        }
        if (r.cost < 0) fail(at + ": negative cost");
        break;
      default:
        fail(at + ": unknown record type");
    }
  }
  if (open_begin) {
    fail("wal: trailing BEGIN without COMMIT (recovery should have completed it)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const rtsp::CliOptions opt(argc, argv);
  const std::string journal = opt.get_string("journal", "", "");
  const std::string series = opt.get_string("series", "", "");
  const std::string log = opt.get_string("log", "", "");
  const std::string prom = opt.get_string("prom", "", "");
  const bool smoke = opt.get_bool("scrape-smoke", "", false);
  const std::string checkpoint = opt.get_string("checkpoint", "", "");
  const std::string wal = opt.get_string("wal", "", "");
  if (journal.empty() && series.empty() && log.empty() && prom.empty() &&
      checkpoint.empty() && wal.empty() && !smoke) {
    std::cerr << "usage: obs_lint [--journal FILE] [--series FILE] "
                 "[--log FILE] [--prom FILE] [--checkpoint FILE] "
                 "[--wal FILE] [--scrape-smoke]\n";
    return 1;
  }
  try {
    if (!journal.empty()) lint_journal(journal);
    if (!series.empty()) lint_series(series);
    if (!log.empty()) lint_log(log);
    if (!prom.empty()) lint_prom(prom);
    if (!checkpoint.empty()) lint_checkpoint(checkpoint);
    if (!wal.empty()) lint_wal(wal);
    if (smoke) scrape_smoke();
  } catch (const std::exception& e) {
    std::cerr << "obs_lint: " << e.what() << '\n';
    return 1;
  }
  return g_violations == 0 ? 0 : 2;
}
