// Validates the flight-recorder artifacts of an `rtsp execute` run against
// their versioned schemas:
//
//   obs_lint --journal FILE     execution journal JSONL (io/journal_io)
//   obs_lint --series FILE      metrics time-series (.csv or JSONL)
//
// Either or both may be given. Checks beyond "it parses":
//   journal: known event types; non-negative costs/ids in bounds; ticks
//            non-decreasing in emission order (the executor journals in
//            program order, and drop-newest overflow keeps the retained
//            prefix well-formed); offline_open/offline_close strictly
//            matched per server with equal stall values; event count
//            matches the header.
//   series:  wall_ns non-decreasing; tick >= -1 (-1 = wall sample);
//            non-empty labels; counter deltas present only with non-zero
//            values.
//
// Exit code 0 when everything passes, 2 on any violation (messages on
// stderr), 1 on usage/IO errors. Wired into scripts/check.sh after a small
// execute + report smoke run.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "io/journal_io.hpp"
#include "obs/journal.hpp"
#include "obs/series_io.hpp"
#include "support/cli.hpp"

namespace {

int g_violations = 0;

void fail(const std::string& what) {
  std::cerr << "obs_lint: " << what << '\n';
  ++g_violations;
}

void lint_journal(const std::string& path) {
  const rtsp::JournalDoc doc = rtsp::read_journal_file(path);
  // read_journal_file already enforced the format name, version and known
  // event types; re-check the structural invariants the executor promises.
  std::int64_t last_tick = 0;
  // server -> open stall value; offline windows never nest per server.
  std::map<std::int64_t, std::int64_t> open_offline;
  std::size_t line = 0;
  for (const rtsp::obs::JournalEvent& e : doc.events) {
    ++line;
    const std::string where =
        path + ": event " + std::to_string(line) + " (" +
        rtsp::obs::to_string(e.type) + ")";
    if (e.tick < 0) fail(where + ": negative tick " + std::to_string(e.tick));
    if (e.tick < last_tick) {
      fail(where + ": tick " + std::to_string(e.tick) +
           " decreases below " + std::to_string(last_tick));
    }
    last_tick = e.tick;
    if (e.value < 0) fail(where + ": negative value " + std::to_string(e.value));
    if (e.server < -1) fail(where + ": server id " + std::to_string(e.server));
    if (e.object < -1) fail(where + ": object id " + std::to_string(e.object));
    if (e.source < -2) fail(where + ": source id " + std::to_string(e.source));
    switch (e.type) {
      case rtsp::obs::JournalEventType::OfflineOpen:
        if (open_offline.count(e.server) != 0) {
          fail(where + ": offline_open while server " +
               std::to_string(e.server) + " already open");
        }
        open_offline[e.server] = e.value;
        break;
      case rtsp::obs::JournalEventType::OfflineClose: {
        auto it = open_offline.find(e.server);
        if (it == open_offline.end()) {
          fail(where + ": offline_close without matching open on server " +
               std::to_string(e.server));
        } else {
          if (it->second != e.value) {
            fail(where + ": offline_close stall " + std::to_string(e.value) +
                 " != open stall " + std::to_string(it->second));
          }
          open_offline.erase(it);
        }
        break;
      }
      case rtsp::obs::JournalEventType::AttemptStart:
      case rtsp::obs::JournalEventType::AttemptSuccess:
      case rtsp::obs::JournalEventType::TransientFault:
        if (e.server < 0 || e.object < 0) {
          fail(where + ": attempt without server/object ids");
        }
        if (e.extra < 1) {
          fail(where + ": attempt number " + std::to_string(e.extra) + " < 1");
        }
        break;
      default:
        break;
    }
  }
  if (!open_offline.empty()) {
    fail(path + ": " + std::to_string(open_offline.size()) +
         " offline_open without close at end of journal");
  }
  std::cout << "obs_lint: " << path << ": " << doc.events.size()
            << " events, " << doc.dropped << " dropped: "
            << (g_violations == 0 ? "OK" : "VIOLATIONS") << '\n';
}

void lint_series(const std::string& path) {
  const rtsp::obs::SeriesDoc doc = rtsp::obs::read_series_file(path);
  std::uint64_t last_wall = 0;
  std::size_t line = 0;
  const int before = g_violations;
  for (const rtsp::obs::SeriesSample& s : doc.samples) {
    ++line;
    const std::string where = path + ": sample " + std::to_string(line);
    if (s.wall_ns < last_wall) {
      fail(where + ": wall_ns decreases");
    }
    last_wall = s.wall_ns;
    if (s.tick < -1) fail(where + ": tick " + std::to_string(s.tick) + " < -1");
    if (s.label.empty()) fail(where + ": empty label");
    for (const auto& [name, delta] : s.counter_deltas) {
      if (name.empty()) fail(where + ": unnamed counter delta");
      if (delta == 0) fail(where + ": zero delta for counter '" + name + "'");
    }
  }
  std::cout << "obs_lint: " << path << ": " << doc.samples.size()
            << " samples, " << doc.dropped << " dropped: "
            << (g_violations == before ? "OK" : "VIOLATIONS") << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const rtsp::CliOptions opt(argc, argv);
  const std::string journal = opt.get_string("journal", "", "");
  const std::string series = opt.get_string("series", "", "");
  if (journal.empty() && series.empty()) {
    std::cerr << "usage: obs_lint [--journal FILE] [--series FILE]\n";
    return 1;
  }
  try {
    if (!journal.empty()) lint_journal(journal);
    if (!series.empty()) lint_series(series);
  } catch (const std::exception& e) {
    std::cerr << "obs_lint: " << e.what() << '\n';
    return 1;
  }
  return g_violations == 0 ? 0 : 2;
}
