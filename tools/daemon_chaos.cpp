// Deterministic chaos harness for the `rtsp serve` daemon: proves the
// crash-recovery invariant by construction.
//
// For every (instance seed, crash seed) cell:
//   1. Run A (reference): a durable DaemonCore processes a generated epoch
//      stream to convergence, uninterrupted, recording its cumulative
//      effective schedule.
//   2. Run B (chaos): the same stream against a fresh state dir, but a
//      crash_hook armed at the WAL/checkpoint durability points
//      ("admit", "begin", "commit", "checkpoint") throws at a
//      pseudo-randomly chosen point — simulating SIGKILL at the worst
//      instants. Optionally a garbage tail is appended to the WAL (a torn
//      write caught mid-flight). The daemon is then reconstructed with the
//      recovery constructor and the workload continues — including
//      re-submitting epochs whose admission never became durable. Repeat
//      for several crashes per cell.
//   3. Assert run B's final placement is BIT-IDENTICAL to run A's, the
//      virtual clocks and cost/convergence counters agree (recoveries and
//      checkpoints excluded — crashing inside a checkpoint legitimately
//      changes how many were written), every torn tail was rolled back
//      (never silently accepted), and run A's cumulative effective
//      schedule validates end-to-end against (X_start, X_final).
//
// Everything is seeded: a failing cell reproduces with
//   daemon_chaos --seeds N --crashes K --cell I
//
// Exit 0 when every cell holds, 2 on any violation, 1 on usage errors.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/validator.hpp"
#include "daemon/daemon.hpp"
#include "io/checkpoint_io.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "workload/epoch_stream.hpp"
#include "workload/scenario.hpp"

using namespace rtsp;

namespace {

int g_failures = 0;

void fail(const std::string& what) {
  std::cerr << "daemon_chaos: FAIL: " << what << '\n';
  ++g_failures;
}

/// Thrown by the armed crash hook to simulate SIGKILL.
struct SimulatedCrash {
  std::string point;
};

struct CellResult {
  ReplicationMatrix placement;
  std::uint64_t placement_crc = 0;
  exec::Tick clock = 0;
  DaemonCounters counters;
};

daemon::DaemonOptions make_options(const std::string& state_dir,
                                   std::uint64_t seed) {
  daemon::DaemonOptions o;
  o.state_dir = state_dir;
  o.seed = seed;
  o.epoch_budget_ticks = 40;  // small: forces partial rounds + readmissions
  o.max_attempts = 3;
  o.checkpoint_every = 2;
  o.queue_depth = 4;
  o.fsync = false;  // determinism, not durability, is under test here
  return o;
}

/// Feeds `epochs` into `core` in order, processing inline under
/// backpressure — the same policy `rtsp serve` uses for file feeds.
/// `next` tracks how many epochs have been durably admitted so a crash
/// resumes the feed exactly where the WAL says it stopped.
void feed_and_drain(daemon::DaemonCore& core,
                    const std::vector<ReplicationMatrix>& epochs,
                    std::size_t& next) {
  while (next < epochs.size()) {
    const daemon::AdmitResult r = core.admit(epochs[next]);
    if (r.status == daemon::AdmitResult::Status::kRejected) {
      core.step();
      continue;
    }
    if (!r.accepted()) {
      fail("generated epoch refused: " + r.error);
      return;
    }
    ++next;
  }
  core.run_until_idle();
}

CellResult run_reference(const Instance& inst,
                         const std::vector<ReplicationMatrix>& epochs,
                         const std::string& dir, std::uint64_t seed) {
  daemon::DaemonOptions options = make_options(dir, seed);
  options.record_effective = true;
  daemon::DaemonCore core(inst.model, inst.x_old, options);
  std::size_t next = 0;
  feed_and_drain(core, epochs, next);

  // The cumulative effective schedule must replay cleanly from X_start to
  // the final placement — the validator-clean part of the invariant.
  if (!Validator::is_valid(inst.model, inst.x_old, core.placement(),
                           core.effective_log())) {
    fail("reference run: cumulative effective schedule does not validate");
  }

  CellResult r{core.placement(), core.placement_crc(), core.clock(),
               core.counters()};
  return r;
}

CellResult run_chaos(const Instance& inst,
                     const std::vector<ReplicationMatrix>& epochs,
                     const std::string& dir, std::uint64_t seed,
                     std::uint64_t crash_seed, int crashes,
                     std::uint64_t& recoveries_seen) {
  Rng chaos_rng(mix64(crash_seed, 0xc4a05ull));
  std::size_t next = 0;

  auto core = std::make_unique<daemon::DaemonCore>(inst.model, inst.x_old,
                                                   make_options(dir, seed));
  int remaining_crashes = crashes;
  while (true) {
    if (remaining_crashes > 0) {
      // Arm: crash at the k-th durability point from now, k pseudo-random.
      auto countdown = std::make_shared<std::uint64_t>(1 + chaos_rng.below(6));
      core->crash_hook = [countdown](const char* point) {
        if (--*countdown == 0) throw SimulatedCrash{point};
      };
    } else {
      core->crash_hook = nullptr;
    }
    try {
      feed_and_drain(*core, epochs, next);
      break;  // drained with no crash left to inject
    } catch (const SimulatedCrash& crash) {
      --remaining_crashes;
      // The "kernel" forgets everything in memory: abandon() drops the WAL
      // handle without the graceful-shutdown checkpoint, so the disk holds
      // exactly what was durable at the crash instant. Sometimes a torn
      // tail lands on top too (a write caught mid-flight).
      core->crash_hook = nullptr;
      core->abandon();
      core.reset();
      if (chaos_rng.below(2) == 0) {
        std::ofstream wal(dir + "/wal.log",
                          std::ios::binary | std::ios::app);
        const std::uint64_t garbage = 1 + chaos_rng.below(24);
        for (std::uint64_t i = 0; i < garbage; ++i) {
          wal.put(static_cast<char>(chaos_rng.below(256)));
        }
      }
      daemon::RecoverReport report;
      try {
        core = std::make_unique<daemon::DaemonCore>(
            inst.model, inst.x_old, make_options(dir, seed), report);
      } catch (const daemon::DaemonError& e) {
        fail(std::string("recovery after crash at '") + crash.point +
             "': " + e.what());
        return CellResult{inst.x_old, 0, 0, DaemonCounters{}};
      }
      ++recoveries_seen;
      // Epochs whose kAdmit never became durable must be re-fed: everything
      // the daemon acknowledged is reflected in last_seq after recovery.
      next = static_cast<std::size_t>(core->last_seq());
      if (next > epochs.size()) {
        fail("recovered last_seq above the number of submitted epochs");
        next = epochs.size();
      }
    }
  }
  CellResult r{core->placement(), core->placement_crc(), core->clock(),
               core->counters()};
  return r;
}

void compare(const CellResult& a, const CellResult& b, const std::string& cell) {
  if (!(a.placement == b.placement) || a.placement_crc != b.placement_crc) {
    fail(cell + ": final placement diverged (crc " +
         std::to_string(a.placement_crc) + " vs " +
         std::to_string(b.placement_crc) + ")");
  }
  if (a.clock != b.clock) {
    fail(cell + ": virtual clock diverged (" + std::to_string(a.clock) +
         " vs " + std::to_string(b.clock) + ")");
  }
  DaemonCounters ca = a.counters;
  DaemonCounters cb = b.counters;
  // Crashing inside a checkpoint legitimately changes how many were
  // written; recoveries differ by construction. Everything else must be
  // bit-identical.
  ca.checkpoints = cb.checkpoints = 0;
  ca.recoveries = cb.recoveries = 0;
  if (!(ca == cb)) {
    fail(cell + ": counters diverged (admitted " + std::to_string(ca.admitted) +
         "/" + std::to_string(cb.admitted) + ", converged " +
         std::to_string(ca.converged) + "/" + std::to_string(cb.converged) +
         ", partial " + std::to_string(ca.partial_rounds) + "/" +
         std::to_string(cb.partial_rounds) + ", readmit " +
         std::to_string(ca.readmissions) + "/" + std::to_string(cb.readmissions) +
         ", coalesced " + std::to_string(ca.coalesced) + "/" +
         std::to_string(cb.coalesced) + ", rejected " +
         std::to_string(ca.rejected) + "/" + std::to_string(cb.rejected) +
         ", actions " + std::to_string(ca.actions_applied) + "/" +
         std::to_string(cb.actions_applied) + ", cost " +
         std::to_string(ca.cost_paid) + "/" + std::to_string(cb.cost_paid) +
         ")");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt(argc, argv);
  const int seeds = static_cast<int>(opt.get_int("seeds", "", 4));
  const int crashes = static_cast<int>(opt.get_int("crashes", "", 3));
  const int only_cell = static_cast<int>(opt.get_int("cell", "", -1));
  const std::string work =
      opt.get_string("dir", "", "");
  std::filesystem::path root =
      work.empty() ? std::filesystem::temp_directory_path() / "rtsp_chaos"
                   : std::filesystem::path(work);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  std::filesystem::create_directories(root);

  std::uint64_t recoveries_total = 0;
  for (int cell = 0; cell < seeds; ++cell) {
    if (only_cell >= 0 && cell != only_cell) continue;
    const auto seed = static_cast<std::uint64_t>(1000 + cell);

    RandomInstanceSpec spec;
    spec.servers = 6;
    spec.objects = 18;
    Rng inst_rng = Rng::for_trial(seed, 0);
    const Instance inst = random_instance(spec, inst_rng);

    EpochStreamSpec stream;
    stream.count = 4;
    stream.moves = 6;
    Rng stream_rng = Rng::for_trial(seed, 1);
    const std::vector<ReplicationMatrix> epochs =
        make_epoch_stream(inst.model, inst.x_old, stream, stream_rng);

    const std::string dir_a = (root / ("cell" + std::to_string(cell) + "_a")).string();
    const std::string dir_b = (root / ("cell" + std::to_string(cell) + "_b")).string();

    const CellResult a = run_reference(inst, epochs, dir_a, seed);
    const CellResult b =
        run_chaos(inst, epochs, dir_b, seed, seed * 31 + 7, crashes,
                  recoveries_total);
    compare(a, b, "cell " + std::to_string(cell));

    // The recovered state dir must lint clean: no torn tail survives.
    const WalReadResult wal = read_wal_file(dir_b + "/wal.log");
    if (wal.torn()) {
      fail("cell " + std::to_string(cell) +
           ": torn wal tail survived recovery");
    }
  }

  std::cout << "daemon_chaos: " << seeds << " cells, " << crashes
            << " crashes each, " << recoveries_total << " recoveries, "
            << (g_failures == 0 ? "all invariants held" : "FAILURES") << '\n';
  return g_failures == 0 ? 0 : 2;
}
