// One-shot experiment driver: runs every paper figure (Sec. 5) and writes a
// markdown report plus per-figure CSV/JSON into an output directory — the
// tool that regenerates the data behind EXPERIMENTS.md.
//
//   ./tools/rtsp_experiments [--out DIR] [--trials N] [--servers M]
//                            [--objects N] [--seed S] [--threads T]
//                            [--obs] [--trace-out FILE] [--metrics-out FILE]
//                            [--series-out FILE] [--sample-ms N]
//
// The obs flags come from obs::Session (docs/observability.md);
// --series-out samples the metrics registry over the whole multi-figure
// run, which is the cheap way to see which figure burns the time.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "experiment/anytime_sweep.hpp"
#include "experiment/fault_sweep.hpp"
#include "experiment/figures.hpp"
#include "experiment/report.hpp"
#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "obs/session.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  const obs::Session obs_session(cli);
  const std::string out_dir =
      cli.get_string("out", "RTSP_OUT", "experiment_results");
  PaperSetup setup;
  setup.servers = static_cast<std::size_t>(cli.get_int("servers", "RTSP_SERVERS", 50));
  setup.objects = static_cast<std::size_t>(cli.get_int("objects", "RTSP_OBJECTS", 1000));
  SweepConfig cfg;
  cfg.trials = static_cast<std::size_t>(cli.get_int("trials", "RTSP_TRIALS", 5));
  cfg.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 20070326));
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads", "RTSP_THREADS", 0));

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "cannot create output directory '" << out_dir
              << "': " << ec.message() << '\n';
    return 1;
  }

  std::ofstream report(out_dir + "/report.md");
  report << "# RTSP paper-figure reproduction run\n\n"
         << "Setup: " << setup.servers << " servers (BA tree, links 1-10), "
         << setup.objects << " objects, a=1, " << cfg.trials
         << " trials, base seed " << cfg.base_seed << ".\n\n";

  Timer total;
  for (const FigureSpec& fig : all_paper_figures(setup)) {
    std::cout << "running " << fig.id << " (" << fig.title << ") ..."
              << std::flush;
    Timer timer;
    cfg.algorithms = fig.algorithms;
    const SweepResult result = [&] {
      OBS_SPAN("figure." + fig.id);
      return run_sweep(fig.points, cfg);
    }();
    std::cout << " " << static_cast<int>(timer.seconds()) << "s\n";

    report << "## " << fig.id << " — " << fig.title << "\n\n```\n";
    print_series(report, result, fig.headline, fig.x_label);
    report << "```\n\n";

    std::string slug = fig.id;  // "Fig 4" -> "fig4"
    for (char& c : slug) c = (c == ' ') ? '\0' : static_cast<char>(::tolower(c));
    slug.erase(std::remove(slug.begin(), slug.end(), '\0'), slug.end());

    {
      // Long-format dump of every metric (headline, companions, and the
      // builder/improver time split), one header row.
      std::ofstream csv(out_dir + "/" + slug + ".csv");
      write_all_series_csv(csv, result, fig.x_label);
    }
    {
      std::ofstream json(out_dir + "/" + slug + ".json");
      sweep_to_json(json, result, fig.x_label);
    }
  }
  // Execution-layer companion sweep: cost/dummy inflation vs transient fault
  // rate, with and without replica losses (see DESIGN.md §11).
  for (const std::size_t losses : {std::size_t{0}, std::size_t{2}}) {
    std::cout << "running fault sweep (losses=" << losses << ") ..."
              << std::flush;
    Timer timer;
    FaultSweepConfig fault_cfg;
    fault_cfg.trials = cfg.trials;
    fault_cfg.base_seed = cfg.base_seed;
    fault_cfg.loss_count = losses;
    const std::vector<FaultSweepCell> cells = [&] {
      OBS_SPAN("figure.faultsweep");
      return run_fault_sweep(fault_cfg);
    }();
    std::cout << " " << static_cast<int>(timer.seconds()) << "s\n";

    std::ostringstream csv_text;
    write_fault_sweep_csv(csv_text, cells);
    report << "## Fault sweep — execution cost inflation vs transient rate ("
           << losses << " replica losses)\n\n```\n"
           << csv_text.str() << "```\n\n";
    std::ofstream csv(out_dir + "/faultsweep_losses" + std::to_string(losses) +
                      ".csv");
    csv << csv_text.str();
  }

  // Anytime portfolio: quality vs deterministic tick budget on the three
  // Sec-5.1 setups; the sweep itself enforces that the portfolio curve
  // dominates every single pipeline at every budget (DESIGN.md §13).
  {
    std::cout << "running anytime sweep ..." << std::flush;
    Timer timer;
    AnytimeSweepConfig any_cfg;
    any_cfg.trials = cfg.trials;
    any_cfg.base_seed = cfg.base_seed;
    any_cfg.threads = cfg.threads;
    any_cfg.setup = setup;
    const std::vector<AnytimeCell> cells = [&] {
      OBS_SPAN("figure.anytime");
      return run_anytime_sweep(any_cfg);
    }();
    std::cout << " " << static_cast<int>(timer.seconds()) << "s\n";

    std::ostringstream csv_text;
    write_anytime_sweep_csv(csv_text, cells);
    report << "## Anytime sweep — portfolio vs single pipelines per tick "
              "budget\n\n```\n"
           << csv_text.str() << "```\n\n";
    std::ofstream csv(out_dir + "/anytime.csv");
    csv << csv_text.str();
  }

  report << "Total wall time: " << static_cast<int>(total.seconds()) << "s\n";
  std::cout << "report written to " << out_dir << "/report.md\n";
  obs_session.finish(std::cout);
  return 0;
}
