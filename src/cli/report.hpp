// `rtsp report`: joins the execution journal, metrics time-series, metrics
// snapshot, provenance sidecar and final schedule stats of one `rtsp
// execute` run into a self-contained HTML report (cost trajectory
// planned-vs-paid, retry/fault density over ticks, per-server utilization
// lanes, percentile and stage-attribution tables) plus a machine-readable
// JSON summary. Split out of commands.cpp because the HTML generator is a
// subsystem of its own.
#pragma once

#include <iosfwd>

namespace rtsp {
class CliOptions;
}

namespace rtsp::cli {

/// Flags: --journal FILE (required); --series FILE, --metrics FILE
/// (snapshot .json), --instance/--schedule/--provenance (effective schedule
/// + sidecar, for the same stage attribution `rtsp explain` prints),
/// --html FILE, --out FILE (JSON summary; stdout when empty). Throws
/// std::runtime_error on bad inputs (rendered as `error: ...` by run_cli).
int cmd_report(const CliOptions& opt, std::ostream& out);

}  // namespace rtsp::cli
