#include "cli/commands.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "core/cost_model.hpp"
#include "core/feasibility.hpp"
#include "core/schedule_stats.hpp"
#include "core/transfer_graph.hpp"
#include "core/validator.hpp"
#include "exact/branch_and_bound.hpp"
#include "extension/deadline.hpp"
#include "extension/makespan.hpp"
#include "extension/phases.hpp"
#include "heuristics/registry.hpp"
#include "io/dot_export.hpp"
#include "io/instance_io.hpp"
#include "io/json_export.hpp"
#include "io/schedule_io.hpp"
#include "obs/session.hpp"
#include "support/cli.hpp"
#include "support/histogram.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "workload/paper_setup.hpp"
#include "workload/scenario.hpp"

namespace rtsp::cli {

namespace {

/// User-facing failure carrying the message already formatted.
struct CliError {
  std::string message;
};

Instance load_instance(const CliOptions& opt) {
  const std::string path = opt.get_string("instance", "", "");
  if (path.empty()) throw CliError{"missing --instance <file>"};
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open instance file '" + path + "'"};
  try {
    return read_instance(in);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse instance: ") + e.what()};
  }
}

Schedule load_schedule(const CliOptions& opt) {
  const std::string path = opt.get_string("schedule", "", "");
  if (path.empty()) throw CliError{"missing --schedule <file>"};
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open schedule file '" + path + "'"};
  try {
    return read_schedule(in);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse schedule: ") + e.what()};
  }
}

void write_text_file(const std::string& path, const std::string& content,
                     std::ostream& out, const char* what) {
  if (path.empty()) {
    out << content;
    return;
  }
  std::ofstream file(path);
  if (!file) throw CliError{std::string("cannot open output file '") + path + "'"};
  file << content;
  out << what << " written to " << path << '\n';
}

int cmd_generate(const CliOptions& opt, std::ostream& out) {
  const std::string kind = opt.get_string("kind", "", "paper-equal");
  Rng rng(static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1)));
  PaperSetup setup;
  setup.servers = static_cast<std::size_t>(opt.get_int("servers", "", 50));
  setup.objects = static_cast<std::size_t>(opt.get_int("objects", "", 1000));
  const std::size_t replicas =
      static_cast<std::size_t>(opt.get_int("replicas", "", 2));

  Instance inst = [&]() -> Instance {
    if (kind == "paper-equal") return make_equal_size_instance(setup, replicas, rng);
    if (kind == "paper-uniform") {
      return make_uniform_size_instance(setup, replicas, rng);
    }
    if (kind == "paper-extra") {
      const std::size_t extra =
          static_cast<std::size_t>(opt.get_int("extra", "", 10));
      return make_extra_capacity_instance(setup, replicas, extra, rng);
    }
    if (kind == "random") {
      RandomInstanceSpec spec;
      spec.servers = setup.servers;
      spec.objects = setup.objects;
      spec.min_replicas = 1;
      spec.max_replicas = replicas;
      spec.capacity_slack = opt.get_double("slack", "", 0.0);
      return random_instance(spec, rng);
    }
    throw CliError{"unknown --kind '" + kind +
                   "' (paper-equal | paper-uniform | paper-extra | random)"};
  }();

  write_text_file(opt.get_string("out", "", ""), instance_to_text(inst), out,
                  "instance");
  return 0;
}

int cmd_solve(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const std::string algo = opt.get_string("algo", "", "GOLCF+H1+H2+OP1");
  Rng rng(static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1)));
  Pipeline pipeline = [&] {
    try {
      return make_pipeline(algo);
    } catch (const std::invalid_argument& e) {
      throw CliError{e.what()};
    }
  }();
  const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
  if (opt.get_bool("json", "", false)) {
    schedule_to_json(out, h);
    const std::string json_out = opt.get_string("out", "", "");
    if (!json_out.empty()) {
      std::ostringstream buffer;
      schedule_to_json(buffer, h);
      write_text_file(json_out, buffer.str(), out, "schedule JSON");
    }
    return 0;
  }
  out << "algorithm:       " << pipeline.name() << '\n';
  out << "actions:         " << h.size() << '\n';
  out << "cost:            " << schedule_cost(inst.model, h) << '\n';
  out << "dummy transfers: " << h.dummy_transfer_count() << '\n';
  out << "lower bound:     "
      << cost_lower_bound(inst.model, inst.x_old, inst.x_new) << '\n';
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(h), out, "schedule");
  }
  return 0;
}

int cmd_exact(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  BnbOptions options;
  options.max_nodes =
      static_cast<std::uint64_t>(opt.get_int("max-nodes", "", 5'000'000));
  options.allow_staging = opt.get_bool("staging", "", true);
  const BnbResult result = solve_exact(inst, options);
  out << "optimal:         " << (result.proved_optimal ? "proven" : "budget hit")
      << '\n';
  out << "cost:            " << result.cost << '\n';
  out << "dummy transfers: " << result.schedule.dummy_transfer_count() << '\n';
  out << "nodes expanded:  " << result.nodes_expanded << '\n';
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(result.schedule), out, "schedule");
  }
  return result.proved_optimal ? 0 : 3;
}

int cmd_validate(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h,
                                     !opt.get_bool("all", "", false));
  out << v.to_string() << '\n';
  if (v.valid) {
    out << "cost " << schedule_cost(inst.model, h) << ", "
        << h.dummy_transfer_count() << " dummy transfer(s)\n";
  }
  return v.valid ? 0 : 2;
}

int cmd_stats(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const ScheduleStats stats = analyze_schedule(inst.model, h);
  out << stats.to_string() << '\n';
  const auto headroom = min_headroom(inst.model, inst.x_old, h);
  Size tightest = headroom.empty() ? 0 : headroom[0];
  ServerId tightest_server = 0;
  for (ServerId i = 0; i < headroom.size(); ++i) {
    if (headroom[i] < tightest) {
      tightest = headroom[i];
      tightest_server = i;
    }
  }
  out << "tightest headroom: " << tightest << " units at S" << tightest_server
      << '\n';
  // Transfer-cost distribution (skipped for schedules without transfers).
  std::vector<double> costs;
  for (const Action& a : h) {
    if (a.is_transfer()) {
      costs.push_back(static_cast<double>(action_cost(inst.model, a)));
    }
  }
  if (!costs.empty()) {
    out << "transfer cost distribution:\n"
        << Histogram::of(costs, 8).to_string();
  }
  return 0;
}

int cmd_deadline(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  if (!v.valid) throw CliError{"schedule is invalid: " + v.to_string()};
  DeadlineOptions options;
  options.execution.ports = static_cast<std::size_t>(opt.get_int("ports", "", 1));
  options.execution.bandwidth = opt.get_double("bandwidth", "", 1.0);
  const auto before = simulate_makespan(inst.model, inst.x_old, h, options.execution);
  options.deadline =
      opt.get_double("deadline", "", before.makespan * 0.8);
  const DeadlineResult r =
      meet_deadline(inst.model, inst.x_old, inst.x_new, h, options);
  out << "deadline:        " << options.deadline << '\n';
  out << "makespan before: " << before.makespan << '\n';
  out << "makespan after:  " << r.report.makespan << '\n';
  out << "met:             " << (r.met ? "yes" : "no") << '\n';
  out << "cost before:     " << schedule_cost(inst.model, h) << '\n';
  out << "cost after:      " << r.cost << '\n';
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(r.schedule), out, "schedule");
  }
  return r.met ? 0 : 3;
}

int cmd_info(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  if (opt.get_bool("json", "", false)) {
    instance_summary_to_json(out, inst);
    return 0;
  }
  const PlacementDelta delta(inst.x_old, inst.x_new);
  out << "servers:           " << inst.model.num_servers() << '\n';
  out << "objects:           " << inst.model.num_objects() << '\n';
  out << "dummy link cost:   " << inst.model.dummy_link_cost() << '\n';
  out << "outstanding:       " << delta.outstanding().size() << '\n';
  out << "superfluous:       " << delta.superfluous().size() << '\n';
  out << "overlap:           " << inst.x_old.overlap(inst.x_new) << '\n';
  out << "X_new feasible:    "
      << (storage_feasible(inst.model, inst.x_new) ? "yes" : "NO") << '\n';
  out << "cost lower bound:  "
      << cost_lower_bound(inst.model, inst.x_old, inst.x_new) << '\n';
  out << "worst-case cost:   "
      << worst_case_cost(inst.model, inst.x_old, inst.x_new) << '\n';
  const TransferGraph tg(inst.model, inst.x_old, inst.x_new);
  out << "transfer graph:    " << tg.arcs().size() << " arcs, "
      << (tg.has_cycle() ? "cyclic" : "acyclic") << '\n';
  out << "deadlock risk:     " << (tg.deadlock_risk(inst.x_old) ? "yes" : "no")
      << '\n';
  return 0;
}

int cmd_makespan(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  MakespanOptions options;
  options.ports = static_cast<std::size_t>(opt.get_int("ports", "", 1));
  options.bandwidth = opt.get_double("bandwidth", "", 1.0);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  if (!v.valid) throw CliError{"schedule is invalid: " + v.to_string()};
  const MakespanReport report = simulate_makespan(inst.model, inst.x_old, h, options);
  out << "serial time:      " << report.serial_time << '\n';
  out << "makespan:         " << report.makespan << '\n';
  out << "speedup:          " << report.speedup << '\n';
  out << "peak parallelism: " << report.peak_parallelism << '\n';
  return 0;
}

int cmd_phases(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  if (!v.valid) throw CliError{"schedule is invalid: " + v.to_string()};
  const std::size_t ports = static_cast<std::size_t>(opt.get_int("ports", "", 1));
  const PhasePlan plan = phase_partition(inst.model, inst.x_old, h, ports);
  out << plan.rounds() << " rounds, widest " << plan.max_width()
      << ", bottleneck cost " << plan.bottleneck_cost(inst.model, h) << '\n';
  if (opt.get_bool("print", "", false)) out << plan.to_string(h);
  return 0;
}

int cmd_dot(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const TransferGraph tg(inst.model, inst.x_old, inst.x_new);
  write_text_file(opt.get_string("out", "", ""), transfer_graph_to_dot(tg), out,
                  "DOT");
  return 0;
}

}  // namespace

void print_usage(std::ostream& out) {
  out << "rtsp — replica transfer scheduling toolkit\n"
         "\n"
         "usage: rtsp <command> [options]\n"
         "\n"
         "commands:\n"
         "  generate  --kind paper-equal|paper-uniform|paper-extra|random\n"
         "            [--servers N] [--objects N] [--replicas R] [--extra E]\n"
         "            [--slack F] [--seed S] [--out FILE]\n"
         "  solve     --instance FILE [--algo SPEC] [--seed S] [--out FILE] [--json]\n"
         "  exact     --instance FILE [--max-nodes N] [--staging BOOL] [--out FILE]\n"
         "  validate  --instance FILE --schedule FILE [--all]\n"
         "  stats     --instance FILE --schedule FILE\n"
         "  info      --instance FILE [--json]\n"
         "  makespan  --instance FILE --schedule FILE [--ports P] [--bandwidth B]\n"
         "  deadline  --instance FILE --schedule FILE [--deadline T] [--ports P]\n"
         "            [--bandwidth B] [--out FILE]\n"
         "  phases    --instance FILE --schedule FILE [--ports P] [--print]\n"
         "  dot       --instance FILE [--out FILE]\n"
         "  help\n"
         "\n"
         "algorithm SPECs combine one builder (AR, GOLCF, RDF, GSDF) with\n"
         "improvers (H1, H2, OP1, SA, H1H2FIX), e.g. GOLCF+H1+H2+OP1.\n"
         "\n"
         "observability (any command):\n"
         "  --obs               print metrics + span summary after the run\n"
         "  --trace-out=FILE    write Chrome trace JSON (open in ui.perfetto.dev)\n"
         "  --metrics-out=FILE  write metrics snapshot (.json or .csv)\n";
}

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    print_usage(err);
    return 1;
  }
  const std::string command = argv[1];
  const CliOptions opt(argc - 1, argv + 1);
  const obs::Session obs_session(opt);
  try {
    const auto finish = [&](int rc) {
      obs_session.finish(out);
      return rc;
    };
    if (command == "generate") return finish(cmd_generate(opt, out));
    if (command == "solve") return finish(cmd_solve(opt, out));
    if (command == "exact") return finish(cmd_exact(opt, out));
    if (command == "validate") return finish(cmd_validate(opt, out));
    if (command == "stats") return finish(cmd_stats(opt, out));
    if (command == "info") return finish(cmd_info(opt, out));
    if (command == "makespan") return finish(cmd_makespan(opt, out));
    if (command == "deadline") return finish(cmd_deadline(opt, out));
    if (command == "phases") return finish(cmd_phases(opt, out));
    if (command == "dot") return finish(cmd_dot(opt, out));
    if (command == "help" || command == "--help" || command == "-h") {
      print_usage(out);
      return 0;
    }
    err << "unknown command '" << command << "'\n";
    print_usage(err);
    return 1;
  } catch (const CliError& e) {
    err << "error: " << e.message << '\n';
    return 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace rtsp::cli
