#include "cli/commands.hpp"

#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "core/cost_model.hpp"
#include "core/feasibility.hpp"
#include "core/schedule_stats.hpp"
#include "core/transfer_graph.hpp"
#include "core/validator.hpp"
#include "daemon/serve.hpp"
#include "exact/branch_and_bound.hpp"
#include "exec/executor.hpp"
#include "extension/deadline.hpp"
#include "extension/makespan.hpp"
#include "extension/phases.hpp"
#include "heuristics/registry.hpp"
#include "io/dot_export.hpp"
#include "io/epoch_io.hpp"
#include "io/fault_spec_io.hpp"
#include "io/instance_binary_io.hpp"
#include "io/instance_io.hpp"
#include "io/json_export.hpp"
#include "io/provenance_io.hpp"
#include "io/journal_io.hpp"
#include "io/schedule_io.hpp"
#include "io/timeline_export.hpp"
#include "cli/report.hpp"
#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "portfolio/portfolio.hpp"
#include "obs/provenance.hpp"
#include "obs/sampler.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/net.hpp"
#include "support/json.hpp"
#include "support/histogram.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"
#include "workload/epoch_stream.hpp"
#include "workload/paper_setup.hpp"
#include "workload/scale_instance.hpp"
#include "workload/scenario.hpp"

namespace rtsp::cli {

namespace {

/// User-facing failure carrying the message already formatted.
struct CliError {
  std::string message;
};

Instance load_instance(const CliOptions& opt) {
  const std::string path = opt.get_string("instance", "", "");
  if (path.empty()) throw CliError{"missing --instance <file>"};
  {
    std::ifstream in(path);
    if (!in) throw CliError{"cannot open instance file '" + path + "'"};
  }
  try {
    // Sniffs the binary magic and dispatches; text instances keep working
    // unchanged, binary ones are memory-mapped.
    return read_instance_any(path);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse instance: ") + e.what()};
  }
}

Schedule load_schedule(const CliOptions& opt) {
  const std::string path = opt.get_string("schedule", "", "");
  if (path.empty()) throw CliError{"missing --schedule <file>"};
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open schedule file '" + path + "'"};
  try {
    return read_schedule(in);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse schedule: ") + e.what()};
  }
}

Schedule load_schedule_at(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open schedule file '" + path + "'"};
  try {
    return read_schedule(in);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse schedule: ") + e.what()};
  }
}

prov::Provenance load_provenance_at(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open provenance file '" + path + "'"};
  try {
    return read_provenance(in);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse provenance: ") + e.what()};
  }
}

prov::Provenance load_provenance(const CliOptions& opt) {
  const std::string path = opt.get_string("provenance", "", "");
  if (path.empty()) throw CliError{"missing --provenance <file>"};
  return load_provenance_at(path);
}

void write_text_file(const std::string& path, const std::string& content,
                     std::ostream& out, const char* what) {
  if (path.empty()) {
    out << content;
    return;
  }
  std::ofstream file(path);
  if (!file) throw CliError{std::string("cannot open output file '") + path + "'"};
  file << content;
  out << what << " written to " << path << '\n';
}

int cmd_generate(const CliOptions& opt, std::ostream& out) {
  const std::string kind = opt.get_string("kind", "", "paper-equal");
  Rng rng(static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1)));
  PaperSetup setup;
  setup.servers = static_cast<std::size_t>(opt.get_int("servers", "", 50));
  setup.objects = static_cast<std::size_t>(opt.get_int("objects", "", 1000));
  const std::size_t replicas =
      static_cast<std::size_t>(opt.get_int("replicas", "", 2));

  Instance inst = [&]() -> Instance {
    if (kind == "paper-equal") return make_equal_size_instance(setup, replicas, rng);
    if (kind == "paper-uniform") {
      return make_uniform_size_instance(setup, replicas, rng);
    }
    if (kind == "paper-extra") {
      const std::size_t extra =
          static_cast<std::size_t>(opt.get_int("extra", "", 10));
      return make_extra_capacity_instance(setup, replicas, extra, rng);
    }
    if (kind == "random") {
      RandomInstanceSpec spec;
      spec.servers = setup.servers;
      spec.objects = setup.objects;
      spec.min_replicas = 1;
      spec.max_replicas = replicas;
      spec.capacity_slack = opt.get_double("slack", "", 0.0);
      return random_instance(spec, rng);
    }
    if (kind == "scale") {
      ScaleInstanceSpec spec;
      spec.servers = setup.servers;
      spec.objects = setup.objects;
      spec.replicas_per_object = replicas;
      spec.capacity_slack = opt.get_double("slack", "", 1.0);
      return make_scale_instance(spec, rng);
    }
    throw CliError{"unknown --kind '" + kind +
                   "' (paper-equal | paper-uniform | paper-extra | random | scale)"};
  }();

  if (opt.get_bool("binary", "", false)) {
    const std::string out_path = opt.get_string("out", "", "");
    if (out_path.empty()) throw CliError{"--binary requires --out FILE"};
    try {
      write_instance_binary_file(out_path, inst);
    } catch (const std::exception& e) {
      throw CliError{e.what()};
    }
    out << "binary instance written to " << out_path << '\n';
    return 0;
  }
  write_text_file(opt.get_string("out", "", ""), instance_to_text(inst), out,
                  "instance");
  return 0;
}

int cmd_solve(const CliOptions& opt, std::ostream& out) {
  Instance inst = load_instance(opt);
  // --store forces the replication backend (the readers pick automatically by
  // density); used to measure dense vs sparse memory at the same scale.
  if (const std::string store_name = opt.get_string("store", "", "auto");
      store_name != "auto") {
    if (store_name != "dense" && store_name != "sparse") {
      throw CliError{"unknown --store '" + store_name + "' (auto | dense | sparse)"};
    }
    const auto store = store_name == "dense" ? ReplicationMatrix::Store::kDense
                                             : ReplicationMatrix::Store::kSparse;
    const auto rebuild = [&](const ReplicationMatrix& x) {
      ReplicationMatrix forced(x.num_servers(), x.num_objects(), store);
      for (ObjectId k = 0; k < x.num_objects(); ++k) {
        x.for_each_replicator(k, [&](ServerId i) { forced.set(i, k); });
      }
      return forced;
    };
    inst.x_old = rebuild(inst.x_old);
    inst.x_new = rebuild(inst.x_new);
  }
  const std::string algo = opt.get_string("algo", "", "GOLCF+H1+H2+OP1");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1));
  const bool portfolio = opt.get_bool("portfolio", "", false);
  Budget budget;
  budget.ticks = static_cast<std::uint64_t>(opt.get_int("budget-ticks", "", 0));
  budget.wall_ms = opt.get_double("budget-ms", "", 0.0);

  const std::string prov_out = opt.get_string("provenance-out", "", "");
  std::optional<prov::Scope> prov_scope;
  if (!prov_out.empty()) {
    if (!prov::kRecorderCompiled) {
      throw CliError{"--provenance-out requires a build with RTSP_OBS=ON"};
    }
    prov_scope.emplace(inst.model, inst.x_old);
  }

  Schedule h;
  std::string algo_label;
  std::ostringstream extra;  // budget/portfolio report lines
  const Cost lb = cost_lower_bound(inst.model, inst.x_old, inst.x_new);
  const auto budget_line = [&]() -> std::string {
    std::ostringstream b;
    if (budget.ticks > 0) b << "ticks=" << budget.ticks;
    if (budget.wall_ms > 0.0) {
      if (budget.ticks > 0) b << ", ";
      b << "wall=" << budget.wall_ms << "ms";
    }
    b << (budget.deterministic() ? " (deterministic)" : "");
    return b.str();
  };
  if (portfolio) {
    PortfolioOptions popts;
    popts.budget = budget;
    if (const std::string list = opt.get_string("algos", "", ""); !list.empty()) {
      popts.algorithms = split(list, ',');
    }
    popts.threads = static_cast<std::size_t>(opt.get_int("threads", "", 0));
    popts.lns_enabled = opt.get_bool("lns", "", true);
    popts.lns.max_rounds =
        static_cast<std::size_t>(opt.get_int("lns-rounds", "", 0));
    const PortfolioResult r = [&] {
      try {
        return solve_portfolio(inst.model, inst.x_old, inst.x_new, seed, popts);
      } catch (const std::invalid_argument& e) {
        throw CliError{e.what()};
      }
    }();
    h = r.schedule;
    algo_label = "PORTFOLIO(" + std::to_string(r.candidates.size()) + ")";
    if (budget.limited()) extra << "budget:          " << budget_line() << '\n';
    extra << "winner:          " << r.winner << '\n';
    extra << "race cost:       " << r.race_cost << '\n';
    extra << "gap:             " << r.gap() << '\n';
    extra << "lns:             " << r.lns.rounds << " rounds, " << r.lns.accepts
          << " accepted" << (r.lns.gap_closed ? ", gap closed" : "") << '\n';
    for (const CandidateOutcome& c : r.candidates) {
      extra << "  candidate:     " << c.algo << " cost=" << c.cost
            << " dummies=" << c.dummy_transfers << " ticks=" << c.ticks_used
            << (c.completed ? "" : " (truncated)") << '\n';
    }
  } else if (budget.limited()) {
    const BudgetedRun r = [&] {
      try {
        return run_pipeline_budgeted(inst.model, inst.x_old, inst.x_new, algo,
                                     seed, budget);
      } catch (const std::invalid_argument& e) {
        throw CliError{e.what()};
      }
    }();
    h = r.schedule;
    algo_label = algo;
    extra << "budget:          " << budget_line() << '\n';
    extra << "ticks used:      " << r.ticks_used
          << (r.completed ? " (completed)" : " (truncated)") << '\n';
  } else {
    Rng rng(seed);
    Pipeline pipeline = [&] {
      try {
        return make_pipeline(algo);
      } catch (const std::invalid_argument& e) {
        throw CliError{e.what()};
      }
    }();
    h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
    algo_label = pipeline.name();
  }
  if (prov_scope) {
    std::ostringstream buffer;
    write_provenance(buffer, prov_scope->finalize(h));
    write_text_file(prov_out, buffer.str(), out, "provenance");
  }
  if (opt.get_bool("json", "", false)) {
    schedule_to_json(out, h);
    const std::string json_out = opt.get_string("out", "", "");
    if (!json_out.empty()) {
      std::ostringstream buffer;
      schedule_to_json(buffer, h);
      write_text_file(json_out, buffer.str(), out, "schedule JSON");
    }
    return 0;
  }
  out << "algorithm:       " << algo_label << '\n';
  out << "actions:         " << h.size() << '\n';
  out << "cost:            " << schedule_cost(inst.model, h) << '\n';
  out << "dummy transfers: " << h.dummy_transfer_count() << '\n';
  out << "lower bound:     " << lb << '\n';
  out << extra.str();
  if (const std::int64_t rss_kb = obs::record_peak_rss(); rss_kb > 0) {
    out << "peak rss:        " << rss_kb << " KiB\n";
  }
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(h), out, "schedule");
  }
  return 0;
}

int cmd_exact(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  BnbOptions options;
  options.max_nodes =
      static_cast<std::uint64_t>(opt.get_int("max-nodes", "", 5'000'000));
  options.allow_staging = opt.get_bool("staging", "", true);
  const BnbResult result = solve_exact(inst, options);
  out << "optimal:         " << (result.proved_optimal ? "proven" : "budget hit")
      << '\n';
  out << "cost:            " << result.cost << '\n';
  out << "dummy transfers: " << result.schedule.dummy_transfer_count() << '\n';
  out << "nodes expanded:  " << result.nodes_expanded << '\n';
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(result.schedule), out, "schedule");
  }
  return result.proved_optimal ? 0 : 3;
}

int cmd_validate(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h,
                                     !opt.get_bool("all", "", false));
  out << v.to_string() << '\n';
  if (v.valid) {
    out << "cost " << schedule_cost(inst.model, h) << ", "
        << h.dummy_transfer_count() << " dummy transfer(s)\n";
  }
  return v.valid ? 0 : 2;
}

int cmd_stats(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const ScheduleStats stats = analyze_schedule(inst.model, h);
  out << stats.to_string() << '\n';
  const auto headroom = min_headroom(inst.model, inst.x_old, h);
  Size tightest = headroom.empty() ? 0 : headroom[0];
  ServerId tightest_server = 0;
  for (ServerId i = 0; i < headroom.size(); ++i) {
    if (headroom[i] < tightest) {
      tightest = headroom[i];
      tightest_server = i;
    }
  }
  out << "tightest headroom: " << tightest << " units at S" << tightest_server
      << '\n';
  // Transfer-cost distribution (skipped for schedules without transfers).
  std::vector<double> costs;
  for (const Action& a : h) {
    if (a.is_transfer()) {
      costs.push_back(static_cast<double>(action_cost(inst.model, a)));
    }
  }
  if (!costs.empty()) {
    out << "transfer cost distribution:\n"
        << Histogram::of(costs, 8).to_string();
  }
  return 0;
}

int cmd_deadline(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  if (!v.valid) throw CliError{"schedule is invalid: " + v.to_string()};
  DeadlineOptions options;
  options.execution.ports = static_cast<std::size_t>(opt.get_int("ports", "", 1));
  options.execution.bandwidth = opt.get_double("bandwidth", "", 1.0);
  const auto before = simulate_makespan(inst.model, inst.x_old, h, options.execution);
  options.deadline =
      opt.get_double("deadline", "", before.makespan * 0.8);
  const DeadlineResult r =
      meet_deadline(inst.model, inst.x_old, inst.x_new, h, options);
  out << "deadline:        " << options.deadline << '\n';
  out << "makespan before: " << before.makespan << '\n';
  out << "makespan after:  " << r.report.makespan << '\n';
  out << "met:             " << (r.met ? "yes" : "no") << '\n';
  out << "cost before:     " << schedule_cost(inst.model, h) << '\n';
  out << "cost after:      " << r.cost << '\n';
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(r.schedule), out, "schedule");
  }
  return r.met ? 0 : 3;
}

int cmd_info(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  if (opt.get_bool("json", "", false)) {
    instance_summary_to_json(out, inst);
    return 0;
  }
  const PlacementDelta delta(inst.x_old, inst.x_new);
  out << "servers:           " << inst.model.num_servers() << '\n';
  out << "objects:           " << inst.model.num_objects() << '\n';
  out << "dummy link cost:   " << inst.model.dummy_link_cost() << '\n';
  out << "outstanding:       " << delta.outstanding().size() << '\n';
  out << "superfluous:       " << delta.superfluous().size() << '\n';
  out << "overlap:           " << inst.x_old.overlap(inst.x_new) << '\n';
  out << "X_new feasible:    "
      << (storage_feasible(inst.model, inst.x_new) ? "yes" : "NO") << '\n';
  out << "cost lower bound:  "
      << cost_lower_bound(inst.model, inst.x_old, inst.x_new) << '\n';
  out << "worst-case cost:   "
      << worst_case_cost(inst.model, inst.x_old, inst.x_new) << '\n';
  const TransferGraph tg(inst.model, inst.x_old, inst.x_new);
  out << "transfer graph:    " << tg.arcs().size() << " arcs, "
      << (tg.has_cycle() ? "cyclic" : "acyclic") << '\n';
  out << "deadlock risk:     " << (tg.deadlock_risk(inst.x_old) ? "yes" : "no")
      << '\n';
  return 0;
}

int cmd_makespan(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  MakespanOptions options;
  options.ports = static_cast<std::size_t>(opt.get_int("ports", "", 1));
  options.bandwidth = opt.get_double("bandwidth", "", 1.0);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  if (!v.valid) throw CliError{"schedule is invalid: " + v.to_string()};
  const MakespanReport report = simulate_makespan(inst.model, inst.x_old, h, options);
  out << "serial time:      " << report.serial_time << '\n';
  out << "makespan:         " << report.makespan << '\n';
  out << "speedup:          " << report.speedup << '\n';
  out << "peak parallelism: " << report.peak_parallelism << '\n';
  return 0;
}

int cmd_phases(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  const Schedule h = load_schedule(opt);
  const auto v = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
  if (!v.valid) throw CliError{"schedule is invalid: " + v.to_string()};
  const std::size_t ports = static_cast<std::size_t>(opt.get_int("ports", "", 1));
  const PhasePlan plan = phase_partition(inst.model, inst.x_old, h, ports);
  out << plan.rounds() << " rounds, widest " << plan.max_width()
      << ", bottleneck cost " << plan.bottleneck_cost(inst.model, h) << '\n';
  if (opt.get_bool("print", "", false)) out << plan.to_string(h);
  return 0;
}

int cmd_dot(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  std::string content;
  if (opt.has("schedule")) {
    const Schedule h = load_schedule(opt);
    prov::Provenance p;
    const prov::Provenance* pp = nullptr;
    if (opt.has("provenance")) {
      p = load_provenance(opt);
      if (p.entries.size() != h.size()) {
        throw CliError{"provenance does not match schedule (" +
                       std::to_string(p.entries.size()) + " entries vs " +
                       std::to_string(h.size()) + " actions)"};
      }
      pp = &p;
    }
    content = schedule_to_dot(inst.model, h, pp);
  } else {
    const TransferGraph tg(inst.model, inst.x_old, inst.x_new);
    content = transfer_graph_to_dot(tg);
  }
  write_text_file(opt.get_string("out", "", ""), content, out, "DOT");
  return 0;
}

std::string stage_label(const prov::Provenance& p, std::uint32_t idx) {
  if (idx >= p.stages.size()) return "?";
  return p.stages[idx].name;
}

std::string describe_root_cause(const prov::RootCause& rc) {
  std::ostringstream os;
  switch (rc.kind) {
    case prov::RootCause::Kind::CapacityDeadlock:
      os << "capacity deadlock";
      break;
    case prov::RootCause::Kind::NoInitialReplica:
      os << "no initial replica";
      break;
    case prov::RootCause::Kind::SourceAvailable:
      os << "source available (builder still chose dummy)";
      break;
  }
  os << ": O" << rc.object << " (size " << rc.object_size << ") -> S" << rc.dest
     << " (free " << rc.dest_free_space << ")";
  if (!rc.holders.empty()) {
    os << "\n      live holders:";
    for (ServerId s : rc.holders) os << " S" << s;
  }
  for (const auto& b : rc.blockers) {
    os << "\n      S" << b.server << " deleted its replica";
    if (b.deleted_at != prov::kNone) os << " at position " << b.deleted_at;
    os << "; free " << b.free_space;
    if (!b.occupying.empty()) {
      os << ", occupied by";
      for (ObjectId o : b.occupying) os << " O" << o;
    }
  }
  return os.str();
}

/// One schedule's worth of explain inputs, cross-checked for consistency.
struct ExplainView {
  Schedule h;
  prov::Provenance p;
  prov::AttributionSummary att;
  ScheduleStats stats;
};

ExplainView make_view(const SystemModel& model, Schedule h, prov::Provenance p) {
  if (p.entries.size() != h.size()) {
    throw CliError{"provenance does not match schedule (" +
                   std::to_string(p.entries.size()) + " entries vs " +
                   std::to_string(h.size()) + " actions)"};
  }
  ExplainView v{std::move(h), std::move(p), {}, {}};
  v.att = prov::attribute_schedule(model, v.h, v.p);
  v.stats = analyze_schedule(model, v.h);
  return v;
}

/// The tentpole invariant: per-stage sums must equal the whole-schedule
/// totals bit for bit. A mismatch means the sidecar belongs to a different
/// schedule (or the recorder has a bug) — refuse to explain from it.
void check_exact(const ExplainView& v) {
  const auto& a = v.att;
  const auto& s = v.stats;
  if (a.total_actions != s.actions || a.transfers != s.transfers ||
      a.deletions != s.deletions || a.dummy_transfers != s.dummy_transfers ||
      a.total_cost != s.total_cost || a.dummy_cost != s.dummy_cost) {
    std::ostringstream os;
    os << "attribution does not reconcile with schedule stats: attribution "
       << "cost " << a.total_cost << " / dummies " << a.dummy_transfers
       << " vs schedule cost " << s.total_cost << " / dummies "
       << s.dummy_transfers;
    throw CliError{os.str()};
  }
}

void print_attribution(const ExplainView& v, std::ostream& out) {
  TextTable t;
  t.header({"stage", "kind", "actions", "transfers", "deletes", "dummies",
            "cost", "dummy cost", "rewrites", "d-cost", "d-dummies"});
  for (const auto& sa : v.att.stages) {
    t.add_row({stage_label(v.p, sa.stage),
               prov::to_string(v.p.stages[sa.stage].kind),
               std::to_string(sa.actions), std::to_string(sa.transfers),
               std::to_string(sa.deletions), std::to_string(sa.dummy_transfers),
               std::to_string(sa.cost), std::to_string(sa.dummy_cost),
               std::to_string(sa.rewrites), std::to_string(sa.rewrite_cost_delta),
               std::to_string(sa.rewrite_dummy_delta)});
  }
  t.add_row({"total", "", std::to_string(v.att.total_actions),
             std::to_string(v.att.transfers), std::to_string(v.att.deletions),
             std::to_string(v.att.dummy_transfers), std::to_string(v.att.total_cost),
             std::to_string(v.att.dummy_cost), "", "", ""});
  t.print(out);
}

void print_actions(const SystemModel& model, const ExplainView& v,
                   std::ostream& out) {
  TextTable t;
  t.header({"pos", "action", "stage", "pass", "round", "rewrite", "cost", "span"});
  for (std::size_t u = 0; u < v.h.size(); ++u) {
    const prov::Entry& e = v.p.entries[u];
    std::string rewrite = "-";
    if (e.rewrite != prov::kNone) {
      const auto& rw = v.p.rewrites[e.rewrite];
      rewrite = "#" + std::to_string(e.rewrite) + " rank " + std::to_string(rw.rank);
    }
    t.add_row({std::to_string(u), v.h[u].to_string(), stage_label(v.p, e.stage),
               e.pass < 0 ? "-" : std::to_string(e.pass),
               e.round < 0 ? "-" : std::to_string(e.round), rewrite,
               std::to_string(action_cost(model, v.h[u])),
               e.span_id == 0 ? "-" : std::to_string(e.span_id)});
  }
  t.print(out);
}

void print_root_causes(const ExplainView& v, std::ostream& out) {
  bool any = false;
  for (std::size_t u = 0; u < v.h.size(); ++u) {
    if (!v.h[u].is_dummy_transfer()) continue;
    any = true;
    out << "  [pos " << u << "] ";
    const prov::Entry& e = v.p.entries[u];
    if (e.root_cause == prov::kNone) {
      out << "(no recorded root cause)\n";
      continue;
    }
    out << describe_root_cause(v.p.root_causes[e.root_cause]) << '\n';
  }
  if (!any) out << "  (none)\n";
}

void explain_to_json(const SystemModel& model, const ExplainView& v,
                     std::ostream& out) {
  JsonWriter j(out);
  j.begin_object();
  j.key("actions").value(static_cast<std::uint64_t>(v.att.total_actions));
  j.key("cost").value(static_cast<std::int64_t>(v.att.total_cost));
  j.key("dummy_cost").value(static_cast<std::int64_t>(v.att.dummy_cost));
  j.key("dummy_transfers").value(static_cast<std::uint64_t>(v.att.dummy_transfers));
  j.key("stages").begin_array();
  for (const auto& sa : v.att.stages) {
    j.begin_object();
    j.key("name").value(stage_label(v.p, sa.stage));
    j.key("kind").value(prov::to_string(v.p.stages[sa.stage].kind));
    j.key("actions").value(static_cast<std::uint64_t>(sa.actions));
    j.key("transfers").value(static_cast<std::uint64_t>(sa.transfers));
    j.key("deletions").value(static_cast<std::uint64_t>(sa.deletions));
    j.key("dummy_transfers").value(static_cast<std::uint64_t>(sa.dummy_transfers));
    j.key("cost").value(static_cast<std::int64_t>(sa.cost));
    j.key("dummy_cost").value(static_cast<std::int64_t>(sa.dummy_cost));
    j.key("rewrites").value(static_cast<std::uint64_t>(sa.rewrites));
    j.key("rewrite_cost_delta").value(static_cast<std::int64_t>(sa.rewrite_cost_delta));
    j.key("rewrite_dummy_delta").value(sa.rewrite_dummy_delta);
    j.end_object();
  }
  j.end_array();
  j.key("actions_table").begin_array();
  for (std::size_t u = 0; u < v.h.size(); ++u) {
    const prov::Entry& e = v.p.entries[u];
    j.begin_object();
    j.key("pos").value(static_cast<std::uint64_t>(u));
    j.key("action").value(v.h[u].to_string());
    j.key("stage").value(stage_label(v.p, e.stage));
    if (e.pass >= 0) j.key("pass").value(e.pass);
    if (e.round >= 0) j.key("round").value(e.round);
    if (e.rewrite != prov::kNone) {
      j.key("rewrite").value(static_cast<std::uint64_t>(e.rewrite));
      j.key("rank").value(static_cast<std::uint64_t>(v.p.rewrites[e.rewrite].rank));
    }
    j.key("cost").value(static_cast<std::int64_t>(action_cost(model, v.h[u])));
    if (e.span_id != 0) j.key("span_id").value(e.span_id);
    j.end_object();
  }
  j.end_array();
  j.key("root_causes").begin_array();
  for (std::size_t u = 0; u < v.h.size(); ++u) {
    if (!v.h[u].is_dummy_transfer()) continue;
    const prov::Entry& e = v.p.entries[u];
    if (e.root_cause == prov::kNone) continue;
    const prov::RootCause& rc = v.p.root_causes[e.root_cause];
    j.begin_object();
    j.key("pos").value(static_cast<std::uint64_t>(u));
    const char* kind = "capacity_deadlock";
    if (rc.kind == prov::RootCause::Kind::NoInitialReplica) kind = "no_initial_replica";
    if (rc.kind == prov::RootCause::Kind::SourceAvailable) kind = "source_available";
    j.key("kind").value(kind);
    j.key("object").value(static_cast<std::uint64_t>(rc.object));
    j.key("dest").value(static_cast<std::uint64_t>(rc.dest));
    j.key("object_size").value(static_cast<std::int64_t>(rc.object_size));
    j.key("dest_free_space").value(static_cast<std::int64_t>(rc.dest_free_space));
    j.key("blockers").begin_array();
    for (const auto& b : rc.blockers) {
      j.begin_object();
      j.key("server").value(static_cast<std::uint64_t>(b.server));
      if (b.deleted_at != prov::kNone) {
        j.key("deleted_at").value(static_cast<std::uint64_t>(b.deleted_at));
      }
      j.key("free_space").value(static_cast<std::int64_t>(b.free_space));
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  out << '\n';
}

void explain_to_csv(const SystemModel& model, const ExplainView& v,
                    std::ostream& out) {
  CsvWriter csv(out);
  csv.row({"pos", "action", "stage", "kind", "pass", "round", "rewrite", "rank",
           "cost", "dummy", "span_id"});
  for (std::size_t u = 0; u < v.h.size(); ++u) {
    const prov::Entry& e = v.p.entries[u];
    const auto* rw = e.rewrite != prov::kNone ? &v.p.rewrites[e.rewrite] : nullptr;
    csv.field(static_cast<std::uint64_t>(u));
    csv.field(v.h[u].to_string());
    csv.field(stage_label(v.p, e.stage));
    csv.field(prov::to_string(v.p.stages[e.stage].kind));
    csv.field(e.pass);
    csv.field(e.round);
    csv.field(rw ? static_cast<std::int64_t>(e.rewrite) : -1);
    csv.field(rw ? static_cast<std::int64_t>(rw->rank) : -1);
    csv.field(static_cast<std::int64_t>(action_cost(model, v.h[u])));
    csv.field(static_cast<std::int64_t>(v.h[u].is_dummy_transfer() ? 1 : 0));
    csv.field(e.span_id);
    csv.end_row();
  }
}

void print_diff(const ExplainView& a, const ExplainView& b, std::ostream& out) {
  // Union of stage (kind, name) keys, in first-seen order across both views.
  std::vector<prov::Stage> keys;
  const auto key_index = [&](const prov::Stage& s) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == s) return i;
    }
    keys.push_back(s);
    return keys.size() - 1;
  };
  struct Side {
    std::size_t actions = 0;
    std::size_t dummies = 0;
    Cost cost = 0;
    bool present = false;
  };
  std::vector<Side> left, right;
  const auto fill = [&](const ExplainView& v, std::vector<Side>& side) {
    for (const auto& sa : v.att.stages) {
      const std::size_t i = key_index(v.p.stages[sa.stage]);
      if (side.size() <= i) side.resize(keys.size());
      side[i] = {sa.actions, sa.dummy_transfers, sa.cost, true};
    }
  };
  fill(a, left);
  fill(b, right);
  left.resize(keys.size());
  right.resize(keys.size());

  TextTable t;
  t.header({"stage", "actions A", "actions B", "cost A", "cost B", "d-cost",
            "dummies A", "dummies B"});
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Side& l = left[i];
    const Side& r = right[i];
    t.add_row({keys[i].name, l.present ? std::to_string(l.actions) : "-",
               r.present ? std::to_string(r.actions) : "-",
               l.present ? std::to_string(l.cost) : "-",
               r.present ? std::to_string(r.cost) : "-",
               std::to_string(r.cost - l.cost),
               l.present ? std::to_string(l.dummies) : "-",
               r.present ? std::to_string(r.dummies) : "-"});
  }
  t.add_row({"total", std::to_string(a.att.total_actions),
             std::to_string(b.att.total_actions), std::to_string(a.att.total_cost),
             std::to_string(b.att.total_cost),
             std::to_string(b.att.total_cost - a.att.total_cost),
             std::to_string(a.att.dummy_transfers),
             std::to_string(b.att.dummy_transfers)});
  t.print(out);
}

int cmd_explain(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  ExplainView view =
      make_view(inst.model, load_schedule(opt), load_provenance(opt));
  check_exact(view);

  const std::string diff_schedule = opt.get_string("diff-schedule", "", "");
  if (!diff_schedule.empty()) {
    const std::string diff_prov = opt.get_string("diff-provenance", "", "");
    if (diff_prov.empty()) {
      throw CliError{"--diff-schedule requires --diff-provenance <file>"};
    }
    ExplainView other = make_view(inst.model, load_schedule_at(diff_schedule),
                                  load_provenance_at(diff_prov));
    check_exact(other);
    out << "per-stage diff (A = --schedule, B = --diff-schedule):\n";
    print_diff(view, other, out);
    return 0;
  }

  const std::string out_path = opt.get_string("out", "", "");
  if (opt.get_bool("json", "", false)) {
    std::ostringstream buffer;
    explain_to_json(inst.model, view, buffer);
    write_text_file(out_path, buffer.str(), out, "explain JSON");
    return 0;
  }
  if (opt.get_bool("csv", "", false)) {
    std::ostringstream buffer;
    explain_to_csv(inst.model, view, buffer);
    write_text_file(out_path, buffer.str(), out, "explain CSV");
    return 0;
  }

  out << "schedule: " << view.att.total_actions << " actions, cost "
      << view.att.total_cost << " (dummy " << view.att.dummy_cost << "), "
      << view.att.dummy_transfers << " dummy transfer(s)\n\n";
  out << "per-stage attribution (sums reconcile with schedule stats):\n";
  print_attribution(view, out);
  if (opt.get_bool("actions", "", false)) {
    out << "\nper-action provenance:\n";
    print_actions(inst.model, view, out);
  }
  out << "\ndummy-transfer root causes:\n";
  print_root_causes(view, out);
  return 0;
}

exec::FaultSpec load_fault_spec(const CliOptions& opt) {
  const std::string path = opt.get_string("faults", "", "");
  if (path.empty()) return exec::FaultSpec{};  // fault-free execution
  std::ifstream in(path);
  if (!in) throw CliError{"cannot open fault spec file '" + path + "'"};
  try {
    return read_fault_spec(in);
  } catch (const std::exception& e) {
    throw CliError{std::string("failed to parse fault spec: ") + e.what()};
  }
}

void execution_report_to_json(JsonWriter& j, const exec::ExecutionReport& r,
                              bool valid, bool with_attempts) {
  j.begin_object();
  j.key("planned_cost").value(static_cast<std::int64_t>(r.planned_cost));
  j.key("effective_cost").value(static_cast<std::int64_t>(r.effective_cost));
  j.key("actual_cost").value(static_cast<std::int64_t>(r.actual_cost));
  j.key("cost_inflation").value(r.cost_inflation());
  j.key("attempts").value(static_cast<std::uint64_t>(r.attempts.size()));
  j.key("retries").value(static_cast<std::uint64_t>(r.retries));
  j.key("transient_failures")
      .value(static_cast<std::uint64_t>(r.transient_failures));
  j.key("degraded_transfers")
      .value(static_cast<std::uint64_t>(r.degraded_transfers));
  j.key("loss_deletions").value(static_cast<std::uint64_t>(r.loss_deletions));
  j.key("planned_dummy_transfers")
      .value(static_cast<std::uint64_t>(r.planned_dummy_transfers));
  j.key("effective_dummy_transfers")
      .value(static_cast<std::uint64_t>(r.effective_dummy_transfers));
  j.key("effective_actions").value(static_cast<std::uint64_t>(r.effective.size()));
  j.key("finished_at").value(static_cast<std::int64_t>(r.finished_at));
  j.key("total_stall").value(static_cast<std::int64_t>(r.total_stall));
  j.key("total_backoff").value(static_cast<std::int64_t>(r.total_backoff));
  j.key("reached_goal").value(r.reached_goal);
  j.key("valid").value(valid);
  j.key("replans").begin_array();
  for (const exec::ReplanEvent& e : r.replans) {
    j.begin_object();
    j.key("at").value(static_cast<std::int64_t>(e.at));
    j.key("reason").value(to_string(e.reason));
    j.key("dropped").value(static_cast<std::uint64_t>(e.dropped));
    j.key("added").value(static_cast<std::uint64_t>(e.added));
    j.key("residual_lower_bound")
        .value(static_cast<std::int64_t>(e.residual_lower_bound));
    j.key("seconds").value(e.seconds);
    j.end_object();
  }
  j.end_array();
  if (with_attempts) {
    j.key("attempt_log").begin_array();
    for (const exec::Attempt& a : r.attempts) {
      j.begin_object();
      j.key("action").value(a.action.to_string());
      j.key("attempt").value(a.attempt);
      j.key("at").value(static_cast<std::int64_t>(a.at));
      j.key("outcome").value(to_string(a.outcome));
      j.key("cost_paid").value(static_cast<std::int64_t>(a.cost_paid));
      j.key("stall").value(static_cast<std::int64_t>(a.stall));
      j.key("backoff").value(static_cast<std::int64_t>(a.backoff));
      j.end_object();
    }
    j.end_array();
  }
  j.end_object();
}

int cmd_execute(const CliOptions& opt, std::ostream& out,
                const obs::Session& session) {
  const Instance inst = load_instance(opt);
  const Schedule plan = load_schedule(opt);
  const exec::FaultSpec faults = load_fault_spec(opt);

  exec::ExecutorOptions options;
  options.replan_algo = opt.get_string("algo", "", options.replan_algo);
  options.seed = static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1));
  options.retry.max_retries =
      static_cast<std::size_t>(opt.get_int("retries", "", 3));
  options.retry.base_backoff = opt.get_int("backoff", "", 16);
  options.retry.multiplier = opt.get_double("backoff-mult", "", 2.0);
  options.retry.max_backoff = opt.get_int("backoff-max", "", 1024);
  options.retry.jitter = opt.get_double("jitter", "", 0.5);
  options.max_replans =
      static_cast<std::size_t>(opt.get_int("max-replans", "", 16));
  options.degrade_after =
      static_cast<std::size_t>(opt.get_int("degrade-after", "", 2));
  const std::string prov_out = opt.get_string("provenance-out", "", "");
  options.record_provenance = !prov_out.empty();

  // Flight recorder: journal + timeline want the event stream, the sampler
  // (owned by the obs session when --series-out is set) wants virtual-clock
  // samples at attempt/retry/replan boundaries. Both hooks are runtime-gated
  // and never observed by control flow, so schedules stay bit-identical.
  const std::string journal_out = opt.get_string("journal-out", "", "");
  const std::string timeline_out = opt.get_string("timeline-out", "", "");
  std::optional<obs::Journal> journal;
  if (!journal_out.empty() || !timeline_out.empty()) {
    const auto cap = opt.get_int("journal-cap", "", 1 << 16);
    if (cap <= 0) throw CliError{"--journal-cap must be positive"};
    journal.emplace(static_cast<std::size_t>(cap));
    options.journal = &*journal;
  }
  // An interrupted run should still leave a readable journal: the obs
  // session's SIGINT/SIGTERM flush path runs this hook (with a default run
  // summary — the run never finished) before the process dies. The guard
  // drops the hook once the journal is written normally below.
  obs::add_interrupt_hook([&journal, journal_out] {
    if (journal && !journal_out.empty()) {
      write_journal_file(journal_out, journal->events(), journal->dropped(),
                         JournalRunSummary{});
    }
  });
  struct HookGuard {
    ~HookGuard() { obs::clear_interrupt_hooks(); }
  } hook_guard;
  options.sampler = session.sampler();

  const exec::ExecutionReport report = [&] {
    try {
      return exec::execute_schedule(inst.model, inst.x_old, inst.x_new, plan,
                                    faults, options);
    } catch (const std::invalid_argument& e) {
      throw CliError{e.what()};
    }
  }();
  const bool valid = Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                         report.effective);

  if (!prov_out.empty()) {
    std::ostringstream buffer;
    write_provenance(buffer, report.provenance);
    write_text_file(prov_out, buffer.str(), out, "provenance");
  }
  if (journal) {
    JournalRunSummary run;
    run.planned_cost = static_cast<std::int64_t>(report.planned_cost);
    run.effective_cost = static_cast<std::int64_t>(report.effective_cost);
    run.actual_cost = static_cast<std::int64_t>(report.actual_cost);
    run.finished_at = static_cast<std::int64_t>(report.finished_at);
    run.total_stall = static_cast<std::int64_t>(report.total_stall);
    run.total_backoff = static_cast<std::int64_t>(report.total_backoff);
    run.attempts = report.attempts.size();
    run.retries = report.retries;
    run.transient_failures = report.transient_failures;
    run.degraded_transfers = report.degraded_transfers;
    run.loss_deletions = report.loss_deletions;
    run.replans = report.replans.size();
    run.reached_goal = report.reached_goal;
    const std::vector<obs::JournalEvent> events = journal->events();
    if (!journal_out.empty()) {
      write_journal_file(journal_out, events, journal->dropped(), run);
      out << "journal written to " << journal_out << " (" << events.size()
          << " events";
      if (journal->dropped() > 0) out << ", " << journal->dropped() << " dropped";
      out << ")\n";
    }
    if (!timeline_out.empty()) {
      JournalDoc doc;
      doc.dropped = journal->dropped();
      doc.run = run;
      doc.events = events;
      // Compose virtual-clock lanes with the wall-clock OBS_SPAN traces when
      // recording is armed; under RTSP_OBS=OFF the trace side is just empty.
      std::vector<obs::TraceEvent> wall;
      if (obs::enabled()) wall = obs::collect_trace();
      write_timeline_file(timeline_out, doc, wall);
      out << "timeline written to " << timeline_out
          << " (open in ui.perfetto.dev)\n";
    }
  }
  const std::string out_path = opt.get_string("out", "", "");
  if (!out_path.empty()) {
    write_text_file(out_path, schedule_to_text(report.effective), out,
                    "effective schedule");
  }

  if (opt.get_bool("json", "", false)) {
    JsonWriter j(out);
    execution_report_to_json(j, report, valid,
                             opt.get_bool("attempts", "", false));
    out << '\n';
    return (report.reached_goal && valid) ? 0 : 2;
  }

  out << "planned cost:        " << report.planned_cost << '\n';
  out << "actual cost paid:    " << report.actual_cost << " (inflation "
      << report.cost_inflation() << ")\n";
  out << "effective cost:      " << report.effective_cost << '\n';
  out << "attempts:            " << report.attempts.size() << " ("
      << report.retries << " retries, " << report.transient_failures
      << " transient failures)\n";
  out << "replans:             " << report.replans.size() << '\n';
  out << "degraded transfers:  " << report.degraded_transfers << '\n';
  out << "loss deletions:      " << report.loss_deletions << '\n';
  out << "dummy transfers:     " << report.effective_dummy_transfers
      << " effective vs " << report.planned_dummy_transfers << " planned\n";
  out << "finished at:         tick " << report.finished_at << " (stall "
      << report.total_stall << ", backoff " << report.total_backoff << ")\n";
  out << "reached X_new:       " << (report.reached_goal ? "yes" : "NO") << '\n';
  out << "effective validates: " << (valid ? "yes" : "NO") << '\n';
  for (const exec::ReplanEvent& e : report.replans) {
    out << "  replan @" << e.at << " [" << to_string(e.reason) << "] dropped "
        << e.dropped << ", added " << e.added << " (residual lb "
        << e.residual_lower_bound << ")\n";
  }
  if (opt.get_bool("attempts", "", false)) {
    out << "attempt log:\n";
    for (const exec::Attempt& a : report.attempts) {
      out << "  @" << a.at << " #" << a.attempt << ' ' << a.action.to_string()
          << ": " << to_string(a.outcome) << " (cost " << a.cost_paid;
      if (a.stall > 0) out << ", stall " << a.stall;
      if (a.backoff > 0) out << ", backoff " << a.backoff;
      out << ")\n";
    }
  }
  return (report.reached_goal && valid) ? 0 : 2;
}

daemon::DaemonOptions parse_daemon_options(const CliOptions& opt) {
  daemon::DaemonOptions d;
  d.state_dir = opt.get_string("state-dir", "", "");
  d.seed = static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1));
  d.algo = opt.get_string("algo", "", d.algo);
  d.portfolio = opt.get_bool("portfolio", "", false);
  d.plan_budget_ticks = static_cast<std::uint64_t>(
      opt.get_int("plan-budget-ticks", "", static_cast<std::int64_t>(d.plan_budget_ticks)));
  d.epoch_budget_ticks = opt.get_int("epoch-budget", "", 0);
  d.max_attempts =
      static_cast<std::uint32_t>(opt.get_int("max-attempts", "", 4));
  d.queue_depth = static_cast<std::size_t>(opt.get_int("queue-depth", "", 8));
  const std::string policy = opt.get_string("policy", "", "coalesce");
  if (policy == "reject") {
    d.policy = daemon::QueuePolicy::kReject;
  } else if (policy == "coalesce") {
    d.policy = daemon::QueuePolicy::kCoalesce;
  } else {
    throw CliError{"--policy must be reject or coalesce"};
  }
  d.checkpoint_every =
      static_cast<std::uint64_t>(opt.get_int("checkpoint-every", "", 4));
  d.fsync = opt.get_bool("fsync", "", true);
  d.faults = load_fault_spec(opt);
  d.exec_retry.max_retries = static_cast<int>(opt.get_int("retries", "", 3));
  d.exec_retry.base_backoff = opt.get_int("backoff", "", 16);
  d.exec_retry.multiplier = opt.get_double("backoff-mult", "", 2.0);
  d.exec_retry.max_backoff = opt.get_int("backoff-max", "", 1024);
  d.exec_retry.jitter = opt.get_double("jitter", "", 0.5);
  d.max_replans = static_cast<std::size_t>(opt.get_int("max-replans", "", 16));
  d.degrade_after =
      static_cast<std::size_t>(opt.get_int("degrade-after", "", 2));
  return d;
}

int cmd_serve(const CliOptions& opt, std::ostream& out, std::ostream& err) {
  daemon::ServeOptions so;
  so.core = parse_daemon_options(opt);
  so.instance_path = opt.get_string("instance", "", "");
  if (so.instance_path.empty()) throw CliError{"missing --instance <file>"};
  so.epochs_path = opt.get_string("epochs", "", "");
  so.recover = opt.get_bool("recover", "", false);
  so.listen_port =
      opt.has("listen") ? static_cast<int>(opt.get_int("listen", "", 0)) : -1;
  so.port_file = opt.get_string("port-file", "", "");
  so.final_out = opt.get_string("final-out", "", "");
  so.idle_exit_ms = opt.get_int("idle-exit-ms", "", -1);
  if (so.core.state_dir.empty() && so.recover) {
    throw CliError{"--recover requires --state-dir"};
  }
  try {
    return daemon::run_serve(so, out, err);
  } catch (const std::invalid_argument& e) {
    throw CliError{e.what()};
  }
}

int cmd_epochs(const CliOptions& opt, std::ostream& out) {
  const Instance inst = load_instance(opt);
  EpochStreamSpec spec;
  spec.count = static_cast<std::size_t>(opt.get_int("count", "", 3));
  spec.moves = static_cast<std::size_t>(opt.get_int("moves", "", 8));
  spec.churn = opt.get_double("churn", "", 0.25);
  const auto seed =
      static_cast<std::uint64_t>(opt.get_int("seed", "RTSP_SEED", 1));
  Rng rng(mix64(seed, 0xe90c5ull));  // independent of the solver streams
  std::vector<ReplicationMatrix> epochs;
  try {
    epochs = make_epoch_stream(inst.model, inst.x_old, spec, rng);
  } catch (const std::invalid_argument& e) {
    throw CliError{e.what()};
  }

  EpochStreamDoc doc;
  doc.servers = inst.model.num_servers();
  doc.objects = inst.model.num_objects();
  doc.epochs = epochs;
  const std::string out_path = opt.get_string("out", "", "");
  if (out_path.empty()) {
    write_epoch_stream(out, doc);
  } else {
    write_epoch_stream_file(out_path, doc);
    out << "epoch stream written to " << out_path << " (" << epochs.size()
        << " epochs)\n";
  }
  const std::string final_out = opt.get_string("final-out", "", "");
  if (!final_out.empty()) {
    const ReplicationMatrix& final_x = epochs.empty() ? inst.x_old : epochs.back();
    write_placement_file(final_out, final_x);
    out << "expected final placement written to " << final_out << '\n';
  }
  return 0;
}

int cmd_submit(const CliOptions& opt, std::ostream& out) {
  const std::string host = opt.get_string("host", "", "127.0.0.1");
  std::uint16_t port = static_cast<std::uint16_t>(opt.get_int("port", "", 0));
  const std::string port_file = opt.get_string("port-file", "", "");
  if (port == 0 && !port_file.empty()) {
    std::ifstream pf(port_file);
    int p = 0;
    if (!(pf >> p) || p <= 0 || p > 65535) {
      throw CliError{"cannot read a port from '" + port_file + "'"};
    }
    port = static_cast<std::uint16_t>(p);
  }
  if (port == 0) throw CliError{"missing --port (or --port-file)"};
  const int timeout_ms = static_cast<int>(opt.get_int("timeout-ms", "", 5000));

  try {
    if (opt.get_bool("status", "", false)) {
      const net::HttpResponse r = net::http_get(host, port, "/daemon/status", timeout_ms);
      out << r.body << '\n';
      return r.status == 200 ? 0 : 2;
    }
    if (opt.get_bool("drain", "", false)) {
      const net::HttpResponse r =
          net::http_post(host, port, "/drain", "", "application/json", timeout_ms);
      out << r.body << '\n';
      return r.status == 200 ? 0 : 2;
    }
    const std::string epochs_path = opt.get_string("epochs", "", "");
    if (epochs_path.empty()) {
      throw CliError{"nothing to do: pass --epochs FILE, --status or --drain"};
    }
    const EpochStreamDoc doc = read_epoch_stream_file(epochs_path);
    const int max_retries = static_cast<int>(opt.get_int("retries", "", 100));
    const int retry_ms = static_cast<int>(opt.get_int("retry-ms", "", 50));
    std::size_t index = 0;
    for (const ReplicationMatrix& target : doc.epochs) {
      ++index;
      const std::string body = "{\"place\":" + placement_pairs_json(target) + "}";
      int attempts = 0;
      while (true) {
        const net::HttpResponse r =
            net::http_post(host, port, "/epochs", body, "application/json", timeout_ms);
        if (r.status == 429 && attempts++ < max_retries) {
          // Backpressure: wait for the daemon to make room, then retry.
          std::this_thread::sleep_for(std::chrono::milliseconds(retry_ms));
          continue;
        }
        out << "epoch " << index << ": " << r.status << ' ' << r.body << '\n';
        if (r.status != 200) return 2;
        break;
      }
    }
    return 0;
  } catch (const std::runtime_error& e) {
    throw CliError{std::string("submit: ") + e.what()};
  }
}

}  // namespace

void print_usage(std::ostream& out) {
  out << "rtsp — replica transfer scheduling toolkit\n"
         "\n"
         "usage: rtsp <command> [options]\n"
         "\n"
         "commands:\n"
         "  generate  --kind paper-equal|paper-uniform|paper-extra|random|scale\n"
         "            [--servers N] [--objects N] [--replicas R] [--extra E]\n"
         "            [--slack F] [--seed S] [--out FILE] [--binary]\n"
         "  solve     --instance FILE [--algo SPEC] [--seed S] [--out FILE] [--json]\n"
         "            [--provenance-out FILE] [--store auto|dense|sparse]\n"
         "            [--budget-ticks T] [--budget-ms MS] [--portfolio]\n"
         "            [--algos SPEC,SPEC,...] [--threads N] [--lns BOOL]\n"
         "            [--lns-rounds N]\n"
         "  exact     --instance FILE [--max-nodes N] [--staging BOOL] [--out FILE]\n"
         "  validate  --instance FILE --schedule FILE [--all]\n"
         "  stats     --instance FILE --schedule FILE\n"
         "  info      --instance FILE [--json]\n"
         "  makespan  --instance FILE --schedule FILE [--ports P] [--bandwidth B]\n"
         "  deadline  --instance FILE --schedule FILE [--deadline T] [--ports P]\n"
         "            [--bandwidth B] [--out FILE]\n"
         "  phases    --instance FILE --schedule FILE [--ports P] [--print]\n"
         "  dot       --instance FILE [--schedule FILE [--provenance FILE]]\n"
         "            [--out FILE]\n"
         "  explain   --instance FILE --schedule FILE --provenance FILE\n"
         "            [--actions] [--json | --csv] [--out FILE]\n"
         "            [--diff-schedule FILE --diff-provenance FILE]\n"
         "  execute   --instance FILE --schedule FILE [--faults FILE] [--seed S]\n"
         "            [--algo SPEC] [--retries N] [--backoff T] [--backoff-mult F]\n"
         "            [--backoff-max T] [--jitter F] [--max-replans N]\n"
         "            [--degrade-after N] [--attempts] [--json] [--out FILE]\n"
         "            [--provenance-out FILE] [--journal-out FILE]\n"
         "            [--timeline-out FILE] [--journal-cap N]\n"
         "  report    --journal FILE [--series FILE] [--metrics FILE]\n"
         "            [--instance FILE --schedule FILE --provenance FILE]\n"
         "            [--html FILE] [--out FILE]\n"
         "  serve     --instance FILE [--epochs FILE] [--state-dir DIR]\n"
         "            [--recover] [--listen PORT] [--port-file FILE]\n"
         "            [--final-out FILE] [--idle-exit-ms MS] [--seed S]\n"
         "            [--algo SPEC | --portfolio [--plan-budget-ticks T]]\n"
         "            [--epoch-budget T] [--max-attempts N] [--queue-depth N]\n"
         "            [--policy reject|coalesce] [--checkpoint-every N]\n"
         "            [--fsync BOOL] [--faults FILE] + execute's retry flags\n"
         "  epochs    --instance FILE [--count N] [--moves N] [--churn F]\n"
         "            [--seed S] [--out FILE] [--final-out FILE]\n"
         "  submit    --port P | --port-file FILE [--host H]\n"
         "            [--epochs FILE | --status | --drain] [--timeout-ms MS]\n"
         "            [--retries N] [--retry-ms MS]\n"
         "  help\n"
         "\n"
         "algorithm SPECs combine one builder (AR, GOLCF, RDF, GSDF, RDFP, GSDFP)\n"
         "with improvers (H1, H2, OP1, SA, H1H2FIX), e.g. GOLCF+H1+H2+OP1.\n"
         "RDFP/GSDFP are sharded-parallel builder passes (bit-identical to\n"
         "their serial forms). `solve --portfolio` races pipelines under a\n"
         "budget and polishes the winner with LNS; --budget-ticks gives a\n"
         "deterministic virtual-time budget (bit-reproducible), --budget-ms\n"
         "a wall-clock one. Instances may be text (rtsp-instance v1) or\n"
         "binary (RTSPBIN1, mmap-loaded); `generate --binary` writes the\n"
         "latter, `--kind scale` generates million-object instances fast.\n"
         "\n"
         "observability (any command):\n"
         "  --obs               print metrics + span summary after the run\n"
         "  --trace-out=FILE    write Chrome trace JSON (open in ui.perfetto.dev)\n"
         "  --metrics-out=FILE  write metrics snapshot (.json or .csv)\n"
         "  --series-out=FILE   sample metrics over time (.csv or JSONL)\n"
         "  --sample-ms=N       wall-clock sampling period (default 100)\n"
         "  --log-out=FILE      structured log (rtsp-log v1 JSONL)\n"
         "  --log-level=L       arm logging at trace|debug|info|warn|error\n"
         "  --introspect-port=P serve /metrics /healthz /progress /logz?n=K\n"
         "                      on 127.0.0.1:P while the command runs\n"
         "                      (0 picks a free port)\n";
}

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    print_usage(err);
    return 1;
  }
  const std::string command = argv[1];
  const CliOptions opt(argc - 1, argv + 1);
  const obs::Session obs_session(opt);
  try {
    const auto finish = [&](int rc) {
      obs_session.finish(out);
      return rc;
    };
    if (command == "generate") return finish(cmd_generate(opt, out));
    if (command == "solve") return finish(cmd_solve(opt, out));
    if (command == "exact") return finish(cmd_exact(opt, out));
    if (command == "validate") return finish(cmd_validate(opt, out));
    if (command == "stats") return finish(cmd_stats(opt, out));
    if (command == "info") return finish(cmd_info(opt, out));
    if (command == "makespan") return finish(cmd_makespan(opt, out));
    if (command == "deadline") return finish(cmd_deadline(opt, out));
    if (command == "phases") return finish(cmd_phases(opt, out));
    if (command == "dot") return finish(cmd_dot(opt, out));
    if (command == "explain") return finish(cmd_explain(opt, out));
    if (command == "execute") return finish(cmd_execute(opt, out, obs_session));
    if (command == "report") return finish(cmd_report(opt, out));
    if (command == "serve") return finish(cmd_serve(opt, out, err));
    if (command == "epochs") return finish(cmd_epochs(opt, out));
    if (command == "submit") return finish(cmd_submit(opt, out));
    if (command == "help" || command == "--help" || command == "-h") {
      print_usage(out);
      return 0;
    }
    err << "unknown command '" << command << "'\n";
    print_usage(err);
    return 1;
  } catch (const CliError& e) {
    err << "error: " << e.message << '\n';
    return 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace rtsp::cli
