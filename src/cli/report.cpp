#include "cli/report.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/schedule_stats.hpp"
#include "io/instance_binary_io.hpp"
#include "io/journal_io.hpp"
#include "io/provenance_io.hpp"
#include "io/schedule_io.hpp"
#include "obs/journal.hpp"
#include "obs/provenance.hpp"
#include "obs/series_io.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace rtsp::cli {

namespace {

using obs::JournalEvent;
using obs::JournalEventType;

std::string fixed(double v, int precision) {
  char buf[48];
  const auto res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  if (res.ec != std::errc()) return "?";
  return std::string(buf, res.ptr);
}

std::string esc_html(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Derived views of the journal

struct LaneSpan {
  std::int64_t start = 0;
  std::int64_t dur = 0;
  JournalEventType type = JournalEventType::AttemptSuccess;
  std::int64_t object = -1;
  std::int64_t source = -1;
};

struct Lane {
  std::int64_t server = 0;
  std::vector<LaneSpan> spans;
  std::vector<std::int64_t> losses;  ///< loss ticks
};

struct JournalView {
  std::array<std::uint64_t, obs::kJournalEventTypes> type_counts{};
  /// Cumulative cost actually paid, sampled after every attempt:
  /// (tick the attempt finished, total paid so far). Starts at (0, 0).
  std::vector<std::pair<std::int64_t, std::int64_t>> paid;
  std::vector<std::int64_t> fault_ticks;
  std::vector<std::int64_t> retry_ticks;
  std::vector<std::int64_t> replan_ticks;  ///< replan triggers + drain
  std::vector<Lane> lanes;
  std::size_t lanes_total = 0;  ///< before the render cap
  std::int64_t max_tick = 0;
};

constexpr std::size_t kMaxLanes = 40;

JournalView derive_view(const JournalDoc& doc) {
  JournalView v;
  v.paid.emplace_back(0, 0);
  std::int64_t paid_total = 0;
  for (const JournalEvent& e : doc.events) {
    v.type_counts[static_cast<std::size_t>(e.type)]++;
    v.max_tick = std::max(v.max_tick, e.tick + std::max<std::int64_t>(e.value, 0));
    switch (e.type) {
      case JournalEventType::AttemptSuccess:
      case JournalEventType::TransientFault: {
        paid_total += e.value;
        v.paid.emplace_back(e.tick + e.value, paid_total);
        if (e.type == JournalEventType::TransientFault) {
          v.fault_ticks.push_back(e.tick);
        }
        break;
      }
      case JournalEventType::Retry:
        v.retry_ticks.push_back(e.tick);
        break;
      case JournalEventType::ReplanTrigger:
      case JournalEventType::Drain:
        v.replan_ticks.push_back(e.tick);
        break;
      default:
        break;
    }
  }
  v.max_tick = std::max(v.max_tick, doc.run.finished_at);

  // Per-server lanes (transfer/offline spans + loss markers), first kMaxLanes
  // servers by id.
  std::vector<std::int64_t> servers;
  for (const JournalEvent& e : doc.events) {
    if (e.server >= 0 &&
        std::find(servers.begin(), servers.end(), e.server) == servers.end()) {
      servers.push_back(e.server);
    }
  }
  std::sort(servers.begin(), servers.end());
  v.lanes_total = servers.size();
  if (servers.size() > kMaxLanes) servers.resize(kMaxLanes);
  for (std::int64_t s : servers) v.lanes.push_back({s, {}, {}});
  const auto lane_of = [&](std::int64_t server) -> Lane* {
    for (Lane& l : v.lanes) {
      if (l.server == server) return &l;
    }
    return nullptr;
  };
  for (const JournalEvent& e : doc.events) {
    Lane* lane = e.server >= 0 ? lane_of(e.server) : nullptr;
    if (lane == nullptr) continue;
    switch (e.type) {
      case JournalEventType::AttemptSuccess:
      case JournalEventType::TransientFault:
      case JournalEventType::OfflineOpen:
        lane->spans.push_back({e.tick, e.value, e.type, e.object, e.source});
        break;
      case JournalEventType::ReplicaLoss:
        lane->losses.push_back(e.tick);
        break;
      default:
        break;
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Optional joined inputs

struct StageView {
  prov::Provenance p;
  prov::AttributionSummary att;
  ScheduleStats stats;
};

StageView make_stage_view(const CliOptions& opt, const JournalDoc& doc) {
  const std::string instance_path = opt.get_string("instance", "", "");
  const std::string schedule_path = opt.get_string("schedule", "", "");
  const std::string prov_path = opt.get_string("provenance", "", "");
  const Instance inst = read_instance_any(instance_path);
  Schedule h;
  {
    std::ifstream in(schedule_path);
    if (!in) throw std::runtime_error("cannot open schedule file '" + schedule_path + "'");
    h = read_schedule(in);
  }
  StageView v;
  {
    std::ifstream in(prov_path);
    if (!in) throw std::runtime_error("cannot open provenance file '" + prov_path + "'");
    v.p = read_provenance(in);
  }
  if (v.p.entries.size() != h.size()) {
    throw std::runtime_error("provenance does not match schedule (" +
                             std::to_string(v.p.entries.size()) + " entries vs " +
                             std::to_string(h.size()) + " actions)");
  }
  v.att = prov::attribute_schedule(inst.model, h, v.p);
  v.stats = analyze_schedule(inst.model, h);
  // Same exactness bar as `rtsp explain`: per-stage sums must equal the
  // whole-schedule totals, and the schedule must be the one the journal's
  // run produced (its nominal cost is the header's effective_cost).
  if (v.att.total_actions != v.stats.actions ||
      v.att.total_cost != v.stats.total_cost ||
      v.att.dummy_transfers != v.stats.dummy_transfers ||
      v.att.dummy_cost != v.stats.dummy_cost) {
    throw std::runtime_error(
        "stage attribution does not reconcile with schedule stats");
  }
  if (static_cast<std::int64_t>(v.att.total_cost) != doc.run.effective_cost) {
    throw std::runtime_error(
        "schedule does not match journal: attribution cost " +
        std::to_string(v.att.total_cost) + " vs journal effective_cost " +
        std::to_string(doc.run.effective_cost));
  }
  return v;
}

std::string stage_label(const prov::Provenance& p, std::uint32_t idx) {
  if (idx >= p.stages.size()) return "?";
  return p.stages[idx].name;
}

/// One histogram row of a metrics snapshot JSON (--metrics FILE).
struct HistRow {
  std::string name;
  std::uint64_t count = 0;
  double mean_us = 0, p50_us = 0, p90_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
};

std::vector<HistRow> load_metrics_histograms(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open metrics file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = parse_json(buf.str());
  std::vector<HistRow> rows;
  const JsonValue* hists = doc.find("histograms");
  if (hists == nullptr) return rows;
  for (const auto& [name, h] : hists->members()) {
    HistRow r;
    r.name = name;
    const auto num = [&](const char* key) {
      const JsonValue* f = h.find(key);
      return f == nullptr ? 0.0 : f->as_double();
    };
    r.count = static_cast<std::uint64_t>(num("count"));
    r.mean_us = num("mean_us");
    r.p50_us = num("p50_us");
    r.p90_us = num("p90_us");
    r.p95_us = num("p95_us");
    r.p99_us = num("p99_us");
    r.max_us = num("max_us");
    rows.push_back(std::move(r));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// SVG charts. All coordinates go through fixed() so output is locale-safe.
// Colors reference the CSS custom properties declared in the page <style>
// (categorical slot 1 = blue, slot 2 = orange; chrome in muted inks), so the
// charts follow the viewer's light/dark preference.

struct Scale {
  double lo = 0, hi = 1, px0 = 0, px1 = 1;
  double operator()(double v) const {
    if (hi == lo) return px0;
    return px0 + (v - lo) / (hi - lo) * (px1 - px0);
  }
};

std::string axis_number(double v) {
  if (v >= 1e6) return fixed(v / 1e6, v >= 1e7 ? 0 : 1) + "M";
  if (v >= 1e4) return fixed(v / 1e3, 0) + "k";
  return fixed(v, 0);
}

void svg_open(std::ostringstream& os, int w, int h) {
  os << "<svg viewBox=\"0 0 " << w << ' ' << h << "\" width=\"" << w
     << "\" height=\"" << h << "\" role=\"img\">";
}

void svg_grid(std::ostringstream& os, const Scale& x, const Scale& y, int steps) {
  for (int i = 1; i <= steps; ++i) {
    const double v = y.lo + (y.hi - y.lo) * i / steps;
    os << "<line x1=\"" << fixed(x.px0, 1) << "\" x2=\"" << fixed(x.px1, 1)
       << "\" y1=\"" << fixed(y(v), 1) << "\" y2=\"" << fixed(y(v), 1)
       << "\" stroke=\"var(--grid)\" stroke-width=\"1\"/>";
    os << "<text x=\"" << fixed(x.px0 - 6, 1) << "\" y=\"" << fixed(y(v) + 3, 1)
       << "\" text-anchor=\"end\" class=\"tick\">" << axis_number(v) << "</text>";
  }
  // Baseline + x extent labels.
  os << "<line x1=\"" << fixed(x.px0, 1) << "\" x2=\"" << fixed(x.px1, 1)
     << "\" y1=\"" << fixed(y(y.lo), 1) << "\" y2=\"" << fixed(y(y.lo), 1)
     << "\" stroke=\"var(--axis)\" stroke-width=\"1\"/>";
  os << "<text x=\"" << fixed(x.px0, 1) << "\" y=\"" << fixed(y(y.lo) + 14, 1)
     << "\" class=\"tick\">" << axis_number(x.lo) << "</text>";
  os << "<text x=\"" << fixed(x.px1, 1) << "\" y=\"" << fixed(y(y.lo) + 14, 1)
     << "\" text-anchor=\"end\" class=\"tick\">" << axis_number(x.hi)
     << " ticks</text>";
}

std::string polyline(const std::vector<std::pair<std::int64_t, std::int64_t>>& pts,
                     const Scale& x, const Scale& y) {
  std::ostringstream os;
  for (const auto& [px, py] : pts) {
    os << fixed(x(static_cast<double>(px)), 1) << ','
       << fixed(y(static_cast<double>(py)), 1) << ' ';
  }
  return os.str();
}

/// Cost trajectory: planned (the fault-free diagonal — under serial cost-tick
/// execution cumulative planned spend equals elapsed ticks) vs actually paid.
std::string chart_trajectory(const JournalView& v, const JournalDoc& doc) {
  const int W = 760, H = 280;
  const double L = 56, R = 16, T = 18, B = 30;
  const double max_x = static_cast<double>(std::max<std::int64_t>(
      {v.max_tick, doc.run.planned_cost, 1}));
  const double max_y = static_cast<double>(std::max<std::int64_t>(
      {doc.run.planned_cost, doc.run.actual_cost, 1}));
  const Scale x{0, max_x, L, W - R};
  const Scale y{0, max_y, H - B, T};

  std::ostringstream os;
  svg_open(os, W, H);
  svg_grid(os, x, y, 4);
  for (std::int64_t t : v.replan_ticks) {
    os << "<line x1=\"" << fixed(x(static_cast<double>(t)), 1) << "\" x2=\""
       << fixed(x(static_cast<double>(t)), 1) << "\" y1=\"" << fixed(T, 1)
       << "\" y2=\"" << fixed(y(0), 1)
       << "\" stroke=\"var(--muted)\" stroke-width=\"1\" "
          "stroke-dasharray=\"2 3\"><title>replan @"
       << t << "</title></line>";
  }
  const std::vector<std::pair<std::int64_t, std::int64_t>> planned = {
      {0, 0}, {doc.run.planned_cost, doc.run.planned_cost}};
  os << "<polyline fill=\"none\" stroke=\"var(--s1)\" stroke-width=\"2\" "
        "points=\""
     << polyline(planned, x, y) << "\"><title>planned</title></polyline>";
  os << "<polyline fill=\"none\" stroke=\"var(--s2)\" stroke-width=\"2\" "
        "points=\""
     << polyline(v.paid, x, y) << "\"><title>paid</title></polyline>";
  os << "</svg>";
  return os.str();
}

/// Retry/fault density: stacked counts per tick bucket (retries slot 1,
/// faults slot 2), 2px surface gap between stacked segments.
std::string chart_density(const JournalView& v) {
  const int W = 760, H = 200;
  const double L = 56, R = 16, T = 12, B = 30;
  const std::size_t buckets = 48;
  std::vector<std::uint64_t> faults(buckets, 0), retries(buckets, 0);
  const double span = static_cast<double>(std::max<std::int64_t>(v.max_tick, 1));
  const auto bucket_of = [&](std::int64_t t) {
    auto b = static_cast<std::size_t>(static_cast<double>(t) / span *
                                      static_cast<double>(buckets));
    return std::min(b, buckets - 1);
  };
  for (std::int64_t t : v.fault_ticks) faults[bucket_of(t)]++;
  for (std::int64_t t : v.retry_ticks) retries[bucket_of(t)]++;
  std::uint64_t max_stack = 1;
  for (std::size_t b = 0; b < buckets; ++b) {
    max_stack = std::max(max_stack, faults[b] + retries[b]);
  }
  const Scale x{0, span, L, W - R};
  const Scale y{0, static_cast<double>(max_stack), H - B, T};

  std::ostringstream os;
  svg_open(os, W, H);
  svg_grid(os, x, y, 3);
  const double bw = (W - L - R) / static_cast<double>(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    const double px = L + bw * static_cast<double>(b) + 1;
    const double w = std::max(bw - 2, 1.0);
    double base = y(0);
    if (retries[b] > 0) {
      const double h = y(0) - y(static_cast<double>(retries[b]));
      os << "<rect x=\"" << fixed(px, 1) << "\" y=\"" << fixed(base - h, 1)
         << "\" width=\"" << fixed(w, 1) << "\" height=\"" << fixed(h, 1)
         << "\" rx=\"1.5\" fill=\"var(--s1)\"><title>" << retries[b]
         << " retries</title></rect>";
      base -= h + 2;  // 2px surface gap between stacked segments
    }
    if (faults[b] > 0) {
      const double h = y(0) - y(static_cast<double>(faults[b]));
      os << "<rect x=\"" << fixed(px, 1) << "\" y=\"" << fixed(base - h, 1)
         << "\" width=\"" << fixed(w, 1) << "\" height=\"" << fixed(h, 1)
         << "\" rx=\"1.5\" fill=\"var(--s2)\"><title>" << faults[b]
         << " transient faults</title></rect>";
    }
  }
  os << "</svg>";
  return os.str();
}

/// Per-server utilization lanes over the virtual clock: successful transfer
/// spans (slot 1), failed attempts (slot 2), offline stalls (axis gray),
/// replica losses as status-critical cross markers (icon + legend label, so
/// the status color never carries meaning alone).
std::string chart_lanes(const JournalView& v) {
  const double L = 64, R = 16, T = 8, B = 24;
  const double lane_h = 14, lane_gap = 5;
  const int W = 760;
  const int H = static_cast<int>(T + B + (lane_h + lane_gap) *
                                 static_cast<double>(v.lanes.size()));
  const double span = static_cast<double>(std::max<std::int64_t>(v.max_tick, 1));
  const Scale x{0, span, L, W - R};

  std::ostringstream os;
  svg_open(os, W, H);
  for (std::size_t i = 0; i < v.lanes.size(); ++i) {
    const Lane& lane = v.lanes[i];
    const double top = T + (lane_h + lane_gap) * static_cast<double>(i);
    os << "<text x=\"" << fixed(L - 6, 1) << "\" y=\""
       << fixed(top + lane_h - 3, 1) << "\" text-anchor=\"end\" class=\"tick\">s"
       << lane.server << "</text>";
    os << "<line x1=\"" << fixed(L, 1) << "\" x2=\"" << fixed(double{W - R}, 1)
       << "\" y1=\"" << fixed(top + lane_h, 1) << "\" y2=\""
       << fixed(top + lane_h, 1)
       << "\" stroke=\"var(--grid)\" stroke-width=\"1\"/>";
    for (const LaneSpan& s : lane.spans) {
      const double px = x(static_cast<double>(s.start));
      const double pw =
          std::max(x(static_cast<double>(s.start + s.dur)) - px, 1.5);
      const char* color = "var(--s1)";
      std::string label = "k" + std::to_string(s.object);
      if (s.type == JournalEventType::TransientFault) {
        color = "var(--s2)";
        label = "fault k" + std::to_string(s.object);
      } else if (s.type == JournalEventType::OfflineOpen) {
        color = "var(--axis)";
        label = "offline";
      }
      os << "<rect x=\"" << fixed(px, 1) << "\" y=\"" << fixed(top, 1)
         << "\" width=\"" << fixed(pw, 1) << "\" height=\"" << fixed(lane_h, 1)
         << "\" rx=\"2\" fill=\"" << color << "\"><title>" << label << " @"
         << s.start << " +" << s.dur << "</title></rect>";
    }
    for (std::int64_t t : lane.losses) {
      const double px = x(static_cast<double>(t));
      os << "<text x=\"" << fixed(px, 1) << "\" y=\""
         << fixed(top + lane_h - 2, 1)
         << "\" text-anchor=\"middle\" class=\"loss\">&#10005;<title>loss @" << t
         << "</title></text>";
    }
  }
  os << "<text x=\"" << fixed(L, 1) << "\" y=\"" << fixed(double{H - 8}, 1)
     << "\" class=\"tick\">0</text>";
  os << "<text x=\"" << fixed(double{W - R}, 1) << "\" y=\""
     << fixed(double{H - 8}, 1) << "\" text-anchor=\"end\" class=\"tick\">"
     << axis_number(span) << " ticks</text>";
  os << "</svg>";
  return os.str();
}

/// Wall-clock sampler series: one line per chart (no legend needed), the
/// cumulative sum of one counter's deltas over wall time.
std::string chart_series(const obs::SeriesDoc& series, const std::string& counter) {
  std::vector<std::pair<std::int64_t, std::int64_t>> pts;
  std::int64_t total = 0;
  std::uint64_t t0 = series.samples.empty() ? 0 : series.samples.front().wall_ns;
  pts.emplace_back(0, 0);
  for (const obs::SeriesSample& s : series.samples) {
    for (const auto& [name, delta] : s.counter_deltas) {
      if (name == counter) {
        total += static_cast<std::int64_t>(delta);
      }
    }
    pts.emplace_back(static_cast<std::int64_t>((s.wall_ns - t0) / 1000000), total);
  }
  if (total == 0) return {};
  const int W = 760, H = 180;
  const double L = 56, R = 16, T = 12, B = 30;
  const Scale x{0, static_cast<double>(std::max<std::int64_t>(pts.back().first, 1)),
                L, W - R};
  const Scale y{0, static_cast<double>(total), H - B, T};
  std::ostringstream os;
  svg_open(os, W, H);
  for (int i = 1; i <= 3; ++i) {
    const double v = y.lo + (y.hi - y.lo) * i / 3;
    os << "<line x1=\"" << fixed(x.px0, 1) << "\" x2=\"" << fixed(x.px1, 1)
       << "\" y1=\"" << fixed(y(v), 1) << "\" y2=\"" << fixed(y(v), 1)
       << "\" stroke=\"var(--grid)\" stroke-width=\"1\"/>";
    os << "<text x=\"" << fixed(x.px0 - 6, 1) << "\" y=\"" << fixed(y(v) + 3, 1)
       << "\" text-anchor=\"end\" class=\"tick\">" << axis_number(v) << "</text>";
  }
  os << "<line x1=\"" << fixed(x.px0, 1) << "\" x2=\"" << fixed(x.px1, 1)
     << "\" y1=\"" << fixed(y(0), 1) << "\" y2=\"" << fixed(y(0), 1)
     << "\" stroke=\"var(--axis)\" stroke-width=\"1\"/>";
  os << "<text x=\"" << fixed(x.px1, 1) << "\" y=\"" << fixed(y(0) + 14, 1)
     << "\" text-anchor=\"end\" class=\"tick\">"
     << axis_number(x.hi) << " ms</text>";
  os << "<polyline fill=\"none\" stroke=\"var(--s1)\" stroke-width=\"2\" "
        "points=\""
     << polyline(pts, x, y) << "\"/>";
  os << "</svg>";
  return os.str();
}

// ---------------------------------------------------------------------------
// HTML assembly

const char* kCss = R"css(
body { color-scheme: light;
  --page:#f9f9f7; --surface-1:#fcfcfb; --text-primary:#0b0b0b;
  --text-secondary:#52514e; --muted:#898781; --grid:#e1e0d9; --axis:#c3c2b7;
  --s1:#2a78d6; --s2:#eb6834; --crit:#d03b3b;
  --border:rgba(11,11,11,0.10);
  margin:0; background:var(--page); color:var(--text-primary);
  font-family:system-ui,-apple-system,"Segoe UI",sans-serif; font-size:14px; }
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) body { color-scheme: dark;
    --page:#0d0d0d; --surface-1:#1a1a19; --text-primary:#ffffff;
    --text-secondary:#c3c2b7; --muted:#898781; --grid:#2c2c2a; --axis:#383835;
    --s1:#3987e5; --s2:#d95926; --crit:#e66767;
    --border:rgba(255,255,255,0.10); } }
:root[data-theme="dark"] body { color-scheme: dark;
  --page:#0d0d0d; --surface-1:#1a1a19; --text-primary:#ffffff;
  --text-secondary:#c3c2b7; --muted:#898781; --grid:#2c2c2a; --axis:#383835;
  --s1:#3987e5; --s2:#d95926; --crit:#e66767;
  --border:rgba(255,255,255,0.10); }
main { max-width: 820px; margin: 0 auto; padding: 24px 16px 48px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 10px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
section { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 16px; }
svg { display:block; max-width:100%; height:auto; }
svg text { font-family:inherit; fill: var(--text-secondary); font-size: 11px; }
svg text.tick { fill: var(--muted); font-variant-numeric: tabular-nums; }
svg text.loss { fill: var(--crit); font-size: 10px; }
.tiles { display:flex; flex-wrap:wrap; gap:12px; background:none; border:none;
  padding:0; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 96px; }
.tile b { display:block; font-size: 18px; font-weight: 600; }
.tile span { color: var(--text-secondary); font-size: 12px; }
.legend { display:flex; gap:16px; margin: 8px 0 0; color:var(--text-secondary);
  font-size: 12px; align-items:center; }
.legend i { display:inline-block; width:10px; height:10px; border-radius:2px;
  margin-right:5px; vertical-align:-1px; }
table { border-collapse: collapse; width: 100%;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 4px 10px; border-bottom: 1px solid
  var(--grid); }
th { color: var(--text-secondary); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
.note { color: var(--muted); font-size: 12px; margin: 8px 0 0; }
)css";

void legend(std::ostringstream& os,
            const std::vector<std::pair<const char*, const char*>>& entries) {
  os << "<div class=\"legend\">";
  for (const auto& [color, name] : entries) {
    os << "<span><i style=\"background:" << color << "\"></i>" << name
       << "</span>";
  }
  os << "</div>";
}

void tile(std::ostringstream& os, const std::string& value, const char* label) {
  os << "<div class=\"tile\"><b>" << value << "</b><span>" << label
     << "</span></div>";
}

std::string build_html(const JournalDoc& doc, const JournalView& v,
                       const std::optional<obs::SeriesDoc>& series,
                       const std::vector<HistRow>& hists,
                       const std::optional<StageView>& stages,
                       const std::string& journal_path) {
  std::ostringstream os;
  os << "<!doctype html><html lang=\"en\"><head><meta charset=\"utf-8\">"
     << "<meta name=\"viewport\" content=\"width=device-width,initial-scale=1\">"
     << "<title>rtsp execution report</title><style>" << kCss
     << "</style></head><body><main>";
  os << "<h1>Execution report</h1><p class=\"sub\">" << esc_html(journal_path)
     << " &middot; " << doc.events.size() << " journal events";
  if (doc.dropped > 0) os << " (" << doc.dropped << " dropped)";
  os << "</p>";

  const auto& run = doc.run;
  os << "<div class=\"tiles\">";
  tile(os, std::to_string(run.planned_cost), "planned cost");
  tile(os, std::to_string(run.actual_cost), "cost paid");
  tile(os,
       run.planned_cost > 0
           ? fixed(static_cast<double>(run.actual_cost) /
                       static_cast<double>(run.planned_cost),
                   3)
           : "1.000",
       "inflation");
  tile(os, std::to_string(run.attempts), "attempts");
  tile(os, std::to_string(run.transient_failures), "faults");
  tile(os, std::to_string(run.retries), "retries");
  tile(os, std::to_string(run.replans), "replans");
  tile(os, std::to_string(run.degraded_transfers), "degraded");
  tile(os, std::to_string(run.loss_deletions), "losses");
  tile(os, std::to_string(run.finished_at), "finished at (ticks)");
  os << "</div>";

  os << "<section><h2>Cost trajectory (virtual clock)</h2>"
     << chart_trajectory(v, doc);
  legend(os, {{"var(--s1)", "planned"}, {"var(--s2)", "paid"}});
  os << "<p class=\"note\">Dashed rules mark replans/drain. The planned line "
        "is the fault-free diagonal: under serial cost-tick execution, "
        "cumulative planned spend equals elapsed ticks.</p></section>";

  os << "<section><h2>Retry / fault density over ticks</h2>"
     << chart_density(v);
  legend(os, {{"var(--s1)", "retries"}, {"var(--s2)", "transient faults"}});
  os << "</section>";

  os << "<section><h2>Per-server lanes</h2>" << chart_lanes(v);
  legend(os, {{"var(--s1)", "transfer"},
              {"var(--s2)", "failed attempt"},
              {"var(--axis)", "offline stall"},
              {"var(--crit)", "&#10005; replica loss"}});
  if (v.lanes_total > v.lanes.size()) {
    os << "<p class=\"note\">showing " << v.lanes.size() << " of "
       << v.lanes_total << " server lanes</p>";
  }
  os << "</section>";

  if (series) {
    const std::string svg = chart_series(*series, "exec.attempts");
    os << "<section><h2>Attempts over wall time</h2>";
    if (svg.empty()) {
      os << "<p class=\"note\">no exec.attempts counter deltas in the series ("
         << series->samples.size() << " samples)</p>";
    } else {
      os << svg << "<p class=\"note\">" << series->samples.size()
         << " samples; cumulative exec.attempts</p>";
    }
    os << "</section>";
  }

  if (!hists.empty()) {
    os << "<section><h2>Latency percentiles (&micro;s)</h2><table><tr>"
          "<th>histogram</th><th>count</th><th>mean</th><th>p50</th>"
          "<th>p90</th><th>p95</th><th>p99</th><th>max</th></tr>";
    for (const HistRow& h : hists) {
      os << "<tr><td>" << esc_html(h.name) << "</td><td>" << h.count
         << "</td><td>" << fixed(h.mean_us, 2) << "</td><td>"
         << fixed(h.p50_us, 2) << "</td><td>" << fixed(h.p90_us, 2)
         << "</td><td>" << fixed(h.p95_us, 2) << "</td><td>"
         << fixed(h.p99_us, 2) << "</td><td>" << fixed(h.max_us, 2)
         << "</td></tr>";
    }
    os << "</table></section>";
  }

  if (stages) {
    os << "<section><h2>Stage attribution</h2><table><tr><th>stage</th>"
          "<th>actions</th><th>transfers</th><th>deletes</th><th>dummies</th>"
          "<th>cost</th><th>dummy cost</th></tr>";
    for (const auto& sa : stages->att.stages) {
      os << "<tr><td>" << esc_html(stage_label(stages->p, sa.stage))
         << "</td><td>" << sa.actions << "</td><td>" << sa.transfers
         << "</td><td>" << sa.deletions << "</td><td>" << sa.dummy_transfers
         << "</td><td>" << sa.cost << "</td><td>" << sa.dummy_cost
         << "</td></tr>";
    }
    os << "<tr><td>total</td><td>" << stages->att.total_actions << "</td><td>"
       << stages->att.transfers << "</td><td>" << stages->att.deletions
       << "</td><td>" << stages->att.dummy_transfers << "</td><td>"
       << stages->att.total_cost << "</td><td>" << stages->att.dummy_cost
       << "</td></tr></table>"
       << "<p class=\"note\">sums reconcile exactly with schedule stats and "
          "the journal's effective cost</p></section>";
  }

  os << "<section><h2>Journal events</h2><table><tr><th>event</th>"
        "<th>count</th></tr>";
  for (std::size_t i = 0; i < obs::kJournalEventTypes; ++i) {
    if (v.type_counts[i] == 0) continue;
    os << "<tr><td>" << obs::to_string(static_cast<JournalEventType>(i))
       << "</td><td>" << v.type_counts[i] << "</td></tr>";
  }
  if (doc.dropped > 0) {
    os << "<tr><td>(dropped)</td><td>" << doc.dropped << "</td></tr>";
  }
  os << "</table></section>";

  os << "</main></body></html>\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// JSON summary

void write_summary_json(std::ostream& out, const JournalDoc& doc,
                        const JournalView& v,
                        const std::optional<obs::SeriesDoc>& series,
                        const std::vector<HistRow>& hists,
                        const std::optional<StageView>& stages,
                        const std::string& html_path) {
  JsonWriter j(out);
  j.begin_object();
  j.key("version").value(1);
  j.key("run").begin_object();
  j.key("planned_cost").value(doc.run.planned_cost);
  j.key("effective_cost").value(doc.run.effective_cost);
  j.key("actual_cost").value(doc.run.actual_cost);
  j.key("finished_at").value(doc.run.finished_at);
  j.key("total_stall").value(doc.run.total_stall);
  j.key("total_backoff").value(doc.run.total_backoff);
  j.key("attempts").value(doc.run.attempts);
  j.key("retries").value(doc.run.retries);
  j.key("transient_failures").value(doc.run.transient_failures);
  j.key("degraded_transfers").value(doc.run.degraded_transfers);
  j.key("loss_deletions").value(doc.run.loss_deletions);
  j.key("replans").value(doc.run.replans);
  j.key("reached_goal").value(doc.run.reached_goal);
  j.end_object();
  j.key("events").begin_object();
  for (std::size_t i = 0; i < obs::kJournalEventTypes; ++i) {
    j.key(obs::to_string(static_cast<JournalEventType>(i)))
        .value(v.type_counts[i]);
  }
  j.key("dropped").value(doc.dropped);
  j.end_object();
  j.key("max_tick").value(v.max_tick);
  if (series) {
    j.key("series").begin_object();
    j.key("samples").value(static_cast<std::uint64_t>(series->samples.size()));
    j.key("dropped").value(series->dropped);
    if (!series->samples.empty()) {
      j.key("wall_span_ns")
          .value(series->samples.back().wall_ns - series->samples.front().wall_ns);
    }
    j.end_object();
  }
  if (!hists.empty()) {
    j.key("histograms").begin_array();
    for (const HistRow& h : hists) {
      j.begin_object();
      j.key("name").value(h.name);
      j.key("count").value(h.count);
      j.key("mean_us").value(h.mean_us);
      j.key("p50_us").value(h.p50_us);
      j.key("p90_us").value(h.p90_us);
      j.key("p95_us").value(h.p95_us);
      j.key("p99_us").value(h.p99_us);
      j.key("max_us").value(h.max_us);
      j.end_object();
    }
    j.end_array();
  }
  if (stages) {
    // Identical records to `rtsp explain --json`'s "stages" array, so the
    // two reconcile field by field.
    j.key("stages").begin_array();
    for (const auto& sa : stages->att.stages) {
      j.begin_object();
      j.key("name").value(stage_label(stages->p, sa.stage));
      j.key("kind").value(prov::to_string(stages->p.stages[sa.stage].kind));
      j.key("actions").value(static_cast<std::uint64_t>(sa.actions));
      j.key("transfers").value(static_cast<std::uint64_t>(sa.transfers));
      j.key("deletions").value(static_cast<std::uint64_t>(sa.deletions));
      j.key("dummy_transfers").value(static_cast<std::uint64_t>(sa.dummy_transfers));
      j.key("cost").value(static_cast<std::int64_t>(sa.cost));
      j.key("dummy_cost").value(static_cast<std::int64_t>(sa.dummy_cost));
      j.key("rewrites").value(static_cast<std::uint64_t>(sa.rewrites));
      j.key("rewrite_cost_delta").value(static_cast<std::int64_t>(sa.rewrite_cost_delta));
      j.key("rewrite_dummy_delta").value(sa.rewrite_dummy_delta);
      j.end_object();
    }
    j.end_array();
    j.key("reconciled").value(true);
  }
  if (!html_path.empty()) j.key("html").value(html_path);
  j.end_object();
  out << '\n';
}

}  // namespace

int cmd_report(const CliOptions& opt, std::ostream& out) {
  const std::string journal_path = opt.get_string("journal", "", "");
  if (journal_path.empty()) {
    throw std::runtime_error("missing --journal <file> (from rtsp execute "
                             "--journal-out)");
  }
  const JournalDoc doc = read_journal_file(journal_path);
  const JournalView view = derive_view(doc);

  std::optional<obs::SeriesDoc> series;
  if (const std::string p = opt.get_string("series", "", ""); !p.empty()) {
    series = obs::read_series_file(p);
  }
  std::vector<HistRow> hists;
  if (const std::string p = opt.get_string("metrics", "", ""); !p.empty()) {
    hists = load_metrics_histograms(p);
  }
  std::optional<StageView> stages;
  const bool any_stage_flag = opt.has("instance") || opt.has("schedule") ||
                              opt.has("provenance");
  if (any_stage_flag) {
    if (opt.get_string("instance", "", "").empty() ||
        opt.get_string("schedule", "", "").empty() ||
        opt.get_string("provenance", "", "").empty()) {
      throw std::runtime_error(
          "stage attribution needs all of --instance, --schedule (the "
          "effective schedule) and --provenance");
    }
    stages = make_stage_view(opt, doc);
  }

  const std::string html_path = opt.get_string("html", "", "");
  if (!html_path.empty()) {
    std::ofstream file(html_path);
    if (!file) {
      throw std::runtime_error("cannot open output file '" + html_path + "'");
    }
    file << build_html(doc, view, series, hists, stages, journal_path);
    out << "HTML report written to " << html_path << '\n';
  }

  const std::string out_path = opt.get_string("out", "", "");
  if (out_path.empty()) {
    write_summary_json(out, doc, view, series, hists, stages, html_path);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      throw std::runtime_error("cannot open output file '" + out_path + "'");
    }
    write_summary_json(file, doc, view, series, hists, stages, html_path);
    out << "report summary written to " << out_path << '\n';
  }
  return 0;
}

}  // namespace rtsp::cli
