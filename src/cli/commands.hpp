// The `rtsp` command-line tool, as a testable library. The binary in
// tools/rtsp_cli.cpp is a thin wrapper around run_cli().
//
// Subcommands:
//   generate   build an instance (paper workloads or random) -> file
//   solve      run an algorithm pipeline on an instance -> schedule file
//   exact      branch-and-bound optimum on a (small) instance
//   validate   check a schedule against an instance
//   stats      schedule analytics (traffic, peaks, headroom)
//   info       instance summary: delta, bounds, transfer-graph cycles
//   makespan   parallel-execution simulation of a schedule
//   phases     bulk-synchronous round partition of a schedule
//   dot        Graphviz export of the transfer graph or a schedule
//   explain    per-action provenance, per-stage attribution, dummy root causes
//   help       usage
#pragma once

#include <ostream>

namespace rtsp::cli {

/// Dispatches argv[1] to a subcommand. Returns a process exit code; writes
/// results to `out` and complaints to `err` (never throws for user errors).
int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

/// Prints the usage text to `out`.
void print_usage(std::ostream& out);

}  // namespace rtsp::cli
