// Metrics time-series persistence (the MetricsSampler's output).
//
// JSONL, versioned (kSeriesFormatVersion): the first line is a header
//   {"format":"rtsp-series","version":1,"samples":N,"dropped":D}
// and every following line is one sample
//   {"wall_ns":U,"tick":T,"label":"...","counters":{name:delta,...},
//    "gauges":{name:value,...}}
// where "counters" holds the increments since the previous sample (non-zero
// entries only) and "tick" is the executor's virtual clock, -1 for
// wall-clock samples. A CSV form (one long-format row per metric per
// sample) is picked by file extension, like obs::write_metrics_file.
//
// Lives in obs/ but is compiled into rtsp_support: it needs support/json
// and support/csv, which sit above the dependency-free rtsp_obs core
// (same layering as obs/export.*).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sampler.hpp"

namespace rtsp::obs {

inline constexpr int kSeriesFormatVersion = 1;
inline constexpr const char* kSeriesFormatName = "rtsp-series";

/// A parsed series file: the header fields plus every sample.
struct SeriesDoc {
  int version = kSeriesFormatVersion;
  std::uint64_t dropped = 0;
  std::vector<SeriesSample> samples;
};

void write_series_jsonl(std::ostream& out, const std::vector<SeriesSample>& samples,
                        std::uint64_t dropped);
void write_series_csv(std::ostream& out, const std::vector<SeriesSample>& samples);

/// Writes `samples` to `path`: ".csv" → CSV, anything else → JSONL.
/// Throws std::runtime_error on open failure.
void write_series_file(const std::string& path,
                       const std::vector<SeriesSample>& samples,
                       std::uint64_t dropped);

/// Parses a JSONL series file. Throws std::runtime_error on malformed
/// input, a bad header, or an unsupported version.
SeriesDoc read_series_file(const std::string& path);

}  // namespace rtsp::obs
