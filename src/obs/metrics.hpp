// Process-wide metrics: named counters, gauges and latency histograms.
//
// Hot-path design: counter increments and latency records go to a per-thread
// shard (relaxed atomics on thread-private cache lines), so instrumented
// code pays one relaxed flag load + one TLS add and never contends. Shards
// are folded into retired totals when their thread exits; snapshot() sums
// retired totals plus the live shards, which is exact whenever the writer
// threads have been joined (the only time exact totals are meaningful).
//
// Everything is gated on the runtime flag obs::enabled(): when off, every
// record call returns after a single relaxed load. The OBS_* macros in
// obs/obs.hpp additionally compile to nothing when RTSP_OBS_ENABLED is 0.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtsp::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Runtime instrumentation gate; false at startup.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// Monotonic nanoseconds since the first call in this process (one shared
/// epoch so trace timestamps from different threads align).
std::uint64_t now_ns();

/// Capacity limits: ids are array indices into fixed-size thread shards, so
/// registering more names than this throws.
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;
/// Latency buckets are powers of two: bucket i counts samples with
/// bit_width(ns) == i, i.e. [2^(i-1), 2^i); the last bucket absorbs the rest.
inline constexpr std::size_t kHistogramBuckets = 40;

/// Upper edge (exclusive, in nanoseconds) of latency bucket i; the last
/// bucket is open-ended (exported as le="+Inf").
std::uint64_t histogram_bucket_upper_ns(std::size_t i);

/// Registry name charset, checked at registration time: names must start
/// with [a-zA-Z_:] and continue with [a-zA-Z0-9_:.]. Dots are the local
/// namespace separator ("exec.retries") and map to '_' in the Prometheus
/// exposition (obs/export); everything else would produce an unscrapable
/// series, so MetricsRegistry throws std::invalid_argument on violation.
bool valid_metric_name(std::string_view name);

/// Cheap copyable handle to a registered counter (an interned id).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Last-value gauge (e.g. queue depth); also tracks the max since reset.
/// Not sharded: set/add are low-frequency and need a single current value.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const;
  void add(std::int64_t delta) const;
  std::int64_t value() const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Power-of-two-bucketed latency histogram over nanoseconds.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  void record_ns(std::uint64_t ns) const;

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Point-in-time aggregate of every registered metric.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
    /// Raw per-bucket counts (kHistogramBuckets entries; bucket i counts
    /// samples with bit_width(ns) == i). Feeds the Prometheus exporter's
    /// cumulative _bucket series.
    std::vector<std::uint64_t> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by name; 0 when the name was never registered.
  std::uint64_t counter(std::string_view name) const;
};

/// Process-wide singleton interning metric names to shard slots.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns `name`; the same name always yields a handle to the same slot.
  /// Throws std::length_error past the kMax* capacity.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  LatencyHistogram histogram(const std::string& name);

  /// Aggregated value of one counter (retired totals + live shards).
  std::uint64_t counter_value(const std::string& name) const;

  MetricsSnapshot snapshot() const;

  /// Zeroes every counter, gauge and histogram (names and ids survive).
  /// Callers must quiesce writer threads first.
  void reset();

  /// Implementation detail (shard registry, metrics.cpp only).
  struct Impl;

 private:
  friend Impl& registry_impl();
  MetricsRegistry() = default;
  Impl& impl() const;
};

/// File-local accessor used by the hot paths in metrics.cpp.
MetricsRegistry::Impl& registry_impl();

}  // namespace rtsp::obs
