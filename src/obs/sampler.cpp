#include "obs/sampler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace rtsp::obs {

MetricsSampler::MetricsSampler(std::size_t max_samples)
    : max_samples_(max_samples) {
  samples_.reserve(std::min<std::size_t>(max_samples_, 1024));
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  capture_locked(-1, "start", lock);
  thread_ = std::thread(&MetricsSampler::run, this, period);
}

void MetricsSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  capture_locked(-1, "stop", lock);
}

void MetricsSampler::sample_wall(std::string label) {
  std::unique_lock<std::mutex> lock(mu_);
  capture_locked(-1, std::move(label), lock);
}

void MetricsSampler::sample_tick(std::int64_t tick, std::string label) {
  std::unique_lock<std::mutex> lock(mu_);
  capture_locked(tick, std::move(label), lock);
}

void MetricsSampler::capture_locked(std::int64_t tick, std::string label,
                                    std::unique_lock<std::mutex>&) {
  if (samples_.size() >= max_samples_) {
    ++dropped_;
    return;
  }
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();

  SeriesSample s;
  s.wall_ns = now_ns();
  s.tick = tick;
  s.label = std::move(label);
  std::vector<std::pair<std::string, std::uint64_t>> current;
  current.reserve(snap.counters.size());
  for (const auto& c : snap.counters) {
    std::uint64_t prev = 0;
    for (const auto& [name, v] : last_counters_) {
      if (name == c.name) {
        prev = v;
        break;
      }
    }
    // Counters are monotone per registry reset; a reset mid-series would
    // make value < prev, so clamp the delta rather than wrapping.
    const std::uint64_t delta = c.value >= prev ? c.value - prev : c.value;
    if (delta != 0) s.counter_deltas.emplace_back(c.name, delta);
    current.emplace_back(c.name, c.value);
  }
  for (const auto& g : snap.gauges) s.gauges.emplace_back(g.name, g.value);
  last_counters_ = std::move(current);
  samples_.push_back(std::move(s));
}

void MetricsSampler::run(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    capture_locked(-1, "wall", lock);
  }
}

std::vector<SeriesSample> MetricsSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::uint64_t MetricsSampler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace rtsp::obs
