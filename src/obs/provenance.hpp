// Schedule provenance: a side table parallel to a Schedule recording, for
// every action, which stage (builder / improver pass) emitted it, which
// accepted rewrite introduced it (with the accepted cost delta and the
// actions it replaced), and — for every transfer sourced at the dummy server
// — a root-cause record: the free-space snapshot and the blocking
// (server, object) pairs at emission time, i.e. the concrete Fig.-1-style
// capacity-deadlock witness.
//
// Recording is opt-in and layered like the rest of src/obs:
//   * compile time — when RTSP_OBS_ENABLED is 0, current() is a constexpr
//     nullptr so every hook call site folds away; only the passive data
//     model below survives (rtsp explain must still read sidecar files);
//   * run time — hooks fire only while a prov::Scope is armed on the
//     current thread (one thread-local pointer load otherwise).
// Recording never mutates the schedules it observes: with recording on or
// off the produced schedules are bit-identical.
//
// The data structures are deliberately plain (vectors + indices) so the io
// layer can serialize them without this header depending on io.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/replication.hpp"
#include "core/schedule.hpp"
#include "core/system.hpp"

#ifndef RTSP_OBS_ENABLED
#define RTSP_OBS_ENABLED 1
#endif

namespace rtsp::prov {

/// Index sentinel for "no link" (rewrite / root cause absent).
inline constexpr std::size_t kNone = static_cast<std::size_t>(-1);

enum class StageKind : std::uint8_t { Builder, Improver, Unknown };

const char* to_string(StageKind k);

/// One originating stage, interned once per (kind, name) pair.
struct Stage {
  StageKind kind = StageKind::Unknown;
  std::string name;  ///< builder/improver name, e.g. "GOLCF", "H1"

  bool operator==(const Stage&) const = default;
};

/// One accepted improver rewrite: the diff window of an adopted candidate.
struct Rewrite {
  std::uint32_t stage = 0;   ///< index into Provenance::stages
  int pass = -1;             ///< improver pass (H1/H2); -1 when n/a
  int round = -1;            ///< OP1 / fixpoint round; -1 when n/a
  std::size_t rank = 0;      ///< 1-based adoption ordinal within the stage
  std::size_t pos = 0;       ///< schedule position where the window starts
  std::size_t removed = 0;   ///< actions removed from the window
  std::size_t inserted = 0;  ///< actions inserted into the window
  Cost cost_delta = 0;       ///< accepted cost(after) - cost(before)
  std::int64_t dummy_delta = 0;  ///< dummies(after) - dummies(before)
  std::uint64_t span_id = 0;     ///< enclosing OBS_SPAN id (0 = none)
  std::vector<std::uint64_t> replaced;  ///< entry ids the window removed

  bool operator==(const Rewrite&) const = default;
};

/// Deadlock witness for one transfer sourced at the dummy server.
struct RootCause {
  enum class Kind : std::uint8_t {
    CapacityDeadlock,   ///< every former holder deleted the object (Fig. 1)
    NoInitialReplica,   ///< the object never had a source to begin with
    SourceAvailable,    ///< a live holder existed; the stage still chose dummy
  };

  /// A former holder of the object: it could have served the transfer but
  /// deleted its replica earlier, and the listed occupying objects (arrived
  /// since X_old) now block it from re-hosting the object.
  struct Blocker {
    ServerId server = 0;
    std::size_t deleted_at = kNone;  ///< schedule position of that deletion
    Size free_space = 0;             ///< blocker free space at emission
    std::vector<ObjectId> occupying; ///< non-X_old objects it now holds

    bool operator==(const Blocker&) const = default;
  };

  Kind kind = Kind::CapacityDeadlock;
  ObjectId object = 0;
  ServerId dest = 0;
  Size object_size = 0;
  Size dest_free_space = 0;        ///< destination free space at emission
  std::vector<ServerId> holders;   ///< live holders at emission (SourceAvailable)
  std::vector<Blocker> blockers;
  std::vector<Size> free_space;    ///< per-server free-space snapshot

  bool operator==(const RootCause&) const = default;
};

/// Per-action provenance; Provenance::entries is parallel to the schedule.
struct Entry {
  std::uint64_t id = 0;            ///< stable id (survives window shifts)
  std::uint32_t stage = 0;         ///< index into Provenance::stages
  int pass = -1;                   ///< stage pass at emission; -1 when n/a
  int round = -1;                  ///< stage round at emission; -1 when n/a
  std::size_t rewrite = kNone;     ///< index into rewrites; kNone for builder
  std::size_t root_cause = kNone;  ///< index into root_causes (dummy only)
  std::uint64_t span_id = 0;       ///< enclosing OBS_SPAN id at emission

  bool operator==(const Entry&) const = default;
};

struct Provenance {
  std::vector<Stage> stages;
  std::vector<Rewrite> rewrites;
  std::vector<RootCause> root_causes;
  std::vector<Entry> entries;

  bool empty() const { return entries.empty(); }

  bool operator==(const Provenance&) const = default;
};

/// Per-stage share of a schedule's totals, derived from a Provenance table.
struct StageAttribution {
  std::uint32_t stage = 0;  ///< index into Provenance::stages
  std::size_t actions = 0;
  std::size_t transfers = 0;
  std::size_t deletions = 0;
  std::size_t dummy_transfers = 0;
  Cost cost = 0;        ///< summed action_cost of this stage's actions
  Cost dummy_cost = 0;  ///< portion of `cost` paid on dummy links
  std::size_t rewrites = 0;       ///< rewrites accepted by this stage
  Cost rewrite_cost_delta = 0;    ///< net accepted cost delta
  std::int64_t rewrite_dummy_delta = 0;
};

/// Exact per-stage breakdown: the per-stage sums equal the whole-schedule
/// totals (schedule_stats) bit for bit, because every action is attributed
/// to exactly one stage. Requires entries parallel to `h`.
struct AttributionSummary {
  std::vector<StageAttribution> stages;
  std::size_t total_actions = 0;
  std::size_t transfers = 0;
  std::size_t deletions = 0;
  std::size_t dummy_transfers = 0;
  Cost total_cost = 0;
  Cost dummy_cost = 0;
};

AttributionSummary attribute_schedule(const SystemModel& model, const Schedule& h,
                                      const Provenance& p);

/// Recomputes the deadlock witness for the dummy transfer `h[pos]` against
/// the prefix h[0..pos): replays the prefix from x_old, collecting the former
/// holders (with their deletion positions and current occupants) and the
/// free-space snapshot.
RootCause make_root_cause(const SystemModel& model, const ReplicationMatrix& x_old,
                          const Schedule& h, std::size_t pos);

class Recorder;

#if RTSP_OBS_ENABLED
inline constexpr bool kRecorderCompiled = true;
/// Recorder armed on this thread (nullptr when none). Hooks below check it,
/// so instrumented code pays one thread-local load when recording is off.
Recorder* current() noexcept;
namespace detail {
void set_current(Recorder* r) noexcept;
}
#else
inline constexpr bool kRecorderCompiled = false;
constexpr Recorder* current() noexcept { return nullptr; }
#endif

/// Builds the provenance table while builders/improvers run. All hooks are
/// invoked on the thread that mutates the schedule (OP1P adopts on the
/// orchestrating thread, so parallel screening needs no synchronization
/// here). The recorder keeps its own copy of the evolving schedule, which
/// lets it diff full replacements and verify it never drifted out of sync.
class Recorder {
 public:
  Recorder(const SystemModel& model, const ReplicationMatrix& x_old);

  /// A builder appended `a` (not yet applied) at the current end position.
  void on_emit(const Action& a);

  /// An improver adopted `cand` over `base`; [prefix, *_suffix_start) is the
  /// minimal diff window, deltas are the accepted metric changes.
  void on_adopt(const Schedule& base, const Schedule& cand, std::size_t prefix,
                std::size_t base_suffix_start, std::size_t cand_suffix_start,
                Cost cost_delta, std::int64_t dummy_delta);

  /// The evaluator's base was replaced wholesale (eval.reset); diffed from
  /// the ends against the previously observed schedule.
  void on_reset(const Schedule& new_base);

  void push_stage(StageKind kind, const std::string& name);
  void pop_stage();
  void set_pass(int pass) { pass_ = pass; }
  void set_round(int round) { round_ = round; }

  /// Finishes recording against the delivered schedule: re-derives any
  /// witness whose blocker positions went stale after window shifts and
  /// guarantees every dummy transfer carries a non-empty record.
  Provenance finalize(const Schedule& final_schedule);

 private:
  std::uint32_t intern_stage(StageKind kind, const std::string& name);
  std::uint32_t current_stage();
  void resync(const Schedule& base);
  Entry fresh_entry(std::uint32_t stage, std::size_t rewrite);

  struct Frame {
    std::uint32_t stage = 0;
    int saved_pass = -1;
    int saved_round = -1;
  };

  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  Provenance prov_;
  Schedule actions_;  ///< recorder's copy of the evolving schedule
  std::uint64_t next_id_ = 0;
  std::vector<Frame> stage_stack_;
  std::vector<std::size_t> adoptions_;  ///< per-stage adoption counters
  int pass_ = -1;
  int round_ = -1;
};

/// RAII: arms a Recorder as the thread's current one for the duration of a
/// builder+improver run; finalize() hands back the table. A no-op shell when
/// provenance is compiled out (RTSP_OBS=OFF).
class Scope {
 public:
  Scope(const SystemModel& model, const ReplicationMatrix& x_old);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// The recorded table, witness-checked against the delivered schedule.
  /// Empty (entries-less) when compiled out.
  Provenance finalize(const Schedule& final_schedule);

 private:
  std::unique_ptr<Recorder> recorder_;
  Recorder* previous_ = nullptr;
};

/// RAII stage frame: all actions emitted / rewrites adopted inside are
/// attributed to (kind, name). Nested frames shadow (fixpoint chains push
/// the inner improver's frame). Saves/restores pass and round counters.
class StageScope {
 public:
  StageScope(StageKind kind, const std::string& name);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Recorder* recorder_ = nullptr;
};

/// RAII: temporarily disarms the thread's recorder. Used around helper
/// builds whose emitted actions are not part of the observed schedule — the
/// portfolio's LNS repair builders rebuild a destroyed window as a
/// sub-instance, and recording those emits would desync the recorder's
/// schedule copy. A no-op shell when provenance is compiled out.
class Suspend {
 public:
  Suspend();
  ~Suspend();

  Suspend(const Suspend&) = delete;
  Suspend& operator=(const Suspend&) = delete;

 private:
  Recorder* saved_ = nullptr;
};

/// Hook helpers: single thread-local load when recording is off; fold away
/// entirely when compiled out.
inline void note_emit(const Action& a) {
  if (Recorder* r = current()) r->on_emit(a);
}
inline void note_pass(int pass) {
  if (Recorder* r = current()) r->set_pass(pass);
}
inline void note_round(int round) {
  if (Recorder* r = current()) r->set_round(round);
}

}  // namespace rtsp::prov
