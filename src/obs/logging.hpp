// Leveled structured logging: typed key=value records into a bounded
// in-memory ring of recent records (served live by /logz on the introspect
// server) plus an optional JSONL file sink (`rtsp-log` v1, one header line
// then one object per record; see docs/file-formats.md).
//
// Design rules, matching the rest of src/obs:
//   * Zero-cost when RTSP_OBS=OFF — the OBS_LOG_* macros in obs/obs.hpp
//     compile to ((void)0) and never evaluate their arguments.
//   * One relaxed atomic load when compiled in but below the armed level
//     (the default level is Off, so plain runs pay a single load per site).
//   * Never observed by control flow: logging only records, so schedules
//     and executor runs are bit-identical with logging armed or off.
//   * Bounded: the ring keeps the most recent `ring_capacity` records
//     (older ones are overwritten, counted in evicted()); the file sink
//     writes every record that passed the level gate.
//
// Record construction (message + field formatting) happens outside the
// ring lock; only the ring append and the sink write serialize. Logging
// call rates in this codebase are per-pass / per-replan summaries, not
// per-action, so a mutex-guarded ring is deliberate — the sharded
// wait-free machinery in metrics.cpp is reserved for the true hot paths.
//
// This header is dependency-free (compiled into rtsp_obs, below
// rtsp_support) so builders, improvers, the executor and the thread pool
// can all log.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rtsp::obs {

enum class LogLevel : std::uint8_t { Trace, Debug, Info, Warn, Error, Off };

/// Stable wire name ("trace", "debug", "info", "warn", "error", "off").
const char* to_string(LogLevel level);

/// Inverse of to_string; false when `name` is not a known level.
bool log_level_from_string(const std::string& name, LogLevel& out);

/// One typed key=value field attached to a log record.
struct LogField {
  enum class Kind : std::uint8_t { Int, Uint, Double, Bool, Str };

  std::string key;
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
};

/// Field constructors: log_field("cost", 42), log_field("algo", "GOLCF").
LogField log_field(std::string key, std::int64_t v);
LogField log_field(std::string key, std::uint64_t v);
LogField log_field(std::string key, double v);
LogField log_field(std::string key, bool v);
LogField log_field(std::string key, std::string v);
LogField log_field(std::string key, const char* v);
inline LogField log_field(std::string key, int v) {
  return log_field(std::move(key), static_cast<std::int64_t>(v));
}
inline LogField log_field(std::string key, unsigned v) {
  return log_field(std::move(key), static_cast<std::uint64_t>(v));
}

/// One log record as kept in the ring (and serialized to the sink).
struct LogRecord {
  std::uint64_t seq = 0;      ///< process-wide strictly increasing
  std::uint64_t wall_ns = 0;  ///< obs::now_ns() at emission
  std::uint32_t tid = 0;      ///< small sequential thread id
  LogLevel level = LogLevel::Info;
  std::string message;
  std::vector<LogField> fields;
};

/// Serializes one record as an `rtsp-log` v1 JSONL line (no trailing
/// newline). Exposed so /logz and the file sink emit identical bytes.
std::string log_record_to_json(const LogRecord& record);

/// The `rtsp-log` v1 header line (no trailing newline).
std::string log_header_json();

inline constexpr int kLogFormatVersion = 1;
inline constexpr const char* kLogFormatName = "rtsp-log";

/// Process-wide logger singleton. Disarmed (level Off, no sink) until
/// configure(); obs::Session arms it from --log-out / --log-level.
class Logger {
 public:
  static Logger& instance();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Arms the logger: records at `level` and above are kept. A non-empty
  /// `jsonl_path` opens the file sink (header line written immediately;
  /// throws std::runtime_error when the file cannot be opened). Passing an
  /// empty path keeps the ring only.
  void configure(LogLevel level, const std::string& jsonl_path,
                 std::size_t ring_capacity = 1024);

  /// Flushes and closes the sink and disarms (level Off). The ring and
  /// counters survive so post-mortems can still read the tail.
  void shutdown();

  /// Flushes the file sink without disarming (the interrupt flush path).
  void flush();

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// The per-site gate: one relaxed load. The OBS_LOG_* macros only
  /// evaluate their message/field arguments when this returns true.
  bool should_log(LogLevel l) const { return l >= level(); }

  /// Records one entry (caller already passed should_log).
  void log(LogLevel level, std::string message,
           std::vector<LogField> fields = {});

  /// Field-list convenience used by the OBS_LOG_* macros:
  /// log(level, "msg", log_field("k", v), ...).
  template <typename... Fields>
  void log(LogLevel level, std::string message, LogField first,
           Fields&&... rest) {
    std::vector<LogField> fields;
    fields.reserve(1 + sizeof...(rest));
    fields.push_back(std::move(first));
    (fields.push_back(std::forward<Fields>(rest)), ...);
    log(level, std::move(message), std::move(fields));
  }

  /// Most recent `n` records, oldest first (at most the ring capacity).
  std::vector<LogRecord> tail(std::size_t n) const;

  std::uint64_t records_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Records overwritten in the ring because it was full (the sink, when
  /// open, still received them).
  std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Test hook: drops all ring contents and zeroes the counters.
  void clear();

  ~Logger();

 private:
  Logger() = default;

  std::atomic<std::uint8_t> level_{
      static_cast<std::uint8_t>(LogLevel::Off)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> evicted_{0};

  struct Impl;
  Impl& impl() const;
};

}  // namespace rtsp::obs
