// Exporters for obs metrics snapshots and trace buffers: console summary
// tables, CSV/JSON metric dumps, and Chrome trace-event JSON that loads in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Lives in the obs/ directory but is compiled into rtsp_support: it needs
// the table/CSV/JSON/histogram primitives, which themselves sit above the
// dependency-free rtsp_obs core.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace rtsp::obs {

/// Console tables: counters (name/value), gauges (name/value/max), latency
/// histograms (count, mean/p50/p90/p99/max in µs). Empty sections are
/// omitted; prints nothing when the snapshot has no data at all.
void print_metrics_summary(std::ostream& out, const MetricsSnapshot& snap);

/// Per-span-name duration table (count, total/mean/min/max in ms) plus an
/// ASCII duration histogram (support/histogram) for the busiest span name.
void print_span_summary(std::ostream& out, const std::vector<TraceEvent>& events);

/// CSV with one row per metric: kind,name,value,max,count,mean_us,p50_us,...
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snap);

/// {"counters":{...},"gauges":{...},"histograms":{...}}
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap);

/// Chrome trace-event JSON: {"traceEvents":[...]}; Complete spans as ph "X"
/// (ts/dur in microseconds), counter samples as ph "C".
void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events);

/// Appends one trace event object to an already-open traceEvents array.
/// Exposed so other exporters (io/timeline_export) can merge the wall-clock
/// spans into a combined trace under their own process id.
void append_chrome_trace_event(JsonWriter& j, const TraceEvent& e, int pid);

/// Prometheus series name for a registry metric: dots become underscores
/// and everything is prefixed "rtsp_" ("exec.retries" → "rtsp_exec_retries").
/// Registry names are already charset-checked (obs/metrics), so the result
/// always matches [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prometheus_name(std::string_view name);

/// Prometheus text exposition format 0.0.4: counters as `<name>_total` with
/// HELP/TYPE headers, gauges as plain gauges plus a `<name>_max` companion,
/// latency histograms as cumulative `_bucket{le="..."}` series (edges in
/// seconds, +Inf last) with `_sum` and `_count`. This is what the introspect
/// server serves at GET /metrics.
void write_metrics_prometheus(std::ostream& out, const MetricsSnapshot& snap);

/// Validates one Prometheus text exposition payload: every line must be a
/// comment/HELP/TYPE header or a `name{labels} value` sample, every sample
/// must be preceded by a TYPE header for its family, histogram buckets must
/// be cumulative with le="+Inf" last and equal to _count. Appends one
/// message per violation; returns true when none were found. Used by
/// tools/obs_lint and the introspection tests.
bool lint_prometheus_text(const std::string& text,
                          std::vector<std::string>& violations);

/// Writes the snapshot to `path`, picking the format from the extension
/// (".json" → JSON, anything else → CSV). Throws on open failure.
void write_metrics_file(const std::string& path, const MetricsSnapshot& snap);

/// Writes the events to `path` as Chrome trace JSON. Throws on open failure.
void write_trace_file(const std::string& path, const std::vector<TraceEvent>& events);

}  // namespace rtsp::obs
