#include "obs/introspect.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "support/json.hpp"
#include "support/net.hpp"

namespace rtsp::obs {

Progress& Progress::instance() {
  static Progress progress;
  return progress;
}

void Progress::set_stage(const std::string& stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  stage_ = stage;
}

std::string Progress::stage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stage_;
}

Progress::View Progress::view() const {
  View v;
  v.stage = stage();
  v.has_incumbent = has_incumbent_.load(std::memory_order_relaxed);
  v.incumbent_cost = incumbent_cost_.load(std::memory_order_relaxed);
  v.incumbent_dummies = incumbent_dummies_.load(std::memory_order_relaxed);
  v.has_bound = has_bound_.load(std::memory_order_relaxed);
  v.lower_bound = lower_bound_.load(std::memory_order_relaxed);
  v.ticks_spent = ticks_spent_.load(std::memory_order_relaxed);
  v.ticks_budget = ticks_budget_.load(std::memory_order_relaxed);
  v.exec_tick = exec_tick_.load(std::memory_order_relaxed);
  return v;
}

std::string Progress::to_json() const {
  const View v = view();
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("stage").value(v.stage);
  if (v.has_incumbent) {
    j.key("incumbent").begin_object();
    j.key("cost").value(v.incumbent_cost);
    j.key("dummy_transfers").value(v.incumbent_dummies);
    j.end_object();
  } else {
    j.key("incumbent").null();
  }
  if (v.has_bound) {
    j.key("lower_bound").value(v.lower_bound);
    if (v.has_incumbent && v.lower_bound > 0) {
      j.key("gap").value(
          static_cast<double>(v.incumbent_cost - v.lower_bound) /
          static_cast<double>(v.lower_bound));
    }
  } else {
    j.key("lower_bound").null();
  }
  j.key("ticks").begin_object();
  j.key("spent").value(v.ticks_spent);
  j.key("budget").value(v.ticks_budget);
  j.end_object();
  j.key("exec_tick").value(v.exec_tick);
  const Logger& logger = Logger::instance();
  j.key("log_records").value(logger.records_emitted());
  j.end_object();
  return out.str();
}

void Progress::reset() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stage_.clear();
  }
  has_incumbent_.store(false, std::memory_order_relaxed);
  incumbent_cost_.store(0, std::memory_order_relaxed);
  incumbent_dummies_.store(0, std::memory_order_relaxed);
  has_bound_.store(false, std::memory_order_relaxed);
  lower_bound_.store(0, std::memory_order_relaxed);
  ticks_spent_.store(0, std::memory_order_relaxed);
  ticks_budget_.store(0, std::memory_order_relaxed);
  exec_tick_.store(0, std::memory_order_relaxed);
}

std::string introspect_metrics_body() {
  std::ostringstream out;
  write_metrics_prometheus(out, MetricsRegistry::instance().snapshot());
  return out.str();
}

std::string introspect_healthz_body() {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("status").value("ok");
  j.key("stage").value(Progress::instance().stage());
  j.end_object();
  return out.str();
}

std::string introspect_logz_body(std::size_t n) {
  std::string out = log_header_json();
  out += '\n';
  for (const LogRecord& record : Logger::instance().tail(n)) {
    out += log_record_to_json(record);
    out += '\n';
  }
  return out;
}

namespace {

constexpr int kAcceptPollMs = 100;
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return status >= 500 ? "Internal Server Error" : "Unknown";
  }
}

std::string make_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body,
                          const char* extra_header = nullptr) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n";
  if (extra_header != nullptr) {
    out += extra_header;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

/// The one query parameter any endpoint understands: "n=K" on /logz.
std::size_t parse_logz_count(std::string_view query) {
  constexpr std::size_t kDefault = 100;
  if (query.rfind("n=", 0) != 0) return kDefault;
  std::size_t n = 0;
  bool any = false;
  for (const char c : query.substr(2)) {
    if (c < '0' || c > '9') return kDefault;
    n = n * 10 + static_cast<std::size_t>(c - '0');
    any = true;
    if (n > 1'000'000) break;
  }
  return any ? n : kDefault;
}

std::string handle_request(const std::string& request, std::string body,
                           const HttpRouteHandler& route) {
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line(request.data(),
                              line_end == std::string::npos ? request.size()
                                                            : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 <= sp1) {
    return make_response(400, "Bad Request", "text/plain; charset=utf-8",
                         "malformed request line\n");
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view query;
  if (const std::size_t qmark = target.find('?');
      qmark != std::string_view::npos) {
    query = target.substr(qmark + 1);
    target = target.substr(0, qmark);
  }
  if (route) {
    HttpRouteRequest req;
    req.method = std::string(method);
    req.target = std::string(target);
    req.query = std::string(query);
    req.body = std::move(body);
    HttpRouteReply reply;
    bool handled = false;
    try {
      handled = route(req, reply);
    } catch (const std::exception& e) {
      return make_response(500, "Internal Server Error",
                           "text/plain; charset=utf-8",
                           std::string(e.what()) + "\n");
    }
    if (handled) {
      std::string extra;
      if (!reply.retry_after.empty()) {
        extra = "Retry-After: " + reply.retry_after;
      }
      return make_response(reply.status, reason_for(reply.status),
                           reply.content_type, reply.body,
                           extra.empty() ? nullptr : extra.c_str());
    }
  }
  if (method != "GET") {
    return make_response(405, "Method Not Allowed",
                         "text/plain; charset=utf-8", "only GET is served\n",
                         "Allow: GET");
  }
  if (target == "/metrics") {
    return make_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         introspect_metrics_body());
  }
  if (target == "/healthz") {
    return make_response(200, "OK", "application/json",
                         introspect_healthz_body());
  }
  if (target == "/progress") {
    return make_response(200, "OK", "application/json",
                         Progress::instance().to_json());
  }
  if (target == "/logz") {
    return make_response(200, "OK", "application/x-ndjson",
                         introspect_logz_body(parse_logz_count(query)));
  }
  return make_response(404, "Not Found", "text/plain; charset=utf-8",
                       "unknown endpoint; try /metrics /healthz /progress "
                       "/logz?n=K\n");
}

}  // namespace

struct IntrospectServer::Impl {
  net::TcpListener listener;
  int request_timeout_ms = 2000;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  HttpRouteHandler route;
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> served{0};
  std::thread acceptor;
  std::vector<std::thread> handlers;
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<net::Socket> queue;

  void accept_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      net::Socket conn = listener.accept(kAcceptPollMs);
      if (!conn.valid()) continue;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        queue.push_back(std::move(conn));
      }
      queue_cv.notify_one();
    }
  }

  void handler_loop() {
    for (;;) {
      net::Socket conn;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] {
          return stopping.load(std::memory_order_relaxed) || !queue.empty();
        });
        if (queue.empty()) return;  // stopping and drained
        conn = std::move(queue.front());
        queue.pop_front();
      }
      std::string request;
      if (conn.read_until(request, "\r\n\r\n", kMaxRequestBytes,
                          request_timeout_ms)) {
        // Split off anything past the header block; that prefix plus a
        // Content-Length-bounded read is the request body.
        std::string body;
        const std::size_t head_end = request.find("\r\n\r\n");
        if (head_end != std::string::npos) {
          body = request.substr(head_end + 4);
          request.resize(head_end + 4);
        }
        const long long declared = net::find_content_length(request);
        bool ok = true;
        if (declared > static_cast<long long>(max_body_bytes)) {
          conn.write_all(make_response(413, "Payload Too Large",
                                       "text/plain; charset=utf-8",
                                       "request body too large\n"));
          ok = false;
        } else if (declared > 0 &&
                   body.size() < static_cast<std::size_t>(declared)) {
          // Same overall deadline again for the body read: a stalled peer
          // holds this handler for at most 2x request_timeout_ms total.
          ok = conn.read_exact(body, static_cast<std::size_t>(declared),
                               request_timeout_ms);
        }
        if (ok) {
          if (declared >= 0 &&
              body.size() > static_cast<std::size_t>(declared)) {
            body.resize(static_cast<std::size_t>(declared));
          }
          conn.write_all(handle_request(request, std::move(body), route));
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
      conn.close();
    }
  }
};

IntrospectServer::IntrospectServer(const IntrospectOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->request_timeout_ms =
      options.request_timeout_ms > 0 ? options.request_timeout_ms : 2000;
  impl_->max_body_bytes = options.max_body_bytes;
  impl_->route = options.route;
  impl_->listener.listen(options.host, options.port);
  const std::size_t threads =
      options.handler_threads > 0 ? options.handler_threads : 1;
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
  impl_->handlers.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    impl_->handlers.emplace_back([this] { impl_->handler_loop(); });
  }
}

IntrospectServer::~IntrospectServer() { stop(); }

std::uint16_t IntrospectServer::port() const { return impl_->listener.port(); }

std::uint64_t IntrospectServer::requests_served() const {
  return impl_->served.load(std::memory_order_relaxed);
}

void IntrospectServer::stop() {
  if (impl_ == nullptr || impl_->stopping.exchange(true)) return;
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  impl_->queue_cv.notify_all();
  for (std::thread& t : impl_->handlers) {
    if (t.joinable()) t.join();
  }
  impl_->listener.close();
}

}  // namespace rtsp::obs
