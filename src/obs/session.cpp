#include "obs/session.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/introspect.hpp"
#include "obs/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/series_io.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rtsp::obs {

std::int64_t record_peak_rss() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  std::int64_t kb = usage.ru_maxrss;
#if defined(__APPLE__)
  kb /= 1024;  // macOS reports bytes, Linux kilobytes
#endif
  MetricsRegistry::instance().gauge("process.peak_rss_kb").set(kb);
  return kb;
#else
  return 0;
#endif
}

namespace {

std::atomic<const Session*> g_active_session{nullptr};

std::mutex g_hooks_mutex;
std::vector<std::function<void()>> g_hooks;

// The handler body is the async-signal-safe minimum: store the signal
// number into a sig_atomic_t. The Session's watcher thread polls the flag
// and performs the actual flushing (locks, allocation, file I/O) on an
// ordinary thread, then restores the default disposition and re-raises so
// the exit status still reports the interrupt.
volatile std::sig_atomic_t g_pending_signal = 0;

extern "C" void session_signal_handler(int sig) { g_pending_signal = sig; }

}  // namespace

void add_interrupt_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks.push_back(std::move(hook));
}

void clear_interrupt_hooks() {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks.clear();
}

Session::Session(const CliOptions& opt)
    : summary_(opt.get_bool("obs", "RTSP_OBS", false)),
      trace_out_(opt.get_string("trace-out", "", "")),
      metrics_out_(opt.get_string("metrics-out", "", "")),
      series_out_(opt.get_string("series-out", "", "")),
      log_out_(opt.get_string("log-out", "RTSP_LOG_OUT", "")) {
  const std::string log_level =
      opt.get_string("log-level", "RTSP_LOG_LEVEL", "");
  const auto introspect_port = static_cast<int>(
      opt.get_int("introspect-port", "RTSP_INTROSPECT_PORT", -1));

  log_armed_ = !log_out_.empty() || !log_level.empty();
  enabled_ = summary_ || !trace_out_.empty() || !metrics_out_.empty() ||
             !series_out_.empty() || log_armed_ || introspect_port >= 0;
  if (enabled_) set_enabled(true);

  if (log_armed_) {
    LogLevel level = LogLevel::Info;
    if (!log_level.empty() && !log_level_from_string(log_level, level)) {
      throw std::runtime_error(
          "unknown --log-level '" + log_level +
          "' (expected trace, debug, info, warn, error or off)");
    }
    Logger::instance().configure(level, log_out_);
  }

  if (introspect_port >= 0) {
    IntrospectOptions options;
    options.port = static_cast<std::uint16_t>(introspect_port);
    introspect_ = std::make_unique<IntrospectServer>(options);
  }

  if (!series_out_.empty()) {
    const int period_ms =
        static_cast<int>(opt.get_int("sample-ms", "RTSP_SAMPLE_MS", 100));
    sampler_ = std::make_unique<MetricsSampler>();
    sampler_->start(std::chrono::milliseconds(period_ms > 0 ? period_ms : 100));
  }

  if (enabled_) {
    const Session* expected = nullptr;
    if (g_active_session.compare_exchange_strong(expected, this)) {
      g_pending_signal = 0;
      std::signal(SIGINT, session_signal_handler);
      std::signal(SIGTERM, session_signal_handler);
      signals_installed_ = true;
      watcher_ = std::thread([this] { watch_signals(); });
    }
  }
}

Session::~Session() {
  if (signals_installed_) {
    watcher_stop_.store(true, std::memory_order_relaxed);
    if (watcher_.joinable()) watcher_.join();
    const Session* expected = this;
    g_active_session.compare_exchange_strong(expected, nullptr);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    clear_interrupt_hooks();
  }
}

void Session::watch_signals() {
  while (!watcher_stop_.load(std::memory_order_relaxed)) {
    const int sig = static_cast<int>(g_pending_signal);
    if (sig != 0) {
      const Session* session = g_active_session.exchange(nullptr);
      if (session != nullptr) session->emergency_flush();
      std::signal(sig, SIG_DFL);
      std::raise(sig);
      return;  // not reached for fatal dispositions; keeps the loop sane
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Session::finish(std::ostream& out) const {
  if (!enabled_) return;
  record_peak_rss();
  if (sampler_ != nullptr) {
    sampler_->stop();
    write_series_file(series_out_, sampler_->samples(), sampler_->dropped());
    out << "obs series written to " << series_out_ << " ("
        << sampler_->samples().size() << " samples)\n";
  }
  if (introspect_ != nullptr) {
    const std::uint16_t port = introspect_->port();
    introspect_->stop();
    out << "obs introspection on port " << port << " served "
        << introspect_->requests_served() << " requests\n";
  }
  if (log_armed_) {
    Logger& logger = Logger::instance();
    const std::uint64_t records = logger.records_emitted();
    logger.shutdown();
    if (!log_out_.empty()) {
      out << "obs log written to " << log_out_ << " (" << records
          << " records)\n";
    }
  }
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  if (!metrics_out_.empty()) {
    write_metrics_file(metrics_out_, snap);
    out << "obs metrics written to " << metrics_out_ << '\n';
  }
  if (!trace_out_.empty() || summary_) {
    const std::vector<TraceEvent> events = collect_trace();
    if (!trace_out_.empty()) {
      write_trace_file(trace_out_, events);
      out << "obs trace written to " << trace_out_ << " (" << events.size()
          << " events; open in ui.perfetto.dev)\n";
    }
    if (summary_) {
      print_metrics_summary(out, snap);
      print_span_summary(out, events);
    }
    if (const std::uint64_t dropped = trace_dropped(); dropped > 0) {
      out << "obs: " << dropped
          << " trace events dropped (raise the per-thread buffer via "
             "obs::set_trace_capacity)\n";
    }
  }
}

void Session::emergency_flush() const {
  if (!enabled_) return;
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(g_hooks_mutex);
    hooks = g_hooks;
  }
  for (const auto& hook : hooks) {
    try {
      hook();
    } catch (...) {
    }
  }
  try {
    if (sampler_ != nullptr) {
      sampler_->stop();
      if (!series_out_.empty()) {
        write_series_file(series_out_, sampler_->samples(),
                          sampler_->dropped());
      }
    }
  } catch (...) {
  }
  try {
    if (!metrics_out_.empty()) {
      write_metrics_file(metrics_out_, MetricsRegistry::instance().snapshot());
    }
  } catch (...) {
  }
  try {
    if (!trace_out_.empty()) write_trace_file(trace_out_, collect_trace());
  } catch (...) {
  }
  try {
    Logger::instance().flush();
    if (log_armed_) Logger::instance().shutdown();
  } catch (...) {
  }
  try {
    if (introspect_ != nullptr) introspect_->stop();
  } catch (...) {
  }
}

}  // namespace rtsp::obs
