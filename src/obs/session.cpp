#include "obs/session.hpp"

#include <chrono>
#include <ostream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/series_io.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rtsp::obs {

std::int64_t record_peak_rss() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  std::int64_t kb = usage.ru_maxrss;
#if defined(__APPLE__)
  kb /= 1024;  // macOS reports bytes, Linux kilobytes
#endif
  MetricsRegistry::instance().gauge("process.peak_rss_kb").set(kb);
  return kb;
#else
  return 0;
#endif
}

Session::Session(const CliOptions& opt)
    : summary_(opt.get_bool("obs", "RTSP_OBS", false)),
      trace_out_(opt.get_string("trace-out", "", "")),
      metrics_out_(opt.get_string("metrics-out", "", "")),
      series_out_(opt.get_string("series-out", "", "")) {
  enabled_ = summary_ || !trace_out_.empty() || !metrics_out_.empty() ||
             !series_out_.empty();
  if (enabled_) set_enabled(true);
  if (!series_out_.empty()) {
    const int period_ms =
        static_cast<int>(opt.get_int("sample-ms", "RTSP_SAMPLE_MS", 100));
    sampler_ = std::make_unique<MetricsSampler>();
    sampler_->start(std::chrono::milliseconds(period_ms > 0 ? period_ms : 100));
  }
}

Session::~Session() = default;

void Session::finish(std::ostream& out) const {
  if (!enabled_) return;
  record_peak_rss();
  if (sampler_ != nullptr) {
    sampler_->stop();
    write_series_file(series_out_, sampler_->samples(), sampler_->dropped());
    out << "obs series written to " << series_out_ << " ("
        << sampler_->samples().size() << " samples)\n";
  }
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  if (!metrics_out_.empty()) {
    write_metrics_file(metrics_out_, snap);
    out << "obs metrics written to " << metrics_out_ << '\n';
  }
  if (!trace_out_.empty() || summary_) {
    const std::vector<TraceEvent> events = collect_trace();
    if (!trace_out_.empty()) {
      write_trace_file(trace_out_, events);
      out << "obs trace written to " << trace_out_ << " (" << events.size()
          << " events; open in ui.perfetto.dev)\n";
    }
    if (summary_) {
      print_metrics_summary(out, snap);
      print_span_summary(out, events);
    }
    if (const std::uint64_t dropped = trace_dropped(); dropped > 0) {
      out << "obs: " << dropped
          << " trace events dropped (raise the per-thread buffer via "
             "obs::set_trace_capacity)\n";
    }
  }
}

}  // namespace rtsp::obs
