#include "obs/series_io.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "support/csv.hpp"
#include "support/json.hpp"

namespace rtsp::obs {

void write_series_jsonl(std::ostream& out,
                        const std::vector<SeriesSample>& samples,
                        std::uint64_t dropped) {
  {
    JsonWriter j(out);
    j.begin_object();
    j.key("format").value(kSeriesFormatName);
    j.key("version").value(kSeriesFormatVersion);
    j.key("samples").value(static_cast<std::uint64_t>(samples.size()));
    j.key("dropped").value(dropped);
    j.end_object();
  }
  out << '\n';
  for (const SeriesSample& s : samples) {
    JsonWriter j(out);
    j.begin_object();
    j.key("wall_ns").value(s.wall_ns);
    j.key("tick").value(s.tick);
    j.key("label").value(s.label);
    j.key("counters").begin_object();
    for (const auto& [name, delta] : s.counter_deltas) j.key(name).value(delta);
    j.end_object();
    j.key("gauges").begin_object();
    for (const auto& [name, value] : s.gauges) j.key(name).value(value);
    j.end_object();
    j.end_object();
    out << '\n';
  }
}

void write_series_csv(std::ostream& out,
                      const std::vector<SeriesSample>& samples) {
  CsvWriter w(out);
  w.row({"wall_ns", "tick", "label", "kind", "name", "value"});
  for (const SeriesSample& s : samples) {
    for (const auto& [name, delta] : s.counter_deltas) {
      w.field(s.wall_ns).field(s.tick).field(s.label);
      w.field("counter_delta").field(name).field(delta);
      w.end_row();
    }
    for (const auto& [name, value] : s.gauges) {
      w.field(s.wall_ns).field(s.tick).field(s.label);
      w.field("gauge").field(name).field(value);
      w.end_row();
    }
  }
}

void write_series_file(const std::string& path,
                       const std::vector<SeriesSample>& samples,
                       std::uint64_t dropped) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open series output file: " + path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    write_series_csv(out, samples);
  } else {
    write_series_jsonl(out, samples, dropped);
  }
}

SeriesDoc read_series_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open series file: " + path);

  SeriesDoc doc;
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const JsonValue v = parse_json(line);
    if (!saw_header) {
      const JsonValue* format = v.find("format");
      if (format == nullptr || format->as_string() != kSeriesFormatName) {
        throw std::runtime_error(path + ": missing rtsp-series header");
      }
      doc.version = static_cast<int>(v.at("version").as_int());
      if (doc.version != kSeriesFormatVersion) {
        throw std::runtime_error(path + ": unsupported series version " +
                                 std::to_string(doc.version));
      }
      if (const JsonValue* d = v.find("dropped")) {
        doc.dropped = static_cast<std::uint64_t>(d->as_int());
      }
      saw_header = true;
      continue;
    }
    SeriesSample s;
    s.wall_ns = static_cast<std::uint64_t>(v.at("wall_ns").as_int());
    s.tick = v.at("tick").as_int();
    s.label = v.at("label").as_string();
    for (const auto& [name, val] : v.at("counters").members()) {
      s.counter_deltas.emplace_back(name, static_cast<std::uint64_t>(val.as_int()));
    }
    for (const auto& [name, val] : v.at("gauges").members()) {
      s.gauges.emplace_back(name, val.as_int());
    }
    doc.samples.push_back(std::move(s));
  }
  if (!saw_header) {
    throw std::runtime_error(path + ": empty series file (line " +
                             std::to_string(lineno) + ")");
  }
  return doc;
}

}  // namespace rtsp::obs
