#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

namespace rtsp::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
          .count());
}

namespace {

/// One thread's private slice of every metric. Only the owning thread
/// writes; snapshot readers do relaxed loads (exact once writers joined).
struct ThreadShard {
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
  };
  Hist hists[kMaxHistograms];
};

/// Retired (thread-exited) totals in plain integers, guarded by the mutex.
struct RetiredTotals {
  std::uint64_t counters[kMaxCounters] = {};
  struct Hist {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t buckets[kHistogramBuckets] = {};
  };
  Hist hists[kMaxHistograms];
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> max{0};
};

std::size_t bucket_of(std::uint64_t ns) {
  return std::min<std::size_t>(std::bit_width(ns), kHistogramBuckets - 1);
}

/// Upper edge of bucket i in microseconds (samples in bucket i are < 2^i ns).
double bucket_edge_us(std::size_t i) {
  return static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(i, 62)) / 1e3;
}

}  // namespace

std::uint64_t histogram_bucket_upper_ns(std::size_t i) {
  return std::uint64_t{1} << std::min<std::size_t>(i, 62);
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9') && c != '.') return false;
  }
  return true;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::map<std::string, std::uint32_t> counter_ids;
  std::map<std::string, std::uint32_t> gauge_ids;
  std::map<std::string, std::uint32_t> hist_ids;
  std::vector<ThreadShard*> live_shards;
  RetiredTotals retired;
  GaugeCell gauges[kMaxGauges];

  ThreadShard* register_shard() {
    auto* shard = new ThreadShard();
    std::lock_guard<std::mutex> lock(mutex);
    live_shards.push_back(shard);
    return shard;
  }

  void retire_shard(ThreadShard* shard) {
    std::lock_guard<std::mutex> lock(mutex);
    fold(shard);
    live_shards.erase(std::find(live_shards.begin(), live_shards.end(), shard));
    delete shard;
  }

  // Callers hold the mutex.
  void fold(const ThreadShard* shard) {
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      retired.counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kMaxHistograms; ++h) {
      const auto& src = shard->hists[h];
      auto& dst = retired.hists[h];
      dst.count += src.count.load(std::memory_order_relaxed);
      dst.sum_ns += src.sum_ns.load(std::memory_order_relaxed);
      dst.max_ns = std::max(dst.max_ns, src.max_ns.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        dst.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl impl;
  return impl;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Impl& registry_impl() { return MetricsRegistry::instance().impl(); }

namespace {

ThreadShard& tls_shard() {
  // The handle's destructor folds this thread's contributions into the
  // retired totals at thread exit, so totals survive transient pools.
  struct Handle {
    ThreadShard* shard;
    MetricsRegistry::Impl* owner;
    explicit Handle(MetricsRegistry::Impl& impl)
        : shard(impl.register_shard()), owner(&impl) {}
    ~Handle() { owner->retire_shard(shard); }
  };
  thread_local Handle handle(registry_impl());
  return *handle.shard;
}

}  // namespace

void Counter::add(std::uint64_t n) const {
  if (!enabled()) return;
  tls_shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) const {
  if (!enabled()) return;
  auto& cell = registry_impl().gauges[id_];
  cell.value.store(v, std::memory_order_relaxed);
  std::int64_t prev = cell.max.load(std::memory_order_relaxed);
  while (v > prev &&
         !cell.max.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

void Gauge::add(std::int64_t delta) const {
  if (!enabled()) return;
  auto& cell = registry_impl().gauges[id_];
  const std::int64_t v = cell.value.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t prev = cell.max.load(std::memory_order_relaxed);
  while (v > prev &&
         !cell.max.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Gauge::value() const {
  return registry_impl().gauges[id_].value.load(
      std::memory_order_relaxed);
}

void LatencyHistogram::record_ns(std::uint64_t ns) const {
  if (!enabled()) return;
  auto& hist = tls_shard().hists[id_];
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  hist.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = hist.max_ns.load(std::memory_order_relaxed);
  while (ns > prev &&
         !hist.max_ns.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

namespace {

std::uint32_t intern(std::vector<std::string>& names,
                     std::map<std::string, std::uint32_t>& ids,
                     const std::string& name, std::size_t capacity,
                     const char* kind) {
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (!valid_metric_name(name)) {
    throw std::invalid_argument(
        std::string("obs ") + kind + " name '" + name +
        "' violates the metric charset [a-zA-Z_:][a-zA-Z0-9_:.]*");
  }
  if (names.size() >= capacity) {
    throw std::length_error(std::string("too many obs ") + kind + " names (max " +
                            std::to_string(capacity) + "): " + name);
  }
  const auto id = static_cast<std::uint32_t>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

}  // namespace

Counter MetricsRegistry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return Counter(intern(i.counter_names, i.counter_ids, name, kMaxCounters,
                        "counter"));
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return Gauge(intern(i.gauge_names, i.gauge_ids, name, kMaxGauges, "gauge"));
}

LatencyHistogram MetricsRegistry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return LatencyHistogram(
      intern(i.hist_names, i.hist_ids, name, kMaxHistograms, "histogram"));
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.counter_ids.find(name);
  if (it == i.counter_ids.end()) return 0;
  std::uint64_t total = i.retired.counters[it->second];
  for (const ThreadShard* shard : i.live_shards) {
    total += shard->counters[it->second].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  MetricsSnapshot snap;

  snap.counters.reserve(i.counter_names.size());
  for (std::size_t c = 0; c < i.counter_names.size(); ++c) {
    std::uint64_t total = i.retired.counters[c];
    for (const ThreadShard* shard : i.live_shards) {
      total += shard->counters[c].load(std::memory_order_relaxed);
    }
    snap.counters.push_back({i.counter_names[c], total});
  }

  snap.gauges.reserve(i.gauge_names.size());
  for (std::size_t g = 0; g < i.gauge_names.size(); ++g) {
    snap.gauges.push_back({i.gauge_names[g],
                           i.gauges[g].value.load(std::memory_order_relaxed),
                           i.gauges[g].max.load(std::memory_order_relaxed)});
  }

  snap.histograms.reserve(i.hist_names.size());
  for (std::size_t h = 0; h < i.hist_names.size(); ++h) {
    RetiredTotals::Hist agg = i.retired.hists[h];
    for (const ThreadShard* shard : i.live_shards) {
      const auto& src = shard->hists[h];
      agg.count += src.count.load(std::memory_order_relaxed);
      agg.sum_ns += src.sum_ns.load(std::memory_order_relaxed);
      agg.max_ns = std::max(agg.max_ns, src.max_ns.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        agg.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
      }
    }
    MetricsSnapshot::HistogramValue v;
    v.name = i.hist_names[h];
    v.count = agg.count;
    v.sum_ns = agg.sum_ns;
    v.buckets.assign(agg.buckets, agg.buckets + kHistogramBuckets);
    if (agg.count > 0) {
      v.mean_us = static_cast<double>(agg.sum_ns) / static_cast<double>(agg.count) / 1e3;
      v.max_us = static_cast<double>(agg.max_ns) / 1e3;
      // Percentiles as the upper edge of the bucket holding that rank
      // (conservative: the true value is at most the reported one).
      const auto rank_edge = [&](double q) {
        // Nearest-rank percentile: the smallest sample with at least
        // ceil(q * count) samples at or below it.
        const auto rank = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(agg.count)));
        std::uint64_t seen = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          seen += agg.buckets[b];
          if (seen >= rank) return bucket_edge_us(b);
        }
        return bucket_edge_us(kHistogramBuckets - 1);
      };
      v.p50_us = rank_edge(0.50);
      v.p90_us = rank_edge(0.90);
      v.p95_us = rank_edge(0.95);
      v.p99_us = rank_edge(0.99);
    }
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

void MetricsRegistry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.retired = RetiredTotals{};
  for (auto& g : i.gauges) {
    g.value.store(0, std::memory_order_relaxed);
    g.max.store(0, std::memory_order_relaxed);
  }
  for (ThreadShard* shard : i.live_shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum_ns.store(0, std::memory_order_relaxed);
      h.max_ns.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

}  // namespace rtsp::obs
