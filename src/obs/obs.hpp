// Observability umbrella: the OBS_* instrumentation macros plus the metrics
// and trace APIs they sit on.
//
// Two gates, cheapest wins:
//   * compile time — the RTSP_OBS CMake option (default ON) defines
//     RTSP_OBS_ENABLED; when 0 every macro expands to ((void)0) and the
//     instrumented code carries zero obs code;
//   * run time — obs::set_enabled(true) arms recording; when disabled each
//     macro costs one relaxed atomic load.
//
// Instrumentation must never change program behaviour: macros only observe,
// and macro arguments are NOT evaluated when compiled out — never pass
// expressions with side effects.
#pragma once

#include "obs/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef RTSP_OBS_ENABLED
#define RTSP_OBS_ENABLED 1
#endif

#if RTSP_OBS_ENABLED

#define RTSP_OBS_CONCAT_INNER(a, b) a##b
#define RTSP_OBS_CONCAT(a, b) RTSP_OBS_CONCAT_INNER(a, b)

/// Scoped span: OBS_SPAN("h1.pass") or OBS_SPAN("trial", "point=2 trial=0").
#define OBS_SPAN(...) \
  ::rtsp::obs::ScopedSpan RTSP_OBS_CONCAT(rtsp_obs_span_, __LINE__)(__VA_ARGS__)

/// Adds `n` to the named counter (handle interned once per call site).
#define OBS_COUNT_N(name, n)                                      \
  do {                                                            \
    static const ::rtsp::obs::Counter rtsp_obs_c =                \
        ::rtsp::obs::MetricsRegistry::instance().counter(name);   \
    rtsp_obs_c.add(static_cast<std::uint64_t>(n));                \
  } while (0)
#define OBS_COUNT(name) OBS_COUNT_N(name, 1)

/// Sets the named gauge to `v` (also updates its max-since-reset).
#define OBS_GAUGE_SET(name, v)                                    \
  do {                                                            \
    static const ::rtsp::obs::Gauge rtsp_obs_g =                  \
        ::rtsp::obs::MetricsRegistry::instance().gauge(name);     \
    rtsp_obs_g.set(static_cast<std::int64_t>(v));                 \
  } while (0)

/// Records one latency sample (nanoseconds) into the named histogram.
#define OBS_LATENCY_NS(name, ns)                                  \
  do {                                                            \
    static const ::rtsp::obs::LatencyHistogram rtsp_obs_h =       \
        ::rtsp::obs::MetricsRegistry::instance().histogram(name); \
    rtsp_obs_h.record_ns(static_cast<std::uint64_t>(ns));         \
  } while (0)

/// Emits the named counter's current aggregate as a trace counter sample —
/// a Perfetto counter track showing the metric evolving over the run.
#define OBS_TRACE_COUNTER(name)                                              \
  do {                                                                       \
    if (::rtsp::obs::enabled()) {                                            \
      ::rtsp::obs::trace_counter(                                            \
          (name), static_cast<std::int64_t>(                                 \
                      ::rtsp::obs::MetricsRegistry::instance().counter_value(\
                          name)));                                           \
    }                                                                        \
  } while (0)

/// Structured log record: OBS_LOG(level, "message", fields...) where each
/// field is ::rtsp::obs::log_field("key", value). The level gate is one
/// relaxed load; message and field expressions are only evaluated when the
/// level is armed (never pass expressions with side effects).
#define OBS_LOG(level, ...)                                        \
  do {                                                             \
    ::rtsp::obs::Logger& rtsp_obs_l = ::rtsp::obs::Logger::instance(); \
    if (rtsp_obs_l.should_log(level)) {                            \
      rtsp_obs_l.log(level, __VA_ARGS__);                          \
    }                                                              \
  } while (0)

#define OBS_LOG_TRACE(...) OBS_LOG(::rtsp::obs::LogLevel::Trace, __VA_ARGS__)
#define OBS_LOG_DEBUG(...) OBS_LOG(::rtsp::obs::LogLevel::Debug, __VA_ARGS__)
#define OBS_LOG_INFO(...) OBS_LOG(::rtsp::obs::LogLevel::Info, __VA_ARGS__)
#define OBS_LOG_WARN(...) OBS_LOG(::rtsp::obs::LogLevel::Warn, __VA_ARGS__)
#define OBS_LOG_ERROR(...) OBS_LOG(::rtsp::obs::LogLevel::Error, __VA_ARGS__)

#else  // RTSP_OBS_ENABLED == 0: no code, arguments unevaluated.

#define OBS_SPAN(...) ((void)0)
#define OBS_COUNT_N(name, n) ((void)0)
#define OBS_COUNT(name) ((void)0)
#define OBS_GAUGE_SET(name, v) ((void)0)
#define OBS_LATENCY_NS(name, ns) ((void)0)
#define OBS_TRACE_COUNTER(name) ((void)0)
#define OBS_LOG(...) ((void)0)
#define OBS_LOG_TRACE(...) ((void)0)
#define OBS_LOG_DEBUG(...) ((void)0)
#define OBS_LOG_INFO(...) ((void)0)
#define OBS_LOG_WARN(...) ((void)0)
#define OBS_LOG_ERROR(...) ((void)0)

#endif  // RTSP_OBS_ENABLED
