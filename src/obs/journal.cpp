#include "obs/journal.hpp"

#include <utility>

namespace rtsp::obs {

const char* to_string(JournalEventType t) {
  switch (t) {
    case JournalEventType::AttemptStart:
      return "attempt_start";
    case JournalEventType::AttemptSuccess:
      return "attempt_success";
    case JournalEventType::TransientFault:
      return "transient_fault";
    case JournalEventType::Retry:
      return "retry";
    case JournalEventType::OfflineOpen:
      return "offline_open";
    case JournalEventType::OfflineClose:
      return "offline_close";
    case JournalEventType::ReplicaLoss:
      return "replica_loss";
    case JournalEventType::ReplanTrigger:
      return "replan_trigger";
    case JournalEventType::Degradation:
      return "degradation";
    case JournalEventType::Drain:
      return "drain";
  }
  return "?";
}

bool journal_event_type_from_string(const std::string& name,
                                    JournalEventType& out) {
  for (std::size_t i = 0; i < kJournalEventTypes; ++i) {
    const auto t = static_cast<JournalEventType>(i);
    if (name == to_string(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

Journal::Journal(std::size_t capacity) : slots_(capacity) {}

void Journal::record(JournalEvent e) {
  const std::size_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    // Dropping the newest (instead of overwriting the oldest) keeps the
    // retained prefix well-formed: open/close pairs stay matched and ticks
    // stay monotone, which the lint relies on.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot] = std::move(e);
}

std::vector<JournalEvent> Journal::events() const {
  const std::size_t n = size();
  return std::vector<JournalEvent>(slots_.begin(),
                                   slots_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::size_t Journal::size() const {
  const std::size_t claimed = cursor_.load(std::memory_order_relaxed);
  return claimed < slots_.size() ? claimed : slots_.size();
}

void Journal::clear() {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) slots_[i] = JournalEvent{};
  cursor_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace rtsp::obs
