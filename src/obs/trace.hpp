// Tracing: RAII scoped spans recorded into per-thread buffers and exported
// as Chrome trace-event JSON (viewable in Perfetto / chrome://tracing).
//
// Spans are "complete" events (ph "X"): one record per span, written at
// scope exit with the start timestamp and duration. trace_counter() emits
// counter samples (ph "C") that Perfetto renders as a counter track —
// improver passes use it to chart the incremental engine's counters over
// time. Buffers are bounded: past the per-thread capacity new events are
// dropped and counted (never reallocated mid-run), so tracing cost stays
// predictable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtsp::obs {

struct TraceEvent {
  enum class Kind : std::uint8_t { Complete, Counter };
  Kind kind = Kind::Complete;
  std::string name;
  std::string detail;         ///< optional args.detail (Complete only)
  std::uint64_t ts_ns = 0;    ///< start time, now_ns() epoch
  std::uint64_t dur_ns = 0;   ///< Complete only
  std::int64_t value = 0;     ///< Counter only
  std::uint32_t tid = 0;      ///< small sequential thread id
  std::uint64_t span_id = 0;  ///< process-unique id (Complete only; 0 = none)
};

/// RAII span: records a Complete event covering its scope when obs is
/// enabled; near-free otherwise (one relaxed load, strings untouched).
/// Armed spans get a process-unique id and appear on a per-thread stack so
/// other recorders (e.g. the provenance layer) can cross-reference the
/// enclosing span via current_span_id().
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string detail = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  std::string detail_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t span_id_ = 0;
  bool armed_ = false;
};

/// Id of the innermost armed span on this thread; 0 when none is active
/// (tracing disabled or outside any OBS_SPAN scope).
std::uint64_t current_span_id();

/// Records a counter sample at the current timestamp (no-op when disabled).
void trace_counter(std::string name, std::int64_t value);

/// Per-thread event capacity (default 1 << 16); applies to buffers created
/// after the call and caps further growth of existing ones.
void set_trace_capacity(std::size_t events_per_thread);

/// All recorded events (live + exited threads), sorted by timestamp.
std::vector<TraceEvent> collect_trace();

/// Discards every recorded event and zeroes the dropped count.
void clear_trace();

/// Events dropped because a thread's buffer was full.
std::uint64_t trace_dropped();

}  // namespace rtsp::obs
