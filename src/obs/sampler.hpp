// MetricsSampler: periodic MetricsSnapshot deltas over time.
//
// A single end-of-run snapshot (obs/export.*) says how much work happened;
// the sampler says *when*. Each captured sample stores the counter deltas
// since the previous sample (non-zero entries only, so quiet periods cost a
// few bytes) plus current gauge values, stamped with the wall clock and —
// when the caller is the executor — the virtual cost-tick clock.
//
// Two capture paths share one bounded sample buffer:
//   - sample_wall(): taken by a background thread started with start(period)
//     (and usable directly); tick is recorded as -1 ("wall-clock sample").
//   - sample_tick(tick, label): hooks at executor attempt/retry/replan
//     boundaries, stamping the virtual clock.
//
// Serialization (JSONL + CSV) lives in obs/series_io.*. Like the journal,
// the sampler is pull-based: nothing samples unless a sampler is created,
// started, or passed into ExecutorOptions, so plain runs pay nothing.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace rtsp::obs {

/// One captured point of the metrics time-series.
struct SeriesSample {
  std::uint64_t wall_ns = 0;  ///< obs::now_ns() at capture
  std::int64_t tick = -1;     ///< virtual clock; -1 for wall-clock samples
  std::string label;          ///< capture site ("wall", "attempt", ...)
  /// Counter increments since the previous sample (non-zero only).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  /// Gauge values at capture time (all registered gauges).
  std::vector<std::pair<std::string, std::int64_t>> gauges;
};

class MetricsSampler {
 public:
  explicit MetricsSampler(std::size_t max_samples = std::size_t{1} << 16);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Launches the background wall-clock thread; no-op if already running.
  void start(std::chrono::milliseconds period);

  /// Stops and joins the background thread, taking one final wall sample
  /// so the series always covers the full run. Safe to call when stopped.
  void stop();

  /// Captures a wall-clock sample now (also what the background thread does).
  void sample_wall(std::string label = "wall");

  /// Captures a virtual-clock sample at executor tick `tick`.
  void sample_tick(std::int64_t tick, std::string label);

  /// Samples captured so far, in capture order.
  std::vector<SeriesSample> samples() const;

  std::size_t max_samples() const { return max_samples_; }
  std::uint64_t dropped() const;

 private:
  void capture_locked(std::int64_t tick, std::string label,
                      std::unique_lock<std::mutex>& lock);
  void run(std::chrono::milliseconds period);

  const std::size_t max_samples_;
  mutable std::mutex mu_;
  std::vector<SeriesSample> samples_;
  std::vector<std::pair<std::string, std::uint64_t>> last_counters_;
  std::uint64_t dropped_ = 0;
  std::condition_variable cv_;
  std::thread thread_;
  bool stopping_ = false;
};

}  // namespace rtsp::obs
