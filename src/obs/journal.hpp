// Structured execution journal: a bounded lock-free buffer of typed events
// emitted by the fault-tolerant executor (attempt start/finish, transient
// faults, retries with backoff, offline windows, replica losses, replan
// triggers, degradations, drains), each stamped with both the executor's
// virtual cost-tick clock and the wall clock.
//
// Design mirrors the trace buffer (obs/trace.hpp): slots are allocated once
// up front, writers claim a slot with one relaxed fetch_add and never
// contend, and events past the capacity are dropped and counted rather than
// reallocating mid-run. Recording is pull-based — the executor writes only
// into a Journal the caller passed in (ExecutorOptions::journal), so runs
// without a journal pay nothing and the recorded schedule is bit-identical
// with recording on or off.
//
// Serialization (JSONL, versioned) lives in io/journal_io.*; this header
// stays dependency-free so the executor and the io layer share the types.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtsp::obs {

enum class JournalEventType : std::uint8_t {
  AttemptStart,    ///< an attempt begins (after any stall); extra = attempt#
  AttemptSuccess,  ///< the attempt applied; value = cost paid
  TransientFault,  ///< in-flight failure, cost still paid; value = cost
  Retry,           ///< a failed attempt will be retried; value = backoff ticks
  OfflineOpen,     ///< an endpoint's offline window stalls the clock (start)
  OfflineClose,    ///< the stall ended; matched with the preceding open
  ReplicaLoss,     ///< a due permanent loss was applied as a forced deletion
  ReplanTrigger,   ///< tail replan; value = dropped, extra = added, detail = reason
  Degradation,     ///< a transfer was forced through the dummy server
  Drain,           ///< replan budget spent; worst-case drain begins
};

/// Stable wire name ("attempt_start", ...); "?" for out-of-range values.
const char* to_string(JournalEventType t);

/// Inverse of to_string; returns false when `name` is not a known type.
bool journal_event_type_from_string(const std::string& name,
                                    JournalEventType& out);

/// Number of distinct JournalEventType values (for per-type tallies).
inline constexpr std::size_t kJournalEventTypes = 10;

/// One journal record. `server`/`object`/`source` are -1 when not
/// applicable; a dummy-server source is recorded as -2 (the ServerId
/// sentinel does not fit a signed field meant for compact JSON).
struct JournalEvent {
  JournalEventType type = JournalEventType::AttemptStart;
  std::int64_t tick = 0;      ///< virtual clock (cost ticks)
  std::uint64_t wall_ns = 0;  ///< obs::now_ns() at record time
  std::int64_t server = -1;   ///< destination server of the action
  std::int64_t object = -1;
  std::int64_t source = -1;   ///< transfer source; -2 = dummy server
  std::int64_t value = 0;     ///< type-specific payload (cost/backoff/dropped)
  std::int64_t extra = 0;     ///< second payload (attempt number/added)
  std::string detail;         ///< replan reason etc.; usually empty

  bool operator==(const JournalEvent&) const = default;
};

/// Bounded lock-free journal buffer. record() is wait-free for writers
/// (one fetch_add plus a slot write); events/size/dropped are meant to be
/// read after the producing run has finished, like the executor's report.
class Journal {
 public:
  explicit Journal(std::size_t capacity = std::size_t{1} << 16);

  /// Records `e`, or drops it (counted) when the buffer is full.
  void record(JournalEvent e);

  /// Events recorded so far, in record order (at most `capacity()`).
  std::vector<JournalEvent> events() const;

  std::size_t size() const;
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Forgets every event and zeroes the dropped count.
  void clear();

 private:
  std::vector<JournalEvent> slots_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace rtsp::obs
