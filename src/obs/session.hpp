// End-to-end obs wiring shared by the command-line tools: parses the common
// --obs / --trace-out=FILE / --metrics-out=FILE flags, arms recording when
// any of them is present, and at finish() writes the requested files and
// prints the end-of-run summary tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace rtsp {
class CliOptions;
}

namespace rtsp::obs {

/// Samples the process peak RSS, records it as the process.peak_rss_kb
/// gauge, and returns it in KiB (0 when the platform has no getrusage).
/// Called at session finish and after each solve so memory-vs-N experiments
/// can read the high-water mark without extra tooling.
std::int64_t record_peak_rss();

class Session {
 public:
  /// Inert session: recording stays off, finish() does nothing.
  Session() = default;

  /// Reads the shared flags from `opt`:
  ///   --obs               print metrics + span summary tables at finish()
  ///   --trace-out=FILE    write a Chrome trace-event JSON (Perfetto)
  ///   --metrics-out=FILE  write a metrics snapshot (.json, else CSV)
  /// Any of the three turns recording on for the whole process.
  explicit Session(const CliOptions& opt);

  bool enabled() const { return enabled_; }

  /// Writes the requested files and (with --obs) prints the summary tables.
  /// No-op when no obs flag was given.
  void finish(std::ostream& out) const;

 private:
  bool enabled_ = false;
  bool summary_ = false;
  std::string trace_out_;
  std::string metrics_out_;
};

}  // namespace rtsp::obs
