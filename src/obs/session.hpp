// End-to-end obs wiring shared by the command-line tools: parses the common
// --obs / --trace-out=FILE / --metrics-out=FILE flags, arms recording when
// any of them is present, and at finish() writes the requested files and
// prints the end-of-run summary tables. Also owns the live-introspection
// pieces: --log-out/--log-level arm the structured logger and
// --introspect-port starts the embedded HTTP server (obs/introspect).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>

namespace rtsp {
class CliOptions;
}

namespace rtsp::obs {

class MetricsSampler;
class IntrospectServer;

/// Samples the process peak RSS, records it as the process.peak_rss_kb
/// gauge, and returns it in KiB (0 when the platform has no getrusage).
/// Called at session finish and after each solve so memory-vs-N experiments
/// can read the high-water mark without extra tooling.
std::int64_t record_peak_rss();

/// Registers a callback the active Session runs (before its own flushing)
/// when the process takes SIGINT/SIGTERM — e.g. cmd_execute registers a
/// journal writer so an interrupted run still leaves a readable journal.
/// Hooks are cleared when the session that was active ends.
void add_interrupt_hook(std::function<void()> hook);
void clear_interrupt_hooks();

class Session {
 public:
  /// Inert session: recording stays off, finish() does nothing.
  Session() = default;

  /// Reads the shared flags from `opt`:
  ///   --obs                 print metrics + span summary tables at finish()
  ///   --trace-out=FILE      write a Chrome trace-event JSON (Perfetto)
  ///   --metrics-out=FILE    write a metrics snapshot (.json, else CSV)
  ///   --series-out=FILE     sample the metrics over time and write the
  ///                         series (.csv, else JSONL; see obs/series_io)
  ///   --sample-ms=N         wall-clock sampling period (default 100)
  ///   --log-out=FILE        structured log sink (`rtsp-log` v1 JSONL)
  ///   --log-level=L         arm the logger at trace/debug/info/warn/error
  ///                         (default info once --log-out is given)
  ///   --introspect-port=P   serve /metrics /healthz /progress /logz on
  ///                         127.0.0.1:P (0 picks an ephemeral port)
  /// Any of them turns recording on for the whole process. --series-out
  /// starts a background wall-clock sampler; commands that run the executor
  /// additionally feed virtual-clock samples through sampler(). While the
  /// session is enabled a SIGINT/SIGTERM triggers a best-effort flush of
  /// every armed sink before the process dies of the signal.
  explicit Session(const CliOptions& opt);
  ~Session();

  bool enabled() const { return enabled_; }

  /// The running sampler when --series-out was given, else nullptr. Pass it
  /// into ExecutorOptions::sampler to get virtual-clock samples too.
  MetricsSampler* sampler() const { return sampler_.get(); }

  /// The introspection server when --introspect-port was given, else
  /// nullptr (port() on it reports the bound port).
  IntrospectServer* introspect() const { return introspect_.get(); }

  /// Stops the sampler, writes the requested files and (with --obs) prints
  /// the summary tables. No-op when no obs flag was given.
  void finish(std::ostream& out) const;

  /// The interrupt flush path: runs the registered hooks, then writes and
  /// flushes every armed sink (series, metrics, trace, log) and stops the
  /// introspect server. Best-effort — each step swallows its own errors.
  /// Invoked from the signal *watcher thread* — never from the handler
  /// itself, which only stores the signal number into a sig_atomic_t flag
  /// (the only thing POSIX allows a handler to do portably). Exposed so
  /// tests can drive it without raising signals.
  void emergency_flush() const;

 private:
  /// Polls the handler's sig_atomic_t flag every ~20ms; on a pending
  /// SIGINT/SIGTERM it flushes on this (ordinary) thread, restores the
  /// default disposition and re-raises so the exit status still reports
  /// the signal.
  void watch_signals();

  bool enabled_ = false;
  bool summary_ = false;
  bool signals_installed_ = false;
  std::atomic<bool> watcher_stop_{false};
  std::thread watcher_;
  std::string trace_out_;
  std::string metrics_out_;
  std::string series_out_;
  std::string log_out_;
  bool log_armed_ = false;
  std::unique_ptr<MetricsSampler> sampler_;
  std::unique_ptr<IntrospectServer> introspect_;
};

}  // namespace rtsp::obs
