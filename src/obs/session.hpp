// End-to-end obs wiring shared by the command-line tools: parses the common
// --obs / --trace-out=FILE / --metrics-out=FILE flags, arms recording when
// any of them is present, and at finish() writes the requested files and
// prints the end-of-run summary tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace rtsp {
class CliOptions;
}

namespace rtsp::obs {

class MetricsSampler;

/// Samples the process peak RSS, records it as the process.peak_rss_kb
/// gauge, and returns it in KiB (0 when the platform has no getrusage).
/// Called at session finish and after each solve so memory-vs-N experiments
/// can read the high-water mark without extra tooling.
std::int64_t record_peak_rss();

class Session {
 public:
  /// Inert session: recording stays off, finish() does nothing.
  Session() = default;

  /// Reads the shared flags from `opt`:
  ///   --obs               print metrics + span summary tables at finish()
  ///   --trace-out=FILE    write a Chrome trace-event JSON (Perfetto)
  ///   --metrics-out=FILE  write a metrics snapshot (.json, else CSV)
  ///   --series-out=FILE   sample the metrics over time and write the
  ///                       series (.csv, else JSONL; see obs/series_io)
  ///   --sample-ms=N       wall-clock sampling period (default 100)
  /// Any of them turns recording on for the whole process. --series-out
  /// starts a background wall-clock sampler; commands that run the executor
  /// additionally feed virtual-clock samples through sampler().
  explicit Session(const CliOptions& opt);
  ~Session();

  bool enabled() const { return enabled_; }

  /// The running sampler when --series-out was given, else nullptr. Pass it
  /// into ExecutorOptions::sampler to get virtual-clock samples too.
  MetricsSampler* sampler() const { return sampler_.get(); }

  /// Stops the sampler, writes the requested files and (with --obs) prints
  /// the summary tables. No-op when no obs flag was given.
  void finish(std::ostream& out) const;

 private:
  bool enabled_ = false;
  bool summary_ = false;
  std::string trace_out_;
  std::string metrics_out_;
  std::string series_out_;
  std::unique_ptr<MetricsSampler> sampler_;
};

}  // namespace rtsp::obs
