// Live introspection: a Progress singleton that long-running phases update
// (portfolio incumbents, executor clock, tick budgets) plus a minimal
// embedded HTTP/1.1 server (support/net, loopback by default) serving
//
//   GET /metrics     Prometheus text exposition of the metrics registry
//   GET /healthz     liveness + current stage, as JSON
//   GET /progress    stage, incumbent cost/dummies, bound gap, tick budget
//                    and executor virtual clock, as JSON
//   GET /logz?n=K    most recent K log records as `rtsp-log` v1 JSONL
//
// The server only reads (registry snapshots, Progress atomics, the log
// ring); it is never observed by solver or executor control flow, so
// scraping a live run cannot change its schedule. Lives in the obs/
// directory but compiles into rtsp_support (it needs net + json, which sit
// above the dependency-free rtsp_obs core) — same arrangement as export.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "obs/obs.hpp"

namespace rtsp::obs {

/// Shared progress slots: writers are the portfolio driver and the
/// executor, readers are /healthz and /progress. Strings go under a mutex
/// (stage changes are rare); numeric slots are relaxed atomics. Never read
/// by solver control flow.
class Progress {
 public:
  static Progress& instance();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void set_stage(const std::string& stage);
  std::string stage() const;

  void set_incumbent(std::int64_t cost, std::int64_t dummies) {
    incumbent_cost_.store(cost, std::memory_order_relaxed);
    incumbent_dummies_.store(dummies, std::memory_order_relaxed);
    has_incumbent_.store(true, std::memory_order_relaxed);
  }
  void set_lower_bound(std::int64_t bound) {
    lower_bound_.store(bound, std::memory_order_relaxed);
    has_bound_.store(true, std::memory_order_relaxed);
  }
  void set_ticks(std::uint64_t spent, std::uint64_t budget) {
    ticks_spent_.store(spent, std::memory_order_relaxed);
    ticks_budget_.store(budget, std::memory_order_relaxed);
  }
  void set_exec_tick(std::int64_t tick) {
    exec_tick_.store(tick, std::memory_order_relaxed);
  }

  /// One coherent read of every slot (strings under the mutex, numbers
  /// relaxed — each field is individually consistent, which is all the
  /// endpoints promise).
  struct View {
    std::string stage;
    bool has_incumbent = false;
    std::int64_t incumbent_cost = 0;
    std::int64_t incumbent_dummies = 0;
    bool has_bound = false;
    std::int64_t lower_bound = 0;
    std::uint64_t ticks_spent = 0;
    std::uint64_t ticks_budget = 0;
    std::int64_t exec_tick = 0;
  };
  View view() const;

  /// /progress JSON body for the current view (exposed for obs_lint and
  /// the tests, so they validate exactly what the server serves).
  std::string to_json() const;

  /// Test hook: back to the freshly-started state.
  void reset();

 private:
  Progress() = default;

  mutable std::mutex mutex_;
  std::string stage_;
  std::atomic<bool> has_incumbent_{false};
  std::atomic<std::int64_t> incumbent_cost_{0};
  std::atomic<std::int64_t> incumbent_dummies_{0};
  std::atomic<bool> has_bound_{false};
  std::atomic<std::int64_t> lower_bound_{0};
  std::atomic<std::uint64_t> ticks_spent_{0};
  std::atomic<std::uint64_t> ticks_budget_{0};
  std::atomic<std::int64_t> exec_tick_{0};
};

/// Progress updates from instrumented code go through this macro so
/// RTSP_OBS=OFF builds compile them out entirely, like the other OBS_*
/// macros (the argument is not evaluated):
///   OBS_PROGRESS(set_stage("portfolio"));
///   OBS_PROGRESS(set_incumbent(cost, dummies));
#if RTSP_OBS_ENABLED
#define OBS_PROGRESS(call) (::rtsp::obs::Progress::instance().call)
#else
#define OBS_PROGRESS(call) ((void)0)
#endif

/// One parsed request as seen by a custom route handler. `body` is only
/// non-empty for requests that declared a Content-Length.
struct HttpRouteRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string target;  ///< path without the query string
  std::string query;   ///< bytes after '?', empty when absent
  std::string body;
};

/// What a custom route handler fills in. `retry_after`, when non-empty,
/// is emitted as a Retry-After header (daemon backpressure responses).
struct HttpRouteReply {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::string retry_after;
};

/// Returns true when the route was handled; false falls through to the
/// built-in GET endpoints. Runs on a handler-pool thread — implementations
/// must be thread-safe.
using HttpRouteHandler =
    std::function<bool(const HttpRouteRequest&, HttpRouteReply&)>;

struct IntrospectOptions {
  std::string host = "127.0.0.1";  ///< loopback unless explicitly widened
  std::uint16_t port = 0;          ///< 0 picks an ephemeral port
  std::size_t handler_threads = 2;
  /// Overall per-read deadline for one request (headers, then body). A
  /// stalled peer is dropped when it expires, freeing the handler thread.
  int request_timeout_ms = 2000;
  /// Declared request bodies above this get 413 without being read.
  std::size_t max_body_bytes = 8 * 1024 * 1024;
  /// Optional application route (the daemon control plane). Consulted
  /// before the built-in endpoints, for every method.
  HttpRouteHandler route;
};

/// The embedded HTTP server. The constructor binds and starts serving
/// (throws std::runtime_error when the bind fails); the destructor stops
/// the acceptor and joins the handler pool. Unknown paths get 404; methods
/// other than GET get 405 unless a custom route claims them.
class IntrospectServer {
 public:
  explicit IntrospectServer(const IntrospectOptions& options);
  ~IntrospectServer();

  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// The bound port (useful with port 0).
  std::uint16_t port() const;

  /// Requests served so far (tests and the session summary line).
  std::uint64_t requests_served() const;

  /// Stops accepting, joins all threads, closes the socket. Idempotent.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Response body builders, one per endpoint, exposed so obs_lint's
/// --scrape-smoke and the unit tests exercise exactly the served bytes.
std::string introspect_metrics_body();
std::string introspect_healthz_body();
std::string introspect_logz_body(std::size_t n);

}  // namespace rtsp::obs
