#include "obs/logging.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"  // now_ns()

namespace rtsp::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

bool log_level_from_string(const std::string& name, LogLevel& out) {
  for (const LogLevel l : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
    if (name == to_string(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

LogField log_field(std::string key, std::int64_t v) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::Int;
  f.i = v;
  return f;
}

LogField log_field(std::string key, std::uint64_t v) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::Uint;
  f.u = v;
  return f;
}

LogField log_field(std::string key, double v) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::Double;
  f.d = v;
  return f;
}

LogField log_field(std::string key, bool v) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::Bool;
  f.b = v;
  return f;
}

LogField log_field(std::string key, std::string v) {
  LogField f;
  f.key = std::move(key);
  f.kind = LogField::Kind::Str;
  f.s = std::move(v);
  return f;
}

LogField log_field(std::string key, const char* v) {
  return log_field(std::move(key), std::string(v));
}

namespace {

/// Minimal JSON string escaper (rtsp_obs must not depend on support/json).
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[48];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  if (res.ec != std::errc()) {
    out += "null";
    return;
  }
  out.append(buf, res.ptr);
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

std::string log_header_json() {
  return std::string("{\"format\":\"") + kLogFormatName +
         "\",\"version\":" + std::to_string(kLogFormatVersion) + "}";
}

std::string log_record_to_json(const LogRecord& record) {
  std::string out;
  out.reserve(96 + record.message.size());
  out += "{\"seq\":";
  out += std::to_string(record.seq);
  out += ",\"ts_ns\":";
  out += std::to_string(record.wall_ns);
  out += ",\"thread\":";
  out += std::to_string(record.tid);
  out += ",\"level\":\"";
  out += to_string(record.level);
  out += "\",\"msg\":";
  append_escaped(out, record.message);
  if (!record.fields.empty()) {
    out += ",\"fields\":{";
    bool first = true;
    for (const LogField& f : record.fields) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, f.key);
      out += ':';
      switch (f.kind) {
        case LogField::Kind::Int: out += std::to_string(f.i); break;
        case LogField::Kind::Uint: out += std::to_string(f.u); break;
        case LogField::Kind::Double: append_double(out, f.d); break;
        case LogField::Kind::Bool: out += f.b ? "true" : "false"; break;
        case LogField::Kind::Str: append_escaped(out, f.s); break;
      }
    }
    out += '}';
  }
  out += '}';
  return out;
}

struct Logger::Impl {
  mutable std::mutex mutex;
  std::vector<LogRecord> ring;  ///< fixed-size once configured
  std::size_t ring_capacity = 1024;
  std::size_t next_slot = 0;  ///< ring write cursor
  std::size_t filled = 0;     ///< records currently held (<= capacity)
  std::uint64_t next_seq = 0;
  std::ofstream sink;
};

Logger::Impl& Logger::impl() const {
  static Impl impl;
  return impl;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::~Logger() = default;

void Logger::configure(LogLevel level, const std::string& jsonl_path,
                       std::size_t ring_capacity) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  if (im.sink.is_open()) {
    im.sink.flush();
    im.sink.close();
  }
  if (!jsonl_path.empty()) {
    im.sink.open(jsonl_path);
    if (!im.sink) {
      throw std::runtime_error("cannot open log output file: " + jsonl_path);
    }
    im.sink << log_header_json() << '\n';
  }
  im.ring_capacity = ring_capacity > 0 ? ring_capacity : 1;
  im.ring.clear();
  im.ring.resize(im.ring_capacity);
  im.next_slot = 0;
  im.filled = 0;
  level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
}

void Logger::shutdown() {
  level_.store(static_cast<std::uint8_t>(LogLevel::Off),
               std::memory_order_relaxed);
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  if (im.sink.is_open()) {
    im.sink.flush();
    im.sink.close();
  }
}

void Logger::flush() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  if (im.sink.is_open()) im.sink.flush();
}

void Logger::log(LogLevel level, std::string message,
                 std::vector<LogField> fields) {
  LogRecord record;
  record.wall_ns = now_ns();
  record.tid = this_thread_id();
  record.level = level;
  record.message = std::move(message);
  record.fields = std::move(fields);

  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  record.seq = im.next_seq++;
  if (im.sink.is_open()) im.sink << log_record_to_json(record) << '\n';
  if (im.ring.empty()) im.ring.resize(im.ring_capacity);
  if (im.filled == im.ring.size()) {
    evicted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++im.filled;
  }
  im.ring[im.next_slot] = std::move(record);
  im.next_slot = (im.next_slot + 1) % im.ring.size();
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LogRecord> Logger::tail(std::size_t n) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  const std::size_t count = std::min(n, im.filled);
  std::vector<LogRecord> out;
  out.reserve(count);
  // next_slot points at the oldest record once the ring has wrapped.
  const std::size_t size = im.ring.size();
  for (std::size_t k = count; k > 0; --k) {
    const std::size_t idx = (im.next_slot + size - k) % size;
    out.push_back(im.ring[idx]);
  }
  return out;
}

void Logger::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.ring.clear();
  im.ring.resize(im.ring_capacity);
  im.next_slot = 0;
  im.filled = 0;
  im.next_seq = 0;
  emitted_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
}

}  // namespace rtsp::obs
