#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "obs/metrics.hpp"

namespace rtsp::obs {

namespace {

struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;
  std::uint32_t next_tid = 0;
  std::atomic<std::size_t> capacity{std::size_t{1} << 16};
  std::atomic<std::uint64_t> dropped{0};

  static TraceRegistry& instance() {
    static TraceRegistry registry;
    return registry;
  }

  ThreadBuffer* register_buffer() {
    auto* buffer = new ThreadBuffer();
    std::lock_guard<std::mutex> lock(mutex);
    buffer->tid = next_tid++;
    live.push_back(buffer);
    return buffer;
  }

  void retire_buffer(ThreadBuffer* buffer) {
    std::lock_guard<std::mutex> lock(mutex);
    retired.insert(retired.end(), std::make_move_iterator(buffer->events.begin()),
                   std::make_move_iterator(buffer->events.end()));
    live.erase(std::find(live.begin(), live.end(), buffer));
    delete buffer;
  }
};

std::atomic<std::uint64_t> g_next_span_id{1};

/// Innermost-first stack of armed span ids on this thread.
thread_local std::vector<std::uint64_t> t_span_stack;

ThreadBuffer& tls_buffer() {
  struct Handle {
    ThreadBuffer* buffer;
    Handle() : buffer(TraceRegistry::instance().register_buffer()) {}
    ~Handle() { TraceRegistry::instance().retire_buffer(buffer); }
  };
  thread_local Handle handle;
  return *handle.buffer;
}

void push_event(TraceEvent event) {
  TraceRegistry& r = TraceRegistry::instance();
  ThreadBuffer& buffer = tls_buffer();
  if (buffer.events.size() >= r.capacity.load(std::memory_order_relaxed)) {
    r.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = buffer.tid;
  // collect_trace() copies live buffers under the registry mutex, so the
  // append takes it too. Spans are per-pass/per-trial, not per-candidate,
  // so the lock is effectively uncontended.
  std::lock_guard<std::mutex> lock(r.mutex);
  buffer.events.push_back(std::move(event));
}

}  // namespace

ScopedSpan::ScopedSpan(std::string name, std::string detail) {
  if (!enabled()) return;
  armed_ = true;
  name_ = std::move(name);
  detail_ = std::move(detail);
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  t_span_stack.push_back(span_id_);
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  t_span_stack.pop_back();
  TraceEvent event;
  event.kind = TraceEvent::Kind::Complete;
  event.name = std::move(name_);
  event.detail = std::move(detail_);
  event.ts_ns = start_ns_;
  event.dur_ns = now_ns() - start_ns_;
  event.span_id = span_id_;
  push_event(std::move(event));
}

std::uint64_t current_span_id() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

void trace_counter(std::string name, std::int64_t value) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::Counter;
  event.name = std::move(name);
  event.ts_ns = now_ns();
  event.value = value;
  push_event(std::move(event));
}

void set_trace_capacity(std::size_t events_per_thread) {
  TraceRegistry::instance().capacity.store(events_per_thread,
                                           std::memory_order_relaxed);
}

std::vector<TraceEvent> collect_trace() {
  TraceRegistry& r = TraceRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<TraceEvent> events = r.retired;
  for (const ThreadBuffer* buffer : r.live) {
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

void clear_trace() {
  TraceRegistry& r = TraceRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.retired.clear();
  for (ThreadBuffer* buffer : r.live) buffer->events.clear();
  r.dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_dropped() {
  return TraceRegistry::instance().dropped.load(std::memory_order_relaxed);
}

}  // namespace rtsp::obs
