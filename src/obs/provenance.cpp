#include "obs/provenance.hpp"

#include <algorithm>
#include <utility>

#include "core/cost_model.hpp"
#include "core/state.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace rtsp::prov {

const char* to_string(StageKind k) {
  switch (k) {
    case StageKind::Builder: return "builder";
    case StageKind::Improver: return "improver";
    case StageKind::Unknown: return "unknown";
  }
  return "?";
}

RootCause make_root_cause(const SystemModel& model, const ReplicationMatrix& x_old,
                          const Schedule& h, std::size_t pos) {
  RTSP_REQUIRE(pos < h.size());
  const Action& dummy = h[pos];
  RTSP_REQUIRE_MSG(dummy.is_dummy_transfer(),
                   "root cause requested for a non-dummy action");
  const ObjectId k = dummy.object;
  const auto num_servers = static_cast<ServerId>(model.num_servers());
  const auto num_objects = static_cast<ObjectId>(model.num_objects());

  // One replay of the prefix, tracking object k's per-server history: who
  // ever held it and where each replica was last deleted.
  std::vector<std::size_t> last_delete(num_servers, kNone);
  std::vector<char> ever_held(num_servers, 0);
  for (ServerId i = 0; i < num_servers; ++i) ever_held[i] = x_old.test(i, k);
  ExecutionState st(model, x_old);
  for (std::size_t u = 0; u < pos; ++u) {
    const Action& a = h[u];
    if (a.object == k) {
      if (a.is_transfer()) ever_held[a.server] = 1;
      else last_delete[a.server] = u;
    }
    st.apply_lenient(a);
  }

  RootCause rc;
  rc.object = k;
  rc.dest = dummy.server;
  rc.object_size = model.object_size(k);
  rc.dest_free_space = st.free_space(rc.dest);
  rc.free_space.resize(num_servers);
  for (ServerId i = 0; i < num_servers; ++i) rc.free_space[i] = st.free_space(i);
  for (ServerId i = 0; i < num_servers; ++i) {
    if (st.holds(i, k)) {
      rc.holders.push_back(i);
      continue;
    }
    if (!ever_held[i]) continue;
    RootCause::Blocker b;
    b.server = i;
    b.deleted_at = last_delete[i];
    b.free_space = st.free_space(i);
    for (ObjectId o = 0; o < num_objects; ++o) {
      if (o != k && st.holds(i, o) && !x_old.test(i, o)) b.occupying.push_back(o);
    }
    rc.blockers.push_back(std::move(b));
  }
  rc.kind = !rc.holders.empty()  ? RootCause::Kind::SourceAvailable
            : rc.blockers.empty() ? RootCause::Kind::NoInitialReplica
                                  : RootCause::Kind::CapacityDeadlock;
  return rc;
}

AttributionSummary attribute_schedule(const SystemModel& model, const Schedule& h,
                                      const Provenance& p) {
  RTSP_REQUIRE_MSG(p.entries.size() == h.size(),
                   "provenance has " << p.entries.size() << " entries for a "
                                     << h.size() << "-action schedule");
  AttributionSummary s;
  s.stages.resize(p.stages.size());
  for (std::uint32_t i = 0; i < s.stages.size(); ++i) s.stages[i].stage = i;

  for (std::size_t u = 0; u < h.size(); ++u) {
    const Entry& e = p.entries[u];
    RTSP_REQUIRE(e.stage < s.stages.size());
    StageAttribution& a = s.stages[e.stage];
    const Action& act = h[u];
    ++a.actions;
    ++s.total_actions;
    if (act.is_transfer()) {
      ++a.transfers;
      ++s.transfers;
      const Cost c = action_cost(model, act);
      a.cost += c;
      s.total_cost += c;
      if (act.is_dummy_transfer()) {
        ++a.dummy_transfers;
        ++s.dummy_transfers;
        a.dummy_cost += c;
        s.dummy_cost += c;
      }
    } else {
      ++a.deletions;
      ++s.deletions;
    }
  }
  for (const Rewrite& rw : p.rewrites) {
    RTSP_REQUIRE(rw.stage < s.stages.size());
    StageAttribution& a = s.stages[rw.stage];
    ++a.rewrites;
    a.rewrite_cost_delta += rw.cost_delta;
    a.rewrite_dummy_delta += rw.dummy_delta;
  }
  return s;
}

Recorder::Recorder(const SystemModel& model, const ReplicationMatrix& x_old)
    : model_(model), x_old_(x_old) {}

std::uint32_t Recorder::intern_stage(StageKind kind, const std::string& name) {
  for (std::uint32_t i = 0; i < prov_.stages.size(); ++i) {
    if (prov_.stages[i].kind == kind && prov_.stages[i].name == name) return i;
  }
  prov_.stages.push_back(Stage{kind, name});
  adoptions_.push_back(0);
  return static_cast<std::uint32_t>(prov_.stages.size() - 1);
}

std::uint32_t Recorder::current_stage() {
  if (stage_stack_.empty()) return intern_stage(StageKind::Unknown, "?");
  return stage_stack_.back().stage;
}

void Recorder::push_stage(StageKind kind, const std::string& name) {
  Frame f;
  f.stage = intern_stage(kind, name);
  // Pass/round are inherited (fixpoint sets the round before entering the
  // inner improver's frame) and restored on pop.
  f.saved_pass = pass_;
  f.saved_round = round_;
  stage_stack_.push_back(std::move(f));
}

void Recorder::pop_stage() {
  if (stage_stack_.empty()) return;
  pass_ = stage_stack_.back().saved_pass;
  round_ = stage_stack_.back().saved_round;
  stage_stack_.pop_back();
}

Entry Recorder::fresh_entry(std::uint32_t stage, std::size_t rewrite) {
  Entry e;
  e.id = next_id_++;
  e.stage = stage;
  e.pass = pass_;
  e.round = round_;
  e.rewrite = rewrite;
  e.span_id = obs::current_span_id();
  return e;
}

void Recorder::on_emit(const Action& a) {
  const std::size_t pos = actions_.size();
  actions_.push_back(a);
  Entry e = fresh_entry(current_stage(), kNone);
  if (a.is_dummy_transfer()) {
    e.root_cause = prov_.root_causes.size();
    prov_.root_causes.push_back(make_root_cause(model_, x_old_, actions_, pos));
  }
  prov_.entries.push_back(std::move(e));
}

void Recorder::on_adopt(const Schedule& base, const Schedule& cand,
                        std::size_t prefix, std::size_t base_suffix_start,
                        std::size_t cand_suffix_start, Cost cost_delta,
                        std::int64_t dummy_delta) {
  // Defensive: if the observed stream ever diverged from the evaluator's
  // base (it should not), fall back to unattributed entries over the base
  // rather than corrupting positions.
  if (actions_.size() != base.size()) resync(base);

  const std::uint32_t stage = current_stage();
  Rewrite rw;
  rw.stage = stage;
  rw.pass = pass_;
  rw.round = round_;
  rw.rank = ++adoptions_[stage];
  rw.pos = prefix;
  rw.removed = base_suffix_start - prefix;
  rw.inserted = cand_suffix_start - prefix;
  rw.cost_delta = cost_delta;
  rw.dummy_delta = dummy_delta;
  rw.span_id = obs::current_span_id();
  rw.replaced.reserve(rw.removed);
  for (std::size_t u = prefix; u < base_suffix_start; ++u) {
    rw.replaced.push_back(prov_.entries[u].id);
  }
  const std::size_t rw_idx = prov_.rewrites.size();
  prov_.rewrites.push_back(std::move(rw));

  // Replace the entry window: inserted actions get fresh entries, and dummy
  // transfers landing in the window get witnesses at their new positions.
  std::vector<Entry> fresh;
  fresh.reserve(cand_suffix_start - prefix);
  for (std::size_t u = prefix; u < cand_suffix_start; ++u) {
    Entry e = fresh_entry(stage, rw_idx);
    if (cand[u].is_dummy_transfer()) {
      e.root_cause = prov_.root_causes.size();
      prov_.root_causes.push_back(make_root_cause(model_, x_old_, cand, u));
    }
    fresh.push_back(std::move(e));
  }
  auto& es = prov_.entries;
  es.erase(es.begin() + static_cast<std::ptrdiff_t>(prefix),
           es.begin() + static_cast<std::ptrdiff_t>(base_suffix_start));
  es.insert(es.begin() + static_cast<std::ptrdiff_t>(prefix),
            std::make_move_iterator(fresh.begin()),
            std::make_move_iterator(fresh.end()));
  actions_.actions().assign(cand.begin(), cand.end());
}

void Recorder::on_reset(const Schedule& new_base) {
  const std::size_t bsize = actions_.size();
  const std::size_t csize = new_base.size();
  const std::size_t min_size = std::min(bsize, csize);
  std::size_t prefix = 0;
  while (prefix < min_size && actions_[prefix] == new_base[prefix]) ++prefix;
  if (prefix == bsize && bsize == csize) return;  // unchanged
  std::size_t suffix = 0;
  while (prefix + suffix < min_size &&
         actions_[bsize - 1 - suffix] == new_base[csize - 1 - suffix]) {
    ++suffix;
  }
  Cost cost_delta = 0;
  std::int64_t dummy_delta = 0;
  for (std::size_t u = prefix; u < bsize - suffix; ++u) {
    cost_delta -= action_cost(model_, actions_[u]);
    if (actions_[u].is_dummy_transfer()) --dummy_delta;
  }
  for (std::size_t u = prefix; u < csize - suffix; ++u) {
    cost_delta += action_cost(model_, new_base[u]);
    if (new_base[u].is_dummy_transfer()) ++dummy_delta;
  }
  on_adopt(actions_, new_base, prefix, bsize - suffix, csize - suffix, cost_delta,
           dummy_delta);
}

void Recorder::resync(const Schedule& base) {
  const std::uint32_t unknown = intern_stage(StageKind::Unknown, "?");
  prov_.entries.clear();
  actions_.actions().assign(base.begin(), base.end());
  for (std::size_t u = 0; u < base.size(); ++u) {
    Entry e;
    e.id = next_id_++;
    e.stage = unknown;
    if (base[u].is_dummy_transfer()) {
      e.root_cause = prov_.root_causes.size();
      prov_.root_causes.push_back(make_root_cause(model_, x_old_, actions_, u));
    }
    prov_.entries.push_back(std::move(e));
  }
}

Provenance Recorder::finalize(const Schedule& final_schedule) {
  if (!(actions_ == final_schedule)) resync(final_schedule);

  // Witnesses were captured at emission time; later rewrites can shift the
  // positions they reference. Re-derive any witness that no longer matches
  // the delivered schedule so every dummy transfer carries a verifiable one.
  for (std::size_t u = 0; u < final_schedule.size(); ++u) {
    const Action& a = final_schedule[u];
    Entry& e = prov_.entries[u];
    if (!a.is_dummy_transfer()) {
      e.root_cause = kNone;
      continue;
    }
    bool ok = e.root_cause != kNone;
    if (ok) {
      const RootCause& rc = prov_.root_causes[e.root_cause];
      ok = rc.object == a.object && rc.dest == a.server;
      for (const RootCause::Blocker& b : rc.blockers) {
        if (!ok) break;
        ok = b.deleted_at != kNone && b.deleted_at < u &&
             final_schedule[b.deleted_at] == Action::remove(b.server, a.object);
      }
    }
    if (!ok) {
      e.root_cause = prov_.root_causes.size();
      prov_.root_causes.push_back(
          make_root_cause(model_, x_old_, final_schedule, u));
    }
  }

  // Drop witnesses orphaned by replaced windows and renumber the survivors.
  std::vector<RootCause> kept;
  for (Entry& e : prov_.entries) {
    if (e.root_cause == kNone) continue;
    kept.push_back(std::move(prov_.root_causes[e.root_cause]));
    e.root_cause = kept.size() - 1;
  }
  prov_.root_causes = std::move(kept);
  return std::move(prov_);
}

#if RTSP_OBS_ENABLED

namespace {
thread_local Recorder* t_current = nullptr;
}  // namespace

Recorder* current() noexcept { return t_current; }

namespace detail {
void set_current(Recorder* r) noexcept { t_current = r; }
}  // namespace detail

#endif  // RTSP_OBS_ENABLED

Scope::Scope(const SystemModel& model, const ReplicationMatrix& x_old) {
#if RTSP_OBS_ENABLED
  recorder_ = std::make_unique<Recorder>(model, x_old);
  previous_ = current();
  detail::set_current(recorder_.get());
#else
  (void)model;
  (void)x_old;
#endif
}

Scope::~Scope() {
#if RTSP_OBS_ENABLED
  if (recorder_) detail::set_current(previous_);
#endif
}

Provenance Scope::finalize(const Schedule& final_schedule) {
#if RTSP_OBS_ENABLED
  if (!recorder_) return {};
  detail::set_current(previous_);
  Provenance p = recorder_->finalize(final_schedule);
  recorder_.reset();
  return p;
#else
  (void)final_schedule;
  return {};
#endif
}

StageScope::StageScope(StageKind kind, const std::string& name) {
  if (Recorder* r = current()) {
    recorder_ = r;
    r->push_stage(kind, name);
  }
#if !RTSP_OBS_ENABLED
  (void)kind;
  (void)name;
#endif
}

StageScope::~StageScope() {
  if (recorder_) recorder_->pop_stage();
}

Suspend::Suspend() {
#if RTSP_OBS_ENABLED
  saved_ = current();
  if (saved_) detail::set_current(nullptr);
#endif
}

Suspend::~Suspend() {
#if RTSP_OBS_ENABLED
  if (saved_) detail::set_current(saved_);
#endif
}

}  // namespace rtsp::prov
