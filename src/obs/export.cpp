#include "obs/export.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <stdexcept>

#include "support/csv.hpp"
#include "support/histogram.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace rtsp::obs {

namespace {

/// Fixed-precision, locale-independent rendering for the console tables.
std::string fixed(double v, int precision) {
  char buf[48];
  const auto res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  if (res.ec != std::errc()) return "?";
  return std::string(buf, res.ptr);
}

constexpr double kNsPerUs = 1e3;
constexpr double kNsPerMs = 1e6;

}  // namespace

void print_metrics_summary(std::ostream& out, const MetricsSnapshot& snap) {
  if (!snap.counters.empty()) {
    TextTable t;
    t.header({"counter", "value"});
    for (const auto& c : snap.counters) {
      t.add_row({c.name, std::to_string(c.value)});
    }
    out << "-- obs counters --\n";
    t.print(out);
  }
  if (!snap.gauges.empty()) {
    TextTable t;
    t.header({"gauge", "value", "max"});
    for (const auto& g : snap.gauges) {
      t.add_row({g.name, std::to_string(g.value), std::to_string(g.max)});
    }
    out << "-- obs gauges --\n";
    t.print(out);
  }
  if (!snap.histograms.empty()) {
    TextTable t;
    t.header({"latency", "count", "mean_us", "p50_us", "p90_us", "p95_us",
              "p99_us", "max_us"});
    for (const auto& h : snap.histograms) {
      t.add_row({h.name, std::to_string(h.count), fixed(h.mean_us, 2),
                 fixed(h.p50_us, 2), fixed(h.p90_us, 2), fixed(h.p95_us, 2),
                 fixed(h.p99_us, 2), fixed(h.max_us, 2)});
    }
    out << "-- obs latencies --\n";
    t.print(out);
  }
}

void print_span_summary(std::ostream& out, const std::vector<TraceEvent>& events) {
  // Group Complete-span durations by name, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> durations_ms;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::Complete) continue;
    auto [it, inserted] = durations_ms.try_emplace(e.name);
    if (inserted) order.push_back(e.name);
    it->second.push_back(static_cast<double>(e.dur_ns) / kNsPerMs);
  }
  if (order.empty()) return;

  TextTable t;
  t.header({"span", "count", "total_ms", "mean_ms", "min_ms", "max_ms"});
  const std::string* busiest = nullptr;
  double busiest_total = -1.0;
  for (const std::string& name : order) {
    const std::vector<double>& d = durations_ms[name];
    double total = 0.0, lo = d.front(), hi = d.front();
    for (double v : d) {
      total += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    t.add_row({name, std::to_string(d.size()), fixed(total, 3),
               fixed(total / static_cast<double>(d.size()), 3), fixed(lo, 3),
               fixed(hi, 3)});
    if (total > busiest_total) {
      busiest_total = total;
      busiest = &name;
    }
  }
  out << "-- obs spans --\n";
  t.print(out);

  const std::vector<double>& d = durations_ms[*busiest];
  if (d.size() >= 2) {
    out << "duration histogram for '" << *busiest << "' (ms):\n"
        << Histogram::of(d).to_string();
  }
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snap) {
  CsvWriter w(out);
  w.row({"kind", "name", "value", "max", "count", "mean_us", "p50_us", "p90_us",
         "p95_us", "p99_us", "max_us"});
  for (const auto& c : snap.counters) {
    w.field("counter").field(c.name).field(c.value);
    w.field("").field("").field("").field("").field("").field("").field("");
    w.end_row();
  }
  for (const auto& g : snap.gauges) {
    w.field("gauge").field(g.name).field(g.value).field(g.max);
    w.field("").field("").field("").field("").field("").field("");
    w.end_row();
  }
  for (const auto& h : snap.histograms) {
    w.field("histogram").field(h.name).field("").field("");
    w.field(h.count).field(h.mean_us).field(h.p50_us).field(h.p90_us);
    w.field(h.p95_us).field(h.p99_us).field(h.max_us);
    w.end_row();
  }
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  JsonWriter j(out);
  j.begin_object();
  j.key("counters").begin_object();
  for (const auto& c : snap.counters) j.key(c.name).value(c.value);
  j.end_object();
  j.key("gauges").begin_object();
  for (const auto& g : snap.gauges) {
    j.key(g.name).begin_object();
    j.key("value").value(g.value);
    j.key("max").value(g.max);
    j.end_object();
  }
  j.end_object();
  j.key("histograms").begin_object();
  for (const auto& h : snap.histograms) {
    j.key(h.name).begin_object();
    j.key("count").value(h.count);
    j.key("mean_us").value(h.mean_us);
    j.key("p50_us").value(h.p50_us);
    j.key("p90_us").value(h.p90_us);
    j.key("p95_us").value(h.p95_us);
    j.key("p99_us").value(h.p99_us);
    j.key("max_us").value(h.max_us);
    j.end_object();
  }
  j.end_object();
  j.end_object();
  out << '\n';
}

void append_chrome_trace_event(JsonWriter& j, const TraceEvent& e, int pid) {
  j.begin_object();
  j.key("name").value(e.name);
  j.key("pid").value(pid);
  j.key("tid").value(static_cast<std::uint64_t>(e.tid));
  // Trace-event timestamps are microseconds; keep sub-µs as fractions.
  j.key("ts").value(static_cast<double>(e.ts_ns) / kNsPerUs);
  if (e.kind == TraceEvent::Kind::Complete) {
    j.key("ph").value("X");
    j.key("dur").value(static_cast<double>(e.dur_ns) / kNsPerUs);
    if (!e.detail.empty() || e.span_id != 0) {
      j.key("args").begin_object();
      if (!e.detail.empty()) j.key("detail").value(e.detail);
      if (e.span_id != 0) j.key("span_id").value(e.span_id);
      j.end_object();
    }
  } else {
    j.key("ph").value("C");
    j.key("args").begin_object();
    j.key("value").value(e.value);
    j.end_object();
  }
  j.end_object();
}

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events) {
  JsonWriter j(out);
  j.begin_object();
  j.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) append_chrome_trace_event(j, e, 1);
  j.end_array();
  j.end_object();
  out << '\n';
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open obs output file: " + path);
  return out;
}

}  // namespace

void write_metrics_file(const std::string& path, const MetricsSnapshot& snap) {
  std::ofstream out = open_or_throw(path);
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_metrics_json(out, snap);
  } else {
    write_metrics_csv(out, snap);
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  std::ofstream out = open_or_throw(path);
  write_chrome_trace(out, events);
}

}  // namespace rtsp::obs
