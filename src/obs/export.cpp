#include "obs/export.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string_view>

#include "support/csv.hpp"
#include "support/histogram.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace rtsp::obs {

namespace {

/// Fixed-precision, locale-independent rendering for the console tables.
std::string fixed(double v, int precision) {
  char buf[48];
  const auto res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed, precision);
  if (res.ec != std::errc()) return "?";
  return std::string(buf, res.ptr);
}

constexpr double kNsPerUs = 1e3;
constexpr double kNsPerMs = 1e6;

}  // namespace

void print_metrics_summary(std::ostream& out, const MetricsSnapshot& snap) {
  if (!snap.counters.empty()) {
    TextTable t;
    t.header({"counter", "value"});
    for (const auto& c : snap.counters) {
      t.add_row({c.name, std::to_string(c.value)});
    }
    out << "-- obs counters --\n";
    t.print(out);
  }
  if (!snap.gauges.empty()) {
    TextTable t;
    t.header({"gauge", "value", "max"});
    for (const auto& g : snap.gauges) {
      t.add_row({g.name, std::to_string(g.value), std::to_string(g.max)});
    }
    out << "-- obs gauges --\n";
    t.print(out);
  }
  if (!snap.histograms.empty()) {
    TextTable t;
    t.header({"latency", "count", "mean_us", "p50_us", "p90_us", "p95_us",
              "p99_us", "max_us"});
    for (const auto& h : snap.histograms) {
      t.add_row({h.name, std::to_string(h.count), fixed(h.mean_us, 2),
                 fixed(h.p50_us, 2), fixed(h.p90_us, 2), fixed(h.p95_us, 2),
                 fixed(h.p99_us, 2), fixed(h.max_us, 2)});
    }
    out << "-- obs latencies --\n";
    t.print(out);
  }
}

void print_span_summary(std::ostream& out, const std::vector<TraceEvent>& events) {
  // Group Complete-span durations by name, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> durations_ms;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::Complete) continue;
    auto [it, inserted] = durations_ms.try_emplace(e.name);
    if (inserted) order.push_back(e.name);
    it->second.push_back(static_cast<double>(e.dur_ns) / kNsPerMs);
  }
  if (order.empty()) return;

  TextTable t;
  t.header({"span", "count", "total_ms", "mean_ms", "min_ms", "max_ms"});
  const std::string* busiest = nullptr;
  double busiest_total = -1.0;
  for (const std::string& name : order) {
    const std::vector<double>& d = durations_ms[name];
    double total = 0.0, lo = d.front(), hi = d.front();
    for (double v : d) {
      total += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    t.add_row({name, std::to_string(d.size()), fixed(total, 3),
               fixed(total / static_cast<double>(d.size()), 3), fixed(lo, 3),
               fixed(hi, 3)});
    if (total > busiest_total) {
      busiest_total = total;
      busiest = &name;
    }
  }
  out << "-- obs spans --\n";
  t.print(out);

  const std::vector<double>& d = durations_ms[*busiest];
  if (d.size() >= 2) {
    out << "duration histogram for '" << *busiest << "' (ms):\n"
        << Histogram::of(d).to_string();
  }
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snap) {
  CsvWriter w(out);
  w.row({"kind", "name", "value", "max", "count", "mean_us", "p50_us", "p90_us",
         "p95_us", "p99_us", "max_us"});
  for (const auto& c : snap.counters) {
    w.field("counter").field(c.name).field(c.value);
    w.field("").field("").field("").field("").field("").field("").field("");
    w.end_row();
  }
  for (const auto& g : snap.gauges) {
    w.field("gauge").field(g.name).field(g.value).field(g.max);
    w.field("").field("").field("").field("").field("").field("");
    w.end_row();
  }
  for (const auto& h : snap.histograms) {
    w.field("histogram").field(h.name).field("").field("");
    w.field(h.count).field(h.mean_us).field(h.p50_us).field(h.p90_us);
    w.field(h.p95_us).field(h.p99_us).field(h.max_us);
    w.end_row();
  }
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  JsonWriter j(out);
  j.begin_object();
  j.key("counters").begin_object();
  for (const auto& c : snap.counters) j.key(c.name).value(c.value);
  j.end_object();
  j.key("gauges").begin_object();
  for (const auto& g : snap.gauges) {
    j.key(g.name).begin_object();
    j.key("value").value(g.value);
    j.key("max").value(g.max);
    j.end_object();
  }
  j.end_object();
  j.key("histograms").begin_object();
  for (const auto& h : snap.histograms) {
    j.key(h.name).begin_object();
    j.key("count").value(h.count);
    j.key("mean_us").value(h.mean_us);
    j.key("p50_us").value(h.p50_us);
    j.key("p90_us").value(h.p90_us);
    j.key("p95_us").value(h.p95_us);
    j.key("p99_us").value(h.p99_us);
    j.key("max_us").value(h.max_us);
    j.end_object();
  }
  j.end_object();
  j.end_object();
  out << '\n';
}

std::string prometheus_name(std::string_view name) {
  std::string out = "rtsp_";
  out.reserve(out.size() + name.size());
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

namespace {

/// Shortest round-trip rendering; Prometheus accepts Go float syntax,
/// including scientific notation.
std::string prom_value(double v) {
  char buf[48];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  if (res.ec != std::errc()) return "NaN";
  return std::string(buf, res.ptr);
}

}  // namespace

void write_metrics_prometheus(std::ostream& out, const MetricsSnapshot& snap) {
  for (const auto& c : snap.counters) {
    const std::string n = prometheus_name(c.name) + "_total";
    out << "# HELP " << n << " rtsp counter " << c.name << "\n"
        << "# TYPE " << n << " counter\n"
        << n << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string n = prometheus_name(g.name);
    out << "# HELP " << n << " rtsp gauge " << g.name << "\n"
        << "# TYPE " << n << " gauge\n"
        << n << ' ' << g.value << '\n';
    out << "# HELP " << n << "_max rtsp gauge " << g.name
        << " (max since reset)\n"
        << "# TYPE " << n << "_max gauge\n"
        << n << "_max " << g.max << '\n';
  }
  constexpr double kNsPerSec = 1e9;
  for (const auto& h : snap.histograms) {
    const std::string n = prometheus_name(h.name) + "_seconds";
    out << "# HELP " << n << " rtsp latency histogram " << h.name << "\n"
        << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    const std::size_t buckets = h.buckets.size();
    for (std::size_t b = 0; b < buckets; ++b) {
      cumulative += h.buckets[b];
      if (b + 1 == buckets) break;  // the last bucket is +Inf below
      out << n << "_bucket{le=\""
          << prom_value(static_cast<double>(histogram_bucket_upper_ns(b)) /
                        kNsPerSec)
          << "\"} " << cumulative << '\n';
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << '\n'
        << n << "_sum " << prom_value(static_cast<double>(h.sum_ns) / kNsPerSec)
        << '\n'
        << n << "_count " << h.count << '\n';
  }
}

namespace {

bool valid_prom_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool parse_prom_value(std::string_view s, double& out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

/// Strips a histogram sample suffix; returns the family name unchanged when
/// no suffix matches.
std::string_view histogram_family(std::string_view name) {
  for (const std::string_view suffix :
       {std::string_view("_bucket"), std::string_view("_sum"),
        std::string_view("_count")}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

}  // namespace

bool lint_prometheus_text(const std::string& text,
                          std::vector<std::string>& violations) {
  const std::size_t before = violations.size();
  const auto fail = [&](std::size_t line_no, const std::string& msg) {
    violations.push_back("prometheus line " + std::to_string(line_no) + ": " +
                         msg);
  };

  std::map<std::string, std::string> declared_type;  // family -> type
  struct HistState {
    double last_le = -1.0;
    std::uint64_t last_cumulative = 0;
    bool saw_inf = false;
    std::uint64_t inf_value = 0;
    bool saw_count = false;
    std::uint64_t count_value = 0;
  };
  std::map<std::string, HistState> hists;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(text.data() + pos,
                                (eol == std::string::npos ? text.size() : eol) -
                                    pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line.front() == '#') {
      // "# HELP name text" / "# TYPE name type" / free-form comment.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          fail(line_no, "malformed TYPE header");
          continue;
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (!valid_prom_name(name)) {
          fail(line_no, "TYPE header names invalid metric '" + name + "'");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(line_no, "unknown metric type '" + type + "'");
        }
        if (!declared_type.emplace(name, type).second) {
          fail(line_no, "duplicate TYPE header for '" + name + "'");
        }
      } else if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name(rest.substr(0, sp));
        if (!valid_prom_name(name)) {
          fail(line_no, "HELP header names invalid metric '" + name + "'");
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string name(line.substr(0, name_end));
    if (!valid_prom_name(name)) {
      fail(line_no, "invalid sample name '" + name + "'");
      continue;
    }
    std::string_view rest = line.substr(name_end);
    std::string le;
    if (!rest.empty() && rest.front() == '{') {
      const std::size_t close = rest.find('}');
      if (close == std::string_view::npos) {
        fail(line_no, "unterminated label set");
        continue;
      }
      const std::string_view labels = rest.substr(1, close - 1);
      // This linter only understands the exporter's single le="..." label.
      if (labels.rfind("le=\"", 0) == 0 && labels.back() == '"') {
        le = std::string(labels.substr(4, labels.size() - 5));
      } else if (!labels.empty()) {
        fail(line_no, "unexpected label set '" + std::string(labels) + "'");
        continue;
      }
      rest = rest.substr(close + 1);
    }
    if (rest.empty() || rest.front() != ' ') {
      fail(line_no, "missing sample value");
      continue;
    }
    const std::string_view value_text = rest.substr(1);
    double value = 0.0;
    if (!parse_prom_value(value_text, value)) {
      fail(line_no, "unparsable sample value '" + std::string(value_text) +
                        "'");
      continue;
    }

    // Every sample must have a preceding TYPE header for its family.
    const std::string family(histogram_family(name));
    const auto typed = declared_type.find(name);
    const auto family_typed = declared_type.find(family);
    const bool is_hist_sample =
        family != name && family_typed != declared_type.end() &&
        family_typed->second == "histogram";
    if (typed == declared_type.end() && !is_hist_sample) {
      fail(line_no, "sample '" + name + "' has no preceding TYPE header");
      continue;
    }

    if (is_hist_sample) {
      HistState& hs = hists[family];
      if (name == family + "_bucket") {
        if (le.empty()) {
          fail(line_no, "histogram bucket without le label");
          continue;
        }
        double le_value = 0.0;
        const bool is_inf = le == "+Inf";
        if (!is_inf && !parse_prom_value(le, le_value)) {
          fail(line_no, "unparsable le '" + le + "'");
          continue;
        }
        if (hs.saw_inf) {
          fail(line_no, "bucket after le=\"+Inf\" for '" + family + "'");
        }
        if (!is_inf && le_value <= hs.last_le) {
          fail(line_no, "non-increasing le for '" + family + "'");
        }
        const auto cumulative = static_cast<std::uint64_t>(value);
        if (cumulative < hs.last_cumulative) {
          fail(line_no, "non-monotonic cumulative bucket for '" + family +
                            "'");
        }
        hs.last_cumulative = cumulative;
        if (is_inf) {
          hs.saw_inf = true;
          hs.inf_value = cumulative;
        } else {
          hs.last_le = le_value;
        }
      } else if (name == family + "_count") {
        hs.saw_count = true;
        hs.count_value = static_cast<std::uint64_t>(value);
      }
    } else if (!le.empty()) {
      fail(line_no, "le label on non-histogram sample '" + name + "'");
    }
  }

  for (const auto& [family, hs] : hists) {
    if (!hs.saw_inf) {
      violations.push_back("prometheus: histogram '" + family +
                           "' has no le=\"+Inf\" bucket");
    }
    if (!hs.saw_count) {
      violations.push_back("prometheus: histogram '" + family +
                           "' has no _count sample");
    } else if (hs.saw_inf && hs.inf_value != hs.count_value) {
      violations.push_back("prometheus: histogram '" + family +
                           "' +Inf bucket != _count");
    }
  }
  return violations.size() == before;
}

void append_chrome_trace_event(JsonWriter& j, const TraceEvent& e, int pid) {
  j.begin_object();
  j.key("name").value(e.name);
  j.key("pid").value(pid);
  j.key("tid").value(static_cast<std::uint64_t>(e.tid));
  // Trace-event timestamps are microseconds; keep sub-µs as fractions.
  j.key("ts").value(static_cast<double>(e.ts_ns) / kNsPerUs);
  if (e.kind == TraceEvent::Kind::Complete) {
    j.key("ph").value("X");
    j.key("dur").value(static_cast<double>(e.dur_ns) / kNsPerUs);
    if (!e.detail.empty() || e.span_id != 0) {
      j.key("args").begin_object();
      if (!e.detail.empty()) j.key("detail").value(e.detail);
      if (e.span_id != 0) j.key("span_id").value(e.span_id);
      j.end_object();
    }
  } else {
    j.key("ph").value("C");
    j.key("args").begin_object();
    j.key("value").value(e.value);
    j.end_object();
  }
  j.end_object();
}

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events) {
  JsonWriter j(out);
  j.begin_object();
  j.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) append_chrome_trace_event(j, e, 1);
  j.end_array();
  j.end_object();
  out << '\n';
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open obs output file: " + path);
  return out;
}

}  // namespace

void write_metrics_file(const std::string& path, const MetricsSnapshot& snap) {
  std::ofstream out = open_or_throw(path);
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    write_metrics_json(out, snap);
  } else {
    write_metrics_csv(out, snap);
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceEvent>& events) {
  std::ofstream out = open_or_throw(path);
  write_chrome_trace(out, events);
}

}  // namespace rtsp::obs
