// JSONL serialisation of the execution journal (obs/journal.hpp), the
// flight-recorder output of `rtsp execute --journal-out`, consumed back by
// `rtsp report` and tools/obs_lint. Versioned, self-describing: the first
// line is a header
//   {"format": "rtsp-journal", "version": 1, "events": N, "dropped": D,
//    "run": {"planned_cost": ..., "actual_cost": ..., ...}}
// and every following line is one event
//   {"type": "attempt_start", "tick": T, "wall_ns": W, "server": S,
//    "object": K, "source": SRC, "value": V, "extra": E, "detail": "..."}
// with default-valued fields (ids -1, value/extra 0, empty detail) omitted
// so files stay compact. Events appear in record order; ticks are
// non-decreasing by construction of the serial executor.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace rtsp {

inline constexpr int kJournalFormatVersion = 1;
inline constexpr const char* kJournalFormatName = "rtsp-journal";

/// Run-level totals carried in the journal header so a report can be built
/// from the journal alone. Filled from the ExecutionReport by the caller.
struct JournalRunSummary {
  std::int64_t planned_cost = 0;
  std::int64_t effective_cost = 0;
  std::int64_t actual_cost = 0;
  std::int64_t finished_at = 0;
  std::int64_t total_stall = 0;
  std::int64_t total_backoff = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t degraded_transfers = 0;
  std::uint64_t loss_deletions = 0;
  std::uint64_t replans = 0;
  bool reached_goal = true;

  bool operator==(const JournalRunSummary&) const = default;
};

/// A parsed journal file: header fields plus every event.
struct JournalDoc {
  int version = kJournalFormatVersion;
  std::uint64_t dropped = 0;
  JournalRunSummary run;
  std::vector<obs::JournalEvent> events;
};

void write_journal(std::ostream& out, const std::vector<obs::JournalEvent>& events,
                   std::uint64_t dropped, const JournalRunSummary& run);

/// Writes to `path`; throws std::runtime_error on open failure.
void write_journal_file(const std::string& path,
                        const std::vector<obs::JournalEvent>& events,
                        std::uint64_t dropped, const JournalRunSummary& run);

/// Parses the format above; throws std::runtime_error on malformed input,
/// an unknown event type, a missing header, or an unsupported version.
JournalDoc read_journal(std::istream& in);
JournalDoc read_journal_file(const std::string& path);

}  // namespace rtsp
