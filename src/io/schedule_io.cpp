#include "io/schedule_io.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "support/string_util.hpp"

namespace rtsp {

void write_schedule(std::ostream& out, const Schedule& schedule) {
  for (const Action& a : schedule) {
    if (a.is_transfer()) {
      out << "T " << a.server << ' ' << a.object << ' ';
      if (is_dummy(a.source)) out << "dummy";
      else out << a.source;
      out << '\n';
    } else {
      out << "D " << a.server << ' ' << a.object << '\n';
    }
  }
}

std::string schedule_to_text(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

namespace {
[[noreturn]] void parse_fail(std::size_t line_no, const std::string& line,
                             const std::string& why) {
  throw std::runtime_error("schedule parse error at line " + std::to_string(line_no) +
                           " ('" + line + "'): " + why);
}

/// Ids are uint32 with kDummyServer reserved; anything larger would silently
/// truncate on the narrowing cast, so bound-check before converting.
constexpr long long kMaxId =
    static_cast<long long>(std::numeric_limits<std::uint32_t>::max()) - 1;
}  // namespace

Schedule read_schedule(std::istream& in) {
  Schedule h;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string body = trim(line.substr(0, line.find('#')));
    if (body.empty()) continue;
    std::istringstream fields(body);
    std::string kind;
    fields >> kind;
    if (kind == "T") {
      long long server = -1;
      long long object = -1;
      std::string source;
      if (!(fields >> server >> object >> source)) {
        parse_fail(line_no, line, "expected 'T <server> <object> <source>'");
      }
      if (server < 0 || object < 0) parse_fail(line_no, line, "negative id");
      if (server > kMaxId || object > kMaxId) {
        parse_fail(line_no, line, "id out of range");
      }
      ServerId src = kDummyServer;
      if (source != "dummy") {
        std::size_t pos = 0;
        unsigned long long parsed = 0;
        try {
          parsed = std::stoull(source, &pos);
        } catch (const std::exception&) {
          parse_fail(line_no, line, "bad source '" + source + "'");
        }
        if (pos != source.size() ||
            parsed > static_cast<unsigned long long>(kMaxId)) {
          parse_fail(line_no, line, "bad source '" + source + "'");
        }
        src = static_cast<ServerId>(parsed);
      }
      h.push_back(Action::transfer(static_cast<ServerId>(server),
                                   static_cast<ObjectId>(object), src));
    } else if (kind == "D") {
      long long server = -1;
      long long object = -1;
      if (!(fields >> server >> object)) {
        parse_fail(line_no, line, "expected 'D <server> <object>'");
      }
      if (server < 0 || object < 0) parse_fail(line_no, line, "negative id");
      if (server > kMaxId || object > kMaxId) {
        parse_fail(line_no, line, "id out of range");
      }
      h.push_back(Action::remove(static_cast<ServerId>(server),
                                 static_cast<ObjectId>(object)));
    } else {
      parse_fail(line_no, line, "unknown action kind '" + kind + "'");
    }
    std::string extra;
    if (fields >> extra) {
      parse_fail(line_no, line, "trailing garbage '" + extra + "'");
    }
  }
  return h;
}

Schedule schedule_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_schedule(is);
}

}  // namespace rtsp
