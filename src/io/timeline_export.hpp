// Virtual-clock timeline: renders an execution journal as Chrome
// trace-event JSON (Perfetto / chrome://tracing), with one lane (tid) per
// destination server under pid 2 ("virtual clock"). Executed transfer
// attempts become complete spans covering [tick, tick + cost] with 1 cost
// tick mapped to 1 µs; offline stalls become spans on the stalled lane; and
// faults, losses, replans, degradations and the drain become instant
// events. Pass the run's wall-clock TraceEvents to compose both clocks in
// one file: wall spans keep their usual pid 1 alongside the virtual lanes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "io/journal_io.hpp"
#include "obs/trace.hpp"

namespace rtsp {

void write_timeline(std::ostream& out, const JournalDoc& doc,
                    const std::vector<obs::TraceEvent>& wall_events = {});

/// Writes to `path`; throws std::runtime_error on open failure.
void write_timeline_file(const std::string& path, const JournalDoc& doc,
                         const std::vector<obs::TraceEvent>& wall_events = {});

}  // namespace rtsp
