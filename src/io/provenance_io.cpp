#include "io/provenance_io.hpp"

#include <sstream>
#include <stdexcept>

#include "support/json.hpp"

namespace rtsp {

namespace {

constexpr int kFormatVersion = 1;

const char* kind_tag(prov::StageKind k) {
  switch (k) {
    case prov::StageKind::Builder: return "builder";
    case prov::StageKind::Improver: return "improver";
    case prov::StageKind::Unknown: return "unknown";
  }
  return "unknown";
}

prov::StageKind kind_from_tag(const std::string& tag) {
  if (tag == "builder") return prov::StageKind::Builder;
  if (tag == "improver") return prov::StageKind::Improver;
  if (tag == "unknown") return prov::StageKind::Unknown;
  throw std::runtime_error("provenance: unknown stage kind \"" + tag + "\"");
}

const char* cause_tag(prov::RootCause::Kind k) {
  switch (k) {
    case prov::RootCause::Kind::CapacityDeadlock: return "capacity_deadlock";
    case prov::RootCause::Kind::NoInitialReplica: return "no_initial_replica";
    case prov::RootCause::Kind::SourceAvailable: return "source_available";
  }
  return "capacity_deadlock";
}

prov::RootCause::Kind cause_from_tag(const std::string& tag) {
  if (tag == "capacity_deadlock") return prov::RootCause::Kind::CapacityDeadlock;
  if (tag == "no_initial_replica") return prov::RootCause::Kind::NoInitialReplica;
  if (tag == "source_available") return prov::RootCause::Kind::SourceAvailable;
  throw std::runtime_error("provenance: unknown root-cause kind \"" + tag + "\"");
}

void write_rewrite(JsonWriter& j, const prov::Rewrite& r) {
  j.begin_object();
  j.key("stage").value(static_cast<std::int64_t>(r.stage));
  if (r.pass >= 0) j.key("pass").value(r.pass);
  if (r.round >= 0) j.key("round").value(r.round);
  j.key("rank").value(static_cast<std::uint64_t>(r.rank));
  j.key("pos").value(static_cast<std::uint64_t>(r.pos));
  j.key("removed").value(static_cast<std::uint64_t>(r.removed));
  j.key("inserted").value(static_cast<std::uint64_t>(r.inserted));
  j.key("cost_delta").value(static_cast<std::int64_t>(r.cost_delta));
  j.key("dummy_delta").value(r.dummy_delta);
  if (r.span_id != 0) j.key("span_id").value(r.span_id);
  if (!r.replaced.empty()) {
    j.key("replaced").begin_array();
    for (std::uint64_t id : r.replaced) j.value(id);
    j.end_array();
  }
  j.end_object();
}

void write_root_cause(JsonWriter& j, const prov::RootCause& rc) {
  j.begin_object();
  j.key("kind").value(cause_tag(rc.kind));
  j.key("object").value(static_cast<std::uint64_t>(rc.object));
  j.key("dest").value(static_cast<std::uint64_t>(rc.dest));
  j.key("object_size").value(static_cast<std::int64_t>(rc.object_size));
  j.key("dest_free_space").value(static_cast<std::int64_t>(rc.dest_free_space));
  if (!rc.holders.empty()) {
    j.key("holders").begin_array();
    for (ServerId s : rc.holders) j.value(static_cast<std::uint64_t>(s));
    j.end_array();
  }
  if (!rc.blockers.empty()) {
    j.key("blockers").begin_array();
    for (const auto& b : rc.blockers) {
      j.begin_object();
      j.key("server").value(static_cast<std::uint64_t>(b.server));
      if (b.deleted_at != prov::kNone) {
        j.key("deleted_at").value(static_cast<std::uint64_t>(b.deleted_at));
      }
      j.key("free_space").value(static_cast<std::int64_t>(b.free_space));
      if (!b.occupying.empty()) {
        j.key("occupying").begin_array();
        for (ObjectId o : b.occupying) j.value(static_cast<std::uint64_t>(o));
        j.end_array();
      }
      j.end_object();
    }
    j.end_array();
  }
  j.key("free_space").begin_array();
  for (Size s : rc.free_space) j.value(static_cast<std::int64_t>(s));
  j.end_array();
  j.end_object();
}

void write_entry(JsonWriter& j, const prov::Entry& e) {
  j.begin_object();
  j.key("id").value(e.id);
  j.key("stage").value(static_cast<std::int64_t>(e.stage));
  if (e.pass >= 0) j.key("pass").value(e.pass);
  if (e.round >= 0) j.key("round").value(e.round);
  if (e.rewrite != prov::kNone) {
    j.key("rewrite").value(static_cast<std::uint64_t>(e.rewrite));
  }
  if (e.root_cause != prov::kNone) {
    j.key("root_cause").value(static_cast<std::uint64_t>(e.root_cause));
  }
  if (e.span_id != 0) j.key("span_id").value(e.span_id);
  j.end_object();
}

std::uint64_t get_u64(const JsonValue& obj, const std::string& key,
                      std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  return v ? static_cast<std::uint64_t>(v->as_int()) : fallback;
}

std::int64_t get_i64(const JsonValue& obj, const std::string& key,
                     std::int64_t fallback) {
  const JsonValue* v = obj.find(key);
  return v ? v->as_int() : fallback;
}

prov::Rewrite read_rewrite(const JsonValue& obj) {
  prov::Rewrite r;
  r.stage = static_cast<std::uint32_t>(get_u64(obj, "stage", 0));
  r.pass = static_cast<int>(get_i64(obj, "pass", -1));
  r.round = static_cast<int>(get_i64(obj, "round", -1));
  r.rank = static_cast<std::size_t>(get_u64(obj, "rank", 0));
  r.pos = static_cast<std::size_t>(get_u64(obj, "pos", 0));
  r.removed = static_cast<std::size_t>(get_u64(obj, "removed", 0));
  r.inserted = static_cast<std::size_t>(get_u64(obj, "inserted", 0));
  r.cost_delta = get_i64(obj, "cost_delta", 0);
  r.dummy_delta = get_i64(obj, "dummy_delta", 0);
  r.span_id = get_u64(obj, "span_id", 0);
  if (const JsonValue* rep = obj.find("replaced")) {
    for (const JsonValue& id : rep->items()) {
      r.replaced.push_back(static_cast<std::uint64_t>(id.as_int()));
    }
  }
  return r;
}

prov::RootCause read_root_cause(const JsonValue& obj) {
  prov::RootCause rc;
  rc.kind = cause_from_tag(obj.at("kind").as_string());
  rc.object = static_cast<ObjectId>(get_u64(obj, "object", 0));
  rc.dest = static_cast<ServerId>(get_u64(obj, "dest", 0));
  rc.object_size = get_i64(obj, "object_size", 0);
  rc.dest_free_space = get_i64(obj, "dest_free_space", 0);
  if (const JsonValue* hs = obj.find("holders")) {
    for (const JsonValue& h : hs->items()) {
      rc.holders.push_back(static_cast<ServerId>(h.as_int()));
    }
  }
  if (const JsonValue* bs = obj.find("blockers")) {
    for (const JsonValue& bj : bs->items()) {
      prov::RootCause::Blocker b;
      b.server = static_cast<ServerId>(get_u64(bj, "server", 0));
      b.deleted_at = static_cast<std::size_t>(
          get_u64(bj, "deleted_at", static_cast<std::uint64_t>(prov::kNone)));
      b.free_space = get_i64(bj, "free_space", 0);
      if (const JsonValue* occ = bj.find("occupying")) {
        for (const JsonValue& o : occ->items()) {
          b.occupying.push_back(static_cast<ObjectId>(o.as_int()));
        }
      }
      rc.blockers.push_back(std::move(b));
    }
  }
  if (const JsonValue* fs = obj.find("free_space")) {
    for (const JsonValue& s : fs->items()) rc.free_space.push_back(s.as_int());
  }
  return rc;
}

prov::Entry read_entry(const JsonValue& obj) {
  prov::Entry e;
  e.id = get_u64(obj, "id", 0);
  e.stage = static_cast<std::uint32_t>(get_u64(obj, "stage", 0));
  e.pass = static_cast<int>(get_i64(obj, "pass", -1));
  e.round = static_cast<int>(get_i64(obj, "round", -1));
  e.rewrite = static_cast<std::size_t>(
      get_u64(obj, "rewrite", static_cast<std::uint64_t>(prov::kNone)));
  e.root_cause = static_cast<std::size_t>(
      get_u64(obj, "root_cause", static_cast<std::uint64_t>(prov::kNone)));
  e.span_id = get_u64(obj, "span_id", 0);
  return e;
}

}  // namespace

void write_provenance(std::ostream& out, const prov::Provenance& p) {
  JsonWriter j(out);
  j.begin_object();
  j.key("version").value(kFormatVersion);
  j.key("stages").begin_array();
  for (const auto& s : p.stages) {
    j.begin_object();
    j.key("kind").value(kind_tag(s.kind));
    j.key("name").value(s.name);
    j.end_object();
  }
  j.end_array();
  j.key("rewrites").begin_array();
  for (const auto& r : p.rewrites) write_rewrite(j, r);
  j.end_array();
  j.key("root_causes").begin_array();
  for (const auto& rc : p.root_causes) write_root_cause(j, rc);
  j.end_array();
  j.key("entries").begin_array();
  for (const auto& e : p.entries) write_entry(j, e);
  j.end_array();
  j.end_object();
  out << '\n';
}

std::string provenance_to_json(const prov::Provenance& p) {
  std::ostringstream os;
  write_provenance(os, p);
  return os.str();
}

prov::Provenance read_provenance(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return provenance_from_json(buf.str());
}

prov::Provenance provenance_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const std::int64_t version = doc.at("version").as_int();
  if (version != kFormatVersion) {
    throw std::runtime_error("provenance: unsupported version " +
                             std::to_string(version));
  }
  prov::Provenance p;
  for (const JsonValue& sj : doc.at("stages").items()) {
    prov::Stage s;
    s.kind = kind_from_tag(sj.at("kind").as_string());
    s.name = sj.at("name").as_string();
    p.stages.push_back(std::move(s));
  }
  for (const JsonValue& rj : doc.at("rewrites").items()) {
    p.rewrites.push_back(read_rewrite(rj));
  }
  for (const JsonValue& cj : doc.at("root_causes").items()) {
    p.root_causes.push_back(read_root_cause(cj));
  }
  for (const JsonValue& ej : doc.at("entries").items()) {
    p.entries.push_back(read_entry(ej));
  }
  for (const auto& e : p.entries) {
    if (e.stage >= p.stages.size()) {
      throw std::runtime_error("provenance: entry stage index out of range");
    }
    if (e.rewrite != prov::kNone && e.rewrite >= p.rewrites.size()) {
      throw std::runtime_error("provenance: entry rewrite index out of range");
    }
    if (e.root_cause != prov::kNone && e.root_cause >= p.root_causes.size()) {
      throw std::runtime_error("provenance: entry root-cause index out of range");
    }
  }
  return p;
}

}  // namespace rtsp
