#include "io/fault_spec_io.hpp"

#include <sstream>
#include <stdexcept>

#include "support/json.hpp"

namespace rtsp {

namespace {

constexpr int kFormatVersion = 1;

std::int64_t get_i64(const JsonValue& obj, const std::string& key,
                     std::int64_t fallback) {
  const JsonValue* v = obj.find(key);
  return v ? v->as_int() : fallback;
}

}  // namespace

void write_fault_spec(std::ostream& out, const exec::FaultSpec& spec) {
  JsonWriter j(out);
  j.begin_object();
  j.key("version").value(kFormatVersion);
  j.key("seed").value(spec.seed);
  j.key("transient_failure_rate").value(spec.transient_failure_rate);
  if (!spec.offline.empty()) {
    j.key("offline").begin_array();
    for (const auto& w : spec.offline) {
      j.begin_object();
      j.key("server").value(static_cast<std::uint64_t>(w.server));
      j.key("begin").value(static_cast<std::int64_t>(w.begin));
      j.key("end").value(static_cast<std::int64_t>(w.end));
      j.end_object();
    }
    j.end_array();
  }
  if (!spec.degraded_links.empty()) {
    j.key("degraded_links").begin_array();
    for (const auto& d : spec.degraded_links) {
      j.begin_object();
      j.key("dest").value(static_cast<std::uint64_t>(d.dest));
      j.key("source").value(static_cast<std::uint64_t>(d.source));
      j.key("factor").value(d.factor);
      j.key("begin").value(static_cast<std::int64_t>(d.begin));
      j.key("end").value(static_cast<std::int64_t>(d.end));
      j.end_object();
    }
    j.end_array();
  }
  if (!spec.losses.empty()) {
    j.key("losses").begin_array();
    for (const auto& l : spec.losses) {
      j.begin_object();
      j.key("server").value(static_cast<std::uint64_t>(l.server));
      j.key("object").value(static_cast<std::uint64_t>(l.object));
      j.key("at").value(static_cast<std::int64_t>(l.at));
      j.end_object();
    }
    j.end_array();
  }
  j.end_object();
  out << '\n';
}

std::string fault_spec_to_json(const exec::FaultSpec& spec) {
  std::ostringstream os;
  write_fault_spec(os, spec);
  return os.str();
}

exec::FaultSpec read_fault_spec(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return fault_spec_from_json(buf.str());
}

exec::FaultSpec fault_spec_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const std::int64_t version = doc.at("version").as_int();
  if (version != kFormatVersion) {
    throw std::runtime_error("fault spec: unsupported version " +
                             std::to_string(version));
  }
  exec::FaultSpec spec;
  spec.seed = static_cast<std::uint64_t>(get_i64(doc, "seed", 1));
  if (const JsonValue* r = doc.find("transient_failure_rate")) {
    spec.transient_failure_rate = r->as_double();
  }
  if (const JsonValue* ws = doc.find("offline")) {
    for (const JsonValue& wj : ws->items()) {
      exec::OfflineWindow w;
      w.server = static_cast<ServerId>(wj.at("server").as_int());
      w.begin = wj.at("begin").as_int();
      w.end = wj.at("end").as_int();
      spec.offline.push_back(w);
    }
  }
  if (const JsonValue* ds = doc.find("degraded_links")) {
    for (const JsonValue& dj : ds->items()) {
      exec::LinkDegradation d;
      d.dest = static_cast<ServerId>(dj.at("dest").as_int());
      d.source = static_cast<ServerId>(dj.at("source").as_int());
      d.factor = dj.at("factor").as_double();
      d.begin = dj.at("begin").as_int();
      d.end = dj.at("end").as_int();
      spec.degraded_links.push_back(d);
    }
  }
  if (const JsonValue* ls = doc.find("losses")) {
    for (const JsonValue& lj : ls->items()) {
      exec::ReplicaLoss l;
      l.server = static_cast<ServerId>(lj.at("server").as_int());
      l.object = static_cast<ObjectId>(lj.at("object").as_int());
      l.at = lj.at("at").as_int();
      spec.losses.push_back(l);
    }
  }
  exec::validate_spec(spec);
  return spec;
}

}  // namespace rtsp
