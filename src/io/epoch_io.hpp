// The daemon's epoch stream format (`rtsp-epochs` v1) and the canonical
// placement document (`rtsp-placement` v1) it converges to.
//
// An epoch stream is JSONL: one header line, then one line per epoch in
// submission order. Each epoch is a complete target placement (the
// daemon's unit of work is "converge the cluster to this X_new"), encoded
// as canonical (server, object) pairs — server-major, both ascending — so
// two equal placements always serialize to identical bytes. That byte
// canonicality is what lets scripts/check.sh compare the daemon's final
// placement against the generator's expected one with `cmp`.
//
//   {"format":"rtsp-epochs","version":1,"servers":8,"objects":40,"epochs":3}
//   {"epoch":1,"place":[[0,2],[0,7],[1,2], ...]}
//
// `rtsp submit` posts single epoch bodies ({"place":[...]}) to a running
// daemon; placement_from_pairs() parses both the streamed and the posted
// shape. Parse failures throw std::runtime_error prefixed
// "epoch stream parse error:" / "placement parse error:".
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/replication.hpp"

namespace rtsp {

class JsonValue;

/// One parsed epoch stream.
struct EpochStreamDoc {
  std::size_t servers = 0;
  std::size_t objects = 0;
  std::vector<ReplicationMatrix> epochs;
};

/// Canonical (server-major ascending) replica pairs of `x`.
std::vector<std::pair<ServerId, ObjectId>> placement_pairs(
    const ReplicationMatrix& x);

/// Rebuilds a matrix from canonical pairs; bounds-checked.
ReplicationMatrix placement_from_pair_list(
    std::size_t servers, std::size_t objects,
    const std::vector<std::pair<ServerId, ObjectId>>& pairs);

/// The canonical `"place":[[s,k],...]` fragment as a standalone JSON array.
std::string placement_pairs_json(const ReplicationMatrix& x);

/// Parses a JSON pair array (the value of a "place" member) into a matrix.
/// Throws on non-pairs, out-of-range ids, or non-canonical order.
ReplicationMatrix placement_from_pairs(const JsonValue& place,
                                       std::size_t servers,
                                       std::size_t objects);

void write_epoch_stream(std::ostream& out, const EpochStreamDoc& doc);
void write_epoch_stream_file(const std::string& path,
                             const EpochStreamDoc& doc);
EpochStreamDoc read_epoch_stream(std::istream& in);
EpochStreamDoc read_epoch_stream_file(const std::string& path);

/// One-placement document (`rtsp-placement` v1): the daemon's final state
/// and the epoch generator's expected final state, byte-comparable.
void write_placement_file(const std::string& path, const ReplicationMatrix& x);
ReplicationMatrix read_placement_file(const std::string& path);

}  // namespace rtsp
