#include "io/instance_binary_io.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "io/instance_io.hpp"
#include "obs/obs.hpp"
#include "support/mmap.hpp"

namespace rtsp {

namespace {

constexpr char kMagic[8] = {'R', 'T', 'S', 'P', 'B', 'I', 'N', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kSectionCount = 5;
constexpr std::size_t kSectionEntrySize = 24;
constexpr std::size_t kHeaderSize = 40 + kSectionCount * kSectionEntrySize;

enum SectionId : std::uint32_t {
  kSecCaps = 1,
  kSecSizes = 2,
  kSecCosts = 3,
  kSecXOld = 4,
  kSecXNew = 5,
};

// Dimension caps mirror the text parser's policy: reject absurd headers
// with a clean error before allocating. The object cap is deliberately
// higher than the text format's — the binary format exists for the scale
// tier.
constexpr std::uint64_t kMaxServers = 1'000'000;
constexpr std::uint64_t kMaxObjects = 1'000'000'000;

[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("binary instance parse error: " + why);
}

void put_u32(std::ostream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
                     static_cast<char>((v >> 16) & 0xff),
                     static_cast<char>((v >> 24) & 0xff)};
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

void put_i64(std::ostream& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian loads over the raw image.
class Cursor {
 public:
  Cursor(const unsigned char* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t size() const { return size_; }

  std::uint32_t u32(std::size_t off) const {
    need(off, 4);
    if constexpr (std::endian::native == std::endian::little) {
      std::uint32_t v;
      std::memcpy(&v, data_ + off, 4);
      return v;
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[off + static_cast<std::size_t>(i)];
    return v;
  }

  std::uint64_t u64(std::size_t off) const {
    need(off, 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::uint64_t v;
      std::memcpy(&v, data_ + off, 8);
      return v;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[off + static_cast<std::size_t>(i)];
    return v;
  }

  std::int64_t i64(std::size_t off) const {
    return static_cast<std::int64_t>(u64(off));
  }

  /// Bulk little-endian i64 copy; one bounds check per run, not per value.
  void copy_i64(std::size_t off, std::int64_t* dst, std::size_t count) const {
    need(off, count * 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, data_ + off, count * 8);
      return;
    }
    for (std::size_t t = 0; t < count; ++t) dst[t] = i64(off + t * 8);
  }

 private:
  void need(std::size_t off, std::size_t len) const {
    if (off > size_ || size_ - off < len) fail("truncated file (read past end)");
  }

  const unsigned char* data_;
  std::size_t size_;
};

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  bool present = false;
};

std::uint64_t aligned8(std::uint64_t n) { return (n + 7) / 8 * 8; }

void write_placement_csr(std::ostream& out, const ReplicationMatrix& x) {
  const std::size_t objects = x.num_objects();
  std::uint64_t running = 0;
  for (ObjectId k = 0; k < objects; ++k) {
    put_u64(out, running);
    running += x.replica_count(k);
  }
  put_u64(out, running);
  for (ObjectId k = 0; k < objects; ++k) {
    x.for_each_replicator(k, [&](ServerId i) { put_u32(out, i); });
  }
  if (running % 2 != 0) put_u32(out, 0);  // pad the ids to 8 bytes
}

}  // namespace

void write_instance_binary(std::ostream& out, const Instance& instance) {
  const SystemModel& m = instance.model;
  const std::uint64_t servers = m.num_servers();
  const std::uint64_t objects = m.num_objects();
  const std::uint64_t r_old = instance.x_old.total_replicas();
  const std::uint64_t r_new = instance.x_new.total_replicas();

  struct Entry {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::uint64_t cursor = kHeaderSize;
  const auto place = [&](std::uint32_t id, std::uint64_t length) {
    const Entry e{id, cursor, length};
    cursor += aligned8(length);
    return e;
  };
  const Entry entries[kSectionCount] = {
      place(kSecCaps, servers * 8),
      place(kSecSizes, objects * 8),
      place(kSecCosts, servers * servers * 8),
      place(kSecXOld, (objects + 1) * 8 + r_old * 4),
      place(kSecXNew, (objects + 1) * 8 + r_new * 4),
  };

  out.write(kMagic, 8);
  put_u32(out, kVersion);
  put_u32(out, kSectionCount);
  put_u64(out, servers);
  put_u64(out, objects);
  put_u64(out, std::bit_cast<std::uint64_t>(m.dummy_factor()));
  for (const Entry& e : entries) {
    put_u32(out, e.id);
    put_u32(out, 0);
    put_u64(out, e.offset);
    put_u64(out, e.length);
  }

  for (ServerId i = 0; i < servers; ++i) put_i64(out, m.capacity(i));
  for (ObjectId k = 0; k < objects; ++k) put_i64(out, m.object_size(k));
  for (ServerId i = 0; i < servers; ++i) {
    for (ServerId j = 0; j < servers; ++j) put_i64(out, m.costs().at(i, j));
  }
  write_placement_csr(out, instance.x_old);
  write_placement_csr(out, instance.x_new);
  if (!out) throw std::runtime_error("binary instance write failed");
}

void write_instance_binary_file(const std::string& path, const Instance& instance) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  write_instance_binary(out, instance);
  out.flush();
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
}

namespace {

ReplicationMatrix read_placement_csr(const Cursor& c, const Section& s,
                                     std::uint64_t servers, std::uint64_t objects,
                                     const char* what) {
  const std::uint64_t table_bytes = (objects + 1) * 8;
  if (s.length < table_bytes) fail(std::string(what) + " section shorter than its offset table");
  const std::uint64_t id_bytes = s.length - table_bytes;
  if (id_bytes % 4 != 0) fail(std::string(what) + " ids not a multiple of 4 bytes");
  const std::uint64_t ids = id_bytes / 4;

  const std::uint64_t first = c.u64(s.offset);
  if (first != 0) fail(std::string(what) + " offset table must start at 0");
  const std::uint64_t last = c.u64(s.offset + objects * 8);
  if (last != ids) {
    fail(std::string(what) + " offset table length mismatch (table says " +
         std::to_string(last) + " ids, section holds " + std::to_string(ids) + ")");
  }

  ReplicationMatrix x(servers, objects);
  const std::uint64_t ids_base = s.offset + table_bytes;
  std::uint64_t prev_end = 0;
  for (std::uint64_t k = 0; k < objects; ++k) {
    const std::uint64_t begin = c.u64(s.offset + k * 8);
    const std::uint64_t end = c.u64(s.offset + (k + 1) * 8);
    if (begin != prev_end || end < begin || end > ids) {
      fail(std::string(what) + " offset table not monotonic at object " +
           std::to_string(k));
    }
    prev_end = end;
    std::uint32_t prev_id = 0;
    for (std::uint64_t t = begin; t < end; ++t) {
      const std::uint32_t i = c.u32(ids_base + t * 4);
      if (i >= servers) {
        fail(std::string(what) + " server id " + std::to_string(i) +
             " out of range for object " + std::to_string(k));
      }
      if (t > begin && i <= prev_id) {
        fail(std::string(what) + " server ids not strictly ascending for object " +
             std::to_string(k));
      }
      prev_id = i;
      x.set(static_cast<ServerId>(i), static_cast<ObjectId>(k));
    }
  }
  return x;
}

}  // namespace

Instance instance_from_binary(const unsigned char* data, std::size_t size) {
  const Cursor c(data, size);
  if (size < kHeaderSize) fail("truncated header");
  for (std::size_t i = 0; i < 8; ++i) {
    if (static_cast<char>(data[i]) != kMagic[i]) fail("bad magic");
  }
  const std::uint32_t version = c.u32(8);
  if (version != kVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  const std::uint32_t sections = c.u32(12);
  if (sections != kSectionCount) {
    fail("expected " + std::to_string(kSectionCount) + " sections, got " +
         std::to_string(sections));
  }
  const std::uint64_t servers = c.u64(16);
  const std::uint64_t objects = c.u64(24);
  if (servers == 0 || servers > kMaxServers) {
    fail("server count " + std::to_string(servers) + " out of range [1, " +
         std::to_string(kMaxServers) + "]");
  }
  if (objects == 0 || objects > kMaxObjects) {
    fail("object count " + std::to_string(objects) + " out of range [1, " +
         std::to_string(kMaxObjects) + "]");
  }
  const double dummy_factor = std::bit_cast<double>(c.u64(32));
  if (!std::isfinite(dummy_factor) || dummy_factor < 0.0) {
    fail("dummy_factor must be finite and non-negative");
  }

  Section table[kSectionCount + 1];  // 1-indexed by section id
  for (std::uint32_t t = 0; t < kSectionCount; ++t) {
    const std::size_t base = 40 + t * kSectionEntrySize;
    const std::uint32_t id = c.u32(base);
    if (id < 1 || id > kSectionCount) fail("unknown section id " + std::to_string(id));
    if (table[id].present) fail("duplicate section id " + std::to_string(id));
    Section& s = table[id];
    s.offset = c.u64(base + 8);
    s.length = c.u64(base + 16);
    s.present = true;
    if (s.offset < kHeaderSize || s.offset > size || s.length > size - s.offset) {
      fail("section " + std::to_string(id) + " extends past end of file");
    }
  }

  const auto expect_length = [&](SectionId id, std::uint64_t want, const char* what) {
    if (table[id].length != want) {
      fail(std::string(what) + " section length " + std::to_string(table[id].length) +
           " != expected " + std::to_string(want));
    }
  };
  expect_length(kSecCaps, servers * 8, "capacities");
  expect_length(kSecSizes, objects * 8, "sizes");
  expect_length(kSecCosts, servers * servers * 8, "costs");

  std::vector<Size> caps(servers);
  c.copy_i64(table[kSecCaps].offset, caps.data(), servers);
  for (std::uint64_t i = 0; i < servers; ++i) {
    if (caps[i] < 0) fail("negative capacity for server " + std::to_string(i));
  }
  std::vector<Size> sizes(objects);
  c.copy_i64(table[kSecSizes].offset, sizes.data(), objects);
  for (std::uint64_t k = 0; k < objects; ++k) {
    if (sizes[k] < 0) fail("negative size for object " + std::to_string(k));
  }
  std::vector<LinkCost> flat_costs(servers * servers);
  c.copy_i64(table[kSecCosts].offset, flat_costs.data(), servers * servers);
  // from_flat validates non-negativity, zero diagonal and symmetry; wrap
  // its precondition failures in the parse-error convention.
  CostMatrix costs = [&] {
    try {
      return CostMatrix::from_flat(servers, std::move(flat_costs));
    } catch (const std::exception& e) {
      fail(std::string("bad cost matrix: ") + e.what());
    }
  }();

  ReplicationMatrix x_old =
      read_placement_csr(c, table[kSecXOld], servers, objects, "X_old");
  ReplicationMatrix x_new =
      read_placement_csr(c, table[kSecXNew], servers, objects, "X_new");

  SystemModel model(ServerCatalog(std::move(caps)), ObjectCatalog(std::move(sizes)),
                    std::move(costs), dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

Instance read_instance_binary_file(const std::string& path) {
  const MappedFile file = MappedFile::open(path);
  OBS_GAUGE_SET("io.bytes_mapped", file.mapped() ? file.size() : 0);
  OBS_GAUGE_SET("io.instance_bytes", file.size());
  return instance_from_binary(file.data(), file.size());
}

bool is_binary_instance_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[8] = {};
  if (!in.read(head, 8)) return false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (head[i] != kMagic[i]) return false;
  }
  return true;
}

Instance read_instance_any(const std::string& path) {
  if (is_binary_instance_file(path)) return read_instance_binary_file(path);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  return read_instance(in);
}

}  // namespace rtsp
