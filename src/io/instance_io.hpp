// Plain-text RTSP instance serialisation (model + X_old + X_new), so
// instances can be archived, diffed and replayed across machines.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "workload/scenario.hpp"

namespace rtsp {

/// Writes the "rtsp-instance v1" format (self-describing, line-oriented).
void write_instance(std::ostream& out, const Instance& instance);
std::string instance_to_text(const Instance& instance);

/// Parses what write_instance produced; throws std::runtime_error on
/// malformed input.
Instance read_instance(std::istream& in);
Instance instance_from_text(const std::string& text);

}  // namespace rtsp
