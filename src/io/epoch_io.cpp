#include "io/epoch_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "support/json.hpp"

namespace rtsp {

namespace {

[[noreturn]] void fail(const char* what, const std::string& detail) {
  throw std::runtime_error(std::string(what) + ": " + detail);
}

void append_pairs_json(std::string& out,
                       const std::vector<std::pair<ServerId, ObjectId>>& pairs) {
  out += '[';
  bool first = true;
  for (const auto& [s, k] : pairs) {
    if (!first) out += ',';
    first = false;
    out += '[';
    out += std::to_string(s);
    out += ',';
    out += std::to_string(k);
    out += ']';
  }
  out += ']';
}

}  // namespace

std::vector<std::pair<ServerId, ObjectId>> placement_pairs(
    const ReplicationMatrix& x) {
  std::vector<std::pair<ServerId, ObjectId>> pairs;
  pairs.reserve(x.total_replicas());
  for (ServerId i = 0; i < x.num_servers(); ++i) {
    x.for_each_object(i, [&](ObjectId k) { pairs.emplace_back(i, k); });
  }
  return pairs;
}

ReplicationMatrix placement_from_pair_list(
    std::size_t servers, std::size_t objects,
    const std::vector<std::pair<ServerId, ObjectId>>& pairs) {
  ReplicationMatrix x(servers, objects);
  for (const auto& [s, k] : pairs) {
    if (s >= servers || k >= objects) {
      fail("placement parse error",
           "pair (" + std::to_string(s) + "," + std::to_string(k) +
               ") out of " + std::to_string(servers) + "x" +
               std::to_string(objects));
    }
    x.set(s, k);
  }
  return x;
}

std::string placement_pairs_json(const ReplicationMatrix& x) {
  std::string out;
  append_pairs_json(out, placement_pairs(x));
  return out;
}

ReplicationMatrix placement_from_pairs(const JsonValue& place,
                                       std::size_t servers,
                                       std::size_t objects) {
  if (!place.is_array()) {
    fail("placement parse error", "\"place\" is not an array");
  }
  ReplicationMatrix x(servers, objects);
  std::int64_t prev_s = -1;
  std::int64_t prev_k = -1;
  for (const JsonValue& entry : place.items()) {
    if (!entry.is_array() || entry.items().size() != 2) {
      fail("placement parse error", "pair is not a two-element array");
    }
    const std::int64_t s = entry.items()[0].as_int();
    const std::int64_t k = entry.items()[1].as_int();
    if (s < 0 || k < 0 || static_cast<std::size_t>(s) >= servers ||
        static_cast<std::size_t>(k) >= objects) {
      fail("placement parse error",
           "pair (" + std::to_string(s) + "," + std::to_string(k) +
               ") out of " + std::to_string(servers) + "x" +
               std::to_string(objects));
    }
    // Pairs must be canonical (server-major strictly ascending); anything
    // else means a hand-edited or corrupted stream, and accepting it would
    // let two byte-different files decode to the same placement.
    if (s < prev_s || (s == prev_s && k <= prev_k)) {
      fail("placement parse error",
           "pair (" + std::to_string(s) + "," + std::to_string(k) +
               ") out of canonical order");
    }
    prev_s = s;
    prev_k = k;
    x.set(static_cast<ServerId>(s), static_cast<ObjectId>(k));
  }
  return x;
}

void write_epoch_stream(std::ostream& out, const EpochStreamDoc& doc) {
  out << "{\"format\":\"rtsp-epochs\",\"version\":1,\"servers\":"
      << doc.servers << ",\"objects\":" << doc.objects
      << ",\"epochs\":" << doc.epochs.size() << "}\n";
  std::size_t index = 1;
  for (const ReplicationMatrix& x : doc.epochs) {
    std::string line = "{\"epoch\":" + std::to_string(index++) + ",\"place\":";
    append_pairs_json(line, placement_pairs(x));
    line += "}\n";
    out << line;
  }
}

void write_epoch_stream_file(const std::string& path,
                             const EpochStreamDoc& doc) {
  std::ofstream out(path);
  if (!out) fail("epoch stream write error", "cannot open " + path);
  write_epoch_stream(out, doc);
  if (!out) fail("epoch stream write error", "write failed for " + path);
}

EpochStreamDoc read_epoch_stream(std::istream& in) {
  constexpr const char* kWhat = "epoch stream parse error";
  std::string line;
  if (!std::getline(in, line)) fail(kWhat, "empty input");
  JsonValue header;
  try {
    header = parse_json(line);
  } catch (const std::runtime_error& e) {
    fail(kWhat, std::string("header: ") + e.what());
  }
  const JsonValue* format = header.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "rtsp-epochs") {
    fail(kWhat, "missing or wrong \"format\" (want rtsp-epochs)");
  }
  if (header.at("version").as_int() != 1) {
    fail(kWhat, "unsupported version");
  }
  EpochStreamDoc doc;
  const std::int64_t servers = header.at("servers").as_int();
  const std::int64_t objects = header.at("objects").as_int();
  if (servers <= 0 || objects <= 0) fail(kWhat, "non-positive dimensions");
  doc.servers = static_cast<std::size_t>(servers);
  doc.objects = static_cast<std::size_t>(objects);
  const std::int64_t declared = header.at("epochs").as_int();
  if (declared < 0) fail(kWhat, "negative \"epochs\" count");

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue epoch;
    try {
      epoch = parse_json(line);
    } catch (const std::runtime_error& e) {
      fail(kWhat, "line " + std::to_string(line_no) + ": " + e.what());
    }
    try {
      doc.epochs.push_back(placement_from_pairs(epoch.at("place"),
                                                doc.servers, doc.objects));
    } catch (const std::runtime_error& e) {
      fail(kWhat, "line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  if (doc.epochs.size() != static_cast<std::size_t>(declared)) {
    fail(kWhat, "header declares " + std::to_string(declared) +
                    " epochs but stream holds " +
                    std::to_string(doc.epochs.size()) +
                    " (truncated or padded stream)");
  }
  return doc;
}

EpochStreamDoc read_epoch_stream_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("epoch stream parse error", "cannot open " + path);
  return read_epoch_stream(in);
}

void write_placement_file(const std::string& path,
                          const ReplicationMatrix& x) {
  std::ofstream out(path);
  if (!out) fail("placement write error", "cannot open " + path);
  std::string line = "{\"format\":\"rtsp-placement\",\"version\":1,\"servers\":" +
                     std::to_string(x.num_servers()) +
                     ",\"objects\":" + std::to_string(x.num_objects()) +
                     ",\"place\":";
  append_pairs_json(line, placement_pairs(x));
  line += "}\n";
  out << line;
  if (!out) fail("placement write error", "write failed for " + path);
}

ReplicationMatrix read_placement_file(const std::string& path) {
  constexpr const char* kWhat = "placement parse error";
  std::ifstream in(path);
  if (!in) fail(kWhat, "cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  try {
    doc = parse_json(buffer.str());
  } catch (const std::runtime_error& e) {
    fail(kWhat, e.what());
  }
  const JsonValue* format = doc.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "rtsp-placement") {
    fail(kWhat, "missing or wrong \"format\" (want rtsp-placement)");
  }
  if (doc.at("version").as_int() != 1) fail(kWhat, "unsupported version");
  const std::int64_t servers = doc.at("servers").as_int();
  const std::int64_t objects = doc.at("objects").as_int();
  if (servers <= 0 || objects <= 0) fail(kWhat, "non-positive dimensions");
  return placement_from_pairs(doc.at("place"),
                              static_cast<std::size_t>(servers),
                              static_cast<std::size_t>(objects));
}

}  // namespace rtsp
