#include "io/instance_io.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "support/string_util.hpp"

namespace rtsp {

void write_instance(std::ostream& out, const Instance& instance) {
  const SystemModel& m = instance.model;
  out << "rtsp-instance v1\n";
  out << "servers " << m.num_servers() << '\n';
  out << "objects " << m.num_objects() << '\n';
  out << "dummy_factor " << m.dummy_factor() << '\n';
  out << "capacities";
  for (ServerId i = 0; i < m.num_servers(); ++i) out << ' ' << m.capacity(i);
  out << '\n';
  out << "sizes";
  for (ObjectId k = 0; k < m.num_objects(); ++k) out << ' ' << m.object_size(k);
  out << '\n';
  out << "costs\n";
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    for (ServerId j = 0; j < m.num_servers(); ++j) {
      out << m.costs().at(i, j) << (j + 1 < m.num_servers() ? ' ' : '\n');
    }
  }
  auto dump_placement = [&](const char* tag, const ReplicationMatrix& x) {
    for (ServerId i = 0; i < m.num_servers(); ++i) {
      out << tag << ' ' << i;
      for (ObjectId k : x.objects_on(i)) out << ' ' << k;
      out << '\n';
    }
  };
  dump_placement("old", instance.x_old);
  dump_placement("new", instance.x_new);
  out << "end\n";
}

std::string instance_to_text(const Instance& instance) {
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

namespace {
[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("instance parse error: " + why);
}

std::string next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (!line.empty()) return line;
  }
  fail("unexpected end of input");
}

/// Dimension caps: reject absurd header values before allocating anything —
/// a corrupt header must produce a clean parse error, not a bad_alloc.
constexpr std::size_t kMaxDimension = 1'000'000;

std::size_t parse_count(const std::string& text, const char* what) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(trim(text), &pos);
  } catch (const std::exception&) {
    fail(std::string("bad ") + what + " count '" + trim(text) + "'");
  }
  if (pos != trim(text).size()) {
    fail(std::string("trailing garbage after ") + what + " count in '" +
         trim(text) + "'");
  }
  if (v == 0 || v > kMaxDimension) {
    fail(std::string(what) + " count " + std::to_string(v) +
         " out of range [1, " + std::to_string(kMaxDimension) + "]");
  }
  return static_cast<std::size_t>(v);
}

double parse_dummy_factor(const std::string& text) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(trim(text), &pos);
  } catch (const std::exception&) {
    fail("bad dummy_factor '" + trim(text) + "'");
  }
  if (pos != trim(text).size()) {
    fail("trailing garbage after dummy_factor in '" + trim(text) + "'");
  }
  if (!(v >= 0.0) || !std::isfinite(v)) {
    fail("dummy_factor must be finite and non-negative, got '" + trim(text) +
         "'");
  }
  return v;
}

/// Reads exactly `values.size()` non-negative numbers and nothing else.
template <typename T>
void parse_row(const std::string& text, std::vector<T>& values,
               const char* what) {
  std::istringstream in(text);
  for (std::size_t n = 0; n < values.size(); ++n) {
    if (!(in >> values[n])) {
      fail(std::string("too few ") + what + " (expected " +
           std::to_string(values.size()) + ", got " + std::to_string(n) + ")");
    }
    if (values[n] < 0) {
      fail(std::string("negative ") + what + " value " +
           std::to_string(values[n]));
    }
  }
  std::string extra;
  if (in >> extra) {
    fail(std::string("trailing garbage '") + extra + "' after " + what);
  }
}
}  // namespace

Instance read_instance(std::istream& in) {
  if (next_line(in) != "rtsp-instance v1") fail("bad magic line");

  auto expect_keyword = [&](const std::string& line, const std::string& kw) {
    if (!starts_with(line, kw + " ") && line != kw) {
      fail("expected '" + kw + "', got '" + line + "'");
    }
  };
  // Payload after the keyword; "" for a keyword-only line, so the value
  // parsers report "bad/too few ..." instead of substr throwing.
  auto rest = [](const std::string& line, std::size_t keyword_len) {
    return line.size() > keyword_len ? line.substr(keyword_len) : std::string();
  };

  std::string line = next_line(in);
  expect_keyword(line, "servers");
  const std::size_t servers = parse_count(rest(line, 8), "server");

  line = next_line(in);
  expect_keyword(line, "objects");
  const std::size_t objects = parse_count(rest(line, 8), "object");

  line = next_line(in);
  expect_keyword(line, "dummy_factor");
  const double dummy_factor = parse_dummy_factor(rest(line, 13));

  line = next_line(in);
  expect_keyword(line, "capacities");
  std::vector<Size> caps(servers);
  parse_row(rest(line, 10), caps, "capacities");

  line = next_line(in);
  expect_keyword(line, "sizes");
  std::vector<Size> sizes(objects);
  parse_row(rest(line, 5), sizes, "sizes");

  if (next_line(in) != "costs") fail("expected 'costs'");
  std::vector<std::vector<LinkCost>> rows(servers, std::vector<LinkCost>(servers));
  for (std::size_t i = 0; i < servers; ++i) {
    parse_row(next_line(in), rows[i], "cost row");
  }

  ReplicationMatrix x_old(servers, objects);
  ReplicationMatrix x_new(servers, objects);
  while (true) {
    line = next_line(in);
    if (line == "end") break;
    std::istringstream row_in(line);
    std::string tag;
    long long server = -1;
    if (!(row_in >> tag >> server) || server < 0 ||
        static_cast<std::size_t>(server) >= servers) {
      fail("bad placement line '" + line + "'");
    }
    ReplicationMatrix* target = nullptr;
    if (tag == "old") target = &x_old;
    else if (tag == "new") target = &x_new;
    else fail("bad placement tag '" + tag + "'");
    long long k = 0;
    while (row_in >> k) {
      if (k < 0 || static_cast<std::size_t>(k) >= objects) {
        fail("object id out of range in '" + line + "'");
      }
      target->set(static_cast<ServerId>(server), static_cast<ObjectId>(k));
    }
  }

  SystemModel model(ServerCatalog(std::move(caps)), ObjectCatalog(std::move(sizes)),
                    CostMatrix::from_rows(std::move(rows)), dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

Instance instance_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

}  // namespace rtsp
