#include "io/instance_io.hpp"

#include <sstream>
#include <stdexcept>

#include "support/string_util.hpp"

namespace rtsp {

void write_instance(std::ostream& out, const Instance& instance) {
  const SystemModel& m = instance.model;
  out << "rtsp-instance v1\n";
  out << "servers " << m.num_servers() << '\n';
  out << "objects " << m.num_objects() << '\n';
  out << "dummy_factor " << m.dummy_factor() << '\n';
  out << "capacities";
  for (ServerId i = 0; i < m.num_servers(); ++i) out << ' ' << m.capacity(i);
  out << '\n';
  out << "sizes";
  for (ObjectId k = 0; k < m.num_objects(); ++k) out << ' ' << m.object_size(k);
  out << '\n';
  out << "costs\n";
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    for (ServerId j = 0; j < m.num_servers(); ++j) {
      out << m.costs().at(i, j) << (j + 1 < m.num_servers() ? ' ' : '\n');
    }
  }
  auto dump_placement = [&](const char* tag, const ReplicationMatrix& x) {
    for (ServerId i = 0; i < m.num_servers(); ++i) {
      out << tag << ' ' << i;
      for (ObjectId k : x.objects_on(i)) out << ' ' << k;
      out << '\n';
    }
  };
  dump_placement("old", instance.x_old);
  dump_placement("new", instance.x_new);
  out << "end\n";
}

std::string instance_to_text(const Instance& instance) {
  std::ostringstream os;
  write_instance(os, instance);
  return os.str();
}

namespace {
[[noreturn]] void fail(const std::string& why) {
  throw std::runtime_error("instance parse error: " + why);
}

std::string next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (!line.empty()) return line;
  }
  fail("unexpected end of input");
}
}  // namespace

Instance read_instance(std::istream& in) {
  if (next_line(in) != "rtsp-instance v1") fail("bad magic line");

  auto expect_keyword = [&](const std::string& line, const std::string& kw) {
    if (!starts_with(line, kw + " ") && line != kw) {
      fail("expected '" + kw + "', got '" + line + "'");
    }
  };

  std::string line = next_line(in);
  expect_keyword(line, "servers");
  const std::size_t servers = std::stoul(line.substr(8));

  line = next_line(in);
  expect_keyword(line, "objects");
  const std::size_t objects = std::stoul(line.substr(8));

  line = next_line(in);
  expect_keyword(line, "dummy_factor");
  const double dummy_factor = std::stod(line.substr(13));

  line = next_line(in);
  expect_keyword(line, "capacities");
  std::istringstream caps_in(line.substr(10));
  std::vector<Size> caps(servers);
  for (auto& c : caps) {
    if (!(caps_in >> c)) fail("too few capacities");
  }

  line = next_line(in);
  expect_keyword(line, "sizes");
  std::istringstream sizes_in(line.substr(5));
  std::vector<Size> sizes(objects);
  for (auto& s : sizes) {
    if (!(sizes_in >> s)) fail("too few sizes");
  }

  if (next_line(in) != "costs") fail("expected 'costs'");
  std::vector<std::vector<LinkCost>> rows(servers, std::vector<LinkCost>(servers));
  for (std::size_t i = 0; i < servers; ++i) {
    std::istringstream row_in(next_line(in));
    for (std::size_t j = 0; j < servers; ++j) {
      if (!(row_in >> rows[i][j])) fail("short cost row " + std::to_string(i));
    }
  }

  ReplicationMatrix x_old(servers, objects);
  ReplicationMatrix x_new(servers, objects);
  while (true) {
    line = next_line(in);
    if (line == "end") break;
    std::istringstream row_in(line);
    std::string tag;
    long long server = -1;
    if (!(row_in >> tag >> server) || server < 0 ||
        static_cast<std::size_t>(server) >= servers) {
      fail("bad placement line '" + line + "'");
    }
    ReplicationMatrix* target = nullptr;
    if (tag == "old") target = &x_old;
    else if (tag == "new") target = &x_new;
    else fail("bad placement tag '" + tag + "'");
    long long k = 0;
    while (row_in >> k) {
      if (k < 0 || static_cast<std::size_t>(k) >= objects) {
        fail("object id out of range in '" + line + "'");
      }
      target->set(static_cast<ServerId>(server), static_cast<ObjectId>(k));
    }
  }

  SystemModel model(ServerCatalog(std::move(caps)), ObjectCatalog(std::move(sizes)),
                    CostMatrix::from_rows(std::move(rows)), dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

Instance instance_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

}  // namespace rtsp
