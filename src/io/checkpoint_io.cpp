#include "io/checkpoint_io.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define RTSP_CKP_POSIX 1
#else
#define RTSP_CKP_POSIX 0
#endif

namespace rtsp {

namespace {

constexpr char kCheckpointMagic[8] = {'R', 'T', 'S', 'P', 'C', 'K', 'P', '1'};
constexpr char kWalMagic[8] = {'R', 'T', 'S', 'P', 'W', 'A', 'L', '1'};
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::uint32_t kWalVersion = 1;
constexpr std::size_t kWalHeaderBytes = 8 + 4 + 4 + 8;  // magic,ver,res,gen
constexpr std::uint64_t kMaxPairs = std::uint64_t{1} << 32;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t len,
                         std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(WalRecordType t) {
  switch (t) {
    case WalRecordType::kAdmit: return "admit";
    case WalRecordType::kBegin: return "begin";
    case WalRecordType::kCommit: return "commit";
  }
  return "unknown";
}

namespace {

// ---- little-endian encode/decode into std::string buffers ----

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over a byte range.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint8_t u8() {
    need(1);
    return static_cast<unsigned char>(data_[pos_++]);
  }

  std::size_t pos() const { return pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  void need(std::size_t n) {
    if (pos_ + n > size_) {
      throw std::runtime_error(std::string(what_) + ": truncated at byte " +
                               std::to_string(pos_));
    }
  }

  const char* data_;
  std::size_t size_;
  const char* what_;
  std::size_t pos_ = 0;
};

void put_pairs(std::string& out,
               const std::vector<std::pair<ServerId, ObjectId>>& pairs) {
  put_u64(out, pairs.size());
  for (const auto& [s, k] : pairs) {
    put_u32(out, s);
    put_u32(out, k);
  }
}

std::vector<std::pair<ServerId, ObjectId>> get_pairs(Cursor& c,
                                                     const char* what) {
  const std::uint64_t count = c.u64();
  if (count > kMaxPairs) {
    throw std::runtime_error(std::string(what) + ": absurd pair count " +
                             std::to_string(count));
  }
  std::vector<std::pair<ServerId, ObjectId>> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const ServerId s = c.u32();
    const ObjectId k = c.u32();
    pairs.emplace_back(s, k);
  }
  return pairs;
}

std::string read_whole_file(const std::string& path, const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path);
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return data;
}

#if RTSP_CKP_POSIX
void fsync_fd_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw std::runtime_error("fsync failed for " + path);
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best-effort: some filesystems refuse O_RDONLY dirs
  ::fsync(fd);
  ::close(fd);
}

void write_file_durably(const std::string& path, const std::string& bytes,
                        bool fsync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot create " + path);
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("write failed for " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync) fsync_fd_or_throw(fd, path);
  ::close(fd);
}
#else
void write_file_durably(const std::string& path, const std::string& bytes,
                        bool) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot create " + path);
  const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) throw std::runtime_error("write failed for " + path);
}
#endif

std::string serialize_counters(const DaemonCounters& c) {
  std::string out;
  put_u64(out, c.admitted);
  put_u64(out, c.converged);
  put_u64(out, c.partial_rounds);
  put_u64(out, c.readmissions);
  put_u64(out, c.coalesced);
  put_u64(out, c.rejected);
  put_u64(out, c.infeasible);
  put_u64(out, c.checkpoints);
  put_u64(out, c.recoveries);
  put_u64(out, c.actions_applied);
  put_i64(out, c.cost_paid);
  return out;
}

DaemonCounters parse_counters(Cursor& c) {
  DaemonCounters out;
  out.admitted = c.u64();
  out.converged = c.u64();
  out.partial_rounds = c.u64();
  out.readmissions = c.u64();
  out.coalesced = c.u64();
  out.rejected = c.u64();
  out.infeasible = c.u64();
  out.checkpoints = c.u64();
  out.recoveries = c.u64();
  out.actions_applied = c.u64();
  out.cost_paid = c.i64();
  return out;
}

}  // namespace

void write_checkpoint_file(const std::string& path, const CheckpointDoc& doc,
                           bool fsync) {
  std::string body;
  put_u64(body, doc.generation);
  put_u64(body, doc.seed);
  put_u64(body, doc.last_seq);
  put_i64(body, doc.clock);
  put_u64(body, doc.servers);
  put_u64(body, doc.objects);
  put_u64(body, doc.model_crc);
  body += serialize_counters(doc.counters);
  put_pairs(body, doc.placement);
  put_u64(body, doc.queue.size());
  for (const CheckpointQueueEntry& e : doc.queue) {
    put_u64(body, e.seq);
    put_u32(body, e.attempt);
    put_u32(body, 0);  // reserved / alignment
    put_i64(body, e.not_before);
    put_pairs(body, e.target);
  }

  std::string bytes(kCheckpointMagic, sizeof kCheckpointMagic);
  put_u32(bytes, kCheckpointVersion);
  put_u32(bytes, 0);  // reserved
  bytes += body;
  put_u32(bytes, crc32_ieee(body));

  const std::string tmp = path + ".tmp";
  write_file_durably(tmp, bytes, fsync);
#if RTSP_CKP_POSIX
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
  if (fsync) fsync_parent_dir(path);
#else
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
#endif
}

CheckpointDoc read_checkpoint_file(const std::string& path) {
  constexpr const char* kWhat = "checkpoint parse error";
  const std::string bytes = read_whole_file(path, kWhat);
  if (bytes.size() < sizeof kCheckpointMagic + 4 + 4 + 4) {
    throw std::runtime_error(std::string(kWhat) + ": file too short (" +
                             std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, sizeof kCheckpointMagic) !=
      0) {
    throw std::runtime_error(std::string(kWhat) + ": bad magic");
  }
  Cursor head(bytes.data() + 8, 8, kWhat);
  const std::uint32_t version = head.u32();
  if (version != kCheckpointVersion) {
    throw std::runtime_error(std::string(kWhat) + ": unsupported version " +
                             std::to_string(version));
  }
  const std::size_t body_begin = 16;
  const std::size_t body_size = bytes.size() - body_begin - 4;
  const std::uint32_t stored_crc = [&] {
    Cursor tail(bytes.data() + bytes.size() - 4, 4, kWhat);
    return tail.u32();
  }();
  const std::uint32_t actual_crc =
      crc32_ieee(bytes.data() + body_begin, body_size);
  if (stored_crc != actual_crc) {
    throw std::runtime_error(std::string(kWhat) + ": CRC mismatch (stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(actual_crc) + ")");
  }

  Cursor c(bytes.data() + body_begin, body_size, kWhat);
  CheckpointDoc doc;
  doc.generation = c.u64();
  doc.seed = c.u64();
  doc.last_seq = c.u64();
  doc.clock = c.i64();
  doc.servers = c.u64();
  doc.objects = c.u64();
  doc.model_crc = c.u64();
  doc.counters = parse_counters(c);
  doc.placement = get_pairs(c, kWhat);
  const std::uint64_t queue_count = c.u64();
  if (queue_count > kMaxPairs) {
    throw std::runtime_error(std::string(kWhat) + ": absurd queue count");
  }
  doc.queue.reserve(static_cast<std::size_t>(queue_count));
  for (std::uint64_t i = 0; i < queue_count; ++i) {
    CheckpointQueueEntry e;
    e.seq = c.u64();
    e.attempt = c.u32();
    (void)c.u32();  // reserved
    e.not_before = c.i64();
    e.target = get_pairs(c, kWhat);
    doc.queue.push_back(std::move(e));
  }
  if (!c.at_end()) {
    throw std::runtime_error(std::string(kWhat) + ": trailing bytes after body");
  }
  for (const auto& [s, k] : doc.placement) {
    if (s >= doc.servers || k >= doc.objects) {
      throw std::runtime_error(std::string(kWhat) + ": placement pair (" +
                               std::to_string(s) + "," + std::to_string(k) +
                               ") out of range");
    }
  }
  return doc;
}

namespace {

std::string serialize_wal_record(const WalRecord& r) {
  std::string payload;
  payload.push_back(static_cast<char>(r.type));
  payload.push_back(static_cast<char>(r.converged ? 1 : 0));
  payload.push_back(static_cast<char>(r.readmit ? 1 : 0));
  payload.push_back(0);  // reserved
  put_u32(payload, r.attempt);
  put_u64(payload, r.seq);
  put_u64(payload, r.replaces);
  put_i64(payload, r.clock);
  put_i64(payload, r.readmit_not_before);
  put_u64(payload, r.placement_crc);
  put_i64(payload, r.cost);
  put_u64(payload, r.actions);
  put_pairs(payload, r.target);

  std::string frame;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32_ieee(payload));
  frame += payload;
  return frame;
}

WalRecord parse_wal_payload(const char* data, std::size_t size) {
  constexpr const char* kWhat = "wal record parse error";
  Cursor c(data, size, kWhat);
  WalRecord r;
  const std::uint8_t type = c.u8();
  if (type < 1 || type > 3) {
    throw std::runtime_error(std::string(kWhat) + ": unknown record type " +
                             std::to_string(type));
  }
  r.type = static_cast<WalRecordType>(type);
  r.converged = c.u8() != 0;
  r.readmit = c.u8() != 0;
  (void)c.u8();  // reserved
  r.attempt = c.u32();
  r.seq = c.u64();
  r.replaces = c.u64();
  r.clock = c.i64();
  r.readmit_not_before = c.i64();
  r.placement_crc = c.u64();
  r.cost = c.i64();
  r.actions = c.u64();
  r.target = get_pairs(c, kWhat);
  if (!c.at_end()) {
    throw std::runtime_error(std::string(kWhat) + ": trailing payload bytes");
  }
  return r;
}

}  // namespace

WalWriter::~WalWriter() { close(); }

void WalWriter::create(const std::string& path, std::uint64_t generation,
                       bool fsync) {
  close();
  std::string header(kWalMagic, sizeof kWalMagic);
  put_u32(header, kWalVersion);
  put_u32(header, 0);  // reserved
  put_u64(header, generation);
  // Write the fresh WAL via the same tmp+rename dance as the checkpoint so
  // a crash during WAL rotation leaves the previous (stale-generation)
  // file intact rather than a half-written header.
  const std::string tmp = path + ".tmp";
  write_file_durably(tmp, header, fsync);
#if RTSP_CKP_POSIX
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
  if (fsync) fsync_parent_dir(path);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) throw std::runtime_error("cannot reopen wal " + path);
#else
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed");
  }
  fd_ = 0;  // sentinel: stdio fallback reopens per append
#endif
  fsync_ = fsync;
  appended_ = 0;
  path_ = path;
}

void WalWriter::open_append(const std::string& path, std::uint64_t offset,
                            bool fsync) {
  close();
#if RTSP_CKP_POSIX
  fd_ = ::open(path.c_str(), O_WRONLY);
  if (fd_ < 0) throw std::runtime_error("cannot open wal " + path);
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot truncate wal " + path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot seek wal " + path);
  }
#else
  truncate_file(path, offset);
  fd_ = 0;
#endif
  fsync_ = fsync;
  appended_ = 0;
  path_ = path;
}

void WalWriter::append(const WalRecord& record) {
  if (!is_open()) {
    throw std::runtime_error("wal append on a closed writer");
  }
  const std::string frame = serialize_wal_record(record);
#if RTSP_CKP_POSIX
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("wal write failed for " + path_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_) fsync_fd_or_throw(fd_, path_);
#else
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) throw std::runtime_error("cannot append wal " + path_);
  const std::size_t n = std::fwrite(frame.data(), 1, frame.size(), f);
  std::fclose(f);
  if (n != frame.size()) throw std::runtime_error("wal write failed for " + path_);
#endif
  ++appended_;
}

void WalWriter::close() {
#if RTSP_CKP_POSIX
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#else
  fd_ = -1;
#endif
}

WalReadResult read_wal_file(const std::string& path) {
  constexpr const char* kWhat = "wal parse error";
  const std::string bytes = read_whole_file(path, kWhat);
  if (bytes.size() < kWalHeaderBytes) {
    throw std::runtime_error(std::string(kWhat) + ": file too short (" +
                             std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof kWalMagic) != 0) {
    throw std::runtime_error(std::string(kWhat) + ": bad magic");
  }
  Cursor head(bytes.data() + 8, kWalHeaderBytes - 8, kWhat);
  const std::uint32_t version = head.u32();
  if (version != kWalVersion) {
    throw std::runtime_error(std::string(kWhat) + ": unsupported version " +
                             std::to_string(version));
  }
  (void)head.u32();  // reserved

  WalReadResult result;
  result.generation = head.u64();
  std::size_t pos = kWalHeaderBytes;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    // Frame: u32 payload length, u32 payload CRC, payload. Anything that
    // does not parse cleanly from here on is a torn tail.
    if (pos + 8 > bytes.size()) break;
    Cursor frame(bytes.data() + pos, 8, kWhat);
    const std::uint32_t len = frame.u32();
    const std::uint32_t crc = frame.u32();
    if (len > (std::uint32_t{1} << 30)) break;  // absurd length: corrupt
    if (pos + 8 + len > bytes.size()) break;    // truncated payload
    const char* payload = bytes.data() + pos + 8;
    if (crc32_ieee(static_cast<const void*>(payload), len) != crc) {
      break;  // bit rot or torn write
    }
    WalRecord record;
    try {
      record = parse_wal_payload(payload, len);
    } catch (const std::runtime_error&) {
      break;  // framing passed but payload malformed: treat as torn
    }
    result.records.push_back(std::move(record));
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  result.rolled_back_bytes = bytes.size() - result.valid_bytes;
  return result;
}

void truncate_file(const std::string& path, std::uint64_t valid_bytes) {
#if RTSP_CKP_POSIX
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    throw std::runtime_error("cannot truncate " + path);
  }
#else
  const std::string bytes = read_whole_file(path, "truncate");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot truncate " + path);
  std::fwrite(bytes.data(), 1,
              std::min<std::size_t>(bytes.size(),
                                    static_cast<std::size_t>(valid_bytes)),
              f);
  std::fclose(f);
#endif
}

}  // namespace rtsp
