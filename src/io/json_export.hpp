// Minimal JSON writer plus exporters for schedules, instances and sweep
// results — for downstream tooling (dashboards, notebooks) that prefers
// JSON over the text formats.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "core/schedule.hpp"
#include "experiment/runner.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

/// Streaming JSON writer with correct string escaping and comma handling.
/// Usage: obj/arr open scopes; key() inside objects; value() for leaves.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s) { return value(std::string(s)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  static std::string escape(const std::string& s);

 private:
  void element_prefix();

  std::ostream& out_;
  // Scope stack: true = needs a comma before the next element.
  std::string stack_;
  bool pending_key_ = false;
};

/// {"actions":[{"type":"transfer","server":..,"object":..,"source":..|"dummy"},
///             {"type":"delete",...}]}
void schedule_to_json(std::ostream& out, const Schedule& schedule);

/// Instance summary (sizes, capacities, delta counts; not the full matrix).
void instance_summary_to_json(std::ostream& out, const Instance& instance);

/// Full sweep result: per point, per algorithm, all four metrics with
/// mean/stddev/min/max/n.
void sweep_to_json(std::ostream& out, const SweepResult& result,
                   const std::string& x_label);

}  // namespace rtsp
