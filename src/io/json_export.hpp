// JSON exporters for schedules, instances and sweep results — for
// downstream tooling (dashboards, notebooks) that prefers JSON over the
// text formats. The JsonWriter itself lives in support/json.hpp.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "core/schedule.hpp"
#include "experiment/runner.hpp"
#include "support/json.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

/// {"actions":[{"type":"transfer","server":..,"object":..,"source":..|"dummy"},
///             {"type":"delete",...}]}
void schedule_to_json(std::ostream& out, const Schedule& schedule);

/// Instance summary (sizes, capacities, delta counts; not the full matrix).
void instance_summary_to_json(std::ostream& out, const Instance& instance);

/// Full sweep result: per point, per algorithm, every Metric with
/// mean/stddev/min/max/n.
void sweep_to_json(std::ostream& out, const SweepResult& result,
                   const std::string& x_label);

}  // namespace rtsp
