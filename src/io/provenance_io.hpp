// JSON serialisation of prov::Provenance sidecar files, consumed back by
// `rtsp explain`. One self-describing document:
//   {"version": 1, "stages": [...], "rewrites": [...],
//    "root_causes": [...], "entries": [...]}
// kNone-valued links and empty lists are omitted on write and default on
// read, so files stay compact and forward-tolerant.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "obs/provenance.hpp"

namespace rtsp {

void write_provenance(std::ostream& out, const prov::Provenance& p);
std::string provenance_to_json(const prov::Provenance& p);

/// Parses the format above; throws std::runtime_error on malformed input or
/// an unsupported version.
prov::Provenance read_provenance(std::istream& in);
prov::Provenance provenance_from_json(const std::string& text);

}  // namespace rtsp
