// Compact binary RTSP instance serialisation ("RTSPBIN1", version 1).
//
// The text format re-parses every number through iostreams, which at the
// scale tier (millions of objects) costs tens of seconds and transient
// string storage. The binary format is a flat little-endian image that can
// be memory-mapped and decoded with bounds-checked integer loads:
//
//   offset  size  field
//   0       8     magic "RTSPBIN1"
//   8       4     u32 version (= 1)
//   12      4     u32 section count (= 5)
//   16      8     u64 servers (M)
//   24      8     u64 objects (N)
//   32      8     f64 dummy_factor (IEEE-754 bits)
//   40      24*5  section table: {u32 id, u32 reserved, u64 offset, u64 len}
//   160     ...   section payloads (offsets are absolute, 8-byte aligned)
//
//   section id  payload
//   1 CAPS      M x i64 server capacities
//   2 SIZES     N x i64 object sizes
//   3 COSTS     M*M x i64 row-major link costs
//   4 XOLD      CSR placement: (N+1) x u64 offsets, then u32 server ids
//   5 XNEW      same layout as XOLD
//
// Placements are stored per object (CSR over objects) with strictly
// ascending server ids, which is exactly the sparse index's authoritative
// order — loading a million-object instance never materialises a dense
// bitset. Every length, offset, id and count is validated before use;
// malformed input throws std::runtime_error, never UB or bad_alloc.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

#include "workload/scenario.hpp"

namespace rtsp {

/// Writes the binary format described above.
void write_instance_binary(std::ostream& out, const Instance& instance);
void write_instance_binary_file(const std::string& path, const Instance& instance);

/// Decodes a binary instance from memory; throws std::runtime_error on any
/// malformed content.
Instance instance_from_binary(const unsigned char* data, std::size_t size);

/// Opens `path` via MappedFile (mmap with read fallback) and decodes it.
/// Records the io.bytes_mapped gauge.
Instance read_instance_binary_file(const std::string& path);

/// True when the file starts with the binary magic.
bool is_binary_instance_file(const std::string& path);

/// Loads either format: sniffs the magic and dispatches to the binary or
/// text reader. The scale-tier entry point used by the CLI.
Instance read_instance_any(const std::string& path);

}  // namespace rtsp
