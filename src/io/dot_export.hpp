// Graphviz DOT export of topologies and transfer graphs, for the examples
// and for eyeballing deadlock cycles (Fig. 1b style).
#pragma once

#include <string>

#include "core/schedule.hpp"
#include "core/system.hpp"
#include "core/transfer_graph.hpp"
#include "obs/provenance.hpp"
#include "topology/graph.hpp"

namespace rtsp {

/// Undirected topology with link costs as edge labels.
std::string topology_to_dot(const Graph& g);

/// The Sec.-3.3 transfer graph: directed arcs labelled with object ids;
/// servers in multi-node strongly connected components are highlighted.
std::string transfer_graph_to_dot(const TransferGraph& g);

/// A schedule's realised transfer graph: one arc per transfer, labelled with
/// the object id. With a provenance table (entries parallel to `h`) each arc
/// is coloured by its originating stage (legend included); dummy-sourced
/// transfers always come from a distinct dashed "dummy" node in red,
/// provenance or not. Deletions are not drawn.
std::string schedule_to_dot(const SystemModel& model, const Schedule& h,
                            const prov::Provenance* p = nullptr);

}  // namespace rtsp
