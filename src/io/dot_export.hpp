// Graphviz DOT export of topologies and transfer graphs, for the examples
// and for eyeballing deadlock cycles (Fig. 1b style).
#pragma once

#include <string>

#include "core/transfer_graph.hpp"
#include "topology/graph.hpp"

namespace rtsp {

/// Undirected topology with link costs as edge labels.
std::string topology_to_dot(const Graph& g);

/// The Sec.-3.3 transfer graph: directed arcs labelled with object ids;
/// servers in multi-node strongly connected components are highlighted.
std::string transfer_graph_to_dot(const TransferGraph& g);

}  // namespace rtsp
