#include "io/json_export.hpp"

#include "core/delta.hpp"
#include "core/feasibility.hpp"

namespace rtsp {

void schedule_to_json(std::ostream& out, const Schedule& schedule) {
  JsonWriter j(out);
  j.begin_object();
  j.key("actions").begin_array();
  for (const Action& a : schedule) {
    j.begin_object();
    j.key("type").value(a.is_transfer() ? "transfer" : "delete");
    j.key("server").value(static_cast<std::uint64_t>(a.server));
    j.key("object").value(static_cast<std::uint64_t>(a.object));
    if (a.is_transfer()) {
      if (a.is_dummy_transfer()) j.key("source").value("dummy");
      else j.key("source").value(static_cast<std::uint64_t>(a.source));
    }
    j.end_object();
  }
  j.end_array();
  j.key("transfers").value(schedule.transfer_count());
  j.key("deletions").value(schedule.delete_count());
  j.key("dummy_transfers").value(schedule.dummy_transfer_count());
  j.end_object();
  out << '\n';
}

void instance_summary_to_json(std::ostream& out, const Instance& instance) {
  const SystemModel& m = instance.model;
  const PlacementDelta delta(instance.x_old, instance.x_new);
  JsonWriter j(out);
  j.begin_object();
  j.key("servers").value(m.num_servers());
  j.key("objects").value(m.num_objects());
  j.key("dummy_link_cost").value(static_cast<std::int64_t>(m.dummy_link_cost()));
  j.key("outstanding").value(delta.outstanding().size());
  j.key("superfluous").value(delta.superfluous().size());
  j.key("overlap").value(instance.x_old.overlap(instance.x_new));
  j.key("feasible").value(storage_feasible(m, instance.x_new));
  j.key("cost_lower_bound")
      .value(static_cast<std::int64_t>(
          cost_lower_bound(m, instance.x_old, instance.x_new)));
  j.key("worst_case_cost")
      .value(static_cast<std::int64_t>(
          worst_case_cost(m, instance.x_old, instance.x_new)));
  j.key("capacities").begin_array();
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    j.value(static_cast<std::int64_t>(m.capacity(i)));
  }
  j.end_array();
  j.key("sizes").begin_array();
  for (ObjectId k = 0; k < m.num_objects(); ++k) {
    j.value(static_cast<std::int64_t>(m.object_size(k)));
  }
  j.end_array();
  j.end_object();
  out << '\n';
}

void sweep_to_json(std::ostream& out, const SweepResult& result,
                   const std::string& x_label) {
  JsonWriter j(out);
  j.begin_object();
  j.key("x_label").value(x_label);
  j.key("algorithms").begin_array();
  for (const auto& a : result.algorithms) j.value(a);
  j.end_array();
  j.key("points").begin_array();
  for (std::size_t p = 0; p < result.point_labels.size(); ++p) {
    j.begin_object();
    j.key("x").value(result.point_labels[p]);
    j.key("cells").begin_array();
    for (std::size_t a = 0; a < result.algorithms.size(); ++a) {
      j.begin_object();
      j.key("algorithm").value(result.algorithms[a]);
      for (const Metric m : kAllMetrics) {
        const SampleSet& s = metric_samples(result.cells[p][a], m);
        std::string name = metric_name(m);
        for (char& c : name) {
          if (c == ' ') c = '_';
        }
        j.key(name).begin_object();
        j.key("n").value(s.count());
        j.key("mean").value(s.mean());
        j.key("stddev").value(s.stddev());
        j.key("min").value(s.min());
        j.key("max").value(s.max());
        j.end_object();
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  out << '\n';
}

}  // namespace rtsp
