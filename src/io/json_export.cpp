#include "io/json_export.hpp"

#include <cstdio>

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "support/assert.hpp"

namespace rtsp {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted "name":
  }
  if (!stack_.empty()) {
    if (stack_.back() == '1') out_ << ',';
    else stack_.back() = '1';
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ << '{';
  stack_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RTSP_REQUIRE(!stack_.empty());
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ << '[';
  stack_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RTSP_REQUIRE(!stack_.empty());
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  RTSP_REQUIRE(!pending_key_);
  element_prefix();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  element_prefix();
  out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

void schedule_to_json(std::ostream& out, const Schedule& schedule) {
  JsonWriter j(out);
  j.begin_object();
  j.key("actions").begin_array();
  for (const Action& a : schedule) {
    j.begin_object();
    j.key("type").value(a.is_transfer() ? "transfer" : "delete");
    j.key("server").value(static_cast<std::uint64_t>(a.server));
    j.key("object").value(static_cast<std::uint64_t>(a.object));
    if (a.is_transfer()) {
      if (a.is_dummy_transfer()) j.key("source").value("dummy");
      else j.key("source").value(static_cast<std::uint64_t>(a.source));
    }
    j.end_object();
  }
  j.end_array();
  j.key("transfers").value(schedule.transfer_count());
  j.key("deletions").value(schedule.delete_count());
  j.key("dummy_transfers").value(schedule.dummy_transfer_count());
  j.end_object();
  out << '\n';
}

void instance_summary_to_json(std::ostream& out, const Instance& instance) {
  const SystemModel& m = instance.model;
  const PlacementDelta delta(instance.x_old, instance.x_new);
  JsonWriter j(out);
  j.begin_object();
  j.key("servers").value(m.num_servers());
  j.key("objects").value(m.num_objects());
  j.key("dummy_link_cost").value(static_cast<std::int64_t>(m.dummy_link_cost()));
  j.key("outstanding").value(delta.outstanding().size());
  j.key("superfluous").value(delta.superfluous().size());
  j.key("overlap").value(instance.x_old.overlap(instance.x_new));
  j.key("feasible").value(storage_feasible(m, instance.x_new));
  j.key("cost_lower_bound")
      .value(static_cast<std::int64_t>(
          cost_lower_bound(m, instance.x_old, instance.x_new)));
  j.key("worst_case_cost")
      .value(static_cast<std::int64_t>(
          worst_case_cost(m, instance.x_old, instance.x_new)));
  j.key("capacities").begin_array();
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    j.value(static_cast<std::int64_t>(m.capacity(i)));
  }
  j.end_array();
  j.key("sizes").begin_array();
  for (ObjectId k = 0; k < m.num_objects(); ++k) {
    j.value(static_cast<std::int64_t>(m.object_size(k)));
  }
  j.end_array();
  j.end_object();
  out << '\n';
}

void sweep_to_json(std::ostream& out, const SweepResult& result,
                   const std::string& x_label) {
  JsonWriter j(out);
  j.begin_object();
  j.key("x_label").value(x_label);
  j.key("algorithms").begin_array();
  for (const auto& a : result.algorithms) j.value(a);
  j.end_array();
  j.key("points").begin_array();
  for (std::size_t p = 0; p < result.point_labels.size(); ++p) {
    j.begin_object();
    j.key("x").value(result.point_labels[p]);
    j.key("cells").begin_array();
    for (std::size_t a = 0; a < result.algorithms.size(); ++a) {
      j.begin_object();
      j.key("algorithm").value(result.algorithms[a]);
      for (const Metric m : {Metric::DummyTransfers, Metric::ImplementationCost,
                             Metric::ScheduleLength, Metric::Seconds}) {
        const SampleSet& s = metric_samples(result.cells[p][a], m);
        std::string name = metric_name(m);
        for (char& c : name) {
          if (c == ' ') c = '_';
        }
        j.key(name).begin_object();
        j.key("n").value(s.count());
        j.key("mean").value(s.mean());
        j.key("stddev").value(s.stddev());
        j.key("min").value(s.min());
        j.key("max").value(s.max());
        j.end_object();
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  out << '\n';
}

}  // namespace rtsp
