// Crash-safe persistence for the continuous rebalancing daemon
// (`rtsp serve`): a CRC-guarded binary checkpoint (`RTSPCKP1`) written
// atomically (tmp + fsync + rename + directory fsync), and a CRC-framed
// append-only write-ahead log (`RTSPWAL1`) whose records are fsync'd
// before the daemon acts on them.
//
// Recovery contract (see docs/daemon.md):
//   * The checkpoint snapshots the full daemon state — placement, virtual
//     clock, admission queue (including partially-converged epochs),
//     sequence high-water mark and counters — under one generation number.
//   * The WAL carries the same generation; after a crash, a WAL one
//     generation behind the checkpoint is stale (its effects are inside
//     the checkpoint) and is discarded, never replayed twice.
//   * Torn or corrupt WAL tails are detected by per-record CRC + length
//     framing; readers report the exact valid prefix so the daemon can
//     roll the file back — a torn tail is truncated and surfaced, never
//     silently accepted. A corrupt checkpoint (bad magic/CRC/bounds) is a
//     hard error: the daemon refuses to start from it.
//
// All integers are little-endian on the wire. Like the rest of io/, every
// parse failure throws std::runtime_error with a descriptive prefix.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace rtsp {

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the classic
/// zlib polynomial. `seed` chains incremental computations: pass the
/// previous return value to continue a running checksum.
std::uint32_t crc32_ieee(const void* data, std::size_t len,
                         std::uint32_t seed = 0);
inline std::uint32_t crc32_ieee(std::string_view data, std::uint32_t seed = 0) {
  return crc32_ieee(data.data(), data.size(), seed);
}

/// Monotonic daemon counters, persisted so recovery resumes the exact
/// series the uninterrupted run would have produced (the chaos-harness
/// invariant covers converged/cost_paid as well as the placement).
struct DaemonCounters {
  std::uint64_t admitted = 0;        ///< epochs accepted into the queue
  std::uint64_t converged = 0;       ///< epochs that reached their target
  std::uint64_t partial_rounds = 0;  ///< budgeted rounds that stopped early
  std::uint64_t readmissions = 0;    ///< partial epochs re-queued with backoff
  std::uint64_t coalesced = 0;       ///< admissions that replaced a pending epoch
  std::uint64_t rejected = 0;        ///< admissions bounced by backpressure
  std::uint64_t infeasible = 0;      ///< admissions refused (storage-infeasible)
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t actions_applied = 0;  ///< effective actions across all epochs
  std::int64_t cost_paid = 0;         ///< actual executor cost across epochs

  bool operator==(const DaemonCounters&) const = default;
};

/// One pending epoch inside a checkpoint.
struct CheckpointQueueEntry {
  std::uint64_t seq = 0;
  std::uint32_t attempt = 1;
  std::int64_t not_before = 0;  ///< virtual-clock re-admission gate
  std::vector<std::pair<ServerId, ObjectId>> target;
};

/// Full daemon snapshot, version 1.
struct CheckpointDoc {
  std::uint64_t generation = 0;  ///< increments per checkpoint; ties to the WAL
  std::uint64_t seed = 0;        ///< daemon seed (recovery refuses a mismatch)
  std::uint64_t last_seq = 0;    ///< admission sequence high-water mark
  std::int64_t clock = 0;        ///< daemon virtual clock (ticks)
  std::uint64_t servers = 0;
  std::uint64_t objects = 0;
  std::uint64_t model_crc = 0;   ///< capacities+sizes fingerprint cross-check
  std::vector<std::pair<ServerId, ObjectId>> placement;  ///< current X, canonical order
  std::vector<CheckpointQueueEntry> queue;               ///< pending epochs, pop order
  DaemonCounters counters;
};

/// Writes `doc` atomically: serialize to `path + ".tmp"`, fsync the file,
/// rename over `path`, fsync the directory. A crash at any point leaves
/// either the old checkpoint or the new one, never a torn file. `fsync`
/// false skips the durability syscalls (tests/benchmarks on tmpfs).
void write_checkpoint_file(const std::string& path, const CheckpointDoc& doc,
                           bool fsync = true);

/// Parses and CRC-verifies a checkpoint. Throws std::runtime_error
/// prefixed "checkpoint parse error:" on any corruption.
CheckpointDoc read_checkpoint_file(const std::string& path);

enum class WalRecordType : std::uint8_t {
  kAdmit = 1,   ///< an epoch entered the queue (external or re-admission replay)
  kBegin = 2,   ///< the daemon started processing (seq, attempt)
  kCommit = 3,  ///< processing finished; carries the post-state fingerprint
};

const char* to_string(WalRecordType t);

/// One WAL record. Field meaning depends on `type`:
///   kAdmit : seq/attempt identify the epoch, `clock` is its not_before,
///            `replaces` the seq coalesced away (0 = none), `target` the
///            requested placement pairs.
///   kBegin : seq/attempt + the daemon clock at pop time.
///   kCommit: `converged`, paid `cost`, effective `actions`, the CRC of
///            the canonical post-placement (replay divergence check), and
///            — when the epoch only partially converged — `readmit` with
///            the backoff gate `readmit_not_before`. Folding the
///            re-admission into the commit record makes the
///            "commit + requeue" step atomic on disk.
struct WalRecord {
  WalRecordType type = WalRecordType::kAdmit;
  std::uint64_t seq = 0;
  std::uint32_t attempt = 1;
  std::uint64_t replaces = 0;
  std::int64_t clock = 0;
  bool converged = false;
  bool readmit = false;
  std::int64_t readmit_not_before = 0;
  std::uint64_t placement_crc = 0;
  std::int64_t cost = 0;
  std::uint64_t actions = 0;
  std::vector<std::pair<ServerId, ObjectId>> target;
};

/// Append-only WAL writer. Every append() is length+CRC framed and (when
/// enabled) fsync'd before returning, so a record the daemon has acted on
/// can only be missing from disk if the action never happened either.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates/truncates `path` and writes the header for `generation`.
  void create(const std::string& path, std::uint64_t generation,
              bool fsync = true);

  /// Opens an existing WAL (validated by a prior read_wal_file) for
  /// appending at `offset` — recovery's "continue where the valid prefix
  /// ends" entry point.
  void open_append(const std::string& path, std::uint64_t offset,
                   bool fsync = true);

  bool is_open() const { return fd_ >= 0; }
  std::uint64_t records_appended() const { return appended_; }

  void append(const WalRecord& record);
  void close();

 private:
  int fd_ = -1;
  bool fsync_ = true;
  std::uint64_t appended_ = 0;
  std::string path_;
};

/// Everything read_wal_file found. `valid_bytes` is the offset of the
/// first byte past the last intact record — the truncation point for a
/// torn tail; `rolled_back_bytes` counts the garbage past it.
struct WalReadResult {
  std::uint64_t generation = 0;
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;
  std::uint64_t rolled_back_bytes = 0;
  bool torn() const { return rolled_back_bytes > 0; }
};

/// Reads a WAL: header, then records until EOF or the first torn/corrupt
/// frame (reported via valid_bytes/rolled_back_bytes, not an exception —
/// a torn tail is the expected shape of a crash). Bad magic/version or a
/// file shorter than the header still throw ("wal parse error:").
WalReadResult read_wal_file(const std::string& path);

/// Truncates `path` to `valid_bytes` — rolls a torn tail back on disk.
void truncate_file(const std::string& path, std::uint64_t valid_bytes);

}  // namespace rtsp
