#include "io/journal_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/json.hpp"

namespace rtsp {

namespace {

void write_run_summary(JsonWriter& j, const JournalRunSummary& run) {
  j.begin_object();
  j.key("planned_cost").value(run.planned_cost);
  j.key("effective_cost").value(run.effective_cost);
  j.key("actual_cost").value(run.actual_cost);
  j.key("finished_at").value(run.finished_at);
  j.key("total_stall").value(run.total_stall);
  j.key("total_backoff").value(run.total_backoff);
  j.key("attempts").value(run.attempts);
  j.key("retries").value(run.retries);
  j.key("transient_failures").value(run.transient_failures);
  j.key("degraded_transfers").value(run.degraded_transfers);
  j.key("loss_deletions").value(run.loss_deletions);
  j.key("replans").value(run.replans);
  j.key("reached_goal").value(run.reached_goal);
  j.end_object();
}

JournalRunSummary read_run_summary(const JsonValue& v) {
  JournalRunSummary run;
  const auto i64 = [&](const char* key, std::int64_t fallback) {
    const JsonValue* f = v.find(key);
    return f == nullptr ? fallback : f->as_int();
  };
  run.planned_cost = i64("planned_cost", 0);
  run.effective_cost = i64("effective_cost", 0);
  run.actual_cost = i64("actual_cost", 0);
  run.finished_at = i64("finished_at", 0);
  run.total_stall = i64("total_stall", 0);
  run.total_backoff = i64("total_backoff", 0);
  run.attempts = static_cast<std::uint64_t>(i64("attempts", 0));
  run.retries = static_cast<std::uint64_t>(i64("retries", 0));
  run.transient_failures = static_cast<std::uint64_t>(i64("transient_failures", 0));
  run.degraded_transfers = static_cast<std::uint64_t>(i64("degraded_transfers", 0));
  run.loss_deletions = static_cast<std::uint64_t>(i64("loss_deletions", 0));
  run.replans = static_cast<std::uint64_t>(i64("replans", 0));
  if (const JsonValue* g = v.find("reached_goal")) run.reached_goal = g->as_bool();
  return run;
}

}  // namespace

void write_journal(std::ostream& out,
                   const std::vector<obs::JournalEvent>& events,
                   std::uint64_t dropped, const JournalRunSummary& run) {
  {
    JsonWriter j(out);
    j.begin_object();
    j.key("format").value(kJournalFormatName);
    j.key("version").value(kJournalFormatVersion);
    j.key("events").value(static_cast<std::uint64_t>(events.size()));
    j.key("dropped").value(dropped);
    j.key("run");
    write_run_summary(j, run);
    j.end_object();
  }
  out << '\n';
  for (const obs::JournalEvent& e : events) {
    JsonWriter j(out);
    j.begin_object();
    j.key("type").value(obs::to_string(e.type));
    j.key("tick").value(e.tick);
    j.key("wall_ns").value(e.wall_ns);
    if (e.server != -1) j.key("server").value(e.server);
    if (e.object != -1) j.key("object").value(e.object);
    if (e.source != -1) j.key("source").value(e.source);
    if (e.value != 0) j.key("value").value(e.value);
    if (e.extra != 0) j.key("extra").value(e.extra);
    if (!e.detail.empty()) j.key("detail").value(e.detail);
    j.end_object();
    out << '\n';
  }
}

void write_journal_file(const std::string& path,
                        const std::vector<obs::JournalEvent>& events,
                        std::uint64_t dropped, const JournalRunSummary& run) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open journal output file: " + path);
  write_journal(out, events, dropped, run);
}

JournalDoc read_journal(std::istream& in) {
  JournalDoc doc;
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("journal line " + std::to_string(lineno) + ": " +
                               e.what());
    }
    if (!saw_header) {
      const JsonValue* format = v.find("format");
      if (format == nullptr || format->as_string() != kJournalFormatName) {
        throw std::runtime_error("journal: missing rtsp-journal header line");
      }
      doc.version = static_cast<int>(v.at("version").as_int());
      if (doc.version != kJournalFormatVersion) {
        throw std::runtime_error("journal: unsupported version " +
                                 std::to_string(doc.version));
      }
      if (const JsonValue* d = v.find("dropped")) {
        doc.dropped = static_cast<std::uint64_t>(d->as_int());
      }
      if (const JsonValue* r = v.find("run")) doc.run = read_run_summary(*r);
      saw_header = true;
      continue;
    }
    obs::JournalEvent e;
    const std::string& type = v.at("type").as_string();
    if (!obs::journal_event_type_from_string(type, e.type)) {
      throw std::runtime_error("journal line " + std::to_string(lineno) +
                               ": unknown event type '" + type + "'");
    }
    e.tick = v.at("tick").as_int();
    e.wall_ns = static_cast<std::uint64_t>(v.at("wall_ns").as_int());
    const auto opt = [&](const char* key, std::int64_t fallback) {
      const JsonValue* f = v.find(key);
      return f == nullptr ? fallback : f->as_int();
    };
    e.server = opt("server", -1);
    e.object = opt("object", -1);
    e.source = opt("source", -1);
    e.value = opt("value", 0);
    e.extra = opt("extra", 0);
    if (const JsonValue* d = v.find("detail")) e.detail = d->as_string();
    doc.events.push_back(std::move(e));
  }
  if (!saw_header) throw std::runtime_error("journal: empty file");
  return doc;
}

JournalDoc read_journal_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open journal file: " + path);
  return read_journal(in);
}

}  // namespace rtsp
