// Plain-text schedule serialisation.
//
// Format, one action per line (0-based ids; '#' starts a comment):
//   T <server> <object> <source>    transfer; <source> is an id or "dummy"
//   D <server> <object>             deletion
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "core/schedule.hpp"

namespace rtsp {

void write_schedule(std::ostream& out, const Schedule& schedule);
std::string schedule_to_text(const Schedule& schedule);

/// Parses the format above; throws std::runtime_error with a line number on
/// malformed input.
Schedule read_schedule(std::istream& in);
Schedule schedule_from_text(const std::string& text);

}  // namespace rtsp
