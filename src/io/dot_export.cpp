#include "io/dot_export.hpp"

#include <sstream>
#include <vector>

namespace rtsp {

namespace {

/// Graphviz colours cycled per provenance stage; chosen to stay readable
/// when several improver stages share one drawing.
const char* const kStagePalette[] = {"black",     "blue",      "darkgreen",
                                     "darkorange", "purple",   "teal",
                                     "saddlebrown", "magenta"};
constexpr std::size_t kPaletteSize = sizeof kStagePalette / sizeof *kStagePalette;

}  // namespace

std::string topology_to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph topology {\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    os << "  S" << i << ";\n";
  }
  for (const auto& e : g.edges()) {
    os << "  S" << e.u << " -- S" << e.v << " [label=\"" << e.cost << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string transfer_graph_to_dot(const TransferGraph& g) {
  std::ostringstream os;
  os << "digraph transfers {\n  node [shape=circle];\n";
  // Highlight servers inside multi-node SCCs (deadlock suspects).
  std::vector<bool> in_cycle(g.num_servers(), false);
  for (const auto& scc : g.strongly_connected_components()) {
    if (scc.size() > 1) {
      for (ServerId s : scc) in_cycle[s] = true;
    }
  }
  for (std::size_t i = 0; i < g.num_servers(); ++i) {
    os << "  S" << i;
    if (in_cycle[i]) os << " [style=filled, fillcolor=lightcoral]";
    os << ";\n";
  }
  for (const auto& arc : g.arcs()) {
    os << "  S" << arc.from << " -> S" << arc.to << " [label=\"O" << arc.object
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string schedule_to_dot(const SystemModel& model, const Schedule& h,
                            const prov::Provenance* p) {
  if (p && p->entries.size() != h.size()) p = nullptr;  // stale sidecar
  std::ostringstream os;
  os << "digraph schedule {\n  node [shape=circle];\n";
  bool has_dummy = false;
  for (const Action& a : h) {
    if (a.is_dummy_transfer()) has_dummy = true;
  }
  for (ServerId s = 0; s < model.num_servers(); ++s) {
    os << "  S" << s << ";\n";
  }
  if (has_dummy) {
    os << "  dummy [shape=doublecircle, style=dashed, color=red, "
          "fontcolor=red];\n";
  }
  for (std::size_t u = 0; u < h.size(); ++u) {
    const Action& a = h[u];
    if (!a.is_transfer()) continue;
    const char* color = "black";
    bool dashed = false;
    std::string stage_name;
    if (p) {
      const prov::Entry& e = p->entries[u];
      color = kStagePalette[e.stage % kPaletteSize];
      stage_name = p->stages[e.stage].name;
    }
    if (a.is_dummy_transfer()) {
      color = "red";
      dashed = true;
      os << "  dummy -> S" << a.server;
    } else {
      os << "  S" << a.source << " -> S" << a.server;
    }
    os << " [label=\"O" << a.object;
    if (!stage_name.empty()) os << " [" << stage_name << "]";
    os << "\", color=" << color << ", fontcolor=" << color;
    if (dashed) os << ", style=dashed";
    os << "];\n";
  }
  if (p) {
    // Legend: one swatch per stage that actually emitted a drawn transfer.
    std::vector<bool> used(p->stages.size(), false);
    for (std::size_t u = 0; u < h.size(); ++u) {
      if (h[u].is_transfer() && !h[u].is_dummy_transfer()) {
        used[p->entries[u].stage] = true;
      }
    }
    os << "  subgraph cluster_legend {\n    label=\"stages\";\n"
          "    node [shape=plaintext];\n";
    for (std::size_t i = 0; i < p->stages.size(); ++i) {
      if (!used[i]) continue;
      os << "    legend" << i << " [label=\"" << p->stages[i].name
         << "\", fontcolor=" << kStagePalette[i % kPaletteSize] << "];\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtsp
