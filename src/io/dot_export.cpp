#include "io/dot_export.hpp"

#include <sstream>

namespace rtsp {

std::string topology_to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph topology {\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    os << "  S" << i << ";\n";
  }
  for (const auto& e : g.edges()) {
    os << "  S" << e.u << " -- S" << e.v << " [label=\"" << e.cost << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string transfer_graph_to_dot(const TransferGraph& g) {
  std::ostringstream os;
  os << "digraph transfers {\n  node [shape=circle];\n";
  // Highlight servers inside multi-node SCCs (deadlock suspects).
  std::vector<bool> in_cycle(g.num_servers(), false);
  for (const auto& scc : g.strongly_connected_components()) {
    if (scc.size() > 1) {
      for (ServerId s : scc) in_cycle[s] = true;
    }
  }
  for (std::size_t i = 0; i < g.num_servers(); ++i) {
    os << "  S" << i;
    if (in_cycle[i]) os << " [style=filled, fillcolor=lightcoral]";
    os << ";\n";
  }
  for (const auto& arc : g.arcs()) {
    os << "  S" << arc.from << " -> S" << arc.to << " [label=\"O" << arc.object
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtsp
