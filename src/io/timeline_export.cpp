#include "io/timeline_export.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/export.hpp"
#include "support/json.hpp"

namespace rtsp {

namespace {

constexpr int kVirtualPid = 2;  // wall-clock spans keep pid 1 (obs/export)

std::string source_label(std::int64_t source) {
  if (source == -2) return "dummy";
  return "s" + std::to_string(source);
}

/// Span or instant name for one journal event; empty = not rendered.
std::string event_name(const obs::JournalEvent& e) {
  using T = obs::JournalEventType;
  switch (e.type) {
    case T::AttemptSuccess:
      if (e.source == -1) return "delete k" + std::to_string(e.object);
      return "xfer k" + std::to_string(e.object) + " <- " +
             source_label(e.source);
    case T::TransientFault:
      return "FAULT k" + std::to_string(e.object) + " <- " +
             source_label(e.source);
    case T::OfflineOpen:
      return "offline";
    case T::Retry:
      return "retry k" + std::to_string(e.object);
    case T::ReplicaLoss:
      return "loss k" + std::to_string(e.object);
    case T::ReplanTrigger:
      return "replan (" + e.detail + ")";
    case T::Degradation:
      return "degrade k" + std::to_string(e.object);
    case T::Drain:
      return "drain";
    case T::AttemptStart:   // folded into the success/fault span
    case T::OfflineClose:   // folded into the open span (value = length)
      return {};
  }
  return {};
}

void common_fields(JsonWriter& j, const obs::JournalEvent& e,
                   const std::string& name) {
  j.key("name").value(name);
  j.key("pid").value(kVirtualPid);
  j.key("tid").value(e.server >= 0 ? e.server : std::int64_t{0});
  j.key("ts").value(e.tick);  // 1 cost tick == 1 µs
}

void append_args(JsonWriter& j, const obs::JournalEvent& e) {
  j.key("args").begin_object();
  j.key("type").value(obs::to_string(e.type));
  j.key("tick").value(e.tick);
  if (e.object != -1) j.key("object").value(e.object);
  if (e.source != -1) j.key("source").value(source_label(e.source));
  if (e.value != 0) j.key("value").value(e.value);
  if (e.extra != 0) j.key("extra").value(e.extra);
  if (!e.detail.empty()) j.key("detail").value(e.detail);
  j.end_object();
}

void append_thread_name(JsonWriter& j, int pid, std::int64_t tid,
                        const std::string& name) {
  j.begin_object();
  j.key("name").value("thread_name");
  j.key("ph").value("M");
  j.key("pid").value(pid);
  j.key("tid").value(tid);
  j.key("args").begin_object();
  j.key("name").value(name);
  j.end_object();
  j.end_object();
}

void append_process_name(JsonWriter& j, int pid, const std::string& name) {
  j.begin_object();
  j.key("name").value("process_name");
  j.key("ph").value("M");
  j.key("pid").value(pid);
  j.key("tid").value(std::int64_t{0});
  j.key("args").begin_object();
  j.key("name").value(name);
  j.end_object();
  j.end_object();
}

}  // namespace

void write_timeline(std::ostream& out, const JournalDoc& doc,
                    const std::vector<obs::TraceEvent>& wall_events) {
  JsonWriter j(out);
  j.begin_object();
  j.key("traceEvents").begin_array();

  append_process_name(j, kVirtualPid, "virtual clock (cost ticks)");
  if (!wall_events.empty()) append_process_name(j, 1, "wall clock");

  // One lane per destination server that appears in the journal.
  std::vector<std::int64_t> lanes;
  for (const obs::JournalEvent& e : doc.events) {
    if (e.server >= 0 &&
        std::find(lanes.begin(), lanes.end(), e.server) == lanes.end()) {
      lanes.push_back(e.server);
    }
  }
  std::sort(lanes.begin(), lanes.end());
  for (std::int64_t lane : lanes) {
    append_thread_name(j, kVirtualPid, lane, "server " + std::to_string(lane));
  }

  using T = obs::JournalEventType;
  for (const obs::JournalEvent& e : doc.events) {
    const std::string name = event_name(e);
    if (name.empty()) continue;
    const bool is_span = e.type == T::AttemptSuccess ||
                         e.type == T::TransientFault || e.type == T::OfflineOpen;
    j.begin_object();
    common_fields(j, e, name);
    if (is_span) {
      j.key("ph").value("X");
      j.key("dur").value(e.value);  // cost (or stall length) in ticks
    } else {
      j.key("ph").value("i");
      j.key("s").value(e.server >= 0 ? "t" : "p");
    }
    append_args(j, e);
    j.end_object();
  }

  for (const obs::TraceEvent& e : wall_events) {
    obs::append_chrome_trace_event(j, e, 1);
  }

  j.end_array();
  j.end_object();
  out << '\n';
}

void write_timeline_file(const std::string& path, const JournalDoc& doc,
                         const std::vector<obs::TraceEvent>& wall_events) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open timeline output file: " + path);
  write_timeline(out, doc, wall_events);
}

}  // namespace rtsp
