// JSON serialisation of exec::FaultSpec, the input of `rtsp execute`.
// One self-describing document:
//   {"version": 1, "seed": 42, "transient_failure_rate": 0.05,
//    "offline": [{"server": 3, "begin": 0, "end": 500}],
//    "degraded_links": [{"dest": 1, "source": 2, "factor": 2.5,
//                        "begin": 0, "end": 1000}],
//    "losses": [{"server": 0, "object": 5, "at": 250}]}
// Empty lists are omitted on write and default on read.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "exec/fault_model.hpp"

namespace rtsp {

void write_fault_spec(std::ostream& out, const exec::FaultSpec& spec);
std::string fault_spec_to_json(const exec::FaultSpec& spec);

/// Parses the format above and runs exec::validate_spec on the result;
/// throws std::runtime_error on malformed input or an unsupported version,
/// std::invalid_argument on a structurally invalid spec.
exec::FaultSpec read_fault_spec(std::istream& in);
exec::FaultSpec fault_spec_from_json(const std::string& text);

}  // namespace rtsp
