// Weighted undirected graph used to model the server network.
//
// The paper generates its topology with BRITE (Barabasi-Albert, connectivity
// 1, i.e. a tree) and derives server-to-server costs as shortest-path sums of
// integer link costs. This module provides the graph container; generators
// and shortest paths live in sibling headers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace rtsp {

/// Per-unit link cost. Integer so that all schedule costs are exact.
using LinkCost = std::int64_t;

/// Undirected weighted graph with an adjacency-list representation.
class Graph {
 public:
  struct Edge {
    std::size_t u;
    std::size_t v;
    LinkCost cost;
  };
  struct Neighbor {
    std::size_t node;
    LinkCost cost;
  };

  explicit Graph(std::size_t num_nodes = 0) : adjacency_(num_nodes) {}

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Appends an isolated node and returns its index.
  std::size_t add_node();

  /// Adds an undirected edge; cost must be positive. Parallel edges are
  /// permitted (shortest-path code simply ignores the worse one).
  void add_edge(std::size_t u, std::size_t v, LinkCost cost);

  const std::vector<Neighbor>& neighbors(std::size_t u) const {
    RTSP_REQUIRE(u < num_nodes());
    return adjacency_[u];
  }
  const std::vector<Edge>& edges() const { return edges_; }

  std::size_t degree(std::size_t u) const { return neighbors(u).size(); }

  /// True if every node can reach every other (empty graphs are connected).
  bool is_connected() const;

  /// True if connected with exactly n-1 edges.
  bool is_tree() const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace rtsp
