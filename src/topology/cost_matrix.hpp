// Dense symmetric matrix of per-unit server-to-server communication costs.
//
// This is the l_ij of the paper: fixed, symmetric, zero on the diagonal.
// The dummy server's uniform cost a*(max l_ij + 1) is computed here but the
// dummy itself is represented implicitly by SystemModel, not as a row.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/graph.hpp"

namespace rtsp {

class CostMatrix {
 public:
  CostMatrix() = default;

  /// n x n matrix with all off-diagonal entries `fill`.
  CostMatrix(std::size_t n, LinkCost fill);

  /// Builds the matrix of shortest-path costs of `g`; requires connectivity.
  static CostMatrix from_graph_shortest_paths(const Graph& g);

  /// Builds directly from explicit entries (must be square, symmetric,
  /// zero diagonal, non-negative).
  static CostMatrix from_rows(std::vector<std::vector<LinkCost>> rows);

  /// Same validation as from_rows, but adopts an n*n row-major buffer
  /// without copying — the binary instance reader's bulk path.
  static CostMatrix from_flat(std::size_t n, std::vector<LinkCost> data);

  std::size_t size() const { return n_; }

  LinkCost at(std::size_t i, std::size_t j) const {
    RTSP_REQUIRE(i < n_ && j < n_);
    return data_[i * n_ + j];
  }

  /// Sets l_ij and l_ji; i != j, cost >= 0.
  void set(std::size_t i, std::size_t j, LinkCost cost);

  /// Largest off-diagonal entry (0 for matrices smaller than 2x2).
  LinkCost max_cost() const;

  /// The paper's dummy-transfer cost: a * (max l_ij + 1), rounded to
  /// integer cost units (a = 1 in all the paper's experiments).
  LinkCost dummy_cost(double a = 1.0) const;

  /// Servers sorted by increasing cost from i (excluding i itself), ties
  /// broken by index — the query order used for nearest-replicator lookups.
  std::vector<std::size_t> sorted_neighbors(std::size_t i) const;

 private:
  std::size_t n_ = 0;
  std::vector<LinkCost> data_;
};

}  // namespace rtsp
