#include "topology/shortest_paths.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace rtsp {

namespace {
using QueueItem = std::pair<LinkCost, std::size_t>;  // (distance, node)
}

ShortestPathTree dijkstra_tree(const Graph& g, std::size_t source) {
  RTSP_REQUIRE(source < g.num_nodes());
  const std::size_t n = g.num_nodes();
  ShortestPathTree out;
  out.dist.assign(n, kUnreachable);
  out.pred.assign(n, static_cast<std::size_t>(-1));
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  out.dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != out.dist[u]) continue;  // stale entry
    for (const auto& nb : g.neighbors(u)) {
      const LinkCost nd = d + nb.cost;
      if (nd < out.dist[nb.node]) {
        out.dist[nb.node] = nd;
        out.pred[nb.node] = u;
        pq.emplace(nd, nb.node);
      }
    }
  }
  return out;
}

std::vector<LinkCost> dijkstra(const Graph& g, std::size_t source) {
  return dijkstra_tree(g, source).dist;
}

std::vector<std::size_t> extract_path(const ShortestPathTree& t, std::size_t source,
                                      std::size_t target) {
  RTSP_REQUIRE(source < t.dist.size() && target < t.dist.size());
  if (t.dist[target] == kUnreachable) return {};
  std::vector<std::size_t> path;
  for (std::size_t v = target; v != source; v = t.pred[v]) {
    path.push_back(v);
    RTSP_REQUIRE(v != static_cast<std::size_t>(-1));
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<LinkCost>> all_pairs_shortest_paths(const Graph& g) {
  std::vector<std::vector<LinkCost>> d;
  d.reserve(g.num_nodes());
  for (std::size_t s = 0; s < g.num_nodes(); ++s) d.push_back(dijkstra(g, s));
  return d;
}

}  // namespace rtsp
