#include "topology/generators.hpp"

#include <cmath>
#include <functional>
#include <vector>

namespace rtsp {

namespace {
LinkCost draw_cost(const LinkCostRange& r, Rng& rng) {
  RTSP_REQUIRE(r.lo > 0 && r.lo <= r.hi);
  return rng.uniform_int(r.lo, r.hi);
}
}  // namespace

Graph barabasi_albert_tree(std::size_t n, LinkCostRange costs, Rng& rng) {
  RTSP_REQUIRE(n >= 1);
  Graph g(n);
  if (n == 1) return g;
  g.add_edge(0, 1, draw_cost(costs, rng));
  // endpoint_bag holds each node once per incident edge, so sampling a
  // uniform element of it is exactly degree-proportional sampling.
  std::vector<std::size_t> endpoint_bag = {0, 1};
  for (std::size_t v = 2; v < n; ++v) {
    const std::size_t target = endpoint_bag[rng.below(endpoint_bag.size())];
    g.add_edge(v, target, draw_cost(costs, rng));
    endpoint_bag.push_back(v);
    endpoint_bag.push_back(target);
  }
  return g;
}

Graph uniform_random_tree(std::size_t n, LinkCostRange costs, Rng& rng) {
  RTSP_REQUIRE(n >= 1);
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    const std::size_t target = rng.below(v);
    g.add_edge(v, target, draw_cost(costs, rng));
  }
  return g;
}

Graph erdos_renyi_connected(std::size_t n, double p, LinkCostRange costs, Rng& rng) {
  RTSP_REQUIRE(n >= 1);
  RTSP_REQUIRE(p >= 0.0 && p <= 1.0);
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v, draw_cost(costs, rng));
    }
  }
  // Connectivity repair: union-find the components, then wire every
  // secondary component root to a random node of component 0's tree.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& e : g.edges()) parent[find(e.u)] = find(e.v);
  for (std::size_t v = 1; v < n; ++v) {
    if (find(v) != find(0)) {
      const std::size_t anchor = rng.below(v);
      g.add_edge(v, anchor, draw_cost(costs, rng));
      parent[find(v)] = find(anchor);
    }
  }
  return g;
}

Graph waxman_connected(std::size_t n, WaxmanParams params, LinkCostRange costs,
                       Rng& rng) {
  RTSP_REQUIRE(n >= 1);
  RTSP_REQUIRE(params.alpha > 0.0 && params.alpha <= 1.0);
  RTSP_REQUIRE(params.beta > 0.0 && params.beta <= 1.0);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform01();
    ys[i] = rng.uniform01();
  }
  const double max_dist = std::sqrt(2.0);
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      const double dx = xs[u] - xs[v];
      const double dy = ys[u] - ys[v];
      const double d = std::sqrt(dx * dx + dy * dy);
      const double p = params.alpha * std::exp(-d / (params.beta * max_dist));
      if (rng.chance(p)) g.add_edge(u, v, draw_cost(costs, rng));
    }
  }
  // Same union-find connectivity repair as erdos_renyi_connected.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& e : g.edges()) parent[find(e.u)] = find(e.v);
  for (std::size_t v = 1; v < n; ++v) {
    if (find(v) != find(0)) {
      const std::size_t anchor = rng.below(v);
      g.add_edge(v, anchor, draw_cost(costs, rng));
      parent[find(v)] = find(anchor);
    }
  }
  return g;
}

Graph ring_graph(std::size_t n, LinkCost cost) {
  RTSP_REQUIRE(n >= 3);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, cost);
  return g;
}

Graph star_graph(std::size_t n, LinkCost cost) {
  RTSP_REQUIRE(n >= 2);
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, i, cost);
  return g;
}

Graph line_graph(std::size_t n, LinkCost cost) {
  RTSP_REQUIRE(n >= 1);
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, cost);
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols, LinkCost cost) {
  RTSP_REQUIRE(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), cost);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), cost);
    }
  }
  return g;
}

Graph complete_graph(std::size_t n, LinkCost cost) {
  RTSP_REQUIRE(n >= 1);
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) g.add_edge(u, v, cost);
  }
  return g;
}

}  // namespace rtsp
