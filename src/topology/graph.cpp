#include "topology/graph.hpp"

#include <vector>

namespace rtsp {

std::size_t Graph::add_node() {
  adjacency_.emplace_back();
  return adjacency_.size() - 1;
}

void Graph::add_edge(std::size_t u, std::size_t v, LinkCost cost) {
  RTSP_REQUIRE_MSG(u < num_nodes() && v < num_nodes(),
                   "edge endpoints " << u << "," << v << " out of range");
  RTSP_REQUIRE(u != v);
  RTSP_REQUIRE_MSG(cost > 0, "link cost must be positive, got " << cost);
  adjacency_[u].push_back({v, cost});
  adjacency_[v].push_back({u, cost});
  edges_.push_back({u, v, cost});
}

bool Graph::is_connected() const {
  const std::size_t n = num_nodes();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const auto& nb : adjacency_[u]) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        ++visited;
        stack.push_back(nb.node);
      }
    }
  }
  return visited == n;
}

bool Graph::is_tree() const {
  return num_nodes() > 0 && num_edges() == num_nodes() - 1 && is_connected();
}

}  // namespace rtsp
