// Single-source and all-pairs shortest paths over Graph.
#pragma once

#include <limits>
#include <vector>

#include "topology/graph.hpp"

namespace rtsp {

/// Distance value reported for unreachable nodes.
inline constexpr LinkCost kUnreachable = std::numeric_limits<LinkCost>::max();

/// Dijkstra from `source`; returns per-node distances (kUnreachable where
/// disconnected). All edge costs must be positive (enforced by Graph).
std::vector<LinkCost> dijkstra(const Graph& g, std::size_t source);

/// Dijkstra that also returns the predecessor array for path extraction
/// (predecessor of the source and of unreachable nodes is SIZE_MAX).
struct ShortestPathTree {
  std::vector<LinkCost> dist;
  std::vector<std::size_t> pred;
};
ShortestPathTree dijkstra_tree(const Graph& g, std::size_t source);

/// Reconstructs the node sequence source..target from a ShortestPathTree;
/// empty if target is unreachable.
std::vector<std::size_t> extract_path(const ShortestPathTree& t, std::size_t source,
                                      std::size_t target);

/// All-pairs shortest path distances (n Dijkstra runs; the graphs here are
/// small and sparse, so this beats Floyd-Warshall in practice).
std::vector<std::vector<LinkCost>> all_pairs_shortest_paths(const Graph& g);

}  // namespace rtsp
