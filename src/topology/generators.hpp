// Random network generators.
//
// barabasi_albert_tree reproduces the paper's BRITE configuration: nodes join
// one at a time and attach to an existing node chosen with probability
// proportional to its current degree (preferential attachment, connectivity
// 1), which yields the power-law-ish trees of Barabasi & Albert. Link costs
// are drawn uniformly from an integer range (the paper uses [1, 10]).
#pragma once

#include <cstddef>

#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace rtsp {

/// Inclusive integer range of per-link costs.
struct LinkCostRange {
  LinkCost lo = 1;
  LinkCost hi = 10;
};

/// Preferential-attachment tree with n >= 1 nodes (the paper's topology).
Graph barabasi_albert_tree(std::size_t n, LinkCostRange costs, Rng& rng);

/// Uniform random attachment tree (each newcomer picks an existing node
/// uniformly). Used as an ablation topology.
Graph uniform_random_tree(std::size_t n, LinkCostRange costs, Rng& rng);

/// G(n, p) with random costs, repaired to connectivity by linking each
/// stranded component to a random node of the giant component.
Graph erdos_renyi_connected(std::size_t n, double p, LinkCostRange costs, Rng& rng);

/// Waxman random graph — BRITE's other classic model: nodes are placed
/// uniformly in the unit square and each pair is linked with probability
/// alpha * exp(-d / (beta * L)) where d is their Euclidean distance and L
/// the maximum possible distance. Repaired to connectivity like
/// erdos_renyi_connected. Used by the topology-sensitivity ablation.
struct WaxmanParams {
  double alpha = 0.4;  ///< overall link density, in (0, 1]
  double beta = 0.3;   ///< decay length, in (0, 1]
};
Graph waxman_connected(std::size_t n, WaxmanParams params, LinkCostRange costs,
                       Rng& rng);

/// Deterministic shapes (fixed cost per link) for tests and examples.
Graph ring_graph(std::size_t n, LinkCost cost);
Graph star_graph(std::size_t n, LinkCost cost);   // node 0 is the hub
Graph line_graph(std::size_t n, LinkCost cost);
Graph grid_graph(std::size_t rows, std::size_t cols, LinkCost cost);
Graph complete_graph(std::size_t n, LinkCost cost);

}  // namespace rtsp
