#include "topology/cost_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "topology/shortest_paths.hpp"

namespace rtsp {

CostMatrix::CostMatrix(std::size_t n, LinkCost fill) : n_(n), data_(n * n, fill) {
  RTSP_REQUIRE(fill >= 0);
  for (std::size_t i = 0; i < n_; ++i) data_[i * n_ + i] = 0;
}

CostMatrix CostMatrix::from_graph_shortest_paths(const Graph& g) {
  RTSP_REQUIRE_MSG(g.is_connected(), "cost matrix requires a connected graph");
  CostMatrix m(g.num_nodes(), 0);
  const auto apsp = all_pairs_shortest_paths(g);
  for (std::size_t i = 0; i < m.n_; ++i) {
    for (std::size_t j = 0; j < m.n_; ++j) m.data_[i * m.n_ + j] = apsp[i][j];
  }
  return m;
}

CostMatrix CostMatrix::from_rows(std::vector<std::vector<LinkCost>> rows) {
  const std::size_t n = rows.size();
  CostMatrix m(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    RTSP_REQUIRE_MSG(rows[i].size() == n, "cost matrix must be square");
    for (std::size_t j = 0; j < n; ++j) {
      RTSP_REQUIRE_MSG(rows[i][j] == rows[j][i], "cost matrix must be symmetric");
      RTSP_REQUIRE(rows[i][j] >= 0);
      if (i == j) RTSP_REQUIRE_MSG(rows[i][j] == 0, "diagonal must be zero");
      m.data_[i * n + j] = rows[i][j];
    }
  }
  return m;
}

CostMatrix CostMatrix::from_flat(std::size_t n, std::vector<LinkCost> data) {
  RTSP_REQUIRE_MSG(data.size() == n * n, "cost matrix must be square");
  CostMatrix m;
  m.n_ = n;
  m.data_ = std::move(data);
  for (std::size_t i = 0; i < n; ++i) {
    RTSP_REQUIRE_MSG(m.data_[i * n + i] == 0, "diagonal must be zero");
  }
  for (const LinkCost v : m.data_) RTSP_REQUIRE(v >= 0);
  // Symmetry check in 64x64 tiles: comparing row-major data_[i][j] against
  // data_[j][i] strides the whole matrix per row if done naively; tiling
  // keeps both the block and its transpose resident in cache.
  constexpr std::size_t kTile = 64;
  for (std::size_t bi = 0; bi < n; bi += kTile) {
    for (std::size_t bj = bi; bj < n; bj += kTile) {
      const std::size_t ei = std::min(bi + kTile, n);
      const std::size_t ej = std::min(bj + kTile, n);
      for (std::size_t i = bi; i < ei; ++i) {
        for (std::size_t j = std::max(bj, i + 1); j < ej; ++j) {
          RTSP_REQUIRE_MSG(m.data_[i * n + j] == m.data_[j * n + i],
                           "cost matrix must be symmetric");
        }
      }
    }
  }
  return m;
}

void CostMatrix::set(std::size_t i, std::size_t j, LinkCost cost) {
  RTSP_REQUIRE(i < n_ && j < n_ && i != j);
  RTSP_REQUIRE(cost >= 0);
  data_[i * n_ + j] = cost;
  data_[j * n_ + i] = cost;
}

LinkCost CostMatrix::max_cost() const {
  LinkCost m = 0;
  for (LinkCost c : data_) m = std::max(m, c);
  return m;
}

LinkCost CostMatrix::dummy_cost(double a) const {
  RTSP_REQUIRE(a > 0.0);
  const double raw = a * static_cast<double>(max_cost() + 1);
  return static_cast<LinkCost>(std::llround(std::ceil(raw)));
}

std::vector<std::size_t> CostMatrix::sorted_neighbors(std::size_t i) const {
  RTSP_REQUIRE(i < n_);
  std::vector<std::size_t> order;
  order.reserve(n_ > 0 ? n_ - 1 : 0);
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i) order.push_back(j);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const LinkCost ca = at(i, a);
    const LinkCost cb = at(i, b);
    return ca != cb ? ca < cb : a < b;
  });
  return order;
}

}  // namespace rtsp
