#include "core/transfer_graph.hpp"

#include <algorithm>

namespace rtsp {

TransferGraph::TransferGraph(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new)
    : num_servers_(model.num_servers()), model_(&model), out_(model.num_servers()) {
  const PlacementDelta delta(x_old, x_new);
  for (const Replica& r : delta.outstanding()) {
    x_old.for_each_replicator(r.object, [&](ServerId j) {
      if (j == r.server) return;
      out_[j].push_back(arcs_.size());
      arcs_.push_back({j, r.server, r.object});
    });
  }
}

std::vector<TransferGraph::Arc> TransferGraph::arcs_from(ServerId i) const {
  RTSP_REQUIRE(i < num_servers_);
  std::vector<Arc> out;
  out.reserve(out_[i].size());
  for (std::size_t a : out_[i]) out.push_back(arcs_[a]);
  return out;
}

std::vector<std::vector<ServerId>> TransferGraph::strongly_connected_components() const {
  // Iterative Tarjan (explicit stack) to stay safe on deep graphs.
  const std::size_t n = num_servers_;
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<ServerId>> sccs;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t node;
    std::size_t arc_cursor;
  };

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const std::size_t u = fr.node;
      if (fr.arc_cursor < out_[u].size()) {
        const std::size_t arc = out_[u][fr.arc_cursor++];
        const std::size_t v = arcs_[arc].to;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          std::vector<ServerId> scc;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(static_cast<ServerId>(w));
            if (w == u) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
        frames.pop_back();
        if (!frames.empty()) {
          const std::size_t parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return sccs;
}

bool TransferGraph::has_cycle() const {
  for (const auto& scc : strongly_connected_components()) {
    if (scc.size() > 1) return true;
  }
  return false;
}

bool TransferGraph::deadlock_risk(const ReplicationMatrix& x_old) const {
  const auto sccs = strongly_connected_components();
  for (const auto& scc : sccs) {
    if (scc.size() <= 1) continue;
    bool all_tight = true;
    for (ServerId i : scc) {
      const Size free = model_->capacity(i) - x_old.used_storage(i, model_->objects());
      // The smallest object this server must receive along an in-SCC arc.
      Size smallest_needed = 0;
      bool receives = false;
      for (const Arc& a : arcs_) {
        if (a.to != i) continue;
        if (!std::binary_search(scc.begin(), scc.end(), a.from)) continue;
        const Size sz = model_->object_size(a.object);
        smallest_needed = receives ? std::min(smallest_needed, sz) : sz;
        receives = true;
      }
      if (!receives || free >= smallest_needed) {
        all_tight = false;
        break;
      }
    }
    if (all_tight) return true;
  }
  return false;
}

}  // namespace rtsp
