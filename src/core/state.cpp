#include "core/state.hpp"

namespace rtsp {

const char* to_string(ActionError e) {
  switch (e) {
    case ActionError::None: return "ok";
    case ActionError::SourceNotReplicator: return "source is not a replicator";
    case ActionError::DestAlreadyReplicator: return "destination already replicates object";
    case ActionError::InsufficientSpace: return "insufficient free space at destination";
    case ActionError::SelfTransfer: return "transfer source equals destination";
    case ActionError::NotReplicator: return "server does not replicate object";
  }
  return "unknown";
}

ExecutionState::ExecutionState(const SystemModel& model, ReplicationMatrix x)
    : model_(&model), x_(std::move(x)) {
  RTSP_REQUIRE(x_.num_servers() == model.num_servers());
  RTSP_REQUIRE(x_.num_objects() == model.num_objects());
  // One pass over the replicas present (O(total) for either store) instead
  // of per-object column scans, which were O(M*N) on the dense store.
  used_.assign(model.num_servers(), 0);
  replica_count_.assign(model.num_objects(), 0);
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    x_.for_each_object(i, [&](ObjectId k) {
      used_[i] += model.object_size(k);
      ++replica_count_[k];
    });
  }
}

ActionError ExecutionState::classify(const Action& a) const {
  RTSP_REQUIRE(a.server < model_->num_servers());
  RTSP_REQUIRE(a.object < model_->num_objects());
  if (a.is_transfer()) {
    if (!is_dummy(a.source)) {
      RTSP_REQUIRE(a.source < model_->num_servers());
      if (a.source == a.server) return ActionError::SelfTransfer;
      if (!x_.test(a.source, a.object)) return ActionError::SourceNotReplicator;
    }
    if (x_.test(a.server, a.object)) return ActionError::DestAlreadyReplicator;
    if (free_space(a.server) < model_->object_size(a.object)) {
      return ActionError::InsufficientSpace;
    }
    return ActionError::None;
  }
  return x_.test(a.server, a.object) ? ActionError::None : ActionError::NotReplicator;
}

void ExecutionState::apply(const Action& a) {
  const ActionError e = classify(a);
  RTSP_REQUIRE_MSG(e == ActionError::None,
                   "invalid action " << a.to_string() << ": " << to_string(e));
  if (a.is_transfer()) {
    x_.set(a.server, a.object);
    used_[a.server] += model_->object_size(a.object);
    ++replica_count_[a.object];
  } else {
    x_.clear(a.server, a.object);
    used_[a.server] -= model_->object_size(a.object);
    --replica_count_[a.object];
  }
}

ActionError ExecutionState::try_apply(const Action& a) {
  const ActionError e = classify(a);
  if (e == ActionError::None) apply(a);
  return e;
}

void ExecutionState::apply_lenient(const Action& a) {
  RTSP_REQUIRE(a.server < model_->num_servers());
  RTSP_REQUIRE(a.object < model_->num_objects());
  if (a.is_transfer()) {
    if (!x_.test(a.server, a.object)) {
      x_.set(a.server, a.object);
      used_[a.server] += model_->object_size(a.object);
      ++replica_count_[a.object];
    }
  } else {
    if (x_.test(a.server, a.object)) {
      x_.clear(a.server, a.object);
      used_[a.server] -= model_->object_size(a.object);
      --replica_count_[a.object];
    }
  }
}

}  // namespace rtsp
