// Catalogs of object sizes and server capacities.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "support/assert.hpp"

namespace rtsp {

/// Immutable list of object sizes, indexed by ObjectId.
class ObjectCatalog {
 public:
  ObjectCatalog() = default;
  explicit ObjectCatalog(std::vector<Size> sizes);

  /// All objects share one size (the paper's equal-size experiments).
  static ObjectCatalog uniform(std::size_t count, Size size);

  std::size_t count() const { return sizes_.size(); }
  Size size_of(ObjectId k) const {
    RTSP_REQUIRE_MSG(k < sizes_.size(), "object " << k << " out of range");
    return sizes_[k];
  }
  Size total_size() const { return total_; }
  const std::vector<Size>& sizes() const { return sizes_; }

 private:
  std::vector<Size> sizes_;
  Size total_ = 0;
};

/// Mutable list of server storage capacities, indexed by ServerId.
class ServerCatalog {
 public:
  ServerCatalog() = default;
  explicit ServerCatalog(std::vector<Size> capacities);

  /// All servers share one capacity.
  static ServerCatalog uniform(std::size_t count, Size capacity);

  std::size_t count() const { return capacities_.size(); }
  Size capacity(ServerId i) const {
    RTSP_REQUIRE_MSG(i < capacities_.size(), "server " << i << " out of range");
    return capacities_[i];
  }
  /// Grows server i's capacity by `extra` (>= 0); used by the paper's
  /// extra-capacity experiment (Figs. 8-9).
  void add_capacity(ServerId i, Size extra);

  const std::vector<Size>& capacities() const { return capacities_; }

 private:
  std::vector<Size> capacities_;
};

}  // namespace rtsp
