// Full schedule validation against a pair (X_old, X_new), with diagnostics.
//
// A schedule is valid w.r.t. (X_old, X_new) iff every action is valid in the
// state produced by its predecessors and the final state equals X_new
// (Sec. 3.2). All improvement heuristics gate their rewrites on this check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/state.hpp"

namespace rtsp {

/// Machine-readable classification of a validation failure, so callers (the
/// execution engine, tests) can branch without string matching. Action codes
/// mirror ActionError; the final-state codes distinguish the two directions
/// of an end-state mismatch.
enum class ValidationCode : std::uint8_t {
  ActionSourceNotReplicator,
  ActionDestAlreadyReplicator,
  ActionInsufficientSpace,
  ActionSelfTransfer,
  ActionNotReplicator,
  FinalStateMissingReplica,  ///< X_new wants a replica the run did not produce
  FinalStateExtraReplica,    ///< the run left a replica X_new does not want
};

/// Stable lowercase token for a code, e.g. "final_state_missing_replica".
const char* to_string(ValidationCode c);

/// The action-level code for an ActionError (error must not be None).
ValidationCode code_for(ActionError error);

struct ValidationIssue {
  std::size_t index;    ///< offending action position, or schedule size for end-state issues
  ActionError error;    ///< ActionError::None for end-state mismatches
  ValidationCode code;  ///< machine-readable classification
  std::string message;
};

struct ValidationResult {
  bool valid = false;
  std::vector<ValidationIssue> issues;

  explicit operator bool() const { return valid; }
  std::string to_string() const;
};

class Validator {
 public:
  /// stop_at_first: report only the first issue (the default — cheaper and
  /// what heuristics need); otherwise actions that fail are skipped and the
  /// simulation continues, accumulating every issue.
  static ValidationResult validate(const SystemModel& model,
                                   const ReplicationMatrix& x_old,
                                   const ReplicationMatrix& x_new,
                                   const Schedule& schedule,
                                   bool stop_at_first = true);

  /// Convenience: just the boolean.
  static bool is_valid(const SystemModel& model, const ReplicationMatrix& x_old,
                       const ReplicationMatrix& x_new, const Schedule& schedule) {
    return validate(model, x_old, x_new, schedule).valid;
  }
};

}  // namespace rtsp
