// Full schedule validation against a pair (X_old, X_new), with diagnostics.
//
// A schedule is valid w.r.t. (X_old, X_new) iff every action is valid in the
// state produced by its predecessors and the final state equals X_new
// (Sec. 3.2). All improvement heuristics gate their rewrites on this check.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/state.hpp"

namespace rtsp {

struct ValidationIssue {
  std::size_t index;    ///< offending action position, or schedule size for end-state issues
  ActionError error;    ///< ActionError::None for end-state mismatches
  std::string message;
};

struct ValidationResult {
  bool valid = false;
  std::vector<ValidationIssue> issues;

  explicit operator bool() const { return valid; }
  std::string to_string() const;
};

class Validator {
 public:
  /// stop_at_first: report only the first issue (the default — cheaper and
  /// what heuristics need); otherwise actions that fail are skipped and the
  /// simulation continues, accumulating every issue.
  static ValidationResult validate(const SystemModel& model,
                                   const ReplicationMatrix& x_old,
                                   const ReplicationMatrix& x_new,
                                   const Schedule& schedule,
                                   bool stop_at_first = true);

  /// Convenience: just the boolean.
  static bool is_valid(const SystemModel& model, const ReplicationMatrix& x_old,
                       const ReplicationMatrix& x_new, const Schedule& schedule) {
    return validate(model, x_old, x_new, schedule).valid;
  }
};

}  // namespace rtsp
