// ExecutionState: the replication matrix X^u plus derived bookkeeping
// (per-server used storage, per-object replica counts) that evolves as a
// schedule executes. This is the stepwise semantics of Sec. 3.2.
#pragma once

#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/replication.hpp"
#include "core/system.hpp"

namespace rtsp {

/// Why an action is invalid in a given state (Sec. 3.2's validity rules).
enum class ActionError {
  None,
  SourceNotReplicator,   ///< transfer: X_jk = 0 at the source
  DestAlreadyReplicator, ///< transfer: X_ik = 1 already
  InsufficientSpace,     ///< transfer: free space at i < s(O_k)
  SelfTransfer,          ///< transfer: i == j
  NotReplicator,         ///< delete: X_ik = 0
};

const char* to_string(ActionError e);

class ExecutionState {
 public:
  /// Starts from placement `x`; model must outlive the state.
  ExecutionState(const SystemModel& model, ReplicationMatrix x);

  const SystemModel& model() const { return *model_; }
  const ReplicationMatrix& placement() const { return x_; }

  Size used(ServerId i) const { return used_[i]; }
  Size free_space(ServerId i) const { return model_->capacity(i) - used_[i]; }
  std::size_t replica_count(ObjectId k) const { return replica_count_[k]; }
  bool holds(ServerId i, ObjectId k) const { return x_.test(i, k); }

  /// Validity of `a` in the current state (ActionError::None when valid).
  /// The dummy server is always a valid source.
  ActionError classify(const Action& a) const;
  bool can_apply(const Action& a) const { return classify(a) == ActionError::None; }

  /// Applies a valid action; RTSP_REQUIREs validity.
  void apply(const Action& a);

  /// Applies if valid; returns the classification either way.
  ActionError try_apply(const Action& a);

  /// Best-effort application that ignores validity: transfers set the bit if
  /// absent, deletions clear it if present; occupancy follows the actual bit
  /// flips. Used by schedule-surgery code to approximate states of
  /// transiently invalid schedules; final acceptance always goes through the
  /// Validator.
  void apply_lenient(const Action& a);

 private:
  const SystemModel* model_;
  ReplicationMatrix x_;
  std::vector<Size> used_;
  std::vector<std::size_t> replica_count_;
};

}  // namespace rtsp
