// Incremental evaluation engine for schedule improvers.
//
// The improvement heuristics (H1, H2, OP1) generate thousands of candidate
// schedules per run, each differing from the current schedule only inside a
// small edit window, yet the naive acceptance test pays a full
// Validator::validate replay plus a full schedule_cost re-sum per candidate
// — O(L + M*N) work for an O(window) edit. This engine makes the acceptance
// test proportional to the edit:
//
//   * PrefixStateCache checkpoints the ExecutionState of the current (base)
//     schedule every ~sqrt(L) actions, so the state just before any position
//     is reachable by replaying at most one checkpoint interval;
//   * candidate cost and dummy-transfer counts are computed by delta
//     accounting over the diff window (action costs are position-independent,
//     so actions outside the window cancel exactly);
//   * candidate validation replays only from the checkpoint preceding the
//     diff window and early-exits as soon as the candidate's state
//     re-converges with the base execution at an aligned suffix position:
//     identical states + identical remaining actions imply the candidate's
//     suffix replays exactly like the (valid) base's, ending in X_new.
//
// All query methods are const and thread-safe against concurrent queries
// when given distinct Scratch objects; adopt()/reset() require exclusive
// access. See DESIGN.md §8 for the convergence argument.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/schedule.hpp"
#include "core/state.hpp"
#include "core/work_meter.hpp"

namespace rtsp {

/// Obs counter names recorded by the engine (obs/obs.hpp), exported so tools
/// and tests can read them out of a MetricsSnapshot without re-spelling the
/// strings. All are totals since the last MetricsRegistry::reset().
inline constexpr char kObsIncrCandidates[] = "incr.candidates_screened";
inline constexpr char kObsIncrValidations[] = "incr.validations";
inline constexpr char kObsIncrCheckpointCopies[] = "incr.checkpoint_copies";
inline constexpr char kObsIncrReplayedActions[] = "incr.replayed_actions";
inline constexpr char kObsIncrConvergedEarly[] = "incr.converged_early";
inline constexpr char kObsIncrFullReplays[] = "incr.full_replays";
inline constexpr char kObsIncrAdopts[] = "incr.adopts";

/// Sparse ExecutionState snapshots of a schedule's execution, spaced every
/// `spacing` actions: checkpoint j is the state after the first j*spacing
/// actions. Replay between checkpoints uses lenient semantics, which on a
/// valid schedule coincides with strict execution.
class PrefixStateCache {
 public:
  /// Builds checkpoints for `base` starting from `x_old`. spacing 0 selects
  /// ~sqrt(base.size()).
  PrefixStateCache(const SystemModel& model, const ReplicationMatrix& x_old,
                   const Schedule& base, std::size_t spacing = 0);

  std::size_t spacing() const { return spacing_; }
  std::size_t num_checkpoints() const { return checkpoints_.size(); }

  /// Writes the state after the first `pos` actions of `base` into `out`
  /// (assignment re-uses out's buffers). O(spacing) replay worst case.
  void state_before(const Schedule& base, std::size_t pos, ExecutionState& out) const;

  /// Nearest checkpoint at or before `pos`: copies it into `out` and returns
  /// its position. Callers replay [returned, pos) themselves when they want
  /// to interleave work with the replay.
  std::size_t checkpoint_before(std::size_t pos, ExecutionState& out) const;

  /// Re-derives checkpoints after `base` changed at positions >= `from`
  /// (checkpoints at or before `from` are kept). O(base.size() - from).
  void refresh(const Schedule& base, std::size_t from);

 private:
  std::vector<ExecutionState> checkpoints_;
  std::size_t spacing_ = 1;
};

/// Holds a base schedule plus its cost, dummy count, validity and prefix
/// checkpoints, and answers "what would this candidate cost / is it valid"
/// in time proportional to the candidate's diff window.
class IncrementalEvaluator {
 public:
  /// Diff-window metrics of a candidate against the base schedule.
  struct Metrics {
    Cost cost = 0;                      ///< candidate total implementation cost
    std::size_t dummy_transfers = 0;    ///< candidate dummy-transfer count
    std::size_t prefix = 0;             ///< actions shared at the front
    std::size_t base_suffix_start = 0;  ///< base index where the shared tail begins
    std::size_t cand_suffix_start = 0;  ///< candidate index of the shared tail
  };

  /// Replay buffers for is_valid(); one per thread when screening candidates
  /// concurrently.
  class Scratch {
   public:
    Scratch(const SystemModel& model, const ReplicationMatrix& x_old)
        : cand_state_(model, x_old), base_state_(model, x_old) {}

   private:
    friend class IncrementalEvaluator;
    ExecutionState cand_state_;
    ExecutionState base_state_;
  };

  /// Takes ownership of `base` and replays it once (cost, dummies, validity,
  /// checkpoints). `model`, `x_old` and `x_new` must outlive the evaluator.
  IncrementalEvaluator(const SystemModel& model, const ReplicationMatrix& x_old,
                       const ReplicationMatrix& x_new, Schedule base);

  const SystemModel& model() const { return model_; }
  const ReplicationMatrix& x_old() const { return x_old_; }
  const ReplicationMatrix& x_new() const { return x_new_; }

  const Schedule& schedule() const { return base_; }
  Cost cost() const { return cost_; }
  std::size_t dummy_transfers() const { return dummies_; }
  /// Whether the base schedule itself validates (improver inputs always do;
  /// when false the engine falls back to full validation per candidate).
  bool base_valid() const { return base_valid_; }

  /// Candidate cost and dummy count by delta accounting. `prefix_hint` /
  /// `suffix_hint` are caller guarantees: the first prefix_hint actions and
  /// the last suffix_hint actions of `cand` equal the base's (improvers
  /// derive them from the surgery helpers' touched-position reports). With
  /// both 0 the diff window is found by scanning from the ends. Hints only
  /// narrow the window — any sound bound yields exact metrics.
  Metrics metrics(const Schedule& cand, std::size_t prefix_hint = 0,
                  std::size_t suffix_hint = 0) const;

  /// Incremental equivalent of Validator::is_valid(model, x_old, x_new,
  /// cand). `m` must come from metrics() on the same candidate.
  bool is_valid(const Schedule& cand, const Metrics& m, Scratch& scratch) const;
  bool is_valid(const Schedule& cand, const Metrics& m) {
    return is_valid(cand, m, scratch_);
  }

  /// Writes the state after the first `pos` actions of the base schedule
  /// into `out`. Thread-safe; O(spacing) worst case.
  void state_before(std::size_t pos, ExecutionState& out) const {
    cache_.state_before(base_, pos, out);
  }

  /// Attaches an anytime budget meter (may be null to detach). metrics() and
  /// is_valid() then charge ticks proportional to the work they do, and the
  /// budget-aware improvers poll out_of_budget() at their deterministic stop
  /// points. A null meter is the default and leaves behavior bit-identical
  /// to the unbudgeted engine. The meter must outlive the evaluator.
  void set_meter(WorkMeter* meter) { meter_ = meter; }
  WorkMeter* meter() const { return meter_; }
  bool out_of_budget() const { return meter_ != nullptr && meter_->exhausted(); }

  /// Replaces the base with a candidate previously accepted via metrics() +
  /// is_valid(); refreshes checkpoints from m.prefix on. Exclusive access.
  void adopt(Schedule cand, const Metrics& m);

  /// Replaces the base with an arbitrary schedule (full rebuild).
  void reset(Schedule base);

  /// Moves the base schedule out; the evaluator must not be used after.
  Schedule take_schedule() { return std::move(base_); }

 private:
  void rebuild_summary();

  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const ReplicationMatrix& x_new_;
  Schedule base_;
  Cost cost_ = 0;
  std::size_t dummies_ = 0;
  bool base_valid_ = false;
  PrefixStateCache cache_;
  Scratch scratch_;
  WorkMeter* meter_ = nullptr;
};

}  // namespace rtsp
