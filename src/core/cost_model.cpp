#include "core/cost_model.hpp"

namespace rtsp {

Cost action_cost(const SystemModel& model, const Action& a) {
  if (a.is_delete()) return 0;
  return model.transfer_cost(a.server, a.object, a.source);
}

Cost schedule_cost(const SystemModel& model, const Schedule& schedule) {
  Cost total = 0;
  for (const Action& a : schedule) total += action_cost(model, a);
  return total;
}

Cost dummy_transfer_cost(const SystemModel& model, const Schedule& schedule) {
  Cost total = 0;
  for (const Action& a : schedule) {
    if (a.is_dummy_transfer()) total += action_cost(model, a);
  }
  return total;
}

}  // namespace rtsp
