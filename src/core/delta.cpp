#include "core/delta.hpp"

#include "support/assert.hpp"

namespace rtsp {

PlacementDelta::PlacementDelta(const ReplicationMatrix& x_old,
                               const ReplicationMatrix& x_new) {
  RTSP_REQUIRE(x_old.num_servers() == x_new.num_servers());
  RTSP_REQUIRE(x_old.num_objects() == x_new.num_objects());
  for (ServerId i = 0; i < x_old.num_servers(); ++i) {
    for (ObjectId k : x_new.objects_on(i)) {
      if (!x_old.test(i, k)) outstanding_.push_back({i, k});
    }
    for (ObjectId k : x_old.objects_on(i)) {
      if (!x_new.test(i, k)) superfluous_.push_back({i, k});
    }
  }
}

std::vector<Replica> PlacementDelta::outstanding_on(ServerId i) const {
  std::vector<Replica> out;
  for (const Replica& r : outstanding_) {
    if (r.server == i) out.push_back(r);
  }
  return out;
}

std::vector<Replica> PlacementDelta::superfluous_on(ServerId i) const {
  std::vector<Replica> out;
  for (const Replica& r : superfluous_) {
    if (r.server == i) out.push_back(r);
  }
  return out;
}

namespace {
std::vector<ServerId> distinct_servers(const std::vector<Replica>& replicas) {
  std::vector<ServerId> out;
  for (const Replica& r : replicas) {
    // replicas are (server, object)-sorted, so equal servers are adjacent
    if (out.empty() || out.back() != r.server) out.push_back(r.server);
  }
  return out;
}
}  // namespace

std::vector<ServerId> PlacementDelta::servers_with_outstanding() const {
  return distinct_servers(outstanding_);
}

std::vector<ServerId> PlacementDelta::servers_with_superfluous() const {
  return distinct_servers(superfluous_);
}

}  // namespace rtsp
