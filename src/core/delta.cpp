#include "core/delta.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rtsp {

PlacementDelta::PlacementDelta(const ReplicationMatrix& x_old,
                               const ReplicationMatrix& x_new) {
  RTSP_REQUIRE(x_old.num_servers() == x_new.num_servers());
  RTSP_REQUIRE(x_old.num_objects() == x_new.num_objects());
  for (ServerId i = 0; i < x_old.num_servers(); ++i) {
    x_new.for_each_object(i, [&](ObjectId k) {
      if (!x_old.test(i, k)) outstanding_.push_back({i, k});
    });
    x_old.for_each_object(i, [&](ObjectId k) {
      if (!x_new.test(i, k)) superfluous_.push_back({i, k});
    });
  }
}

namespace {
// Both lists are (server, object)-sorted, so a server's replicas form a
// contiguous run findable by binary search instead of a full scan.
std::vector<Replica> server_slice(const std::vector<Replica>& replicas, ServerId i) {
  const auto lo = std::lower_bound(
      replicas.begin(), replicas.end(), i,
      [](const Replica& r, ServerId s) { return r.server < s; });
  auto hi = lo;
  while (hi != replicas.end() && hi->server == i) ++hi;
  return std::vector<Replica>(lo, hi);
}
}  // namespace

std::vector<Replica> PlacementDelta::outstanding_on(ServerId i) const {
  return server_slice(outstanding_, i);
}

std::vector<Replica> PlacementDelta::superfluous_on(ServerId i) const {
  return server_slice(superfluous_, i);
}

namespace {
std::vector<ServerId> distinct_servers(const std::vector<Replica>& replicas) {
  std::vector<ServerId> out;
  for (const Replica& r : replicas) {
    // replicas are (server, object)-sorted, so equal servers are adjacent
    if (out.empty() || out.back() != r.server) out.push_back(r.server);
  }
  return out;
}
}  // namespace

std::vector<ServerId> PlacementDelta::servers_with_outstanding() const {
  return distinct_servers(outstanding_);
}

std::vector<ServerId> PlacementDelta::servers_with_superfluous() const {
  return distinct_servers(superfluous_);
}

}  // namespace rtsp
