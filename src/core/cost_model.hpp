// Implementation-cost computation (equation (1) of the paper).
//
// Costs are position-independent: C(T_ikj) = s(O_k) * l_ij with the dummy
// link priced at a*(max l + 1), and deletions are free. Hence schedule cost
// is a plain sum and no state simulation is needed.
#pragma once

#include "core/schedule.hpp"
#include "core/system.hpp"

namespace rtsp {

/// Cost of a single action.
Cost action_cost(const SystemModel& model, const Action& a);

/// Total implementation cost I^H of a schedule.
Cost schedule_cost(const SystemModel& model, const Schedule& schedule);

/// Cost paid on dummy links only; schedule_cost minus this is the cost of
/// proper server-to-server traffic.
Cost dummy_transfer_cost(const SystemModel& model, const Schedule& schedule);

}  // namespace rtsp
