// SystemModel: the static part of an RTSP instance — servers, objects,
// communication costs and the dummy-server configuration. Replication
// matrices and schedules vary; the model does not.
//
// Nearest-replicator queries used to walk a fully materialized M x M
// sorted-neighbor table. At the scale tier (M in the thousands) that table
// costs O(M^2) memory and O(M^2 log M) construction even when only a few
// servers are ever queried, so it is replaced by two lazy caches:
//   - a truncated top-K table (K = kTopK cheapest neighbors per server,
//     O(M*K) memory) that answers the common case in O(K), with an exact
//     O(M) min-scan fallback when no replicator ranks in the top K;
//   - fully sorted per-server lists, built only for servers where a caller
//     actually needs the complete order (neighbors_by_cost).
// Both caches are built on first use under a mutex with atomic publication,
// so concurrent readers (OP1's parallel screening) are safe. Every query
// path computes the same lexicographic argmin (link cost, server index) the
// sorted table produced, so results are bit-identical to the eager version.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/catalog.hpp"
#include "core/replication.hpp"
#include "core/types.hpp"
#include "topology/cost_matrix.hpp"

namespace rtsp {

class SystemModel {
 public:
  /// Cheapest neighbors kept per server in the truncated table.
  static constexpr std::size_t kTopK = 64;

  /// dummy_factor is the paper's constant a >= 0; the dummy link cost is
  /// a * (max l_ij + 1). The paper's experiments all use a = 1.
  SystemModel(ServerCatalog servers, ObjectCatalog objects, CostMatrix costs,
              double dummy_factor = 1.0);

  // Copies and moves carry the model but start with cold neighbor caches
  // (the caches hold a mutex and atomics, which cannot be copied).
  SystemModel(const SystemModel& other);
  SystemModel& operator=(const SystemModel& other);
  SystemModel(SystemModel&& other) noexcept;
  SystemModel& operator=(SystemModel&& other) noexcept;

  std::size_t num_servers() const { return servers_.count(); }
  std::size_t num_objects() const { return objects_.count(); }

  const ServerCatalog& servers() const { return servers_; }
  const ObjectCatalog& objects() const { return objects_; }
  const CostMatrix& costs() const { return costs_; }

  Size capacity(ServerId i) const { return servers_.capacity(i); }
  Size object_size(ObjectId k) const { return objects_.size_of(k); }

  /// Per-unit cost of the artificial dummy link.
  LinkCost dummy_link_cost() const { return dummy_link_cost_; }
  double dummy_factor() const { return dummy_factor_; }

  /// Per-unit cost between server i and source j; j may be kDummyServer.
  LinkCost source_link_cost(ServerId i, ServerId j) const {
    RTSP_REQUIRE(i < num_servers());
    if (is_dummy(j)) return dummy_link_cost_;
    return costs_.at(i, j);
  }

  /// Full cost of transferring object k to server i from source j
  /// (the paper's s(O_k) * l_ij); j may be kDummyServer.
  Cost transfer_cost(ServerId i, ObjectId k, ServerId j) const {
    return object_size(k) * source_link_cost(i, j);
  }

  /// Servers ordered by increasing link cost from i (ties by index),
  /// excluding i; built lazily per server on first call, thread-safe.
  const std::vector<ServerId>& neighbors_by_cost(ServerId i) const;

  /// The paper's S_N(i,k,X): cheapest replicator of k for i under X,
  /// excluding i itself. nullopt when k has no (other) replicator.
  std::optional<ServerId> nearest_replicator(ServerId i, ObjectId k,
                                             const ReplicationMatrix& x) const;

  /// The paper's S_N2(i,k,X): second-cheapest replicator (needs two).
  std::optional<ServerId> second_nearest_replicator(ServerId i, ObjectId k,
                                                    const ReplicationMatrix& x) const;

  /// Like nearest_replicator but falls back to kDummyServer — the source
  /// every builder uses when no real replica exists.
  ServerId nearest_source_or_dummy(ServerId i, ObjectId k,
                                   const ReplicationMatrix& x) const;

  /// Link cost from i to its nearest replicator, or the dummy cost if none.
  LinkCost nearest_source_cost(ServerId i, ObjectId k,
                               const ReplicationMatrix& x) const;

  /// Link cost from i to its second-nearest replicator, or dummy if < 2.
  LinkCost second_nearest_source_cost(ServerId i, ObjectId k,
                                      const ReplicationMatrix& x) const;

 private:
  void init_caches();

  /// Truncated top-K row for i (cheapest first); builds it on first use.
  const ServerId* topk_row(ServerId i) const;

  /// Exact argmin_{j != i, x(j,k)} (cost(i,j), j); nullopt when none.
  std::optional<ServerId> min_scan_nearest(ServerId i, ObjectId k,
                                           const ReplicationMatrix& x) const;
  /// Exact second-smallest key; nullopt when fewer than two replicators.
  std::optional<ServerId> min_scan_second(ServerId i, ObjectId k,
                                          const ReplicationMatrix& x) const;

  ServerCatalog servers_;
  ObjectCatalog objects_;
  CostMatrix costs_;
  double dummy_factor_;
  LinkCost dummy_link_cost_;

  // Lazy neighbor caches. The outer vectors are sized once in the
  // constructor and never resized, so a reader that observed the ready flag
  // (acquire) can safely read the slot published before it (release).
  std::size_t top_k_ = 0;  // min(kTopK, M-1)
  mutable std::mutex cache_mu_;
  mutable std::vector<ServerId> topk_;  // flat M x top_k_
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> topk_ready_;
  mutable std::vector<std::vector<ServerId>> full_neighbors_;
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> full_ready_;
};

}  // namespace rtsp
