// SystemModel: the static part of an RTSP instance — servers, objects,
// communication costs and the dummy-server configuration. Replication
// matrices and schedules vary; the model does not.
#pragma once

#include <optional>
#include <vector>

#include "core/catalog.hpp"
#include "core/replication.hpp"
#include "core/types.hpp"
#include "topology/cost_matrix.hpp"

namespace rtsp {

class SystemModel {
 public:
  /// dummy_factor is the paper's constant a >= 0; the dummy link cost is
  /// a * (max l_ij + 1). The paper's experiments all use a = 1.
  SystemModel(ServerCatalog servers, ObjectCatalog objects, CostMatrix costs,
              double dummy_factor = 1.0);

  std::size_t num_servers() const { return servers_.count(); }
  std::size_t num_objects() const { return objects_.count(); }

  const ServerCatalog& servers() const { return servers_; }
  const ObjectCatalog& objects() const { return objects_; }
  const CostMatrix& costs() const { return costs_; }

  Size capacity(ServerId i) const { return servers_.capacity(i); }
  Size object_size(ObjectId k) const { return objects_.size_of(k); }

  /// Per-unit cost of the artificial dummy link.
  LinkCost dummy_link_cost() const { return dummy_link_cost_; }
  double dummy_factor() const { return dummy_factor_; }

  /// Per-unit cost between server i and source j; j may be kDummyServer.
  LinkCost source_link_cost(ServerId i, ServerId j) const {
    RTSP_REQUIRE(i < num_servers());
    if (is_dummy(j)) return dummy_link_cost_;
    return costs_.at(i, j);
  }

  /// Full cost of transferring object k to server i from source j
  /// (the paper's s(O_k) * l_ij); j may be kDummyServer.
  Cost transfer_cost(ServerId i, ObjectId k, ServerId j) const {
    return object_size(k) * source_link_cost(i, j);
  }

  /// Servers ordered by increasing link cost from i (ties by index),
  /// excluding i; precomputed once.
  const std::vector<ServerId>& neighbors_by_cost(ServerId i) const {
    RTSP_REQUIRE(i < num_servers());
    return sorted_neighbors_[i];
  }

  /// The paper's S_N(i,k,X): cheapest replicator of k for i under X,
  /// excluding i itself. nullopt when k has no (other) replicator.
  std::optional<ServerId> nearest_replicator(ServerId i, ObjectId k,
                                             const ReplicationMatrix& x) const;

  /// The paper's S_N2(i,k,X): second-cheapest replicator (needs two).
  std::optional<ServerId> second_nearest_replicator(ServerId i, ObjectId k,
                                                    const ReplicationMatrix& x) const;

  /// Like nearest_replicator but falls back to kDummyServer — the source
  /// every builder uses when no real replica exists.
  ServerId nearest_source_or_dummy(ServerId i, ObjectId k,
                                   const ReplicationMatrix& x) const;

  /// Link cost from i to its nearest replicator, or the dummy cost if none.
  LinkCost nearest_source_cost(ServerId i, ObjectId k,
                               const ReplicationMatrix& x) const;

  /// Link cost from i to its second-nearest replicator, or dummy if < 2.
  LinkCost second_nearest_source_cost(ServerId i, ObjectId k,
                                      const ReplicationMatrix& x) const;

 private:
  ServerCatalog servers_;
  ObjectCatalog objects_;
  CostMatrix costs_;
  double dummy_factor_;
  LinkCost dummy_link_cost_;
  std::vector<std::vector<ServerId>> sorted_neighbors_;
};

}  // namespace rtsp
