// PlacementDelta: the outstanding and superfluous replica sets that
// distinguish X_new from X_old — the raw material of every builder.
#pragma once

#include <utility>
#include <vector>

#include "core/replication.hpp"
#include "core/types.hpp"

namespace rtsp {

/// A replica position (server, object).
struct Replica {
  ServerId server;
  ObjectId object;
  friend bool operator==(const Replica&, const Replica&) = default;
};

class PlacementDelta {
 public:
  PlacementDelta(const ReplicationMatrix& x_old, const ReplicationMatrix& x_new);

  /// Replicas to create: X_new = 1, X_old = 0, in (server, object) order.
  const std::vector<Replica>& outstanding() const { return outstanding_; }
  /// Replicas to drop: X_old = 1, X_new = 0, in (server, object) order.
  const std::vector<Replica>& superfluous() const { return superfluous_; }

  /// Outstanding replicas destined for server i.
  std::vector<Replica> outstanding_on(ServerId i) const;
  /// Superfluous replicas residing on server i.
  std::vector<Replica> superfluous_on(ServerId i) const;

  /// Servers with at least one outstanding/superfluous replica.
  std::vector<ServerId> servers_with_outstanding() const;
  std::vector<ServerId> servers_with_superfluous() const;

  bool empty() const { return outstanding_.empty() && superfluous_.empty(); }

 private:
  std::vector<Replica> outstanding_;
  std::vector<Replica> superfluous_;
};

}  // namespace rtsp
