// Schedule actions: object transfers T_ikj and deletions D_ik.
#pragma once

#include <ostream>
#include <string>

#include "core/types.hpp"

namespace rtsp {

/// One schedule step. Transfers carry a source (possibly kDummyServer);
/// deletions do not.
struct Action {
  enum class Kind : std::uint8_t { Transfer, Delete };

  Kind kind = Kind::Delete;
  ServerId server = 0;  ///< acting server S_i (destination for transfers)
  ObjectId object = 0;  ///< object O_k
  ServerId source = 0;  ///< transfer source S_j / kDummyServer; unused for Delete

  /// The paper's T_ikj: copy object k onto server i from source j.
  static Action transfer(ServerId i, ObjectId k, ServerId j) {
    return Action{Kind::Transfer, i, k, j};
  }
  /// The paper's D_ik: delete object k's replica on server i.
  static Action remove(ServerId i, ObjectId k) { return Action{Kind::Delete, i, k, 0}; }

  bool is_transfer() const { return kind == Kind::Transfer; }
  bool is_delete() const { return kind == Kind::Delete; }
  bool is_dummy_transfer() const { return is_transfer() && is_dummy(source); }

  /// Paper-style rendering: "T(S2 <- O5 from S7)" / "T(... from dummy)" /
  /// "D(S2, O5)". Ids are 0-based.
  std::string to_string() const;

  friend bool operator==(const Action& a, const Action& b) {
    if (a.kind != b.kind || a.server != b.server || a.object != b.object) return false;
    return a.kind == Kind::Delete || a.source == b.source;
  }
};

std::ostream& operator<<(std::ostream& os, const Action& a);

}  // namespace rtsp
