#include "core/catalog.hpp"

namespace rtsp {

ObjectCatalog::ObjectCatalog(std::vector<Size> sizes) : sizes_(std::move(sizes)) {
  for (Size s : sizes_) {
    RTSP_REQUIRE_MSG(s > 0, "object sizes must be positive");
    total_ += s;
  }
}

ObjectCatalog ObjectCatalog::uniform(std::size_t count, Size size) {
  return ObjectCatalog(std::vector<Size>(count, size));
}

ServerCatalog::ServerCatalog(std::vector<Size> capacities)
    : capacities_(std::move(capacities)) {
  for (Size c : capacities_) RTSP_REQUIRE_MSG(c >= 0, "capacities must be >= 0");
}

ServerCatalog ServerCatalog::uniform(std::size_t count, Size capacity) {
  return ServerCatalog(std::vector<Size>(count, capacity));
}

void ServerCatalog::add_capacity(ServerId i, Size extra) {
  RTSP_REQUIRE(i < capacities_.size());
  RTSP_REQUIRE(extra >= 0);
  capacities_[i] += extra;
}

}  // namespace rtsp
