#include "core/schedule_stats.hpp"

#include <algorithm>
#include <sstream>

#include "core/cost_model.hpp"
#include "support/stats.hpp"

namespace rtsp {

ScheduleStats analyze_schedule(const SystemModel& model, const Schedule& schedule) {
  ScheduleStats s;
  s.actions = schedule.size();
  s.per_server.resize(model.num_servers());
  s.transfers_per_object.resize(model.num_objects(), 0);
  for (const Action& a : schedule) {
    if (a.is_delete()) {
      ++s.deletions;
      ++s.per_server[a.server].deletions;
      continue;
    }
    ++s.transfers;
    const Size size = model.object_size(a.object);
    const Cost cost = action_cost(model, a);
    s.total_cost += cost;
    ++s.transfers_per_object[a.object];
    ServerTraffic& dest = s.per_server[a.server];
    dest.bytes_in += size;
    dest.cost_in += cost;
    ++dest.transfers_in;
    if (a.is_dummy_transfer()) {
      ++s.dummy_transfers;
      s.dummy_cost += cost;
      s.dummy_volume += size;
    } else {
      s.real_volume += size;
      ServerTraffic& src = s.per_server[a.source];
      src.bytes_out += size;
      ++src.transfers_out;
    }
  }
  for (std::size_t n : s.transfers_per_object) {
    s.max_object_fanout = std::max(s.max_object_fanout, n);
  }
  return s;
}

std::string ScheduleStats::to_string() const {
  std::ostringstream os;
  os << actions << " actions: " << transfers << " transfers ("
     << dummy_transfers << " dummy), " << deletions << " deletions\n";
  os << "cost " << total_cost << " (dummy share " << dummy_cost << "), volume "
     << real_volume << " real + " << dummy_volume << " dummy\n";
  Cost max_in = 0;
  Cost max_out = 0;
  std::size_t busiest_in = 0;
  std::size_t busiest_out = 0;
  for (std::size_t i = 0; i < per_server.size(); ++i) {
    if (per_server[i].bytes_in > max_in) {
      max_in = per_server[i].bytes_in;
      busiest_in = i;
    }
    if (per_server[i].bytes_out > max_out) {
      max_out = per_server[i].bytes_out;
      busiest_out = i;
    }
  }
  os << "busiest sink S" << busiest_in << " (" << human_count(static_cast<double>(max_in))
     << " in), busiest source S" << busiest_out << " ("
     << human_count(static_cast<double>(max_out)) << " out), max object fan-out "
     << max_object_fanout;
  return os.str();
}

std::vector<Size> peak_storage(const SystemModel& model, const ReplicationMatrix& x_old,
                               const Schedule& schedule) {
  RTSP_REQUIRE(x_old.num_servers() == model.num_servers());
  std::vector<Size> used(model.num_servers());
  std::vector<Size> peak(model.num_servers());
  // The held-set is just a placement snapshot: a ReplicationMatrix copy of
  // x_old inherits its backing store, so at the scale tier this stays
  // O(replicas) instead of materializing an M x N vector<vector<bool>>.
  ReplicationMatrix held = x_old;
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    held.for_each_object(i, [&](ObjectId k) { used[i] += model.object_size(k); });
    peak[i] = used[i];
  }
  for (const Action& a : schedule) {
    if (a.is_transfer() && !held.test(a.server, a.object)) {
      held.set(a.server, a.object);
      used[a.server] += model.object_size(a.object);
      peak[a.server] = std::max(peak[a.server], used[a.server]);
    } else if (a.is_delete() && held.test(a.server, a.object)) {
      held.clear(a.server, a.object);
      used[a.server] -= model.object_size(a.object);
    }
  }
  return peak;
}

std::vector<Size> min_headroom(const SystemModel& model, const ReplicationMatrix& x_old,
                               const Schedule& schedule) {
  std::vector<Size> peak = peak_storage(model, x_old, schedule);
  std::vector<Size> headroom(peak.size());
  for (ServerId i = 0; i < peak.size(); ++i) {
    headroom[i] = model.capacity(i) - peak[i];
  }
  return headroom;
}

}  // namespace rtsp
