#include "core/system.hpp"

#include <algorithm>

namespace rtsp {

SystemModel::SystemModel(ServerCatalog servers, ObjectCatalog objects, CostMatrix costs,
                         double dummy_factor)
    : servers_(std::move(servers)),
      objects_(std::move(objects)),
      costs_(std::move(costs)),
      dummy_factor_(dummy_factor) {
  RTSP_REQUIRE_MSG(costs_.size() == servers_.count(),
                   "cost matrix size " << costs_.size() << " != server count "
                                       << servers_.count());
  RTSP_REQUIRE(dummy_factor_ > 0.0);
  dummy_link_cost_ = costs_.dummy_cost(dummy_factor_);
  init_caches();
}

SystemModel::SystemModel(const SystemModel& other)
    : servers_(other.servers_),
      objects_(other.objects_),
      costs_(other.costs_),
      dummy_factor_(other.dummy_factor_),
      dummy_link_cost_(other.dummy_link_cost_) {
  init_caches();
}

SystemModel& SystemModel::operator=(const SystemModel& other) {
  if (this == &other) return *this;
  servers_ = other.servers_;
  objects_ = other.objects_;
  costs_ = other.costs_;
  dummy_factor_ = other.dummy_factor_;
  dummy_link_cost_ = other.dummy_link_cost_;
  init_caches();
  return *this;
}

SystemModel::SystemModel(SystemModel&& other) noexcept
    : servers_(std::move(other.servers_)),
      objects_(std::move(other.objects_)),
      costs_(std::move(other.costs_)),
      dummy_factor_(other.dummy_factor_),
      dummy_link_cost_(other.dummy_link_cost_) {
  init_caches();
}

SystemModel& SystemModel::operator=(SystemModel&& other) noexcept {
  if (this == &other) return *this;
  servers_ = std::move(other.servers_);
  objects_ = std::move(other.objects_);
  costs_ = std::move(other.costs_);
  dummy_factor_ = other.dummy_factor_;
  dummy_link_cost_ = other.dummy_link_cost_;
  init_caches();
  return *this;
}

void SystemModel::init_caches() {
  const std::size_t m = servers_.count();
  top_k_ = m == 0 ? 0 : std::min<std::size_t>(kTopK, m - 1);
  topk_.assign(m * top_k_, 0);
  topk_ready_ = std::make_unique<std::atomic<std::uint8_t>[]>(m);
  full_neighbors_.assign(m, {});
  full_ready_ = std::make_unique<std::atomic<std::uint8_t>[]>(m);
}

const std::vector<ServerId>& SystemModel::neighbors_by_cost(ServerId i) const {
  RTSP_REQUIRE(i < num_servers());
  if (!full_ready_[i].load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!full_ready_[i].load(std::memory_order_relaxed)) {
      const auto order = costs_.sorted_neighbors(i);
      full_neighbors_[i].assign(order.begin(), order.end());
      full_ready_[i].store(1, std::memory_order_release);
    }
  }
  return full_neighbors_[i];
}

const ServerId* SystemModel::topk_row(ServerId i) const {
  if (!topk_ready_[i].load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!topk_ready_[i].load(std::memory_order_relaxed)) {
      const std::size_t m = num_servers();
      std::vector<ServerId> order;
      order.reserve(m - 1);
      for (ServerId j = 0; j < m; ++j) {
        if (j != i) order.push_back(j);
      }
      std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top_k_),
                        order.end(), [&](ServerId a, ServerId b) {
                          const LinkCost ca = costs_.at(i, a);
                          const LinkCost cb = costs_.at(i, b);
                          return ca != cb ? ca < cb : a < b;
                        });
      std::copy(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top_k_),
                topk_.begin() + static_cast<std::ptrdiff_t>(i * top_k_));
      topk_ready_[i].store(1, std::memory_order_release);
    }
  }
  return topk_.data() + i * top_k_;
}

std::optional<ServerId> SystemModel::min_scan_nearest(ServerId i, ObjectId k,
                                                      const ReplicationMatrix& x) const {
  // Ascending j with a strict < keeps the lowest index on cost ties — the
  // same lexicographic (cost, index) order the sorted table walks.
  std::optional<ServerId> best;
  LinkCost best_cost = 0;
  x.for_each_replicator(k, [&](ServerId j) {
    if (j == i) return;
    const LinkCost c = costs_.at(i, j);
    if (!best || c < best_cost) {
      best = j;
      best_cost = c;
    }
  });
  return best;
}

std::optional<ServerId> SystemModel::min_scan_second(ServerId i, ObjectId k,
                                                     const ReplicationMatrix& x) const {
  std::optional<ServerId> first;
  std::optional<ServerId> second;
  LinkCost c1 = 0;
  LinkCost c2 = 0;
  x.for_each_replicator(k, [&](ServerId j) {
    if (j == i) return;
    const LinkCost c = costs_.at(i, j);
    if (!first || c < c1) {
      second = first;
      c2 = c1;
      first = j;
      c1 = c;
    } else if (!second || c < c2) {
      second = j;
      c2 = c;
    }
  });
  return second;
}

std::optional<ServerId> SystemModel::nearest_replicator(ServerId i, ObjectId k,
                                                        const ReplicationMatrix& x) const {
  RTSP_REQUIRE(i < num_servers());
  // Sparse placements carry their replica sets: an O(r) min-scan beats any
  // neighbor-table walk.
  if (x.is_sparse()) return min_scan_nearest(i, k, x);
  const ServerId* row = topk_row(i);
  for (std::size_t t = 0; t < top_k_; ++t) {
    if (x.test(row[t], k)) return row[t];
  }
  if (top_k_ + 1 >= num_servers()) return std::nullopt;  // table was complete
  return min_scan_nearest(i, k, x);
}

std::optional<ServerId> SystemModel::second_nearest_replicator(
    ServerId i, ObjectId k, const ReplicationMatrix& x) const {
  RTSP_REQUIRE(i < num_servers());
  if (x.is_sparse()) return min_scan_second(i, k, x);
  const ServerId* row = topk_row(i);
  bool found_first = false;
  for (std::size_t t = 0; t < top_k_; ++t) {
    if (x.test(row[t], k)) {
      if (found_first) return row[t];
      found_first = true;
    }
  }
  if (top_k_ + 1 >= num_servers()) return std::nullopt;
  return min_scan_second(i, k, x);
}

ServerId SystemModel::nearest_source_or_dummy(ServerId i, ObjectId k,
                                              const ReplicationMatrix& x) const {
  const auto j = nearest_replicator(i, k, x);
  return j ? *j : kDummyServer;
}

LinkCost SystemModel::nearest_source_cost(ServerId i, ObjectId k,
                                          const ReplicationMatrix& x) const {
  const auto j = nearest_replicator(i, k, x);
  return j ? costs_.at(i, *j) : dummy_link_cost_;
}

LinkCost SystemModel::second_nearest_source_cost(ServerId i, ObjectId k,
                                                 const ReplicationMatrix& x) const {
  const auto j = second_nearest_replicator(i, k, x);
  return j ? costs_.at(i, *j) : dummy_link_cost_;
}

}  // namespace rtsp
