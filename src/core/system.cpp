#include "core/system.hpp"

namespace rtsp {

SystemModel::SystemModel(ServerCatalog servers, ObjectCatalog objects, CostMatrix costs,
                         double dummy_factor)
    : servers_(std::move(servers)),
      objects_(std::move(objects)),
      costs_(std::move(costs)),
      dummy_factor_(dummy_factor) {
  RTSP_REQUIRE_MSG(costs_.size() == servers_.count(),
                   "cost matrix size " << costs_.size() << " != server count "
                                       << servers_.count());
  RTSP_REQUIRE(dummy_factor_ > 0.0);
  dummy_link_cost_ = costs_.dummy_cost(dummy_factor_);
  sorted_neighbors_.reserve(servers_.count());
  for (std::size_t i = 0; i < servers_.count(); ++i) {
    const auto order = costs_.sorted_neighbors(i);
    sorted_neighbors_.emplace_back(order.begin(), order.end());
  }
}

std::optional<ServerId> SystemModel::nearest_replicator(ServerId i, ObjectId k,
                                                        const ReplicationMatrix& x) const {
  RTSP_REQUIRE(i < num_servers());
  for (ServerId j : sorted_neighbors_[i]) {
    if (x.test(j, k)) return j;
  }
  return std::nullopt;
}

std::optional<ServerId> SystemModel::second_nearest_replicator(
    ServerId i, ObjectId k, const ReplicationMatrix& x) const {
  RTSP_REQUIRE(i < num_servers());
  bool found_first = false;
  for (ServerId j : sorted_neighbors_[i]) {
    if (x.test(j, k)) {
      if (found_first) return j;
      found_first = true;
    }
  }
  return std::nullopt;
}

ServerId SystemModel::nearest_source_or_dummy(ServerId i, ObjectId k,
                                              const ReplicationMatrix& x) const {
  const auto j = nearest_replicator(i, k, x);
  return j ? *j : kDummyServer;
}

LinkCost SystemModel::nearest_source_cost(ServerId i, ObjectId k,
                                          const ReplicationMatrix& x) const {
  const auto j = nearest_replicator(i, k, x);
  return j ? costs_.at(i, *j) : dummy_link_cost_;
}

LinkCost SystemModel::second_nearest_source_cost(ServerId i, ObjectId k,
                                                 const ReplicationMatrix& x) const {
  const auto j = second_nearest_replicator(i, k, x);
  return j ? costs_.at(i, *j) : dummy_link_cost_;
}

}  // namespace rtsp
