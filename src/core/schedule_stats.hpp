// Schedule analytics: per-server traffic, per-object transfer counts,
// storage-utilisation timelines. Used by the CLI `stats` command, the
// examples and the reports; everything here is derived data with no effect
// on scheduling.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/system.hpp"

namespace rtsp {

struct ServerTraffic {
  Cost bytes_in = 0;    ///< size-weighted cost-free volume received
  Cost bytes_out = 0;   ///< volume served as a source (dummy excluded)
  Cost cost_in = 0;     ///< implementation cost paid for inbound transfers
  std::size_t transfers_in = 0;
  std::size_t transfers_out = 0;
  std::size_t deletions = 0;
};

struct ScheduleStats {
  std::size_t actions = 0;
  std::size_t transfers = 0;
  std::size_t deletions = 0;
  std::size_t dummy_transfers = 0;
  Cost total_cost = 0;
  Cost dummy_cost = 0;
  /// Volume moved over real links / over the dummy link.
  Size real_volume = 0;
  Size dummy_volume = 0;
  std::vector<ServerTraffic> per_server;
  /// transfer count per object (objects never moved have 0).
  std::vector<std::size_t> transfers_per_object;
  /// Highest number of distinct objects an object was copied... the widest
  /// fan-out: max transfers of any single object.
  std::size_t max_object_fanout = 0;

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

/// Computes the stats in one pass. The schedule need not be valid.
ScheduleStats analyze_schedule(const SystemModel& model, const Schedule& schedule);

/// Peak storage used on each server while executing `schedule` from `x_old`
/// (lenient semantics). Useful for verifying how close to capacity a plan
/// sails.
std::vector<Size> peak_storage(const SystemModel& model, const ReplicationMatrix& x_old,
                               const Schedule& schedule);

/// Free-space headroom: min over time of capacity - used, per server.
std::vector<Size> min_headroom(const SystemModel& model, const ReplicationMatrix& x_old,
                               const Schedule& schedule);

}  // namespace rtsp
