// ReplicaView: a non-owning, read-only view of a replication scheme.
//
// Algorithms that only *read* a placement (validator diffs, transfer-graph
// construction, statistics) take a ReplicaView so they are written once and
// run unchanged against either backing store of ReplicationMatrix — the
// view forwards to the store-agnostic iteration API and never touches the
// packed words directly. Copyable, trivially cheap (one pointer).
#pragma once

#include "core/replication.hpp"

namespace rtsp {

class ReplicaView {
 public:
  ReplicaView(const ReplicationMatrix& x) : x_(&x) {}  // NOLINT(implicit)

  std::size_t num_servers() const { return x_->num_servers(); }
  std::size_t num_objects() const { return x_->num_objects(); }

  bool test(ServerId i, ObjectId k) const { return x_->test(i, k); }
  std::size_t replica_count(ObjectId k) const { return x_->replica_count(k); }
  std::size_t count_on(ServerId i) const { return x_->count_on(i); }
  std::size_t total_replicas() const { return x_->total_replicas(); }

  template <typename Fn>
  void for_each_object(ServerId i, Fn&& fn) const {
    x_->for_each_object(i, std::forward<Fn>(fn));
  }

  template <typename Fn>
  void for_each_replicator(ObjectId k, Fn&& fn) const {
    x_->for_each_replicator(k, std::forward<Fn>(fn));
  }

  const ReplicationMatrix& matrix() const { return *x_; }

 private:
  const ReplicationMatrix* x_;
};

}  // namespace rtsp
