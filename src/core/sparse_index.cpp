#include "core/sparse_index.hpp"

namespace rtsp {

void SparseReplicaIndex::compact(ServerId i) const {
  std::vector<ObjectId>& list = by_server_[i];
  // Drop entries whose replica was cleared since they were appended; the
  // per-object sets are authoritative. sort+unique also collapses the
  // duplicates a set/clear/set cycle leaves behind.
  std::erase_if(list, [&](ObjectId k) { return !test(i, k); });
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
  list.shrink_to_fit();
  server_dirty_[i] = 0;
}

std::size_t SparseReplicaIndex::overlap(const SparseReplicaIndex& other) const {
  RTSP_REQUIRE(servers_ == other.servers_ && objects_ == other.objects_);
  std::size_t n = 0;
  for (ObjectId k = 0; k < objects_; ++k) {
    const ReplicaSet& a = by_object_[k];
    const ReplicaSet& b = other.by_object_[k];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < a.size() && ib < b.size()) {
      if (a[ia] < b[ib]) {
        ++ia;
      } else if (b[ib] < a[ia]) {
        ++ib;
      } else {
        ++n;
        ++ia;
        ++ib;
      }
    }
  }
  return n;
}

}  // namespace rtsp
