// The transfer graph of Sec. 3.3 (Fig. 1b): a directed multigraph whose
// nodes are servers and whose arcs, labelled by objects, run from every
// potential source of an outstanding replica to its destination.
//
// Cyclic dependencies between tight servers are the deadlocks that force
// dummy transfers; this module detects them via Tarjan's strongly connected
// components and offers a conservative deadlock-risk predicate.
#pragma once

#include <vector>

#include "core/delta.hpp"
#include "core/replication.hpp"
#include "core/system.hpp"

namespace rtsp {

class TransferGraph {
 public:
  struct Arc {
    ServerId from;    ///< potential source (holds the object in X_old)
    ServerId to;      ///< destination of the outstanding replica
    ObjectId object;  ///< arc label
  };

  /// Builds arcs for every outstanding replica of (x_old -> x_new) from each
  /// of its X_old replicators.
  TransferGraph(const SystemModel& model, const ReplicationMatrix& x_old,
                const ReplicationMatrix& x_new);

  std::size_t num_servers() const { return num_servers_; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Outgoing arcs of a server.
  std::vector<Arc> arcs_from(ServerId i) const;

  /// Strongly connected components (Tarjan). Each inner vector lists the
  /// member servers; components are returned in reverse topological order.
  std::vector<std::vector<ServerId>> strongly_connected_components() const;

  /// True if some SCC has more than one server, i.e. the transfer graph has
  /// a directed cycle through distinct servers (the Fig. 1 pattern).
  bool has_cycle() const;

  /// Conservative deadlock-risk indicator: there is a multi-server SCC all
  /// of whose members lack free space in X_old for the object they must
  /// receive along the cycle. A true result means a schedule without dummy
  /// transfers requires breaking the cycle through outside storage; a false
  /// result does not guarantee feasibility (the decision problem is
  /// NP-complete, Sec. 3.4).
  bool deadlock_risk(const ReplicationMatrix& x_old) const;

 private:
  std::size_t num_servers_;
  const SystemModel* model_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> out_;  // arc indices by source server
};

}  // namespace rtsp
