// Schedule: an ordered sequence of actions H = {A_1 ... A_t}.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "core/action.hpp"

namespace rtsp {

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<Action> actions) : actions_(std::move(actions)) {}

  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }

  const Action& operator[](std::size_t u) const { return actions_[u]; }
  Action& operator[](std::size_t u) { return actions_[u]; }

  const std::vector<Action>& actions() const { return actions_; }
  std::vector<Action>& actions() { return actions_; }

  void reserve(std::size_t n) { actions_.reserve(n); }
  void push_back(const Action& a) { actions_.push_back(a); }
  void insert(std::size_t pos, const Action& a) {
    actions_.insert(actions_.begin() + static_cast<std::ptrdiff_t>(pos), a);
  }
  void erase(std::size_t pos) {
    actions_.erase(actions_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  void clear() { actions_.clear(); }

  auto begin() const { return actions_.begin(); }
  auto end() const { return actions_.end(); }

  /// Number of transfers sourced at the dummy server — the feasibility
  /// metric of the paper's Figs. 4, 6, 8.
  std::size_t dummy_transfer_count() const;

  std::size_t transfer_count() const;
  std::size_t delete_count() const;

  /// Indices of all transfers of object k, ascending.
  std::vector<std::size_t> transfer_positions_of(ObjectId k) const;

  /// Multi-line rendering, one action per line, prefixed by its index.
  std::string to_string() const;

  bool operator==(const Schedule& other) const = default;

 private:
  std::vector<Action> actions_;
};

std::ostream& operator<<(std::ostream& os, const Schedule& s);

}  // namespace rtsp
