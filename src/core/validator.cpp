#include "core/validator.hpp"

#include <bit>
#include <sstream>

#include "core/replica_view.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace rtsp {

const char* to_string(ValidationCode c) {
  switch (c) {
    case ValidationCode::ActionSourceNotReplicator: return "action_source_not_replicator";
    case ValidationCode::ActionDestAlreadyReplicator: return "action_dest_already_replicator";
    case ValidationCode::ActionInsufficientSpace: return "action_insufficient_space";
    case ValidationCode::ActionSelfTransfer: return "action_self_transfer";
    case ValidationCode::ActionNotReplicator: return "action_not_replicator";
    case ValidationCode::FinalStateMissingReplica: return "final_state_missing_replica";
    case ValidationCode::FinalStateExtraReplica: return "final_state_extra_replica";
  }
  return "unknown";
}

ValidationCode code_for(ActionError error) {
  switch (error) {
    case ActionError::SourceNotReplicator: return ValidationCode::ActionSourceNotReplicator;
    case ActionError::DestAlreadyReplicator: return ValidationCode::ActionDestAlreadyReplicator;
    case ActionError::InsufficientSpace: return ValidationCode::ActionInsufficientSpace;
    case ActionError::SelfTransfer: return ValidationCode::ActionSelfTransfer;
    case ActionError::NotReplicator: return ValidationCode::ActionNotReplicator;
    case ActionError::None: break;
  }
  RTSP_REQUIRE_MSG(false, "code_for: ActionError::None has no validation code");
  return ValidationCode::ActionNotReplicator;  // unreachable
}

std::string ValidationResult::to_string() const {
  if (valid) return "valid";
  std::ostringstream os;
  os << "invalid (" << issues.size() << " issue" << (issues.size() == 1 ? "" : "s") << ")";
  for (const auto& issue : issues) {
    os << "\n  [" << issue.index << "] " << issue.message;
  }
  return os.str();
}

ValidationResult Validator::validate(const SystemModel& model,
                                     const ReplicationMatrix& x_old,
                                     const ReplicationMatrix& x_new,
                                     const Schedule& schedule, bool stop_at_first) {
  OBS_COUNT("validator.full_validations");
  OBS_COUNT_N("validator.actions_replayed", schedule.size());
  ValidationResult result;
  ExecutionState state(model, x_old);
  for (std::size_t u = 0; u < schedule.size(); ++u) {
    const Action& a = schedule[u];
    const ActionError e = state.try_apply(a);
    if (e != ActionError::None) {
      const ValidationCode code = code_for(e);
      std::ostringstream os;
      os << a.to_string() << ": " << to_string(e) << " [" << to_string(code) << "]";
      result.issues.push_back({u, e, code, os.str()});
      if (stop_at_first) return result;
    }
  }
  if (!(state.placement() == x_new)) {
    const auto report_mismatch = [&](ServerId i, ObjectId k, bool got) {
      const ValidationCode code = got ? ValidationCode::FinalStateExtraReplica
                                      : ValidationCode::FinalStateMissingReplica;
      std::ostringstream os;
      os << "final state mismatch at (S" << i << ", O" << k << "): have "
         << (got ? "replica" : "no replica") << ", X_new wants "
         << (got ? "no replica" : "replica") << " [" << to_string(code) << "]";
      result.issues.push_back({schedule.size(), ActionError::None, code, os.str()});
    };
    if (state.placement().is_dense() && x_new.is_dense()) {
      // Point at the differing replicas to make diagnosis cheap: XOR the
      // packed rows and only decode words that actually differ, so the scan
      // is word-parallel and stops at the first mismatch under
      // stop_at_first.
      const std::vector<std::uint64_t>& got_words = state.placement().words();
      const std::vector<std::uint64_t>& want_words = x_new.words();
      const std::size_t words_per_row = got_words.size() / model.num_servers();
      for (std::size_t w = 0; w < got_words.size(); ++w) {
        std::uint64_t diff = got_words[w] ^ want_words[w];
        while (diff != 0) {
          const ServerId i = static_cast<ServerId>(w / words_per_row);
          const ObjectId k = static_cast<ObjectId>(
              (w % words_per_row) * 64 +
              static_cast<std::size_t>(std::countr_zero(diff)));
          report_mismatch(i, k, state.placement().test(i, k));
          if (stop_at_first) return result;
          diff &= diff - 1;  // clear the lowest set bit
        }
      }
    } else {
      // Store-agnostic diff in the same (server, object) order: merge each
      // server's sorted object lists from both placements.
      const ReplicaView got(state.placement());
      const ReplicaView want(x_new);
      for (ServerId i = 0; i < model.num_servers(); ++i) {
        const std::vector<ObjectId> have = got.matrix().objects_on(i);
        const std::vector<ObjectId> need = want.matrix().objects_on(i);
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < have.size() || b < need.size()) {
          if (b == need.size() || (a < have.size() && have[a] < need[b])) {
            report_mismatch(i, have[a], true);
            if (stop_at_first) return result;
            ++a;
          } else if (a == have.size() || need[b] < have[a]) {
            report_mismatch(i, need[b], false);
            if (stop_at_first) return result;
            ++b;
          } else {
            ++a;
            ++b;
          }
        }
      }
    }
  }
  result.valid = result.issues.empty();
  return result;
}

}  // namespace rtsp
