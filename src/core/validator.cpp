#include "core/validator.hpp"

#include <bit>
#include <sstream>

#include "obs/obs.hpp"

namespace rtsp {

std::string ValidationResult::to_string() const {
  if (valid) return "valid";
  std::ostringstream os;
  os << "invalid (" << issues.size() << " issue" << (issues.size() == 1 ? "" : "s") << ")";
  for (const auto& issue : issues) {
    os << "\n  [" << issue.index << "] " << issue.message;
  }
  return os.str();
}

ValidationResult Validator::validate(const SystemModel& model,
                                     const ReplicationMatrix& x_old,
                                     const ReplicationMatrix& x_new,
                                     const Schedule& schedule, bool stop_at_first) {
  OBS_COUNT("validator.full_validations");
  OBS_COUNT_N("validator.actions_replayed", schedule.size());
  ValidationResult result;
  ExecutionState state(model, x_old);
  for (std::size_t u = 0; u < schedule.size(); ++u) {
    const Action& a = schedule[u];
    const ActionError e = state.try_apply(a);
    if (e != ActionError::None) {
      std::ostringstream os;
      os << a.to_string() << ": " << to_string(e);
      result.issues.push_back({u, e, os.str()});
      if (stop_at_first) return result;
    }
  }
  if (!(state.placement() == x_new)) {
    // Point at the differing replicas to make diagnosis cheap: XOR the
    // packed rows and only decode words that actually differ, so the scan is
    // word-parallel and stops at the first mismatch under stop_at_first.
    const std::vector<std::uint64_t>& got_words = state.placement().words();
    const std::vector<std::uint64_t>& want_words = x_new.words();
    const std::size_t words_per_row = got_words.size() / model.num_servers();
    for (std::size_t w = 0; w < got_words.size(); ++w) {
      std::uint64_t diff = got_words[w] ^ want_words[w];
      while (diff != 0) {
        const ServerId i = static_cast<ServerId>(w / words_per_row);
        const ObjectId k = static_cast<ObjectId>(
            (w % words_per_row) * 64 +
            static_cast<std::size_t>(std::countr_zero(diff)));
        const bool got = state.placement().test(i, k);
        std::ostringstream os;
        os << "final state mismatch at (S" << i << ", O" << k << "): have "
           << (got ? "replica" : "no replica") << ", X_new wants "
           << (got ? "no replica" : "replica");
        result.issues.push_back({schedule.size(), ActionError::None, os.str()});
        if (stop_at_first) return result;
        diff &= diff - 1;  // clear the lowest set bit
      }
    }
  }
  result.valid = result.issues.empty();
  return result;
}

}  // namespace rtsp
