#include "core/validator.hpp"

#include <sstream>

namespace rtsp {

std::string ValidationResult::to_string() const {
  if (valid) return "valid";
  std::ostringstream os;
  os << "invalid (" << issues.size() << " issue" << (issues.size() == 1 ? "" : "s") << ")";
  for (const auto& issue : issues) {
    os << "\n  [" << issue.index << "] " << issue.message;
  }
  return os.str();
}

ValidationResult Validator::validate(const SystemModel& model,
                                     const ReplicationMatrix& x_old,
                                     const ReplicationMatrix& x_new,
                                     const Schedule& schedule, bool stop_at_first) {
  ValidationResult result;
  ExecutionState state(model, x_old);
  for (std::size_t u = 0; u < schedule.size(); ++u) {
    const Action& a = schedule[u];
    const ActionError e = state.try_apply(a);
    if (e != ActionError::None) {
      std::ostringstream os;
      os << a.to_string() << ": " << to_string(e);
      result.issues.push_back({u, e, os.str()});
      if (stop_at_first) return result;
    }
  }
  if (!(state.placement() == x_new)) {
    // Point at the first differing replica to make diagnosis cheap.
    for (ServerId i = 0; i < model.num_servers(); ++i) {
      for (ObjectId k = 0; k < model.num_objects(); ++k) {
        const bool got = state.placement().test(i, k);
        const bool want = x_new.test(i, k);
        if (got != want) {
          std::ostringstream os;
          os << "final state mismatch at (S" << i << ", O" << k << "): have "
             << (got ? "replica" : "no replica") << ", X_new wants "
             << (want ? "replica" : "no replica");
          result.issues.push_back({schedule.size(), ActionError::None, os.str()});
          if (stop_at_first) return result;
        }
      }
    }
  }
  result.valid = result.issues.empty();
  return result;
}

}  // namespace rtsp
