// The M x N replication matrix X of the paper: X_ik = 1 iff server S_i holds
// a replica of object O_k.
//
// Two backing stores share this interface:
//   - dense: packed 64-bit words, row-major, word-parallel row scans and
//     whole-matrix comparisons. Right for the paper-scale instances where
//     M*N bits fit comfortably in cache-adjacent memory.
//   - sparse: a SparseReplicaIndex (per-object sorted replica sets +
//     per-server object lists), O(total replicas) memory. Right for the
//     scale tier (M in the thousands, N in the millions) where the dense
//     bitset alone would dwarf the replica data.
//
// Store::kAuto picks dense below kDenseBitLimit so every paper-scale
// caller keeps the exact dense representation (and bit-identical
// behaviour); million-object instances switch to sparse transparently.
// The dummy server is never part of the matrix.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <utility>
#include <vector>

#include "core/catalog.hpp"
#include "core/sparse_index.hpp"
#include "core/types.hpp"

namespace rtsp {

class ReplicationMatrix {
 public:
  enum class Store {
    kAuto,    ///< dense when servers*objects <= kDenseBitLimit, else sparse
    kDense,   ///< force the packed-bitset store
    kSparse,  ///< force the sparse replica index
  };

  /// Auto threshold: 1 << 26 bits = 8 MB per matrix. All paper-scale
  /// instances (hundreds of servers, thousands of objects) stay dense.
  static constexpr std::size_t kDenseBitLimit = std::size_t{1} << 26;

  ReplicationMatrix() = default;

  /// All-zero matrix for `servers` x `objects`.
  ReplicationMatrix(std::size_t servers, std::size_t objects,
                    Store store = Store::kAuto);

  /// Convenience constructor from explicit (server, object) replica pairs.
  static ReplicationMatrix from_pairs(std::size_t servers, std::size_t objects,
                                      std::initializer_list<std::pair<ServerId, ObjectId>> pairs);

  std::size_t num_servers() const { return servers_; }
  std::size_t num_objects() const { return objects_; }

  bool is_sparse() const { return sparse_.has_value(); }
  bool is_dense() const { return !sparse_.has_value(); }

  bool test(ServerId i, ObjectId k) const {
    if (sparse_) return sparse_->test(i, k);
    check(i, k);
    return (words_[word_index(i, k)] >> (k & 63)) & 1u;
  }
  void set(ServerId i, ObjectId k) {
    if (sparse_) return sparse_->set(i, k);
    check(i, k);
    words_[word_index(i, k)] |= (std::uint64_t{1} << (k & 63));
  }
  void clear(ServerId i, ObjectId k) {
    if (sparse_) return sparse_->clear(i, k);
    check(i, k);
    words_[word_index(i, k)] &= ~(std::uint64_t{1} << (k & 63));
  }
  void assign(ServerId i, ObjectId k, bool value) { value ? set(i, k) : clear(i, k); }

  /// Calls fn(ObjectId) for every object on server i, ascending, without
  /// allocating. The workhorse of the scale tier's hot paths.
  template <typename Fn>
  void for_each_object(ServerId i, Fn&& fn) const {
    if (sparse_) return sparse_->for_each_object(i, std::forward<Fn>(fn));
    RTSP_REQUIRE(i < servers_);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = words_[i * words_per_row_ + w];
      while (bits) {
        const int b = std::countr_zero(bits);
        fn(static_cast<ObjectId>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  /// Calls fn(ServerId) for every replicator of object k, ascending,
  /// without allocating. O(r) sparse, O(M) dense.
  template <typename Fn>
  void for_each_replicator(ObjectId k, Fn&& fn) const {
    if (sparse_) return sparse_->for_each_replicator(k, std::forward<Fn>(fn));
    RTSP_REQUIRE(k < objects_);
    for (ServerId i = 0; i < servers_; ++i) {
      if ((words_[word_index(i, k)] >> (k & 63)) & 1u) fn(i);
    }
  }

  /// Objects held by server i, ascending. Allocates; prefer for_each_object
  /// in hot paths.
  std::vector<ObjectId> objects_on(ServerId i) const;

  /// Servers holding object k, ascending. Allocates; prefer
  /// for_each_replicator in hot paths.
  std::vector<ServerId> replicators_of(ObjectId k) const;

  /// Number of replicas of object k. O(1) sparse, O(M) dense.
  std::size_t replica_count(ObjectId k) const;

  /// Number of replicas stored on server i. O(1) sparse, O(N/64) dense.
  std::size_t count_on(ServerId i) const;

  /// Total number of replicas in the scheme.
  std::size_t total_replicas() const;

  /// Bytes of storage server i uses under this scheme.
  Size used_storage(ServerId i, const ObjectCatalog& objects) const;

  /// Number of (server, object) replicas present in both schemes — the
  /// paper's "overlap". Store-agnostic.
  std::size_t overlap(const ReplicationMatrix& other) const;

  /// Semantic equality: same dimensions and same replica set, regardless of
  /// backing store.
  bool operator==(const ReplicationMatrix& other) const;

  /// Packed bit words (row-major); exposed for hashing/memoization in the
  /// exact solvers and the validator's word-parallel diff. Dense-only.
  const std::vector<std::uint64_t>& words() const {
    RTSP_REQUIRE_MSG(is_dense(), "words() requires the dense store");
    return words_;
  }

  /// The sparse index; sparse-only.
  const SparseReplicaIndex& sparse_index() const {
    RTSP_REQUIRE_MSG(is_sparse(), "sparse_index() requires the sparse store");
    return *sparse_;
  }

  /// Compacts lazy sparse state so concurrent read-only access is safe.
  /// No-op for the dense store.
  void prepare_shared_reads() const {
    if (sparse_) sparse_->compact_all();
  }

 private:
  void check(ServerId i, ObjectId k) const {
    RTSP_REQUIRE_MSG(i < servers_ && k < objects_,
                     "replica (" << i << "," << k << ") out of " << servers_ << "x"
                                 << objects_);
  }
  std::size_t word_index(ServerId i, ObjectId k) const {
    return static_cast<std::size_t>(i) * words_per_row_ + (k >> 6);
  }

  std::size_t servers_ = 0;
  std::size_t objects_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
  std::optional<SparseReplicaIndex> sparse_;
};

}  // namespace rtsp
