// The M x N replication matrix X of the paper: X_ik = 1 iff server S_i holds
// a replica of object O_k.
//
// Stored as packed 64-bit words, row-major, so row scans (what does server i
// hold) and whole-matrix comparisons are word-parallel. The dummy server is
// never part of the matrix.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "core/catalog.hpp"
#include "core/types.hpp"

namespace rtsp {

class ReplicationMatrix {
 public:
  ReplicationMatrix() = default;

  /// All-zero matrix for `servers` x `objects`.
  ReplicationMatrix(std::size_t servers, std::size_t objects);

  /// Convenience constructor from explicit (server, object) replica pairs.
  static ReplicationMatrix from_pairs(std::size_t servers, std::size_t objects,
                                      std::initializer_list<std::pair<ServerId, ObjectId>> pairs);

  std::size_t num_servers() const { return servers_; }
  std::size_t num_objects() const { return objects_; }

  bool test(ServerId i, ObjectId k) const {
    check(i, k);
    return (words_[word_index(i, k)] >> (k & 63)) & 1u;
  }
  void set(ServerId i, ObjectId k) {
    check(i, k);
    words_[word_index(i, k)] |= (std::uint64_t{1} << (k & 63));
  }
  void clear(ServerId i, ObjectId k) {
    check(i, k);
    words_[word_index(i, k)] &= ~(std::uint64_t{1} << (k & 63));
  }
  void assign(ServerId i, ObjectId k, bool value) { value ? set(i, k) : clear(i, k); }

  /// Objects held by server i, ascending.
  std::vector<ObjectId> objects_on(ServerId i) const;

  /// Servers holding object k, ascending. O(M).
  std::vector<ServerId> replicators_of(ObjectId k) const;

  /// Number of replicas of object k. O(M).
  std::size_t replica_count(ObjectId k) const;

  /// Number of replicas stored on server i. O(N/64).
  std::size_t count_on(ServerId i) const;

  /// Total number of replicas in the scheme.
  std::size_t total_replicas() const;

  /// Bytes of storage server i uses under this scheme.
  Size used_storage(ServerId i, const ObjectCatalog& objects) const;

  /// Number of (server, object) replicas present in both schemes — the
  /// paper's "overlap".
  std::size_t overlap(const ReplicationMatrix& other) const;

  bool operator==(const ReplicationMatrix& other) const = default;

  /// Packed bit words (row-major); exposed for hashing/memoization.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void check(ServerId i, ObjectId k) const {
    RTSP_REQUIRE_MSG(i < servers_ && k < objects_,
                     "replica (" << i << "," << k << ") out of " << servers_ << "x"
                                 << objects_);
  }
  std::size_t word_index(ServerId i, ObjectId k) const {
    return static_cast<std::size_t>(i) * words_per_row_ + (k >> 6);
  }

  std::size_t servers_ = 0;
  std::size_t objects_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rtsp
