// Fundamental identifier and quantity types of the RTSP model.
#pragma once

#include <cstdint>
#include <limits>

#include "topology/graph.hpp"  // LinkCost

namespace rtsp {

/// Index of a server, 0-based (the paper's S_{i+1}).
using ServerId = std::uint32_t;
/// Index of a data object, 0-based (the paper's O_{k+1}).
using ObjectId = std::uint32_t;

/// Storage quantity in abstract data units (the paper's "e.g. bytes").
using Size = std::int64_t;
/// Implementation cost in exact integer units: Size x LinkCost.
using Cost = std::int64_t;

/// Sentinel ServerId for the artificial dummy server S_d, which replicates
/// every object, has unbounded capacity and uniform worst-case link cost.
inline constexpr ServerId kDummyServer = std::numeric_limits<ServerId>::max();

inline constexpr bool is_dummy(ServerId s) { return s == kDummyServer; }

}  // namespace rtsp
