#include "core/residual.hpp"

#include "core/feasibility.hpp"

namespace rtsp {

ResidualProblem make_residual(const SystemModel& model,
                              const ReplicationMatrix& x_mid,
                              const ReplicationMatrix& x_new) {
  RTSP_REQUIRE(x_mid.num_servers() == model.num_servers());
  RTSP_REQUIRE(x_mid.num_objects() == model.num_objects());
  RTSP_REQUIRE(x_new.num_servers() == model.num_servers());
  RTSP_REQUIRE(x_new.num_objects() == model.num_objects());
  ResidualProblem r{x_mid, PlacementDelta(x_mid, x_new), {}, 0};
  r.free_space.reserve(model.num_servers());
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    r.free_space.push_back(model.capacity(i) -
                           x_mid.used_storage(i, model.objects()));
  }
  r.lower_bound = cost_lower_bound(model, x_mid, x_new);
  return r;
}

}  // namespace rtsp
