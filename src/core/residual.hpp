// Residual RTSP construction: when execution of a schedule is interrupted
// mid-flight (failed transfer, lost replica, emerging deadlock), the system
// sits at some partial placement X_mid. The remaining work is itself an RTSP
// instance over the same model — (X_mid, X_new) — and any builder/improver
// pipeline can replan it. This header is the core entry point the execution
// layer uses to snapshot that residual problem.
#pragma once

#include <vector>

#include "core/delta.hpp"
#include "core/replication.hpp"
#include "core/system.hpp"

namespace rtsp {

/// The tail problem left after a partial execution: the mid-flight placement,
/// the remaining deltas against the goal, and the free space the replanner
/// has to work with.
struct ResidualProblem {
  ReplicationMatrix x_mid;        ///< placement at the interruption point
  PlacementDelta delta;           ///< outstanding / superfluous vs X_new
  std::vector<Size> free_space;   ///< per-server free space under x_mid
  Cost lower_bound = 0;           ///< admissible cost bound for the tail

  /// Nothing left to do: x_mid already equals the goal.
  bool complete() const { return delta.empty(); }
};

/// Snapshots the residual problem (X_mid, X_new). Requires matching matrix
/// shapes; X_new need not be storage-feasible here (the caller decides
/// whether a dummy-degraded plan is acceptable), but the common executor
/// path checks feasibility up front.
ResidualProblem make_residual(const SystemModel& model,
                              const ReplicationMatrix& x_mid,
                              const ReplicationMatrix& x_new);

}  // namespace rtsp
