#include "core/schedule.hpp"

#include <sstream>

namespace rtsp {

std::size_t Schedule::dummy_transfer_count() const {
  std::size_t n = 0;
  for (const Action& a : actions_) n += a.is_dummy_transfer() ? 1 : 0;
  return n;
}

std::size_t Schedule::transfer_count() const {
  std::size_t n = 0;
  for (const Action& a : actions_) n += a.is_transfer() ? 1 : 0;
  return n;
}

std::size_t Schedule::delete_count() const { return size() - transfer_count(); }

std::vector<std::size_t> Schedule::transfer_positions_of(ObjectId k) const {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < actions_.size(); ++u) {
    if (actions_[u].is_transfer() && actions_[u].object == k) out.push_back(u);
  }
  return out;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (std::size_t u = 0; u < actions_.size(); ++u) {
    os << u << ": " << actions_[u].to_string() << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Schedule& s) {
  return os << s.to_string();
}

}  // namespace rtsp
