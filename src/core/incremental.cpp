#include "core/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/assert.hpp"

namespace rtsp {

namespace {

std::size_t default_spacing(std::size_t length) {
  const auto root = static_cast<std::size_t>(std::sqrt(static_cast<double>(length)));
  return std::max<std::size_t>(1, root);
}

}  // namespace

PrefixStateCache::PrefixStateCache(const SystemModel& model,
                                   const ReplicationMatrix& x_old,
                                   const Schedule& base, std::size_t spacing)
    : spacing_(spacing ? spacing : default_spacing(base.size())) {
  checkpoints_.emplace_back(model, x_old);
  refresh(base, 0);
}

void PrefixStateCache::state_before(const Schedule& base, std::size_t pos,
                                    ExecutionState& out) const {
  const std::size_t start = checkpoint_before(pos, out);
  OBS_COUNT_N(kObsIncrReplayedActions, pos - start);
  for (std::size_t u = start; u < pos; ++u) {
    out.apply_lenient(base[u]);
  }
}

std::size_t PrefixStateCache::checkpoint_before(std::size_t pos,
                                               ExecutionState& out) const {
  OBS_COUNT(kObsIncrCheckpointCopies);
  const std::size_t j = std::min(pos / spacing_, checkpoints_.size() - 1);
  out = checkpoints_[j];
  return j * spacing_;
}

void PrefixStateCache::refresh(const Schedule& base, std::size_t from) {
  const std::size_t total = base.size() / spacing_ + 1;
  // First checkpoint whose prefix may have changed.
  std::size_t j = std::min({from / spacing_ + 1, checkpoints_.size(), total});
  while (checkpoints_.size() > total) checkpoints_.pop_back();
  if (j >= total) return;
  ExecutionState state = checkpoints_[j - 1];
  const std::size_t last_pos = (total - 1) * spacing_;
  for (std::size_t u = (j - 1) * spacing_; u < last_pos; ++u) {
    state.apply_lenient(base[u]);
    if ((u + 1) % spacing_ == 0) {
      const std::size_t idx = (u + 1) / spacing_;
      if (idx < checkpoints_.size()) {
        checkpoints_[idx] = state;
      } else {
        checkpoints_.push_back(state);
      }
    }
  }
}

IncrementalEvaluator::IncrementalEvaluator(const SystemModel& model,
                                           const ReplicationMatrix& x_old,
                                           const ReplicationMatrix& x_new,
                                           Schedule base)
    : model_(model),
      x_old_(x_old),
      x_new_(x_new),
      base_(std::move(base)),
      cache_(model, x_old, base_),
      scratch_(model, x_old) {
  rebuild_summary();
}

void IncrementalEvaluator::rebuild_summary() {
  cost_ = 0;
  dummies_ = 0;
  ExecutionState state(model_, x_old_);
  bool actions_ok = true;
  for (const Action& a : base_) {
    cost_ += action_cost(model_, a);
    if (a.is_dummy_transfer()) ++dummies_;
    if (state.try_apply(a) != ActionError::None) actions_ok = false;
  }
  base_valid_ = actions_ok && state.placement() == x_new_;
}

IncrementalEvaluator::Metrics IncrementalEvaluator::metrics(
    const Schedule& cand, std::size_t prefix_hint, std::size_t suffix_hint) const {
  OBS_COUNT(kObsIncrCandidates);
  const std::size_t bsize = base_.size();
  const std::size_t csize = cand.size();
  const std::size_t min_size = std::min(bsize, csize);
  std::size_t suffix = std::min(suffix_hint, min_size);
  std::size_t prefix = std::min(prefix_hint, min_size - suffix);
  // Hints are sound lower bounds; tighten them to the minimal diff window so
  // delta loops and checkpoint refreshes touch as little as possible.
  while (prefix + suffix < min_size && cand[prefix] == base_[prefix]) ++prefix;
  while (prefix + suffix < min_size &&
         cand[csize - 1 - suffix] == base_[bsize - 1 - suffix]) {
    ++suffix;
  }

  Metrics m;
  m.prefix = prefix;
  m.base_suffix_start = bsize - suffix;
  m.cand_suffix_start = csize - suffix;
  if (meter_ != nullptr) {
    meter_->charge(1 + (m.base_suffix_start - prefix) +
                   (m.cand_suffix_start - prefix));
  }
  m.cost = cost_;
  std::size_t dummies = dummies_;
  for (std::size_t u = prefix; u < m.base_suffix_start; ++u) {
    m.cost -= action_cost(model_, base_[u]);
    if (base_[u].is_dummy_transfer()) --dummies;
  }
  for (std::size_t u = prefix; u < m.cand_suffix_start; ++u) {
    m.cost += action_cost(model_, cand[u]);
    if (cand[u].is_dummy_transfer()) ++dummies;
  }
  m.dummy_transfers = dummies;
  return m;
}

bool IncrementalEvaluator::is_valid(const Schedule& cand, const Metrics& m,
                                    Scratch& scratch) const {
  OBS_COUNT(kObsIncrValidations);
  if (!base_valid_) {
    // Degenerate: without a valid base there is no suffix to converge with.
    OBS_COUNT(kObsIncrFullReplays);
    OBS_COUNT_N(kObsIncrReplayedActions, cand.size());
    if (meter_ != nullptr) meter_->charge(cand.size());
    ExecutionState state(model_, x_old_);
    for (const Action& a : cand) {
      if (state.try_apply(a) != ActionError::None) return false;
    }
    return state.placement() == x_new_;
  }
  if (m.prefix == cand.size() && cand.size() == base_.size()) return true;

  ExecutionState& cs = scratch.cand_state_;
  ExecutionState& bs = scratch.base_state_;
  // Shared prefix: replay base actions (identical to the candidate's, and
  // valid because the base is) up from the nearest checkpoint.
  const std::size_t cp = cache_.checkpoint_before(m.prefix, cs);
  OBS_COUNT_N(kObsIncrReplayedActions,
              (m.prefix - cp) + (m.cand_suffix_start - m.prefix) +
                  (m.base_suffix_start - m.prefix));
  if (meter_ != nullptr) {
    meter_->charge((m.prefix - cp) + (m.cand_suffix_start - m.prefix) +
                   (m.base_suffix_start - m.prefix));
  }
  for (std::size_t u = cp; u < m.prefix; ++u) {
    cs.apply_lenient(base_[u]);
  }
  bs = cs;

  // Candidate edit window: the only actions whose validity is in question.
  std::size_t p = m.prefix;
  for (; p < m.cand_suffix_start; ++p) {
    if (cs.try_apply(cand[p]) != ActionError::None) return false;
  }
  // Bring the base execution to the aligned suffix position.
  for (std::size_t q = m.prefix; q < m.base_suffix_start; ++q) {
    bs.apply_lenient(base_[q]);
  }

  // Aligned lockstep over the shared tail. Once the two states coincide the
  // remaining identical actions replay identically, so the candidate
  // inherits the base's validity and X_new end state. Convergence typically
  // happens within a few actions of the edit; the exponential backoff keeps
  // the comparison cost logarithmic when it does not.
  std::size_t q = m.base_suffix_start;
  std::size_t step = 0;
  std::size_t next_check = 0;
  std::size_t gap = 1;
  while (p < cand.size()) {
    if (step == next_check) {
      if (cs.placement() == bs.placement()) {
        OBS_COUNT(kObsIncrConvergedEarly);
        OBS_COUNT_N(kObsIncrReplayedActions, 2 * step);
        if (meter_ != nullptr) meter_->charge(2 * step);
        return true;
      }
      next_check += gap;
      gap *= 2;
    }
    if (cs.try_apply(cand[p]) != ActionError::None) {
      OBS_COUNT_N(kObsIncrReplayedActions, 2 * step);
      if (meter_ != nullptr) meter_->charge(2 * step);
      return false;
    }
    bs.apply_lenient(base_[q]);
    ++p;
    ++q;
    ++step;
  }
  OBS_COUNT_N(kObsIncrReplayedActions, 2 * step);
  if (meter_ != nullptr) meter_->charge(2 * step);
  return cs.placement() == x_new_;
}

void IncrementalEvaluator::adopt(Schedule cand, const Metrics& m) {
  OBS_COUNT(kObsIncrAdopts);
  if (prov::Recorder* rec = prov::current()) {
    rec->on_adopt(base_, cand, m.prefix, m.base_suffix_start, m.cand_suffix_start,
                  m.cost - cost_,
                  static_cast<std::int64_t>(m.dummy_transfers) -
                      static_cast<std::int64_t>(dummies_));
  }
  cost_ = m.cost;
  dummies_ = m.dummy_transfers;
  base_ = std::move(cand);
  base_valid_ = true;  // adopt() is only reachable through is_valid()
  cache_.refresh(base_, m.prefix);
}

void IncrementalEvaluator::reset(Schedule base) {
  if (prov::Recorder* rec = prov::current()) rec->on_reset(base);
  base_ = std::move(base);
  rebuild_summary();
  cache_ = PrefixStateCache(model_, x_old_, base_);
}

}  // namespace rtsp
