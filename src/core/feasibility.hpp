// Feasibility checks and cost bounds for RTSP instances.
#pragma once

#include "core/replication.hpp"
#include "core/schedule.hpp"
#include "core/system.hpp"

namespace rtsp {

/// True if every server's row of `x` fits within its capacity. The extended
/// RTSP (with the dummy server) has a solution iff this holds for X_new.
bool storage_feasible(const SystemModel& model, const ReplicationMatrix& x);

/// Admissible lower bound on implementation cost: every outstanding replica
/// (i, k) must be fetched from *some* server that can ever hold k — an X_old
/// replicator, another X_new destination of k, or the dummy — so its cost is
/// at least s(O_k) times the cheapest such link.
Cost cost_lower_bound(const SystemModel& model, const ReplicationMatrix& x_old,
                      const ReplicationMatrix& x_new);

/// Cost of the trivially feasible worst-case schedule of Sec. 3.3: delete
/// every replica, then fetch everything in X_new from the dummy server.
Cost worst_case_cost(const SystemModel& model, const ReplicationMatrix& x_old,
                     const ReplicationMatrix& x_new);

/// The worst-case schedule itself (always valid when X_new is storage
/// feasible); useful as a baseline and in tests.
Schedule worst_case_schedule(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new);

}  // namespace rtsp
