// SparseReplicaIndex: the sparse backing store for ReplicationMatrix.
//
// Per-object sorted replica sets are authoritative; per-server object lists
// are append-only logs compacted lazily on first read after a mutation.
// Memory is O(total replicas), so an M=2000 x N=1,000,000 placement with
// r ~ 3 replicas per object costs tens of MB where the dense bitset would
// need M*N/8 = 250 MB per matrix.
//
// Complexities (r = replicas of the touched object, L = objects on the
// touched server):
//   test          O(log r)
//   set / clear   O(r) (sorted insert / erase)
//   replica_count O(1)     count_on O(1)     total O(1)
//   for_each_replicator  O(r), ascending, allocation-free
//   for_each_object      O(L log L) on first read after a mutation of that
//                        server, O(L) after; ascending, allocation-free
//   overlap       O(sum_k r1(k) + r2(k)) sorted-merge
//
// Thread-safety: concurrent reads are safe only when no server list is
// dirty (compaction mutates shared state). Call compact_all() before
// sharing across threads; mutations are never thread-safe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/types.hpp"

namespace rtsp {

/// Sorted set of server ids with a two-entry inline buffer.
///
/// Placements carry r ~ 2-3 replicas per object, so a plain
/// std::vector<ServerId> per object pays a 24-byte header plus a heap block
/// for 8 bytes of payload — at N = 1,000,000 that overhead dominates the
/// index. ReplicaSet is 16 bytes flat and only spills to the heap past two
/// entries; copies are exact-fit (no growth slack).
class ReplicaSet {
 public:
  ReplicaSet() = default;
  ReplicaSet(const ReplicaSet& other) { assign(other); }
  ReplicaSet(ReplicaSet&& other) noexcept : size_(other.size_), cap_(other.cap_) {
    if (cap_ > kInline) {
      heap_ = other.heap_;
      other.cap_ = kInline;
    } else {
      std::memcpy(inline_, other.inline_, sizeof(inline_));
    }
    other.size_ = 0;
  }
  ReplicaSet& operator=(const ReplicaSet& other) {
    if (this != &other) {
      destroy();
      assign(other);
    }
    return *this;
  }
  ReplicaSet& operator=(ReplicaSet&& other) noexcept {
    if (this != &other) {
      destroy();
      size_ = other.size_;
      cap_ = other.cap_;
      if (cap_ > kInline) {
        heap_ = other.heap_;
        other.cap_ = kInline;
      } else {
        std::memcpy(inline_, other.inline_, sizeof(inline_));
      }
      other.size_ = 0;
    }
    return *this;
  }
  ~ReplicaSet() { destroy(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const ServerId* begin() const { return data(); }
  const ServerId* end() const { return data() + size_; }
  ServerId operator[](std::size_t t) const { return data()[t]; }

  bool contains(ServerId v) const {
    return std::binary_search(begin(), end(), v);
  }

  /// Sorted insert; false if already present.
  bool insert(ServerId v) {
    ServerId* d = data();
    ServerId* pos = std::lower_bound(d, d + size_, v);
    if (pos != d + size_ && *pos == v) return false;
    const std::size_t at = static_cast<std::size_t>(pos - d);
    if (size_ == cap_) {
      grow();
      d = data();
    }
    std::memmove(d + at + 1, d + at, (size_ - at) * sizeof(ServerId));
    d[at] = v;
    ++size_;
    return true;
  }

  /// Erase; false if absent. Never shrinks back to the inline buffer.
  bool erase(ServerId v) {
    ServerId* d = data();
    ServerId* pos = std::lower_bound(d, d + size_, v);
    if (pos == d + size_ || *pos != v) return false;
    std::memmove(pos, pos + 1,
                 (size_ - static_cast<std::size_t>(pos - d) - 1) * sizeof(ServerId));
    --size_;
    return true;
  }

  bool operator==(const ReplicaSet& other) const {
    return size_ == other.size_ && std::equal(begin(), end(), other.begin());
  }

 private:
  static constexpr std::uint32_t kInline = 2;

  ServerId* data() { return cap_ <= kInline ? inline_ : heap_; }
  const ServerId* data() const { return cap_ <= kInline ? inline_ : heap_; }

  void assign(const ReplicaSet& other) {
    size_ = other.size_;
    if (other.size_ <= kInline) {
      cap_ = kInline;
      std::memcpy(inline_, other.data(), other.size_ * sizeof(ServerId));
    } else {
      cap_ = other.size_;
      heap_ = new ServerId[cap_];
      std::memcpy(heap_, other.data(), other.size_ * sizeof(ServerId));
    }
  }

  void grow() {
    const std::uint32_t new_cap = cap_ * 2;
    ServerId* nd = new ServerId[new_cap];
    std::memcpy(nd, data(), size_ * sizeof(ServerId));
    destroy();
    heap_ = nd;
    cap_ = new_cap;
  }

  void destroy() {
    if (cap_ > kInline) delete[] heap_;
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
  union {
    ServerId inline_[kInline];
    ServerId* heap_;
  };
};

class SparseReplicaIndex {
 public:
  SparseReplicaIndex() = default;
  SparseReplicaIndex(std::size_t servers, std::size_t objects)
      : servers_(servers),
        objects_(objects),
        by_object_(objects),
        by_server_(servers),
        server_dirty_(servers, 0),
        count_on_(servers, 0) {}

  std::size_t num_servers() const { return servers_; }
  std::size_t num_objects() const { return objects_; }

  bool test(ServerId i, ObjectId k) const {
    check(i, k);
    return by_object_[k].contains(i);
  }

  void set(ServerId i, ObjectId k) {
    check(i, k);
    if (!by_object_[k].insert(i)) return;
    by_server_[i].push_back(k);
    server_dirty_[i] = 1;
    ++count_on_[i];
    ++total_;
  }

  void clear(ServerId i, ObjectId k) {
    check(i, k);
    if (!by_object_[k].erase(i)) return;
    // The stale entry stays in by_server_[i] until compaction filters it.
    server_dirty_[i] = 1;
    --count_on_[i];
    --total_;
  }

  std::size_t replica_count(ObjectId k) const {
    RTSP_REQUIRE(k < objects_);
    return by_object_[k].size();
  }
  std::size_t count_on(ServerId i) const {
    RTSP_REQUIRE(i < servers_);
    return count_on_[i];
  }
  std::size_t total_replicas() const { return total_; }

  /// Sorted replica set of object k (ascending server ids).
  const ReplicaSet& replicators(ObjectId k) const {
    RTSP_REQUIRE(k < objects_);
    return by_object_[k];
  }

  /// Sorted object list of server i (ascending); compacts lazily.
  const std::vector<ObjectId>& objects(ServerId i) const {
    RTSP_REQUIRE(i < servers_);
    if (server_dirty_[i]) compact(i);
    return by_server_[i];
  }

  template <typename Fn>
  void for_each_replicator(ObjectId k, Fn&& fn) const {
    for (ServerId i : replicators(k)) fn(i);
  }

  template <typename Fn>
  void for_each_object(ServerId i, Fn&& fn) const {
    for (ObjectId k : objects(i)) fn(k);
  }

  /// Replicas present in both indexes (sorted-merge per object).
  std::size_t overlap(const SparseReplicaIndex& other) const;

  /// Compacts every dirty server list; required before sharing the index
  /// across threads for read-only access.
  void compact_all() const {
    for (ServerId i = 0; i < servers_; ++i) {
      if (server_dirty_[i]) compact(i);
    }
  }

  bool operator==(const SparseReplicaIndex& other) const {
    return servers_ == other.servers_ && objects_ == other.objects_ &&
           by_object_ == other.by_object_;
  }

 private:
  void check(ServerId i, ObjectId k) const {
    RTSP_REQUIRE_MSG(i < servers_ && k < objects_,
                     "replica (" << i << "," << k << ") out of " << servers_ << "x"
                                 << objects_);
  }

  void compact(ServerId i) const;

  std::size_t servers_ = 0;
  std::size_t objects_ = 0;
  std::size_t total_ = 0;
  std::vector<ReplicaSet> by_object_;
  // Lazily maintained: may hold stale or duplicate entries until compacted.
  mutable std::vector<std::vector<ObjectId>> by_server_;
  mutable std::vector<std::uint8_t> server_dirty_;
  std::vector<std::size_t> count_on_;
};

}  // namespace rtsp
