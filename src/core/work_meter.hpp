// Dual-mode anytime budget meter for the optimizer portfolio (DESIGN.md §13).
//
// A WorkMeter counts abstract "work ticks" — units proportional to replayed
// or re-costed actions — charged by the incremental evaluator and the
// budget-aware improver loops. Two limits can be armed independently:
//
//   * a tick limit: deterministic virtual time. Charges are a pure function
//     of the optimization trajectory, so identical (instance, seed, limit)
//     runs exhaust at exactly the same point on any machine — the basis of
//     the bit-reproducible `--budget-ticks` mode;
//   * a wall-clock deadline for production `--budget-ms` runs, where
//     reproducibility is traded for a hard latency bound.
//
// Charging uses relaxed atomics: concurrent screeners (OP1P waves) may charge
// in any order, but sums are commutative, so totals observed at deterministic
// poll points (between candidates, waves, rounds) are themselves
// deterministic. An unarmed meter never reports exhaustion, and a null meter
// pointer on the evaluator is the default: unbudgeted runs are bit-identical
// to the pre-portfolio behavior.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rtsp {

class WorkMeter {
 public:
  using Clock = std::chrono::steady_clock;

  WorkMeter() = default;
  WorkMeter(const WorkMeter&) = delete;
  WorkMeter& operator=(const WorkMeter&) = delete;

  /// Arms the deterministic tick limit; 0 disarms it.
  void set_tick_limit(std::uint64_t limit) { tick_limit_ = limit; }
  /// Arms the wall-clock deadline.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  std::uint64_t tick_limit() const { return tick_limit_; }
  bool limited() const { return tick_limit_ != 0 || has_deadline_; }
  /// True when no wall-clock deadline is armed (tick-only or unlimited):
  /// exhaustion then depends only on the charge sequence.
  bool deterministic() const { return !has_deadline_; }

  /// Adds `n` ticks of work. Thread-safe.
  void charge(std::uint64_t n) { ticks_.fetch_add(n, std::memory_order_relaxed); }

  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// Whether either armed limit has been reached. Sticky: once exhausted a
  /// meter stays exhausted (ticks and time only move forward).
  bool exhausted() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (tick_limit_ != 0 && ticks() >= tick_limit_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  std::atomic<std::uint64_t> ticks_{0};
  mutable std::atomic<bool> expired_{false};
  std::uint64_t tick_limit_ = 0;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace rtsp
