#include "core/action.hpp"

#include <sstream>

namespace rtsp {

std::string Action::to_string() const {
  std::ostringstream os;
  if (is_transfer()) {
    os << "T(S" << server << " <- O" << object << " from ";
    if (is_dummy(source)) os << "dummy";
    else os << "S" << source;
    os << ")";
  } else {
    os << "D(S" << server << ", O" << object << ")";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Action& a) { return os << a.to_string(); }

}  // namespace rtsp
