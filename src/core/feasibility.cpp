#include "core/feasibility.hpp"

#include <algorithm>

#include "core/delta.hpp"

namespace rtsp {

bool storage_feasible(const SystemModel& model, const ReplicationMatrix& x) {
  RTSP_REQUIRE(x.num_servers() == model.num_servers());
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    if (x.used_storage(i, model.objects()) > model.capacity(i)) return false;
  }
  return true;
}

Cost cost_lower_bound(const SystemModel& model, const ReplicationMatrix& x_old,
                      const ReplicationMatrix& x_new) {
  const PlacementDelta delta(x_old, x_new);
  Cost total = 0;
  for (const Replica& r : delta.outstanding()) {
    // Any schedule fetches (i, k) from a server that holds k at that moment:
    // an X_old replicator, an earlier-filled X_new destination, or the
    // dummy. Scanning the two replica sets instead of every server keeps
    // this O(r) per outstanding replica on either backing store.
    LinkCost best = model.dummy_link_cost();
    const auto consider = [&](ServerId j) {
      if (j == r.server) return;
      best = std::min(best, model.costs().at(r.server, j));
    };
    x_old.for_each_replicator(r.object, consider);
    x_new.for_each_replicator(r.object, consider);
    total += model.object_size(r.object) * best;
  }
  return total;
}

Cost worst_case_cost(const SystemModel& model, const ReplicationMatrix& x_old,
                     const ReplicationMatrix& x_new) {
  (void)x_old;  // the worst-case plan discards X_old entirely
  Cost total = 0;
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    for (ObjectId k : x_new.objects_on(i)) {
      total += model.object_size(k) * model.dummy_link_cost();
    }
  }
  return total;
}

Schedule worst_case_schedule(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new) {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new),
                   "X_new violates storage capacities; no schedule exists");
  Schedule h;
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    for (ObjectId k : x_old.objects_on(i)) h.push_back(Action::remove(i, k));
  }
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    for (ObjectId k : x_new.objects_on(i)) {
      h.push_back(Action::transfer(i, k, kDummyServer));
    }
  }
  return h;
}

}  // namespace rtsp
