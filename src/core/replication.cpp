#include "core/replication.hpp"

#include <bit>

namespace rtsp {

ReplicationMatrix::ReplicationMatrix(std::size_t servers, std::size_t objects)
    : servers_(servers),
      objects_(objects),
      words_per_row_((objects + 63) / 64),
      words_(servers * words_per_row_, 0) {}

ReplicationMatrix ReplicationMatrix::from_pairs(
    std::size_t servers, std::size_t objects,
    std::initializer_list<std::pair<ServerId, ObjectId>> pairs) {
  ReplicationMatrix m(servers, objects);
  for (const auto& [i, k] : pairs) m.set(i, k);
  return m;
}

std::vector<ObjectId> ReplicationMatrix::objects_on(ServerId i) const {
  RTSP_REQUIRE(i < servers_);
  std::vector<ObjectId> out;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t bits = words_[i * words_per_row_ + w];
    while (bits) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<ObjectId>(w * 64 + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<ServerId> ReplicationMatrix::replicators_of(ObjectId k) const {
  RTSP_REQUIRE(k < objects_);
  std::vector<ServerId> out;
  for (ServerId i = 0; i < servers_; ++i) {
    if (test(i, k)) out.push_back(i);
  }
  return out;
}

std::size_t ReplicationMatrix::replica_count(ObjectId k) const {
  RTSP_REQUIRE(k < objects_);
  std::size_t n = 0;
  for (ServerId i = 0; i < servers_; ++i) n += test(i, k) ? 1 : 0;
  return n;
}

std::size_t ReplicationMatrix::count_on(ServerId i) const {
  RTSP_REQUIRE(i < servers_);
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[i * words_per_row_ + w]));
  }
  return n;
}

std::size_t ReplicationMatrix::total_replicas() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

Size ReplicationMatrix::used_storage(ServerId i, const ObjectCatalog& objects) const {
  RTSP_REQUIRE(objects.count() == objects_);
  Size used = 0;
  for (ObjectId k : objects_on(i)) used += objects.size_of(k);
  return used;
}

std::size_t ReplicationMatrix::overlap(const ReplicationMatrix& other) const {
  RTSP_REQUIRE(servers_ == other.servers_ && objects_ == other.objects_);
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
  }
  return n;
}

}  // namespace rtsp
